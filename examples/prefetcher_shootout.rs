//! Compares every instruction and data prefetcher on a pointer-chasing
//! workload (patricia), with and without IPEX.
//!
//! Run with: `cargo run --release --example prefetcher_shootout`

use ehs_repro::prefetch::{DataPrefetcherKind, InstPrefetcherKind};
use ehs_repro::sim::{Ipex, Machine, SimConfig};

fn main() {
    let workload = ehs_repro::workloads::by_name("patricia").expect("known workload");
    let program = workload.program();
    let trace = SimConfig::default_trace();

    println!("patricia (bitwise-trie lookups) under RFHome\n");
    println!(
        "{:>12} {:>12} {:>6} {:>12} {:>10} {:>8} {:>8}",
        "inst-pf", "data-pf", "IPEX", "cycles", "energy(uJ)", "acc(I)", "acc(D)"
    );
    for ikind in InstPrefetcherKind::TABLE3 {
        for dkind in DataPrefetcherKind::TABLE4 {
            for ipex_on in [false, true] {
                let mut cfg = if ipex_on {
                    SimConfig::builder().ipex(Ipex::Both).build()
                } else {
                    SimConfig::default()
                };
                cfg.inst_prefetcher = ikind;
                cfg.data_prefetcher = dkind;
                let r = Machine::with_trace(cfg, &program, trace.clone())
                    .run()
                    .expect("completes");
                println!(
                    "{:>12} {:>12} {:>6} {:>12} {:>10.2} {:>7.1}% {:>7.1}%",
                    ikind.name(),
                    dkind.name(),
                    if ipex_on { "yes" } else { "no" },
                    r.stats.total_cycles,
                    r.total_energy_nj() / 1000.0,
                    r.inst_prefetch_accuracy() * 100.0,
                    r.data_prefetch_accuracy() * 100.0,
                );
            }
        }
    }
}
