//! Domain scenario: an intermittently-powered audio sensor node.
//!
//! Models the paper's motivating deployment: a batteryless node decoding
//! ADPCM audio frames off ambient RF power. Shows how execution chops
//! into power cycles, what each outage costs, and how IPEX changes the
//! picture across all four harvesting environments.
//!
//! Run with: `cargo run --release --example intermittent_audio`

use ehs_repro::energy::TraceKind;
use ehs_repro::sim::{Ipex, Machine, SimConfig};

fn main() {
    let workload = ehs_repro::workloads::by_name("adpcmd").expect("known workload");
    let program = workload.program();

    println!("ADPCM audio decode on a batteryless sensor node (0.47 uF capacitor)\n");
    println!(
        "{:>10} {:>12} {:>8} {:>10} {:>12} {:>10}",
        "trace", "mean power", "config", "pcycles", "time (ms)", "energy(uJ)"
    );
    for kind in TraceKind::ALL {
        let trace = kind.synthesize(7, 400_000);
        let mean = trace.mean_power_mw();
        for (label, cfg) in [
            ("base", SimConfig::default()),
            ("IPEX", SimConfig::builder().ipex(Ipex::Both).build()),
        ] {
            let r = Machine::with_trace(cfg, &program, trace.clone())
                .run()
                .expect("completes");
            println!(
                "{:>10} {:>9.2} mW {:>8} {:>10} {:>12.2} {:>10.2}",
                kind.name(),
                mean,
                label,
                r.stats.power_cycles,
                r.stats.total_cycles as f64 * 5e-6,
                r.total_energy_nj() / 1000.0,
            );
        }
    }
    println!("\nWeaker, burstier supplies mean more outages — and more useless");
    println!("prefetches for IPEX to suppress.");
}
