//! Quickstart: simulate one benchmark on the default energy-harvesting
//! system, with and without IPEX, and print the headline numbers.
//!
//! Run with: `cargo run --release --example quickstart`

use ehs_repro::sim::{Ipex, Machine, SimConfig};

fn main() {
    let workload = ehs_repro::workloads::by_name("adpcmd").expect("known workload");
    let program = workload.program();
    let trace = SimConfig::default_trace();

    println!("workload: {} — {}", workload.name(), workload.description());
    println!(
        "program:  {} instructions of text, {} B of data\n",
        program.len(),
        program.footprint()
    );

    let baseline = Machine::with_trace(SimConfig::default(), &program, trace.clone())
        .run()
        .expect("baseline completes");
    let ipex = Machine::with_trace(
        SimConfig::builder().ipex(Ipex::Both).build(),
        &program,
        trace,
    )
    .run()
    .expect("ipex completes");

    for (name, r) in [
        ("conventional prefetchers", &baseline),
        ("with IPEX", &ipex),
    ] {
        println!("== {name} ==");
        println!(
            "  execution time : {} cycles ({:.2} ms at 200 MHz)",
            r.stats.total_cycles,
            r.stats.total_cycles as f64 * 5e-6
        );
        println!("  power cycles   : {}", r.stats.power_cycles);
        println!("  energy         : {:.0} nJ", r.total_energy_nj());
        println!("  prefetch ops   : {}", r.prefetch_operations());
        println!(
            "  prefetch acc.  : I {:.1}%  D {:.1}%",
            r.inst_prefetch_accuracy() * 100.0,
            r.data_prefetch_accuracy() * 100.0
        );
    }
    println!(
        "\nIPEX speedup: {:.2}%   energy saving: {:.2}%",
        (ipex.speedup_over(&baseline) - 1.0) * 100.0,
        (1.0 - ipex.total_energy_nj() / baseline.total_energy_nj()) * 100.0
    );
}
