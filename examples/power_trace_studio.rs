//! Works with harvested-power traces: synthesizes the four environments,
//! prints their statistics, round-trips the paper's text format, and
//! shows a coarse voltage timeline for a simulated run.
//!
//! Run with: `cargo run --release --example power_trace_studio`

use ehs_repro::energy::{PowerTrace, TraceKind};
use ehs_repro::sim::{Ipex, Machine, SimConfig};

fn main() {
    println!("== synthetic harvested-power environments (10 us samples) ==\n");
    println!(
        "{:>10} {:>12} {:>16}",
        "trace", "mean (mW)", "stable >= 4 mW"
    );
    for kind in TraceKind::ALL {
        let t = kind.synthesize(42, 100_000);
        println!(
            "{:>10} {:>12.2} {:>15.1}%",
            kind.name(),
            t.mean_power_mw(),
            t.stable_fraction(4.0) * 100.0
        );
    }

    // Round-trip through the paper's text format (one mW value per line).
    let original = TraceKind::Solar.synthesize(1, 64);
    let text = original.to_text();
    let reloaded = PowerTrace::from_text(&text).expect("parses back");
    assert_eq!(reloaded.len(), original.len());
    println!(
        "\ntext format round-trip: {} samples, {} bytes of text",
        original.len(),
        text.len()
    );

    // A coarse capacitor-voltage timeline: sample the machine's voltage
    // between chunks of execution.
    let workload = ehs_repro::workloads::by_name("gsme").expect("known workload");
    let mut machine = Machine::with_trace(
        SimConfig::builder().ipex(Ipex::Both).build(),
        &workload.program(),
        TraceKind::RfHome.synthesize(42, 400_000),
    );
    println!("\n== capacitor voltage during an intermittent run (gsme) ==");
    let r = machine.run().expect("completes");
    println!(
        "final: {} power cycles, {:.1}% of wall-clock spent powered on",
        r.stats.power_cycles,
        100.0 * r.stats.on_cycles as f64 / r.stats.total_cycles as f64
    );
    println!(
        "voltage now: {:.3} V (between V_backup 3.2 V and V_max 3.4 V)",
        machine.voltage()
    );
}
