//! Criterion micro-benchmarks for the hot structures of the simulator:
//! the cache tag store, the prefetchers, the functional interpreter and
//! a short end-to-end machine run. These guard the simulator's own
//! performance (a full figure regeneration runs hundreds of simulations).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ehs_energy::PowerTrace;
use ehs_isa::Interpreter;
use ehs_mem::{Cache, CacheConfig, PrefetchBuffer};
use ehs_prefetch::{
    AccessEvent, AccessOutcome, Prefetcher, SequentialPrefetcher, StridePrefetcher,
};
use ehs_sim::{Ipex, Machine, SimConfig, TraceMode};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/access_hit", |b| {
        let mut cache = Cache::new(CacheConfig::paper_default());
        cache.fill(0x1000, false);
        b.iter(|| black_box(cache.access(black_box(0x1004), false)));
    });
    c.bench_function("cache/fill_evict", |b| {
        let mut cache = Cache::new(CacheConfig::paper_default());
        let mut addr = 0u32;
        b.iter(|| {
            addr = addr.wrapping_add(16);
            black_box(cache.fill(black_box(addr), true))
        });
    });
}

fn bench_prefetchers(c: &mut Criterion) {
    c.bench_function("prefetch/sequential_observe", |b| {
        let mut p = SequentialPrefetcher::new(2);
        let mut out = Vec::with_capacity(8);
        let mut pc = 0u32;
        b.iter(|| {
            pc = pc.wrapping_add(4);
            out.clear();
            p.observe(&AccessEvent::fetch(pc, AccessOutcome::Miss), &mut out);
            black_box(out.len())
        });
    });
    c.bench_function("prefetch/stride_observe", |b| {
        let mut p = StridePrefetcher::new(2);
        let mut out = Vec::with_capacity(8);
        let mut addr = 0u32;
        b.iter(|| {
            addr = addr.wrapping_add(64);
            out.clear();
            p.observe(
                &AccessEvent::data(0x40, addr, AccessOutcome::Miss, false),
                &mut out,
            );
            black_box(out.len())
        });
    });
    c.bench_function("prefetch/buffer_insert_lookup", |b| {
        let mut buf = PrefetchBuffer::new(4);
        let mut blk = 0u32;
        b.iter(|| {
            blk = blk.wrapping_add(16);
            buf.insert(blk, 10);
            black_box(buf.lookup(blk, 20))
        });
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let program = ehs_workloads::by_name("basicm").unwrap().program();
    c.bench_function("isa/interpreter_1k_steps", |b| {
        b.iter(|| {
            let mut vm = Interpreter::new(&program);
            for _ in 0..1000 {
                vm.step().unwrap();
            }
            black_box(vm.pc())
        });
    });
    c.bench_function("isa/assemble_workload", |b| {
        let src = ehs_workloads::by_name("gsmd").unwrap().source();
        b.iter(|| black_box(ehs_isa::asm::assemble(black_box(&src)).unwrap().len()));
    });
}

/// The dispatch-strategy comparison behind DESIGN.md §8: the same
/// sequential-prefetcher observe stream driven through a `Box<dyn
/// Prefetcher>` (virtual call per event) and through the
/// [`AnyPrefetcher`] enum (match, inlinable). The event pattern
/// advances one block per event so the prefetcher does real work each
/// time rather than hitting its same-block early-out.
fn bench_dispatch(c: &mut Criterion) {
    use ehs_prefetch::InstPrefetcherKind;

    c.bench_function("dispatch/boxed_dyn_observe", |b| {
        let mut p: Box<dyn Prefetcher> = InstPrefetcherKind::Sequential.build(2);
        let mut out = Vec::with_capacity(8);
        let mut pc = 0u32;
        b.iter(|| {
            pc = pc.wrapping_add(16);
            out.clear();
            p.observe(&AccessEvent::fetch(pc, AccessOutcome::Miss), &mut out);
            black_box(out.len())
        });
    });
    c.bench_function("dispatch/enum_observe", |b| {
        let mut p = InstPrefetcherKind::Sequential.build_any(2);
        let mut out = Vec::with_capacity(8);
        let mut pc = 0u32;
        b.iter(|| {
            pc = pc.wrapping_add(16);
            out.clear();
            p.observe(&AccessEvent::fetch(pc, AccessOutcome::Miss), &mut out);
            black_box(out.len())
        });
    });
}

fn bench_machine(c: &mut Criterion) {
    let program = ehs_workloads::by_name("gsmd").unwrap().program();
    let trace = PowerTrace::constant_mw(50.0, 16);
    c.bench_function("sim/machine_60k_cycles", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::builder().ipex(Ipex::Both).build();
            cfg.max_cycles = 60_000;
            let mut m = Machine::with_trace(cfg, &program, trace.clone());
            let _ = m.run(); // hits the cycle budget; that is the point
            black_box(m.result().stats.instructions)
        });
    });
}

/// The tracing cost contract: `sim/machine_60k_cycles` above runs with
/// tracing compiled in but off ([`TraceMode::Off`] is the default), and
/// must stay within 2% of the pre-tracing simulator. These two variants
/// measure the additional cost of actually enabling it.
fn bench_tracing(c: &mut Criterion) {
    let program = ehs_workloads::by_name("gsmd").unwrap().program();
    let trace = PowerTrace::constant_mw(50.0, 16);
    let run = |mode: TraceMode| {
        let mut cfg = SimConfig::builder()
            .ipex(Ipex::Both)
            .build()
            .with_trace_mode(mode);
        cfg.max_cycles = 60_000;
        let mut m = Machine::with_trace(cfg, &program, trace.clone());
        let _ = m.run();
        m.result().stats.instructions
    };
    c.bench_function("trace/machine_60k_off", |b| {
        b.iter(|| black_box(run(TraceMode::Off)));
    });
    c.bench_function("trace/machine_60k_counting", |b| {
        b.iter(|| black_box(run(TraceMode::Counting)));
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_prefetchers,
    bench_dispatch,
    bench_interpreter,
    bench_machine,
    bench_tracing
);
criterion_main!(benches);
