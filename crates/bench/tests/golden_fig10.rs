//! The golden equivalence test behind the `paper` binary's promise:
//! rendering fig10 the legacy way (standalone, in-memory engine), the
//! `paper` way (points requested up front, disk cache, render from
//! memo), and again warm from the cache must all produce byte-identical
//! `results/fig10_speedup_baseline.json` — and the engine's counters
//! must prove each unique point was simulated exactly once (cold) and
//! never (warm).

use std::collections::HashSet;
use std::path::PathBuf;

use ehs_bench::figures::{by_id, RenderCx};
use ehs_bench::sweep::{Sweep, SweepOptions};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ehs-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fig10_is_byte_identical_across_engines_and_cache_states() {
    let fig = by_id("fig10").expect("fig10 registered");
    let file = format!("{}.json", fig.file_id());

    // 1. Legacy path: what `--bin fig10_speedup_baseline` does.
    let legacy_dir = tmp_dir("legacy");
    {
        let sweep = Sweep::in_memory();
        let cx = RenderCx {
            sweep: &sweep,
            out_dir: legacy_dir.clone(),
        };
        fig.render(&cx);
    }

    // 2. Paper path, cold: request the declared points first, then
    //    render from the memo store, persisting to a disk cache.
    let cache_dir = tmp_dir("cache");
    let cold_dir = tmp_dir("cold");
    {
        let sweep = Sweep::new(SweepOptions {
            slices: None,
            jobs: None,
            disk_cache: Some(cache_dir.clone()),
            checkpoints: None,
        });
        let points = fig.points();
        let unique: HashSet<_> = points.iter().map(|p| p.key()).collect();
        let n_unique = unique.len() as u64;
        let _ = sweep.request(points).wait();
        let cx = RenderCx {
            sweep: &sweep,
            out_dir: cold_dir.clone(),
        };
        fig.render(&cx);
        let s = sweep.stats();
        assert_eq!(
            s.simulated, n_unique,
            "cold run must simulate each unique point exactly once: {s:?}"
        );
        assert_eq!(s.disk_hits, 0, "{s:?}");
    }

    // 3. Paper path, warm: a fresh engine over the same cache renders
    //    without simulating anything.
    let warm_dir = tmp_dir("warm");
    {
        let sweep = Sweep::new(SweepOptions {
            slices: None,
            jobs: None,
            disk_cache: Some(cache_dir.clone()),
            checkpoints: None,
        });
        let cx = RenderCx {
            sweep: &sweep,
            out_dir: warm_dir.clone(),
        };
        fig.render(&cx);
        let s = sweep.stats();
        assert_eq!(s.simulated, 0, "warm run must be simulation-free: {s:?}");
        assert!(s.disk_hits > 0, "{s:?}");
    }

    let legacy = std::fs::read(legacy_dir.join(&file)).expect("legacy results");
    let cold = std::fs::read(cold_dir.join(&file)).expect("cold results");
    let warm = std::fs::read(warm_dir.join(&file)).expect("warm results");
    assert!(legacy == cold, "cold paper run diverged from legacy bytes");
    assert!(legacy == warm, "warm paper run diverged from legacy bytes");

    for d in [legacy_dir, cache_dir, cold_dir, warm_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}
