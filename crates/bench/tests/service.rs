//! Integration tests for the sweep service: concurrent clients with
//! overlapping seed batches must get byte-identical results while every
//! unique point is simulated exactly once, and shutdown must be clean.

#![cfg(unix)]

use std::sync::Arc;
use std::time::Duration;

use ehs_bench::service::{Client, Server};
use ehs_bench::sweep::Sweep;
use ehs_energy::{TraceKind, TraceSpec};
use ehs_sim::prelude::*;

fn test_socket(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ehs-serve-{tag}-{}.sock", std::process::id()))
}

/// A small, fast trace environment: the seed sweep varies its seed.
fn small_trace() -> TraceSpec {
    TraceSpec::Synthetic {
        kind: TraceKind::RfHome,
        seed: 0,
        samples: 4_000,
    }
}

#[test]
fn overlapping_clients_simulate_each_point_once() {
    const CLIENTS: usize = 4;
    const SEEDS: u64 = 6;

    let path = test_socket("overlap");
    let sweep = Arc::new(Sweep::in_memory());
    let server = Server::spawn(&path, Arc::clone(&sweep)).unwrap();

    // Every client asks for the same seed window, concurrently. The
    // batches overlap completely, so the engine's in-flight dedup is
    // what keeps the simulation count at one per unique point.
    let mut renders: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let path = &path;
                scope.spawn(move || {
                    let mut client = Client::connect_retry(path, Duration::from_secs(10)).unwrap();
                    let reply = client
                        .seed_sweep(
                            "gsmd",
                            SimConfig::builder().build(),
                            small_trace(),
                            1000,
                            SEEDS,
                        )
                        .unwrap();
                    serde_json::to_string(&reply.results()).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // All clients saw byte-identical result streams (after index
    // reordering, which the client does for us).
    let first = renders.pop().unwrap();
    for other in &renders {
        assert_eq!(&first, other, "clients must agree byte-for-byte");
    }

    // Counter-asserted exactly-once: SEEDS unique points total, no
    // matter how many clients raced.
    let mut client = Client::connect_retry(&path, Duration::from_secs(10)).unwrap();
    let stats = client.server_stats().unwrap();
    assert_eq!(stats.simulated, SEEDS, "{stats:?}");
    assert_eq!(
        stats.requested,
        SEEDS * CLIENTS as u64,
        "every client's points must be accounted ({stats:?})"
    );

    client.shutdown().unwrap();
    server.join();
    assert!(!path.exists(), "socket must be cleaned up");
}

#[test]
fn distinct_batches_share_the_memo_across_connections() {
    let path = test_socket("memo");
    let sweep = Arc::new(Sweep::in_memory());
    let server = Server::spawn(&path, Arc::clone(&sweep)).unwrap();

    // First client simulates seeds 2000..2004; a second, later client
    // overlapping half the window must hit the memo for the shared half.
    let cfg = SimConfig::builder().build();
    let mut a = Client::connect_retry(&path, Duration::from_secs(10)).unwrap();
    let ra = a
        .seed_sweep("gsmd", cfg.clone(), small_trace(), 2000, 4)
        .unwrap();
    assert_eq!(ra.stats.simulated, 4);

    let mut b = Client::connect_retry(&path, Duration::from_secs(10)).unwrap();
    let rb = b.seed_sweep("gsmd", cfg, small_trace(), 2002, 4).unwrap();
    assert_eq!(rb.stats.simulated, 6, "only the two new seeds simulate");

    // The overlapping seeds resolve to identical bytes on both clients.
    let a_overlap = serde_json::to_string(&ra.results()[2..]).unwrap();
    let b_overlap = serde_json::to_string(&rb.results()[..2]).unwrap();
    assert_eq!(a_overlap, b_overlap);

    b.shutdown().unwrap();
    server.join();
}

#[test]
fn unknown_workloads_are_rejected_before_any_work() {
    let path = test_socket("reject");
    let sweep = Arc::new(Sweep::in_memory());
    let server = Server::spawn(&path, Arc::clone(&sweep)).unwrap();

    let mut client = Client::connect_retry(&path, Duration::from_secs(10)).unwrap();
    let err = client
        .seed_sweep(
            "no-such-workload",
            SimConfig::builder().build(),
            small_trace(),
            0,
            2,
        )
        .unwrap_err();
    assert!(err.to_string().contains("unknown workload"), "{err}");

    // The connection stays usable and nothing was simulated.
    client.ping().unwrap();
    assert_eq!(client.server_stats().unwrap().simulated, 0);

    client.shutdown().unwrap();
    server.join();
}
