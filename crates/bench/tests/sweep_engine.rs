//! Engine-level guarantees of `ehs_bench::sweep`: content-addressed key
//! stability, disk-cache round-tripping, and cache invalidation on
//! corruption.

use std::path::PathBuf;

use ehs_bench::sweep::{SimPoint, Sweep, SweepOptions};
use ehs_sim::prelude::*;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ehs-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_point() -> SimPoint {
    SimPoint::new(
        "gsmd",
        SimConfig::builder().build(),
        TraceSpec::Constant {
            power_mw: 50.0,
            samples: 8,
        },
    )
}

/// The digest must not depend on how the configuration was built —
/// explicit defaults, builder defaults, and the `Default` impl are the
/// same point.
#[test]
fn key_is_stable_across_construction_paths() {
    let via_builder = SimPoint::new(
        "gsmd",
        SimConfig::builder().build(),
        TraceSpec::default_rfhome(),
    );
    let via_default = SimPoint::new("gsmd", SimConfig::default(), TraceSpec::default_rfhome());
    assert_eq!(via_builder.key(), via_default.key());

    // ...while any semantic difference must change it.
    let mut other = via_default.clone();
    other.config.max_cycles += 1;
    assert_ne!(via_default.key(), other.key());
}

/// Equivalent trace *specs* hash equal; different parameters don't.
#[test]
fn trace_spec_identity_feeds_the_key() {
    let cfg = SimConfig::builder().build();
    let a = SimPoint::new("fft", cfg.clone(), TraceSpec::standard(TraceKind::RfHome));
    let b = SimPoint::new("fft", cfg.clone(), TraceSpec::default_rfhome());
    assert_eq!(a.key(), b.key(), "default_rfhome IS standard(RfHome)");
    let c = SimPoint::new(
        "fft",
        cfg,
        TraceSpec::Synthetic {
            kind: TraceKind::RfHome,
            seed: 43,
            samples: 400_000,
        },
    );
    assert_ne!(a.key(), c.key(), "a different seed is a different point");
}

#[test]
fn disk_cache_round_trips_and_survives_a_new_engine() {
    let dir = tmp_dir("roundtrip");
    let p = tiny_point();

    let first = Sweep::new(SweepOptions {
        slices: None,
        jobs: Some(1),
        disk_cache: Some(dir.clone()),
        checkpoints: None,
    });
    let r1 = first.get(&p).expect("simulates fine");
    let s1 = first.stats();
    assert_eq!((s1.simulated, s1.disk_hits), (1, 0), "{s1:?}");
    assert!(
        dir.join(format!("{}.json", p.key())).is_file(),
        "cache entry written"
    );

    // A brand-new engine over the same directory must not simulate.
    let second = Sweep::new(SweepOptions {
        slices: None,
        jobs: Some(1),
        disk_cache: Some(dir.clone()),
        checkpoints: None,
    });
    let r2 = second.get(&p).expect("loads from cache");
    let s2 = second.stats();
    assert_eq!((s2.simulated, s2.disk_hits), (0, 1), "{s2:?}");
    assert_eq!(
        serde_json::to_string(&r1).unwrap(),
        serde_json::to_string(&r2).unwrap(),
        "cached result identical to the simulated one"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entry_is_a_miss_not_a_crash() {
    let dir = tmp_dir("corrupt");
    let p = tiny_point();

    let first = Sweep::new(SweepOptions {
        slices: None,
        jobs: Some(1),
        disk_cache: Some(dir.clone()),
        checkpoints: None,
    });
    let _ = first.get(&p).expect("simulates fine");
    let entry = dir.join(format!("{}.json", p.key()));
    std::fs::write(&entry, b"{ not json").expect("clobber the entry");

    let second = Sweep::new(SweepOptions {
        slices: None,
        jobs: Some(1),
        disk_cache: Some(dir.clone()),
        checkpoints: None,
    });
    let _ = second.get(&p).expect("re-simulates");
    let s = second.stats();
    assert_eq!((s.simulated, s.disk_hits), (1, 0), "{s:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_cache_engine_touches_no_disk() {
    let dir = tmp_dir("none");
    let sweep = Sweep::in_memory();
    let _ = sweep.get(&tiny_point()).expect("simulates fine");
    assert!(!dir.exists());
    assert_eq!(sweep.stats().disk_hits, 0);
}
