//! Golden reproducibility for seed-swept stats artefacts: the JSON a
//! stats evaluation writes must be **byte-identical** across a cold
//! run, a warm-cache run, and a run that was killed mid-simulation and
//! resumed from a crash checkpoint (PR 4's snapshot machinery).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ehs_bench::figures::{Figure, Headline, RenderCx};
use ehs_bench::monte::{self, SeedPlan};
use ehs_bench::sweep::{CheckpointPolicy, SimPoint, Sweep, SweepOptions};
use ehs_bench::write_checkpoint;
use ehs_energy::{TraceKind, TraceSpec};
use ehs_sim::prelude::*;

/// A private single-headline figure kept deliberately small (one
/// no-prefetch configuration, a short synthetic trace) so the test
/// simulates the suite a handful of times, not the full registry.
struct LocalFig;

fn small_trace() -> TraceSpec {
    TraceSpec::Synthetic {
        kind: TraceKind::RfHome,
        seed: 7,
        samples: 4_000,
    }
}

fn nopf() -> SimConfig {
    SimConfig::builder().no_prefetch().build()
}

impl Figure for LocalFig {
    fn id(&self) -> &'static str {
        "local"
    }

    fn file_id(&self) -> &'static str {
        "local_golden_stats"
    }

    fn title(&self) -> &'static str {
        "golden-test headline"
    }

    fn points(&self) -> Vec<SimPoint> {
        self.headlines()
            .iter()
            .flat_map(|h| h.points_under(&h.base_trace))
            .collect()
    }

    fn headlines(&self) -> Vec<Headline> {
        fn mean_istall(s: &[BTreeMap<&'static str, SimResult>]) -> f64 {
            s[0].values()
                .map(|r| r.stats.istall_fraction())
                .sum::<f64>()
                / s[0].len() as f64
        }
        vec![Headline {
            label: "mean_istall_fraction".into(),
            base_trace: small_trace(),
            configs: vec![nopf()],
            eval: mean_istall,
        }]
    }

    fn render(&self, _cx: &RenderCx<'_>) {}
}

fn unique_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "ehs-stats-golden-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Evaluates the local figure on `sweep` and returns the exact bytes of
/// its stats artefact.
fn stats_bytes(sweep: &Sweep, plan: &SeedPlan, out_dir: &Path) -> Vec<u8> {
    let fs = monte::evaluate_figure(&LocalFig, sweep, plan).expect("one headline");
    monte::write_stats(out_dir, &fs);
    std::fs::read(out_dir.join("stats").join("local_golden_stats.json")).expect("stats file")
}

#[test]
fn stats_json_is_identical_cold_warm_and_resumed() {
    let plan = SeedPlan::new(2, 500);

    // Cold: empty disk cache, everything simulates.
    let cache = unique_dir("cache");
    let out_cold = unique_dir("out-cold");
    let cold_sweep = Sweep::new(SweepOptions {
        slices: None,
        jobs: Some(1),
        disk_cache: Some(cache.clone()),
        checkpoints: None,
    });
    let cold = stats_bytes(&cold_sweep, &plan, &out_cold);
    assert!(cold_sweep.stats().simulated > 0, "cold run must simulate");

    // Warm: a fresh engine on the same cache resolves every point from
    // disk and must emit the same bytes.
    let out_warm = unique_dir("out-warm");
    let warm_sweep = Sweep::new(SweepOptions {
        slices: None,
        jobs: Some(1),
        disk_cache: Some(cache.clone()),
        checkpoints: None,
    });
    let warm = stats_bytes(&warm_sweep, &plan, &out_warm);
    let warm_stats = warm_sweep.stats();
    assert_eq!(warm_stats.simulated, 0, "warm run must be all disk hits");
    assert!(warm_stats.disk_hits > 0, "{warm_stats:?}");
    assert_eq!(warm, cold, "warm-cache stats JSON must be byte-identical");

    // Killed-then-resumed: plant a mid-run crash checkpoint for one of
    // the points (as if a previous process died there), then evaluate
    // on a fresh cache with checkpointing enabled. The resumed
    // simulation must reproduce the cold bytes exactly.
    let ckpt_cache = unique_dir("ckpt-cache");
    let policy = CheckpointPolicy {
        dir: ckpt_cache.clone(),
        every_cycles: 50_000,
    };
    let fig = LocalFig;
    let point = fig.points().into_iter().next().expect("at least one point");
    let workload = ehs_workloads::by_name(point.workload).unwrap();
    let program = workload.program();
    let mut machine = Machine::with_trace(point.config.clone(), &program, point.trace.synthesize());
    assert!(
        matches!(machine.run_until(40_000).unwrap(), RunStatus::Paused),
        "the workload must still be mid-flight at the planted checkpoint"
    );
    write_checkpoint(&policy.path_for(point.key()), &machine.snapshot(&program));

    let out_resumed = unique_dir("out-resumed");
    let resumed_sweep = Sweep::new(SweepOptions {
        slices: None,
        jobs: Some(1),
        disk_cache: Some(ckpt_cache.clone()),
        checkpoints: Some(policy),
    });
    let resumed = stats_bytes(&resumed_sweep, &plan, &out_resumed);
    let resumed_stats = resumed_sweep.stats();
    assert_eq!(resumed_stats.resumed, 1, "{resumed_stats:?}");
    assert_eq!(
        resumed, cold,
        "killed-then-resumed stats JSON must be byte-identical"
    );

    for dir in [cache, ckpt_cache, out_cold, out_warm, out_resumed] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
