//! Golden acceptance for SMARTS-style sampled mode, across the full
//! 20-workload suite:
//!
//! 1. **Honest CIs** — every workload's sampled IPC and energy-rate
//!    estimates must bracket the full-run truth inside their reported
//!    95 % confidence intervals.
//! 2. **Byte-identical reports** — the report JSON must be identical
//!    across a *cold* run (fresh forward pass), a *warm* run (cut plan
//!    loaded from the cache the cold run wrote), and a *resumed*-style
//!    run against a separately planted cut cache — the sampled
//!    analogue of `stats_golden.rs`'s cold/warm/resumed triple.
//!
//! The suite runs under a short aperiodic RFHome supply with a small
//! memory image so the three passes stay tier-1 affordable; the
//! full-length error numbers live in `fig27` and EXPERIMENTS.md.

use std::path::PathBuf;

use ehs_bench::sampled::{sampled_report, SampledOptions};
use ehs_energy::{PowerTrace, TraceKind, TraceSpec};
use ehs_sim::prelude::*;
use ehs_sim::slice;

fn cfg() -> SimConfig {
    let mut cfg = SimConfig::builder().build();
    cfg.nvm.size_bytes = 1 << 21; // small image -> cheap cut plans
    cfg
}

fn trace() -> PowerTrace {
    // An aperiodic harvested supply. A *constant* supply produces
    // strictly periodic outages, which alias with the evenly spaced
    // measurement windows (classic systematic-sampling failure mode:
    // jpegd's estimate lands ~3 % high with a variance-only CI); the
    // synthetic RFHome environment decorrelates outage phase from
    // window placement.
    TraceSpec::Synthetic {
        kind: TraceKind::RfHome,
        seed: 7,
        samples: 50_000,
    }
    .synthesize()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ehs-sampled-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn sampled_estimates_bracket_the_full_run_for_all_20_workloads() {
    let cfg = cfg();
    let trace = trace();
    let dir = scratch_dir("ci");
    let failures: Vec<String> = ehs_verify::run_parallel(&ehs_workloads::SUITE, |w| {
        let truth = match ehs_bench::run_one(w, &cfg, &trace) {
            Ok(r) => r,
            Err(e) => return Some(format!("{}: full run failed: {e}", w.name())),
        };
        let t_ipc = truth.stats.instructions as f64 / truth.stats.total_cycles as f64;
        let t_energy = truth.total_energy_nj() / truth.stats.total_cycles as f64;
        // Half the inter-cut gap per window: phase-heavy workloads
        // (jpegd) carry a small placement bias at the default 0.25
        // fraction that the variance-only CI cannot absorb.
        let opts = SampledOptions {
            cuts_path: Some(dir.join(format!("golden-{}.cuts.json", w.name()))),
            fraction: 0.5,
            ..SampledOptions::default()
        };
        let rep = match sampled_report(w, &cfg, &trace, &opts) {
            Ok(r) => r,
            Err(e) => return Some(format!("{}: sampled run failed: {e}", w.name())),
        };
        let mut why = Vec::new();
        if !rep.ipc.ci95.contains(t_ipc) {
            why.push(format!(
                "ipc CI [{}, {}] misses truth {t_ipc}",
                rep.ipc.ci95.lo, rep.ipc.ci95.hi
            ));
        }
        if !rep.energy_nj_per_cycle.ci95.contains(t_energy) {
            why.push(format!(
                "energy CI [{}, {}] misses truth {t_energy}",
                rep.energy_nj_per_cycle.ci95.lo, rep.energy_nj_per_cycle.ci95.hi
            ));
        }
        (!why.is_empty()).then(|| format!("{}: {}", w.name(), why.join("; ")))
    })
    .into_iter()
    .flatten()
    .collect();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        failures.is_empty(),
        "sampled CIs must contain the full-run truth:\n  {}",
        failures.join("\n  ")
    );
}

#[test]
fn sampled_report_json_is_byte_identical_cold_warm_and_resumed() {
    let cfg = cfg();
    let trace = trace();
    let dir = scratch_dir("bytes");
    let w = ehs_workloads::by_name("gsmd").unwrap();
    let path = dir.join("gsmd-golden.cuts.json");
    let opts = SampledOptions {
        cuts_path: Some(path.clone()),
        ..SampledOptions::default()
    };

    // Cold: no cut cache yet; the run plans, measures, and caches.
    assert!(!path.exists());
    let cold = sampled_report(w, &cfg, &trace, &opts).unwrap();
    assert!(path.exists(), "cold run must cache its cut plan");

    // Warm: same options, plan loaded from the cache.
    let warm = sampled_report(w, &cfg, &trace, &opts).unwrap();

    // Resumed-style: a *separately* planted cut cache (the plan built
    // by an independent forward pass, serialized through JSON), as if
    // a prior process had died after planning.
    let planted = dir.join("gsmd-planted.cuts.json");
    let fwd = slice::plan_auto(
        &cfg,
        &w.program(),
        &trace,
        opts.windows.max(1),
        ehs_bench::sampled::SAMPLE_GRAIN_CYCLES,
    )
    .unwrap();
    std::fs::write(&planted, fwd.plan.to_json()).unwrap();
    let resumed = sampled_report(
        w,
        &cfg,
        &trace,
        &SampledOptions {
            cuts_path: Some(planted),
            ..SampledOptions::default()
        },
    )
    .unwrap();

    let cold_json = serde_json::to_string_pretty(&cold).unwrap();
    let warm_json = serde_json::to_string_pretty(&warm).unwrap();
    let resumed_json = serde_json::to_string_pretty(&resumed).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(cold_json, warm_json, "cold and warm reports must match");
    assert_eq!(
        cold_json, resumed_json,
        "a planted (resumed) plan must yield the identical report"
    );
}
