//! Property tests for the Monte Carlo statistics accumulator: arbitrary
//! partitions of a sample set, merged in arbitrary orders, must reduce
//! to **bit-identical** summaries — the invariant that lets the sweep
//! service shard seed batches across workers and processes while the
//! published figure JSON stays byte-stable.

use ehs_bench::stats::{Accumulator, Summary};
use proptest::prelude::*;

/// Every float of a summary as raw bits, so equality is exact.
fn bits(s: &Summary) -> Vec<u64> {
    let mut v = vec![
        s.n,
        s.mean.to_bits(),
        s.sd.to_bits(),
        s.min.to_bits(),
        s.max.to_bits(),
        s.ci95_t.lo.to_bits(),
        s.ci95_t.hi.to_bits(),
        s.ci95_bootstrap.lo.to_bits(),
        s.ci95_bootstrap.hi.to_bits(),
    ];
    match (s.gmean, s.gmean_ci95_t) {
        (Some(g), Some(ci)) => v.extend([1, g.to_bits(), ci.lo.to_bits(), ci.hi.to_bits()]),
        _ => v.push(0),
    }
    v
}

proptest! {
    /// Split the tagged samples into up to four parts by a generated
    /// assignment, build an accumulator per part, and merge the parts
    /// in several different orders (flat and tree-shaped). All of them
    /// — and the unpartitioned whole, and a reversed-insertion copy —
    /// must summarise to the same bits.
    #[test]
    fn partitions_merge_to_identical_bits(
        data in proptest::collection::vec((-10.0f64..10.0, 0usize..4), 2..40),
    ) {
        let pairs: Vec<(u64, f64)> = data
            .iter()
            .enumerate()
            .map(|(i, (v, _))| (i as u64, *v))
            .collect();

        let whole = Accumulator::from_pairs(pairs.iter().copied());

        // Insertion order must not matter.
        let reversed = Accumulator::from_pairs(pairs.iter().rev().copied());
        prop_assert_eq!(&reversed, &whole);

        // Partition by the generated assignment.
        let mut parts: Vec<Accumulator> = (0..4).map(|_| Accumulator::new()).collect();
        for (i, (v, part)) in data.iter().enumerate() {
            parts[*part].push(i as u64, *v);
        }

        // Flat merges in two different orders.
        let mut forward = Accumulator::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = Accumulator::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }

        // Tree-shaped merge: (0 ∪ 1) ∪ (2 ∪ 3).
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        let mut right = parts[2].clone();
        right.merge(&parts[3]);
        let mut tree = left;
        tree.merge(&right);

        // Overlapping re-merge (idempotent: duplicate tags carry
        // identical bits).
        let mut overlapped = forward.clone();
        overlapped.merge(&whole);

        let expect = bits(&whole.summary());
        prop_assert_eq!(&bits(&forward.summary()), &expect);
        prop_assert_eq!(&bits(&backward.summary()), &expect);
        prop_assert_eq!(&bits(&tree.summary()), &expect);
        prop_assert_eq!(&bits(&overlapped.summary()), &expect);
        prop_assert_eq!(&bits(&reversed.summary()), &expect);
    }

    /// The JSON a summary serialises to — what figure files are made of
    /// — is likewise identical across partitionings.
    #[test]
    fn summary_json_is_partition_invariant(
        data in proptest::collection::vec((0.5f64..2.0, 0usize..3), 2..24),
    ) {
        let whole = Accumulator::from_pairs(
            data.iter().enumerate().map(|(i, (v, _))| (i as u64, *v)),
        );
        let mut parts: Vec<Accumulator> = (0..3).map(|_| Accumulator::new()).collect();
        for (i, (v, part)) in data.iter().enumerate() {
            parts[*part].push(i as u64, *v);
        }
        let mut merged = Accumulator::new();
        for p in parts.iter().rev() {
            merged.merge(p);
        }
        let a = serde_json::to_string(&whole.summary()).unwrap();
        let b = serde_json::to_string(&merged.summary()).unwrap();
        prop_assert_eq!(a, b);
    }
}
