//! Interrupted-sweep resume: a `paper`-style run killed mid-flight must
//! restart from its crash checkpoints and publish byte-identical
//! results.
//!
//! The scenario mirrors `paper --no-cache --checkpoint-every N`: no
//! on-disk result cache (every point re-simulates), but in-flight
//! machines checkpoint periodically. The test runs a small point set
//! cold, then "interrupts" a second run by executing each point partway
//! and leaving its checkpoint behind, and finally lets a fresh engine
//! finish the job. The resumed engine must produce a byte-identical
//! results file, report every point as resumed, and simulate strictly
//! fewer cycles than the cold run.

use std::path::Path;

use ehs_bench::{
    write_checkpoint, write_results_to, CheckpointPolicy, SimPoint, Sweep, SweepOptions,
};
use ehs_sim::prelude::*;

fn points() -> Vec<SimPoint> {
    let trace = TraceSpec::Constant {
        power_mw: 50.0,
        samples: 8,
    };
    vec![
        SimPoint::new("gsmd", SimConfig::builder().build(), trace.clone()),
        SimPoint::new(
            "gsmd",
            SimConfig::builder().ipex(Ipex::Both).build(),
            trace.clone(),
        ),
        SimPoint::new("strings", SimConfig::builder().build(), trace),
    ]
}

/// Resolves the point set through `sweep` and writes the figure-style
/// results JSON, returning the file's bytes.
fn run_and_publish(sweep: &Sweep, dir: &Path) -> Vec<u8> {
    let results: Vec<SimResult> = sweep
        .request(points())
        .wait()
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("every point completes");
    write_results_to(dir, "sweep_resume", &results);
    std::fs::read(dir.join("sweep_resume.json")).expect("results file written")
}

#[test]
fn interrupted_sweep_resumes_with_byte_identical_results() {
    let tmp = std::env::temp_dir().join(format!("ehs-sweep-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let policy = CheckpointPolicy {
        dir: tmp.join("ckpt"),
        every_cycles: 25_000,
    };
    let opts = || SweepOptions {
        slices: None,
        jobs: Some(2),
        disk_cache: None, // the `--no-cache` shape: results never persist
        checkpoints: Some(policy.clone()),
    };

    // Cold reference run.
    let cold_sweep = Sweep::new(opts());
    let cold_bytes = run_and_publish(&cold_sweep, &tmp.join("cold"));
    let cold_stats = cold_sweep.stats();
    assert_eq!(cold_stats.resumed, 0, "{cold_stats:?}");

    // "Interrupt" a second run: execute every point partway by hand and
    // leave the checkpoints a killed engine would have left.
    for point in points() {
        let workload = ehs_workloads::by_name(point.workload).unwrap();
        let program = workload.program();
        let trace = point.trace.synthesize();
        let mut m = Machine::with_trace(point.config.clone(), &program, trace);
        assert!(matches!(
            m.run_until(40_000).expect("partial run"),
            RunStatus::Paused
        ));
        write_checkpoint(&policy.path_for(point.key()), &m.snapshot(&program));
    }

    // Restarted run: must resume every point and publish the same bytes.
    let warm_sweep = Sweep::new(opts());
    let warm_bytes = run_and_publish(&warm_sweep, &tmp.join("warm"));
    let warm_stats = warm_sweep.stats();
    assert_eq!(
        warm_bytes, cold_bytes,
        "resumed run published different results"
    );
    assert_eq!(warm_stats.resumed, 3, "{warm_stats:?}");
    assert!(
        warm_stats.cycles_simulated < cold_stats.cycles_simulated,
        "resume repaid {} cycles, cold run took {}",
        warm_stats.cycles_simulated,
        cold_stats.cycles_simulated
    );
    for point in points() {
        assert!(
            !policy.path_for(point.key()).exists(),
            "checkpoint for {} not cleaned up",
            point.key()
        );
    }
    let _ = std::fs::remove_dir_all(&tmp);
}
