//! Parallel sliced execution of sweep points, with a persistent cut
//! cache.
//!
//! [`ehs_sim::slice`] provides the mechanism (forward pass, slice
//! replay, digest-chain stitching); this module provides the policy the
//! harness needs:
//!
//! * **Cold** (no cached plan): run the forward pass to build the plan,
//!   persist it next to the point's result cache entry
//!   (`<key>.cuts<K>.json`), then fan the slices out across a bounded
//!   worker pool and *assert* the stitched result and state digest
//!   equal the forward pass's. A cold sliced run therefore simulates
//!   everything twice — it cannot be faster than a monolithic run, and
//!   is instead a continuously self-verifying one: any nondeterminism
//!   in the simulator breaks the digest chain and panics, loudly.
//! * **Warm** (plan cached): skip the forward pass entirely; the K
//!   slices are K independent jobs of ~1/K the cycles each, so
//!   re-running a long point costs ~1/K wall-clock on K cores. The
//!   stitched digest chain still proves the result is exactly what the
//!   forward pass would have produced.
//!
//! A stale or corrupt cached plan (changed config semantics, truncated
//! file, old snapshot version) is detected — by the plan validator, by
//! [`Machine::resume`]'s identity digests, or by the stitching check —
//! and silently discarded in favour of a cold run, mirroring how the
//! crash-checkpoint loader treats stale snapshots.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use ehs_energy::PowerTrace;
use ehs_isa::Program;
use ehs_sim::canon;
use ehs_sim::prelude::*;
use ehs_sim::slice::{self, SliceError, SliceOutcome, SlicePlan, Stitched};
use ehs_workloads::Workload;

use crate::sweep::PointKey;

/// Initial snapshot spacing for the adaptive forward pass. Small enough
/// that even the shortest suite workloads split into several slices;
/// the thinning reservoir doubles it as longer runs accumulate cuts.
pub const CUT_GRAIN_CYCLES: u64 = 50_000;

/// The cut-cache file for a point sliced K ways (kept apart from the
/// result cache's `<key>.json` and the crash checkpoints'
/// `<key>.ckpt.json`; K is part of the name because plans with
/// different slice budgets are different artefacts).
pub fn cuts_path(dir: &Path, key: PointKey, slices: usize) -> PathBuf {
    dir.join(format!("{key}.cuts{slices}.json"))
}

/// How to run a point sliced.
#[derive(Debug, Clone)]
pub struct SliceRunOptions {
    /// Maximum number of slices (the plan may hold fewer for short
    /// runs; clamped to at least 1).
    pub slices: usize,
    /// Worker threads for the slice fan-out (clamped to at least 1).
    pub jobs: usize,
    /// Where to persist/load the cut plan; `None` disables the cache
    /// (every run is cold).
    pub cuts_path: Option<PathBuf>,
}

/// What a sliced run produced, beyond the result itself.
#[derive(Debug, Clone)]
pub struct SliceRun {
    /// The final result — bit-identical to a monolithic run's.
    pub result: SimResult,
    /// Final machine state digest (`Machine::state_digest`).
    pub state_digest: u64,
    /// Slices actually executed (≤ the requested budget).
    pub slices: usize,
    /// Whether the plan came from the cut cache (warm) or a fresh
    /// forward pass (cold).
    pub cuts_cached: bool,
    /// Cycles simulated in-process: the whole run once per slice pass,
    /// plus the forward pass again when cold.
    pub cycles_simulated: u64,
}

/// Runs one point sliced; see the module docs for the cold/warm policy.
///
/// # Errors
///
/// [`SimError`] when the underlying simulation fails (cycle budget,
/// program fault) — exactly the errors a monolithic run can produce.
///
/// # Panics
///
/// Panics if the freshly planned digest chain does not stitch — that is
/// a simulator-determinism bug, not a recoverable condition.
pub fn run_one_sliced(
    workload: &Workload,
    cfg: &SimConfig,
    trace: &PowerTrace,
    opts: &SliceRunOptions,
) -> Result<SliceRun, SimError> {
    let program = workload.program();
    let slices = opts.slices.max(1);

    // Warm path: a cached plan skips the forward pass.
    if let Some(path) = &opts.cuts_path {
        if let Some(plan) = load_plan(path, cfg) {
            match run_plan_parallel(&plan, &program, trace, opts.jobs) {
                Ok(stitched) => {
                    let cycles = stitched.result.stats.total_cycles;
                    return Ok(SliceRun {
                        result: stitched.result,
                        state_digest: stitched.state_digest,
                        slices: plan.len(),
                        cuts_cached: true,
                        cycles_simulated: cycles,
                    });
                }
                Err(SliceError::Sim(e)) => return Err(e),
                Err(_) => {
                    // Stale plan (old snapshot version, semantic drift
                    // behind an unchanged salt, hand-copied file):
                    // discard and fall through to a cold run.
                    let _ = std::fs::remove_file(path);
                }
            }
        }
    }

    // Cold path: forward pass plans the cuts and computes the truth...
    let fwd = match slice::plan_auto(cfg, &program, trace, slices, CUT_GRAIN_CYCLES) {
        Ok(f) => f,
        Err(SliceError::Sim(e)) => return Err(e),
        Err(e) => panic!("slice forward pass failed structurally: {e}"),
    };
    if let Some(path) = &opts.cuts_path {
        store_plan(path, &fwd.plan);
    }
    // ...and the fan-out must land on it exactly.
    let stitched = match run_plan_parallel(&fwd.plan, &program, trace, opts.jobs) {
        Ok(s) => s,
        Err(SliceError::Sim(e)) => return Err(e),
        Err(e) => panic!("slice equivalence violated on a fresh plan: {e}"),
    };
    assert_eq!(
        stitched.state_digest, fwd.final_digest,
        "sliced run's final state diverged from the forward pass"
    );
    assert_eq!(
        stitched.result, fwd.result,
        "sliced run's result diverged from the forward pass"
    );
    let total = fwd.result.stats.total_cycles;
    Ok(SliceRun {
        result: stitched.result,
        state_digest: stitched.state_digest,
        slices: fwd.plan.len(),
        cuts_cached: false,
        cycles_simulated: total.saturating_mul(2),
    })
}

/// Executes every slice of a plan on a bounded worker pool and
/// stitches. Slice order is irrelevant (each resumes its own entry
/// snapshot), so workers pull indices from a shared counter.
///
/// # Errors
///
/// Any error [`ehs_sim::slice::run_slice`] or
/// [`ehs_sim::slice::stitch`] can produce.
pub fn run_plan_parallel(
    plan: &SlicePlan,
    program: &Program,
    trace: &PowerTrace,
    jobs: usize,
) -> Result<Stitched, SliceError> {
    plan.validate()?;
    let n = plan.len();
    let workers = jobs.max(1).min(n);
    let mut outcomes: Vec<Option<SliceOutcome>> = vec![None; n];
    if workers <= 1 {
        for (i, slot) in outcomes.iter_mut().enumerate() {
            *slot = Some(slice::run_slice(plan, i, program, trace)?);
        }
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<SliceOutcome, SliceError>)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let (next, tx) = (&next, tx.clone());
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if tx
                        .send((i, slice::run_slice(plan, i, program, trace)))
                        .is_err()
                    {
                        break;
                    }
                });
            }
        });
        drop(tx);
        for (i, outcome) in rx {
            outcomes[i] = Some(outcome?);
        }
    }
    let outcomes: Vec<SliceOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every slice index was dispatched"))
        .collect();
    slice::stitch(plan, &outcomes)
}

/// Loads a cached plan, rejecting files whose structure or
/// configuration does not match (identity digests inside each entry
/// are still enforced by `Machine::resume` at slice time).
pub(crate) fn load_plan(path: &Path, cfg: &SimConfig) -> Option<SlicePlan> {
    let text = std::fs::read_to_string(path).ok()?;
    let plan = SlicePlan::from_json(&text).ok()?;
    let matches = canon::canonical_json(&plan.entries[0].cfg) == canon::canonical_json(cfg);
    matches.then_some(plan)
}

/// Persists a plan write-then-rename (best-effort, like the result
/// cache: a full disk loses the cache, not the run).
pub(crate) fn store_plan(path: &Path, plan: &SlicePlan) {
    let Some(dir) = path.parent() else { return };
    if !dir.as_os_str().is_empty() && std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let tmp = path.with_extension("json.tmp");
    if std::fs::write(&tmp, plan.to_json()).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SimPoint;

    fn point() -> SimPoint {
        let mut cfg = SimConfig::builder().build();
        cfg.nvm.size_bytes = 1 << 21;
        SimPoint::new(
            "gsmd",
            cfg,
            TraceSpec::Constant {
                power_mw: 30.0,
                samples: 16,
            },
        )
    }

    fn unique_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ehs-slice-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn cold_then_warm_sliced_runs_match_the_monolith() {
        let dir = unique_dir("coldwarm");
        let _ = std::fs::remove_dir_all(&dir);
        let p = point();
        let workload = ehs_workloads::by_name(p.workload).unwrap();
        let trace = p.trace.synthesize();

        let (mono, mono_digest) = {
            let program = workload.program();
            let mut m = Machine::with_trace(p.config.clone(), &program, trace.clone());
            let r = m.run().unwrap();
            let d = m.state_digest(&program);
            (r, d)
        };

        let opts = SliceRunOptions {
            slices: 4,
            jobs: 2,
            cuts_path: Some(cuts_path(&dir, p.key(), 4)),
        };
        let cold = run_one_sliced(workload, &p.config, &trace, &opts).unwrap();
        assert!(!cold.cuts_cached);
        assert_eq!(cold.result, mono);
        assert_eq!(cold.state_digest, mono_digest);
        assert!(cold.slices >= 2, "gsmd must split at this grain");

        let warm = run_one_sliced(workload, &p.config, &trace, &opts).unwrap();
        assert!(warm.cuts_cached, "second run must reuse the cut cache");
        assert_eq!(warm.result, mono);
        assert_eq!(warm.state_digest, mono_digest);
        assert!(
            warm.cycles_simulated < cold.cycles_simulated,
            "warm skips the forward pass"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cut_cache_falls_back_to_a_cold_run() {
        let dir = unique_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p = point();
        let workload = ehs_workloads::by_name(p.workload).unwrap();
        let trace = p.trace.synthesize();
        let path = cuts_path(&dir, p.key(), 3);
        std::fs::write(&path, "{ not a plan").unwrap();

        let opts = SliceRunOptions {
            slices: 3,
            jobs: 1,
            cuts_path: Some(path.clone()),
        };
        let run = run_one_sliced(workload, &p.config, &trace, &opts).unwrap();
        assert!(!run.cuts_cached, "corrupt plan must not count as warm");
        let replaced = std::fs::read_to_string(&path).unwrap();
        assert!(
            SlicePlan::from_json(&replaced).is_ok(),
            "cold run must repair the cache"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sim_errors_pass_through_unchanged() {
        let p = point();
        let workload = ehs_workloads::by_name(p.workload).unwrap();
        let trace = p.trace.synthesize();
        let mut cfg = p.config.clone();
        cfg.max_cycles = 10_000;
        let opts = SliceRunOptions {
            slices: 4,
            jobs: 1,
            cuts_path: None,
        };
        let err = run_one_sliced(workload, &cfg, &trace, &opts).unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { .. }));
    }
}
