//! The sweep service: a long-running daemon owning the result cache.
//!
//! `ehs-serve` wraps one [`Sweep`] engine behind a Unix-domain socket so
//! any number of client processes — figure renderers, Monte Carlo
//! drivers, CI smoke jobs — can share a single exactly-once simulation
//! pool and one `results/.cache` without racing each other.
//!
//! ## Protocol
//!
//! Frames are a little-endian `u32` byte length followed by that many
//! bytes of JSON — one [`Request`] per client frame, one [`Response`]
//! per server frame. A `Batch` (or its seed-expanding shorthand
//! `SeedSweep`) is answered by a stream of `Point` frames, one per
//! requested point **in completion order** (each carries its request
//! index), terminated by a single `Done` frame carrying the server's
//! cumulative [`SweepStats`]. `Ping`, `Stats`, and `Shutdown` get
//! single-frame answers. A malformed request gets an `Error` frame and
//! the connection stays usable.
//!
//! Concurrent batches — on one connection or many — are sharded across
//! a server-wide worker pool and deduplicated by the engine's in-flight
//! memo: overlapping points are simulated once and every requester gets
//! the same bytes back.
//!
//! Workloads cross the wire by name ([`WirePoint`]), because a
//! [`SimPoint`] holds a `&'static str` into the suite registry; the
//! server resolves names on receipt and rejects unknown ones before
//! starting any work of the batch.

use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ehs_energy::TraceSpec;
use ehs_sim::prelude::*;
use serde::{Deserialize, Serialize};

use crate::sweep::{SimPoint, Sweep, SweepStats};

/// Upper bound on a single frame's payload; anything larger is a
/// protocol violation (a full suite batch is a few hundred kB).
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// How long blocking reads wait before re-checking the shutdown flag,
/// and how long the accept loop sleeps when idle.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// A [`SimPoint`] in wire form: the workload crosses as its name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WirePoint {
    /// Workload name (must exist in [`ehs_workloads::SUITE`]).
    pub workload: String,
    /// Full machine configuration.
    pub config: SimConfig,
    /// Identity of the input power.
    pub trace: TraceSpec,
}

impl WirePoint {
    /// Wire form of an in-process point.
    pub fn from_point(p: &SimPoint) -> WirePoint {
        WirePoint {
            workload: p.workload.to_owned(),
            config: p.config.clone(),
            trace: p.trace.clone(),
        }
    }

    /// Resolves the workload name against the suite registry.
    pub fn resolve(&self) -> Result<SimPoint, String> {
        match ehs_workloads::by_name(&self.workload) {
            Some(w) => Ok(SimPoint::new(
                w.name(),
                self.config.clone(),
                self.trace.clone(),
            )),
            None => Err(format!("unknown workload `{}`", self.workload)),
        }
    }
}

/// One client frame.
///
/// Wire enums are serialized the moment they are built and never held
/// in bulk, so the variant-size skew clippy flags has no cost here.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe; answered by `Pong`.
    Ping,
    /// Simulate these points; answered by streamed `Point` frames (in
    /// completion order, carrying request indices) then one `Done`.
    Batch { points: Vec<WirePoint> },
    /// [`Request::Batch`] shorthand for a Monte Carlo run: one
    /// `(workload, config, trace)` expanded into `count` seed-varied
    /// points (seeds `seed_base..seed_base+count`, via
    /// [`TraceSpec::with_seed`]).
    SeedSweep {
        workload: String,
        config: SimConfig,
        trace: TraceSpec,
        seed_base: u64,
        count: u64,
    },
    /// The server's cumulative engine counters; answered by `Stats`.
    Stats,
    /// Stop accepting connections and exit once in-flight work drains;
    /// answered by `ShuttingDown`.
    Shutdown,
}

/// The wire form of one point's simulation outcome.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Outcome {
    /// The simulation completed.
    Ok { result: SimResult },
    /// The simulation failed (cycle budget, program fault); the message
    /// is the rendered [`SimError`].
    Err { message: String },
}

/// One server frame.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Answer to `Ping`.
    Pong,
    /// One resolved point of a batch; `index` is its position in the
    /// request (after seed expansion, for `SeedSweep`).
    Point { index: u64, outcome: Outcome },
    /// A batch finished: all `total` points have been streamed. Carries
    /// the server's cumulative stats at completion time.
    Done { total: u64, stats: SweepStats },
    /// Answer to `Stats`.
    Stats { stats: SweepStats },
    /// Answer to `Shutdown`.
    ShuttingDown,
    /// The request could not be started (malformed frame, unknown
    /// workload); no `Point`/`Done` frames follow.
    Error { message: String },
}

/// Writes one length-prefixed JSON frame.
fn write_frame<T: Serialize>(w: &mut impl Write, msg: &T) -> io::Result<()> {
    let json = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let bytes = json.as_bytes();
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads exactly `buf.len()` bytes, tolerating read-timeout wakeups
/// (used to poll the shutdown flag). Returns `Ok(false)` on a clean EOF
/// before the first byte; EOF mid-buffer is an error.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    interrupted: impl Fn() -> bool,
) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        if interrupted() {
            return Ok(false);
        }
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one frame's JSON text; `Ok(None)` on clean EOF or interrupt.
fn read_frame_text(
    r: &mut impl Read,
    interrupted: impl Fn() -> bool,
) -> io::Result<Option<String>> {
    let mut header = [0u8; 4];
    if !read_full(r, &mut header, &interrupted)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_full(r, &mut payload, &interrupted)? {
        return Ok(None);
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// One unit of batch work for the shared worker pool.
struct Job {
    point: SimPoint,
    index: u64,
    total: u64,
    /// Points of this batch still unfinished; the worker that drops it
    /// to zero streams the `Done` frame.
    remaining: Arc<AtomicU64>,
    conn: Arc<ConnWriter>,
}

/// The write side of one connection, shared by the reader thread and
/// every worker streaming results to it. Write failures are recorded
/// but not fatal: a client that hung up forfeits its answers while the
/// simulations (shared with everyone else via the engine memo) finish.
struct ConnWriter {
    stream: Mutex<UnixStream>,
}

impl ConnWriter {
    fn send(&self, resp: &Response) {
        let mut stream = self.stream.lock().expect("connection writer poisoned");
        let _ = write_frame(&mut *stream, resp);
    }
}

/// A running sweep service bound to a Unix socket.
///
/// Dropping the handle does not stop the server; call
/// [`Server::join`] after a client sent `Shutdown` (or use
/// [`Server::trigger_shutdown`] in-process).
pub struct Server {
    path: PathBuf,
    shutdown: Arc<AtomicBool>,
    accept_thread: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `path` (replacing a stale socket file) and starts the
    /// accept loop plus `sweep.jobs()` shared workers.
    pub fn spawn(path: impl AsRef<Path>, sweep: Arc<Sweep>) -> io::Result<Server> {
        let path = path.as_ref().to_path_buf();
        if path.exists() {
            std::fs::remove_file(&path)?;
        }
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..sweep.jobs())
            .map(|_| {
                let (rx, sweep) = (Arc::clone(&rx), Arc::clone(&sweep));
                std::thread::spawn(move || worker_loop(&rx, &sweep))
            })
            .collect();

        let accept_thread = {
            let (shutdown, sweep) = (Arc::clone(&shutdown), Arc::clone(&sweep));
            std::thread::spawn(move || accept_loop(&listener, tx, &sweep, &shutdown))
        };

        Ok(Server {
            path,
            shutdown,
            accept_thread,
            workers,
        })
    }

    /// The socket path the server is listening on.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Requests shutdown from inside the process (equivalent to a
    /// client's `Shutdown` frame).
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the server has fully stopped: the accept loop
    /// exited, every connection drained, every worker finished. Removes
    /// the socket file.
    pub fn join(self) {
        let _ = self.accept_thread.join();
        for w in self.workers {
            let _ = w.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Accepts connections until shutdown, then joins every connection
/// reader (whose exit drops the last job senders, draining the pool).
fn accept_loop(
    listener: &UnixListener,
    tx: Sender<Job>,
    sweep: &Arc<Sweep>,
    shutdown: &Arc<AtomicBool>,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let (tx, sweep, shutdown) = (tx.clone(), Arc::clone(sweep), Arc::clone(shutdown));
                conns.push(std::thread::spawn(move || {
                    serve_connection(stream, &tx, &sweep, &shutdown);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL_INTERVAL),
            Err(_) => break,
        }
        // Reap finished connections so a long-lived server does not
        // accumulate dead handles.
        conns.retain(|h| !h.is_finished());
    }
    drop(tx);
    for h in conns {
        let _ = h.join();
    }
}

/// Serves one connection: reads requests until EOF or shutdown,
/// answering control frames inline and handing batch points to the
/// shared pool.
fn serve_connection(
    stream: UnixStream,
    tx: &Sender<Job>,
    sweep: &Arc<Sweep>,
    shutdown: &Arc<AtomicBool>,
) {
    // Short read timeouts let the reader notice the shutdown flag even
    // while a client keeps the connection open but idle.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(ConnWriter {
        stream: Mutex::new(write_half),
    });
    let mut read_half = stream;
    loop {
        let text = match read_frame_text(&mut read_half, || shutdown.load(Ordering::SeqCst)) {
            Ok(Some(text)) => text,
            Ok(None) => return, // clean EOF or shutting down
            Err(_) => return,
        };
        let request: Request = match serde_json::from_str(&text) {
            Ok(r) => r,
            Err(e) => {
                conn.send(&Response::Error {
                    message: format!("malformed request: {e}"),
                });
                continue;
            }
        };
        match request {
            Request::Ping => conn.send(&Response::Pong),
            Request::Stats => conn.send(&Response::Stats {
                stats: sweep.stats(),
            }),
            Request::Shutdown => {
                conn.send(&Response::ShuttingDown);
                shutdown.store(true, Ordering::SeqCst);
                return;
            }
            Request::Batch { points } => enqueue_batch(points, tx, sweep, &conn),
            Request::SeedSweep {
                workload,
                config,
                trace,
                seed_base,
                count,
            } => {
                let points = (0..count)
                    .map(|i| WirePoint {
                        workload: workload.clone(),
                        config: config.clone(),
                        trace: trace.with_seed(seed_base.wrapping_add(i)),
                    })
                    .collect();
                enqueue_batch(points, tx, sweep, &conn);
            }
        }
    }
}

/// Validates a batch and hands its points to the worker pool. Rejection
/// (unknown workload) happens before any point starts, so an `Error`
/// frame is never followed by partial results.
fn enqueue_batch(
    points: Vec<WirePoint>,
    tx: &Sender<Job>,
    sweep: &Arc<Sweep>,
    conn: &Arc<ConnWriter>,
) {
    let resolved: Result<Vec<SimPoint>, String> = points.iter().map(WirePoint::resolve).collect();
    let resolved = match resolved {
        Ok(r) => r,
        Err(message) => {
            conn.send(&Response::Error { message });
            return;
        }
    };
    let total = resolved.len() as u64;
    if total == 0 {
        conn.send(&Response::Done {
            total: 0,
            stats: sweep.stats(),
        });
        return;
    }
    let remaining = Arc::new(AtomicU64::new(total));
    for (index, point) in resolved.into_iter().enumerate() {
        let job = Job {
            point,
            index: index as u64,
            total,
            remaining: Arc::clone(&remaining),
            conn: Arc::clone(conn),
        };
        if tx.send(job).is_err() {
            // Pool already drained (server shutting down).
            conn.send(&Response::Error {
                message: "server is shutting down".to_owned(),
            });
            return;
        }
    }
}

/// One shared worker: pulls jobs until every sender is gone, resolves
/// each through the engine (memoized, in-flight-deduplicated), streams
/// the result, and emits `Done` when its batch empties.
fn worker_loop(rx: &Mutex<Receiver<Job>>, sweep: &Sweep) {
    loop {
        let job = match rx.lock().expect("job queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        // Through `request` (not `get`) so the engine's `requested`
        // counter accounts every client point.
        let resolved = sweep
            .request(vec![job.point.clone()])
            .wait()
            .pop()
            .expect("one result per requested point");
        let outcome = match resolved {
            Ok(result) => Outcome::Ok { result },
            Err(e) => Outcome::Err {
                message: e.to_string(),
            },
        };
        job.conn.send(&Response::Point {
            index: job.index,
            outcome,
        });
        if job.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            job.conn.send(&Response::Done {
                total: job.total,
                stats: sweep.stats(),
            });
        }
    }
}

/// A fully streamed batch: outcomes in request order plus the server's
/// cumulative stats at completion.
#[derive(Debug)]
pub struct BatchReply {
    /// One outcome per requested point, in request order.
    pub outcomes: Vec<Outcome>,
    /// Server engine counters when the batch finished.
    pub stats: SweepStats,
}

impl BatchReply {
    /// Unwraps every outcome, panicking on any simulation error — for
    /// callers whose batches must succeed (figures, tests).
    pub fn results(&self) -> Vec<SimResult> {
        self.outcomes
            .iter()
            .map(|o| match o {
                Outcome::Ok { result } => result.clone(),
                Outcome::Err { message } => panic!("point failed on server: {message}"),
            })
            .collect()
    }
}

/// A blocking client for the sweep service.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(path: impl AsRef<Path>) -> io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(path)?,
        })
    }

    /// [`Client::connect`] retrying until `timeout` — for drivers that
    /// start the daemon and immediately dial it.
    pub fn connect_retry(path: impl AsRef<Path>, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(path.as_ref()) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(POLL_INTERVAL),
            }
        }
    }

    fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, req)
    }

    fn recv(&mut self) -> io::Result<Response> {
        let text = read_frame_text(&mut self.stream, || false)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Round-trips a liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Streams a batch of in-process points and blocks until `Done`.
    pub fn batch(&mut self, points: &[SimPoint]) -> io::Result<BatchReply> {
        let wire = points.iter().map(WirePoint::from_point).collect();
        self.batch_wire(wire)
    }

    /// Streams a batch of wire points and blocks until `Done`.
    pub fn batch_wire(&mut self, points: Vec<WirePoint>) -> io::Result<BatchReply> {
        let expected = points.len();
        self.send(&Request::Batch { points })?;
        self.collect_batch(expected)
    }

    /// Runs a seed sweep: `count` seed-varied copies of one point.
    pub fn seed_sweep(
        &mut self,
        workload: &str,
        config: SimConfig,
        trace: TraceSpec,
        seed_base: u64,
        count: u64,
    ) -> io::Result<BatchReply> {
        self.send(&Request::SeedSweep {
            workload: workload.to_owned(),
            config,
            trace,
            seed_base,
            count,
        })?;
        self.collect_batch(count as usize)
    }

    /// Fetches the server's cumulative engine counters.
    pub fn server_stats(&mut self) -> io::Result<SweepStats> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats { stats } => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to stop once in-flight work drains.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Drains `Point` frames (completion order) into request order until
    /// `Done`.
    fn collect_batch(&mut self, expected: usize) -> io::Result<BatchReply> {
        let mut outcomes: Vec<Option<Outcome>> = vec![None; expected];
        loop {
            match self.recv()? {
                Response::Point { index, outcome } => {
                    let slot = outcomes.get_mut(index as usize).ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("point index {index} out of range (batch of {expected})"),
                        )
                    })?;
                    *slot = Some(outcome);
                }
                Response::Done { total, stats } => {
                    if total as usize != expected || outcomes.iter().any(Option::is_none) {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "batch completed with missing points",
                        ));
                    }
                    return Ok(BatchReply {
                        outcomes: outcomes.into_iter().flatten().collect(),
                        stats,
                    });
                }
                Response::Error { message } => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, message))
                }
                other => return Err(unexpected(&other)),
            }
        }
    }
}

fn unexpected(resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response: {resp:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_wire_point() -> WirePoint {
        WirePoint {
            workload: "gsmd".to_owned(),
            config: SimConfig::builder().build(),
            trace: TraceSpec::Constant {
                power_mw: 50.0,
                samples: 8,
            },
        }
    }

    #[test]
    fn wire_point_round_trips_and_rejects_unknown_workloads() {
        let wp = tiny_wire_point();
        let p = wp.resolve().unwrap();
        assert_eq!(p.workload, "gsmd");
        assert_eq!(WirePoint::from_point(&p).resolve().unwrap().key(), p.key());
        let bad = WirePoint {
            workload: "no-such-app".to_owned(),
            ..tiny_wire_point()
        };
        assert!(bad.resolve().is_err());
    }

    #[test]
    fn frames_round_trip() {
        let req = Request::SeedSweep {
            workload: "gsmd".to_owned(),
            config: SimConfig::builder().build(),
            trace: TraceSpec::default_rfhome(),
            seed_base: 1000,
            count: 4,
        };
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let text = read_frame_text(&mut buf.as_slice(), || false)
            .unwrap()
            .expect("one frame");
        let back: Request = serde_json::from_str(&text).unwrap();
        match back {
            Request::SeedSweep {
                seed_base, count, ..
            } => {
                assert_eq!((seed_base, count), (1000, 4));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // EOF after the frame is clean.
        assert!(read_frame_text(&mut io::empty(), || false)
            .unwrap()
            .is_none());
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        let err = read_frame_text(&mut buf.as_slice(), || false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// Polls `stream` until the server closes it (EOF), proving the
    /// connection was failed rather than left hanging.
    fn wait_for_eof(stream: &mut UnixStream) {
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut byte = [0u8; 1];
        loop {
            match stream.read(&mut byte) {
                Ok(0) => return,
                Ok(_) => panic!("server answered a protocol violation with data"),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    assert!(
                        Instant::now() < deadline,
                        "server kept a violating connection open"
                    );
                }
                // The peer may observe the close as a reset instead of
                // an orderly EOF; either way the connection is dead.
                Err(_) => return,
            }
        }
    }

    #[test]
    fn malformed_frames_fail_the_connection_without_poisoning_the_pool() {
        let path =
            std::env::temp_dir().join(format!("ehs-serve-malformed-{}.sock", std::process::id()));
        let sweep = Arc::new(Sweep::in_memory());
        let server = Server::spawn(&path, Arc::clone(&sweep)).unwrap();
        // Make sure the server is accepting before throwing garbage.
        Client::connect_retry(&path, Duration::from_secs(5))
            .unwrap()
            .ping()
            .unwrap();

        // 1. Oversized u32 length prefix: a protocol violation the
        // server must answer by dropping the connection.
        let mut oversized = UnixStream::connect(&path).unwrap();
        oversized
            .write_all(&(MAX_FRAME_BYTES + 1).to_le_bytes())
            .unwrap();
        wait_for_eof(&mut oversized);

        // 2. Truncated frame: the prefix promises 100 bytes but the
        // write side shuts down after 10 — EOF mid-frame is an error,
        // not a hang.
        let mut truncated = UnixStream::connect(&path).unwrap();
        truncated.write_all(&100u32.to_le_bytes()).unwrap();
        truncated.write_all(b"0123456789").unwrap();
        truncated.shutdown(std::net::Shutdown::Write).unwrap();
        wait_for_eof(&mut truncated);

        // 3. Mid-frame disconnect: the client vanishes entirely while a
        // frame is outstanding.
        let mut vanishing = UnixStream::connect(&path).unwrap();
        vanishing.write_all(&64u32.to_le_bytes()).unwrap();
        vanishing.write_all(b"{\"Batch\"").unwrap();
        drop(vanishing);

        // The shared job channel must survive all three: a well-formed
        // client still gets full service.
        let mut client = Client::connect_retry(&path, Duration::from_secs(5)).unwrap();
        client.ping().unwrap();
        let reply = client.batch_wire(vec![tiny_wire_point()]).unwrap();
        assert_eq!(reply.outcomes.len(), 1);
        reply.results();

        client.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn server_round_trip_over_a_real_socket() {
        let path = std::env::temp_dir().join(format!("ehs-serve-test-{}.sock", std::process::id()));
        let sweep = Arc::new(Sweep::in_memory());
        let server = Server::spawn(&path, Arc::clone(&sweep)).unwrap();

        let mut client = Client::connect_retry(&path, Duration::from_secs(5)).unwrap();
        client.ping().unwrap();
        let reply = client
            .batch_wire(vec![tiny_wire_point(), tiny_wire_point()])
            .unwrap();
        assert_eq!(reply.outcomes.len(), 2);
        let results = reply.results();
        assert_eq!(results[0], results[1], "duplicate points, one simulation");
        assert_eq!(reply.stats.simulated, 1);

        client.shutdown().unwrap();
        server.join();
        assert!(!path.exists(), "socket file must be removed on shutdown");
    }
}
