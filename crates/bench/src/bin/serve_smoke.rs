//! `serve_smoke` — the CI client driver for the sweep service.
//!
//! ```text
//! serve_smoke [--socket PATH] [--seeds N] [--seed-base N]
//! ```
//!
//! Connects (with retry, so it can be started alongside the daemon) to
//! a running `ehs-serve`, drives one seed-swept Monte Carlo batch
//! through the socket, asserts the streamed completion and exactly-once
//! accounting, and asks the daemon to shut down. Exits non-zero on any
//! protocol or accounting failure.

#[cfg(unix)]
fn main() {
    use std::path::PathBuf;
    use std::time::Duration;

    use ehs_bench::service::Client;
    use ehs_energy::{TraceKind, TraceSpec};
    use ehs_sim::prelude::*;

    fn usage() -> ! {
        eprintln!("usage: serve_smoke [--socket PATH] [--seeds N] [--seed-base N]");
        std::process::exit(2);
    }

    let mut socket = PathBuf::from("results/ehs-serve.sock");
    let mut seeds: u64 = 16;
    let mut seed_base: u64 = 1000;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--seeds" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => seeds = n,
                _ => usage(),
            },
            "--seed-base" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed_base = n,
                None => usage(),
            },
            _ => usage(),
        }
    }

    let mut client = Client::connect_retry(&socket, Duration::from_secs(30)).unwrap_or_else(|e| {
        eprintln!("serve_smoke: cannot reach {}: {e}", socket.display());
        std::process::exit(1);
    });
    client.ping().expect("ping");

    let trace = TraceSpec::Synthetic {
        kind: TraceKind::RfHome,
        seed: 0,
        samples: 4_000,
    };
    let reply = client
        .seed_sweep(
            "gsmd",
            SimConfig::builder().build(),
            trace,
            seed_base,
            seeds,
        )
        .expect("seed sweep");
    assert_eq!(
        reply.outcomes.len() as u64,
        seeds,
        "every point must stream back"
    );
    let results = reply.results();
    println!(
        "[serve_smoke] {} seed(s) resolved; total_cycles of first/last: {} / {}",
        seeds,
        results.first().map_or(0, |r| r.stats.total_cycles),
        results.last().map_or(0, |r| r.stats.total_cycles),
    );

    // Exactly-once: a fresh cacheless daemon must have simulated each
    // unique seed once, no more.
    let stats = client.server_stats().expect("stats");
    assert_eq!(stats.simulated, seeds, "exactly-once violated: {stats:?}");
    assert_eq!(stats.requested, seeds, "{stats:?}");

    client.shutdown().expect("shutdown");
    println!("[serve_smoke] ok: exactly-once held, shutdown acknowledged");
}

#[cfg(not(unix))]
fn main() {
    eprintln!("serve_smoke requires a Unix-domain-socket platform");
    std::process::exit(1);
}
