//! Command-line front end for the `ehs-verify` correctness tooling.
//!
//! Usage:
//!
//! ```text
//! verify matrix [--seed SEED] [--samples N] [--no-invariants]
//! verify slices [--seed SEED] [--samples N] [--slices K] [--workloads a,b,...]
//! verify fuzz   --seed SEED --iters N [--fault REG] [--max-cycles N]
//!               [--checkpoint-every N]
//! verify shrink --input CASE.json [--output FILE] [--fault REG] [--budget N]
//!               [--checkpoint-every N]
//! ```
//!
//! `matrix` sweeps the full 20-workload × 7-configuration × 4-trace-kind
//! differential grid; `slices` sweeps the slice-equivalence oracle
//! (monolithic vs pausing forward pass vs slice-by-slice replay) over a
//! workload × 7-configuration grid; `fuzz` runs the adversarial outage fuzzer and
//! prints (shrunk) reproducers for any divergence; `shrink` minimizes a
//! committed corpus case. With `--checkpoint-every N`, shrinking resumes
//! each ddmin candidate from the nearest pre-failure machine snapshot
//! (taken every N simulated cycles) instead of re-simulating from cycle
//! 0 — bit-identical results, less wall clock; invariant checking is off
//! on that path, so it minimizes architectural divergences only. Seeds
//! may be decimal, hex, or arbitrary tags (`--seed 0xEHS` works). Exit
//! status is 0 when everything matched, 1 on any divergence, 2 on a
//! usage error.

use std::process::ExitCode;

use ehs_sim::FaultPlan;
use ehs_verify::{
    fuzz::{run_fuzz, FuzzOptions},
    oracle::{golden_state, run_matrix},
    parse_seed, shrink_trace, shrink_trace_checkpointed, CorpusCase,
};

const USAGE: &str = "usage: verify <matrix|fuzz|shrink|slices> [options]
  matrix [--seed SEED] [--samples N] [--no-invariants]
  slices [--seed SEED] [--samples N] [--slices K] [--workloads a,b,...]
  fuzz   --seed SEED --iters N [--fault REG] [--max-cycles N] [--checkpoint-every N]
  shrink --input CASE.json [--output FILE] [--fault REG] [--budget N] [--checkpoint-every N]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "matrix" => cmd_matrix(rest),
        "slices" => cmd_slices(rest),
        "fuzz" => cmd_fuzz(rest),
        "shrink" => cmd_shrink(rest),
        _ => {
            eprintln!("verify: unknown subcommand `{cmd}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Pulls the value following a `--flag`, or exits with a usage error.
fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, ExitCode> {
    *i += 1;
    match args.get(*i) {
        Some(v) => Ok(v.as_str()),
        None => {
            eprintln!("verify: {flag} needs a value\n{USAGE}");
            Err(ExitCode::from(2))
        }
    }
}

fn parse_fault(reg: &str) -> Result<FaultPlan, ExitCode> {
    match reg.parse::<ehs_isa::Reg>() {
        Ok(ehs_isa::Reg::Zero) => {
            eprintln!("verify: --fault zero is a no-op (writes to r0 are discarded)");
            Err(ExitCode::from(2))
        }
        Ok(r) => Ok(FaultPlan {
            skip_restore_reg: Some(r),
        }),
        Err(e) => {
            eprintln!("verify: --fault: {e}");
            Err(ExitCode::from(2))
        }
    }
}

/// Parses the shared `--checkpoint-every N` flag (N >= 1 cycles).
fn parse_checkpoint_every(args: &[String], i: &mut usize) -> Result<u64, ExitCode> {
    match flag_value(args, i, "--checkpoint-every")?.parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        Ok(_) => {
            eprintln!("verify: --checkpoint-every needs a positive cycle count");
            Err(ExitCode::from(2))
        }
        Err(e) => {
            eprintln!("verify: --checkpoint-every: {e}");
            Err(ExitCode::from(2))
        }
    }
}

fn cmd_matrix(args: &[String]) -> ExitCode {
    let mut seed = parse_seed("0xEHS");
    let mut samples = 50_000usize;
    let mut invariants = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => match flag_value(args, &mut i, "--seed") {
                Ok(v) => seed = parse_seed(v),
                Err(c) => return c,
            },
            "--samples" => match flag_value(args, &mut i, "--samples") {
                Ok(v) => match v.parse() {
                    Ok(n) => samples = n,
                    Err(e) => {
                        eprintln!("verify: --samples: {e}");
                        return ExitCode::from(2);
                    }
                },
                Err(c) => return c,
            },
            "--no-invariants" => invariants = false,
            other => {
                eprintln!("verify: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    println!(
        "differential matrix: 20 workloads x 7 configs x 4 trace kinds \
         (seed {seed:#x}, {samples} samples, invariants {})",
        if invariants { "on" } else { "off" }
    );
    let t0 = std::time::Instant::now();
    let report = run_matrix(seed, samples, invariants);
    let failures = report.failures();
    println!(
        "{} cells checked in {:.1}s: {} matched, {} failed",
        report.entries.len(),
        t0.elapsed().as_secs_f64(),
        report.entries.len() - failures.len(),
        failures.len()
    );
    for f in &failures {
        println!(
            "  FAIL {} / {} / {}: {:?}",
            f.workload,
            f.config.name(),
            f.kind.name(),
            f.outcome
        );
    }
    if failures.is_empty() {
        println!("matrix OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_slices(args: &[String]) -> ExitCode {
    let mut seed = parse_seed("0xEHS");
    let mut samples = 50_000usize;
    let mut max_slices = 4usize;
    let mut workloads: Vec<&'static ehs_workloads::Workload> =
        ehs_workloads::SUITE.iter().collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => match flag_value(args, &mut i, "--seed") {
                Ok(v) => seed = parse_seed(v),
                Err(c) => return c,
            },
            "--samples" => match flag_value(args, &mut i, "--samples") {
                Ok(v) => match v.parse() {
                    Ok(n) => samples = n,
                    Err(e) => {
                        eprintln!("verify: --samples: {e}");
                        return ExitCode::from(2);
                    }
                },
                Err(c) => return c,
            },
            "--slices" => match flag_value(args, &mut i, "--slices") {
                Ok(v) => match v.parse::<usize>() {
                    Ok(n) if n >= 1 => max_slices = n,
                    Ok(_) | Err(_) => {
                        eprintln!("verify: --slices needs a positive slice count");
                        return ExitCode::from(2);
                    }
                },
                Err(c) => return c,
            },
            "--workloads" => match flag_value(args, &mut i, "--workloads") {
                Ok(v) => {
                    let mut picked = Vec::new();
                    for name in v.split(',').filter(|n| !n.is_empty()) {
                        match ehs_workloads::by_name(name) {
                            Some(w) => picked.push(w),
                            None => {
                                eprintln!("verify: unknown workload `{name}`");
                                return ExitCode::from(2);
                            }
                        }
                    }
                    if picked.is_empty() {
                        eprintln!("verify: --workloads selected nothing");
                        return ExitCode::from(2);
                    }
                    workloads = picked;
                }
                Err(c) => return c,
            },
            other => {
                eprintln!("verify: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    println!(
        "slice-equivalence matrix: {} workloads x 7 configs, up to {max_slices} slices \
         (seed {seed:#x}, {samples} samples)",
        workloads.len()
    );
    let t0 = std::time::Instant::now();
    let report = ehs_verify::run_slice_matrix(&workloads, seed, samples, max_slices);
    let failures = report.failures();
    println!(
        "{} cells checked in {:.1}s: {} matched, {} failed",
        report.entries.len(),
        t0.elapsed().as_secs_f64(),
        report.entries.len() - failures.len(),
        failures.len()
    );
    for f in &failures {
        let why = f.outcome.as_ref().err().map(String::as_str).unwrap_or("");
        println!("  FAIL {} / {}: {why}", f.workload, f.config.name());
    }
    if failures.is_empty() {
        println!("slices OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_fuzz(args: &[String]) -> ExitCode {
    let mut seed = parse_seed("0xEHS");
    let mut iters = 200u64;
    let mut fault = None;
    let mut max_cycles = None;
    let mut checkpoint_every = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => match flag_value(args, &mut i, "--seed") {
                Ok(v) => seed = parse_seed(v),
                Err(c) => return c,
            },
            "--checkpoint-every" => match parse_checkpoint_every(args, &mut i) {
                Ok(n) => checkpoint_every = Some(n),
                Err(c) => return c,
            },
            "--iters" => match flag_value(args, &mut i, "--iters") {
                Ok(v) => match v.parse() {
                    Ok(n) => iters = n,
                    Err(e) => {
                        eprintln!("verify: --iters: {e}");
                        return ExitCode::from(2);
                    }
                },
                Err(c) => return c,
            },
            "--fault" => match flag_value(args, &mut i, "--fault") {
                Ok(v) => match parse_fault(v) {
                    Ok(f) => fault = Some(f),
                    Err(c) => return c,
                },
                Err(c) => return c,
            },
            "--max-cycles" => match flag_value(args, &mut i, "--max-cycles") {
                Ok(v) => match v.parse() {
                    Ok(n) => max_cycles = Some(n),
                    Err(e) => {
                        eprintln!("verify: --max-cycles: {e}");
                        return ExitCode::from(2);
                    }
                },
                Err(c) => return c,
            },
            other => {
                eprintln!("verify: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let mut opts = FuzzOptions::new(seed, iters);
    opts.fault = fault;
    if let Some(mc) = max_cycles {
        opts.max_cycles = mc;
    }
    println!(
        "adversarial fuzz: {iters} iterations, seed {seed:#x}{}",
        match fault {
            Some(f) => format!(", injected fault {f:?}"),
            None => String::new(),
        }
    );
    let t0 = std::time::Instant::now();
    let report = run_fuzz(&opts);
    println!(
        "{} iterations in {:.1}s: {} matched, {} inconclusive, {} diverged",
        report.iters,
        t0.elapsed().as_secs_f64(),
        report.matched,
        report.inconclusive,
        report.failures.len()
    );
    for f in &report.failures {
        println!(
            "  FAIL iter {} ({} / {} / {} strategy, {} samples): {}",
            f.case.iter,
            f.case.workload,
            f.case.config.name(),
            f.case.strategy,
            f.case.samples_mw.len(),
            f.divergence
        );
    }
    // Shrink and print a reproducer for the first failure so the trace
    // can be committed to the corpus directly.
    if let Some(f) = report.failures.first() {
        let w = ehs_workloads::by_name(f.case.workload).expect("fuzz workload exists");
        let cfg = f.case.config.build();
        let shrunk = match checkpoint_every {
            Some(every) => {
                println!(
                    "shrinking first failure (budget 64 runs, checkpoints every {every} cycles)..."
                );
                let program = w.program();
                let golden = golden_state(&program, cfg.nvm.size_bytes as usize);
                let (shrunk, stats) = shrink_trace_checkpointed(
                    &program,
                    &golden,
                    &cfg,
                    opts.fault,
                    &f.case.samples_mw,
                    64,
                    every,
                );
                println!(
                    "  {} runs, {} resumed from snapshots, {} cycles skipped",
                    stats.runs, stats.resumed, stats.cycles_skipped
                );
                shrunk
            }
            None => {
                println!("shrinking first failure (budget 64 runs)...");
                shrink_trace(&f.case.samples_mw, 64, |cand| {
                    let trace = ehs_energy::PowerTrace::from_samples_mw(cand.to_vec());
                    ehs_verify::oracle::check_workload(
                        w,
                        &cfg,
                        &trace,
                        opts.fault,
                        opts.check_invariants,
                    )
                    .is_divergence()
                })
            }
        };
        let case = CorpusCase {
            name: format!("fuzz-{seed:x}-iter{}", f.case.iter),
            description: format!(
                "fuzz seed {seed:#x} iter {} ({} strategy), shrunk from {} samples: {}",
                f.case.iter,
                f.case.strategy,
                f.case.samples_mw.len(),
                f.divergence
            ),
            workload: f.case.workload.to_string(),
            config: f.case.config.name().to_string(),
            samples_mw: shrunk,
        };
        println!(
            "shrunk to {} samples; corpus case:\n{}",
            case.samples_mw.len(),
            case.to_json()
        );
    }
    if report.failures.is_empty() {
        println!("fuzz OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_shrink(args: &[String]) -> ExitCode {
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut fault = None;
    let mut budget = 256usize;
    let mut checkpoint_every = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--input" => match flag_value(args, &mut i, "--input") {
                Ok(v) => input = Some(v.to_string()),
                Err(c) => return c,
            },
            "--output" => match flag_value(args, &mut i, "--output") {
                Ok(v) => output = Some(v.to_string()),
                Err(c) => return c,
            },
            "--fault" => match flag_value(args, &mut i, "--fault") {
                Ok(v) => match parse_fault(v) {
                    Ok(f) => fault = Some(f),
                    Err(c) => return c,
                },
                Err(c) => return c,
            },
            "--budget" => match flag_value(args, &mut i, "--budget") {
                Ok(v) => match v.parse() {
                    Ok(n) => budget = n,
                    Err(e) => {
                        eprintln!("verify: --budget: {e}");
                        return ExitCode::from(2);
                    }
                },
                Err(c) => return c,
            },
            "--checkpoint-every" => match parse_checkpoint_every(args, &mut i) {
                Ok(n) => checkpoint_every = Some(n),
                Err(c) => return c,
            },
            other => {
                eprintln!("verify: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let Some(input) = input else {
        eprintln!("verify: shrink needs --input CASE.json\n{USAGE}");
        return ExitCode::from(2);
    };

    let case = match CorpusCase::load(std::path::Path::new(&input)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("verify: {e}");
            return ExitCode::FAILURE;
        }
    };
    let w = match ehs_workloads::by_name(&case.workload) {
        Some(w) => w,
        None => {
            eprintln!("verify: unknown workload `{}`", case.workload);
            return ExitCode::FAILURE;
        }
    };
    let Some(config) = ehs_verify::ConfigId::from_name(&case.config) else {
        eprintln!("verify: unknown config `{}`", case.config);
        return ExitCode::FAILURE;
    };
    let cfg = config.build();
    let reproduces = |cand: &[f64]| {
        let trace = ehs_energy::PowerTrace::from_samples_mw(cand.to_vec());
        ehs_verify::oracle::check_workload(w, &cfg, &trace, fault, true).is_divergence()
    };
    if !reproduces(&case.samples_mw) {
        eprintln!(
            "verify: case `{}` does not reproduce a divergence ({} samples); nothing to shrink",
            case.name,
            case.samples_mw.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "shrinking `{}` ({} samples, budget {budget} runs)...",
        case.name,
        case.samples_mw.len()
    );
    let shrunk = match checkpoint_every {
        Some(every) => {
            let program = w.program();
            let golden = golden_state(&program, cfg.nvm.size_bytes as usize);
            let (shrunk, stats) = shrink_trace_checkpointed(
                &program,
                &golden,
                &cfg,
                fault,
                &case.samples_mw,
                budget,
                every,
            );
            println!(
                "  checkpoints every {every} cycles: {} runs, {} resumed, {} cycles skipped",
                stats.runs, stats.resumed, stats.cycles_skipped
            );
            shrunk
        }
        None => shrink_trace(&case.samples_mw, budget, reproduces),
    };
    let mut out_case = case.clone();
    out_case.samples_mw = shrunk;
    out_case.description = format!(
        "{} (shrunk from {} to {} samples)",
        case.description,
        case.samples_mw.len(),
        out_case.samples_mw.len()
    );
    println!("shrunk to {} samples", out_case.samples_mw.len());
    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, out_case.to_json() + "\n") {
                eprintln!("verify: {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        None => println!("{}", out_case.to_json()),
    }
    ExitCode::SUCCESS
}
