//! Figure 25: sensitivity to the throttling-rate threshold that gates
//! the adaptive voltage-threshold update.

use ehs_bench::run_sweep;
use ehs_sim::{PrefetchMode, SimConfig};
use ipex::IpexConfig;

fn main() {
    let trace = SimConfig::default_trace();
    let points = [0.01f64, 0.05, 0.10, 0.20]
        .into_iter()
        .map(|rate| {
            let label = format!("{:.0}%", rate * 100.0);
            let f: Box<dyn Fn(&mut SimConfig)> = Box::new(move |c: &mut SimConfig| {
                let ic = IpexConfig {
                    throttle_rate_threshold: rate,
                    ..IpexConfig::paper_default()
                };
                if matches!(c.inst_mode, PrefetchMode::Ipex(_)) {
                    c.inst_mode = PrefetchMode::Ipex(ic);
                    c.data_mode = PrefetchMode::Ipex(ic);
                }
            });
            (label, f)
        })
        .collect();
    run_sweep(
        "fig25_throttle_rate",
        "throttle-rate threshold (paper: 5% is best)",
        &trace,
        points,
    );
}
