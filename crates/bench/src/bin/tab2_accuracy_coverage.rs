//! Table 2: prefetch accuracy and coverage for instruction and data
//! streams, baseline vs IPEX.

use ehs_bench::{banner, pct, run_suite, write_results};
use ehs_sim::SimConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: &'static str,
    acc_inst: f64,
    acc_data: f64,
    cov_inst: f64,
    cov_data: f64,
}

fn aggregate(
    results: &std::collections::BTreeMap<&'static str, ehs_sim::SimResult>,
    config: &'static str,
) -> Row {
    // Aggregate over the pooled counts (not a mean of ratios), matching
    // how suite-level accuracy/coverage is usually reported.
    let (mut iu, mut iw, mut du, mut dw, mut im, mut dm) = (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    for r in results.values() {
        iu += r.ibuf.useful;
        iw += r.ibuf.useless();
        du += r.dbuf.useful;
        dw += r.dbuf.useless();
        im += r.stats.i_demand_reads;
        dm += r.stats.d_demand_reads;
    }
    Row {
        config,
        acc_inst: iu as f64 / (iu + iw).max(1) as f64,
        acc_data: du as f64 / (du + dw).max(1) as f64,
        cov_inst: iu as f64 / (iu + im).max(1) as f64,
        cov_data: du as f64 / (du + dm).max(1) as f64,
    }
}

fn main() {
    banner("tab2", "prefetch accuracy and coverage");
    let trace = SimConfig::default_trace();
    let base = aggregate(&run_suite(&SimConfig::baseline(), &trace), "NVSRAMCache");
    let ipex = aggregate(&run_suite(&SimConfig::ipex_both(), &trace), "IPEX");
    println!(
        "{:12} {:>9} {:>9} {:>9} {:>9}",
        "config", "acc(I)", "acc(D)", "cov(I)", "cov(D)"
    );
    for r in [&base, &ipex] {
        println!(
            "{:12} {:>9} {:>9} {:>9} {:>9}",
            r.config,
            pct(r.acc_inst),
            pct(r.acc_data),
            pct(r.cov_inst),
            pct(r.cov_data)
        );
    }
    println!("(paper: 54.03/52.88/80.56/64.51 -> 72.88/64.93/78.24/61.44)");
    write_results("tab2_accuracy_coverage", &vec![base, ipex]);
}
