//! Figure 22: sensitivity to capacitor size (0.47-1000 uF); larger
//! capacitors mean longer power cycles and fewer IPEX opportunities.

use ehs_bench::run_sweep;
use ehs_energy::CapacitorConfig;
use ehs_sim::SimConfig;

fn main() {
    let trace = SimConfig::default_trace();
    let points = [0.47f64, 1.0, 4.7, 10.0, 47.0, 100.0, 1000.0]
        .into_iter()
        .map(|uf| {
            let label = format!("{uf} uF");
            let f: Box<dyn Fn(&mut SimConfig)> = Box::new(move |c: &mut SimConfig| {
                c.capacitor = CapacitorConfig::with_capacitance_uf(uf);
            });
            (label, f)
        })
        .collect();
    run_sweep(
        "fig22_capacitor_size",
        "capacitor size (paper: gain shrinks as C grows)",
        &trace,
        points,
    );
}
