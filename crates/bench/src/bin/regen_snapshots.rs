//! Regenerates the golden-state snapshot corpus.
//!
//! Runs each of the ten `ehs_verify::snapcorpus` entries from cold to
//! the fixed capture cycle and rewrites
//! `tests/corpus/snapshots/*.json`. Generation is fully deterministic,
//! so rerunning without simulator changes is a no-op (byte-identical
//! files); after an *intentional* behaviour change, run this and commit
//! the resulting diff alongside the change.

use ehs_verify::{run_parallel, snapcorpus};

fn main() {
    let dir = snapcorpus::corpus_dir();
    std::fs::create_dir_all(&dir).expect("create snapshot corpus dir");
    let specs = snapcorpus::specs();
    let rendered = run_parallel(&specs, |spec| {
        (
            spec.file_name(),
            snapcorpus::render(&snapcorpus::generate(spec)),
        )
    });
    for (name, text) in rendered {
        let path = dir.join(&name);
        let changed = std::fs::read_to_string(&path).map_or(true, |old| old != text);
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        println!(
            "{} {}",
            if changed { "wrote " } else { "same  " },
            path.display()
        );
    }
}
