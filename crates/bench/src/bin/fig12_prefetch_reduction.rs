//! Figure 12: reduction in issued prefetch operations when IPEX controls
//! both prefetchers.

use ehs_bench::{banner, pct, run_suite, write_results};
use ehs_sim::SimConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    app: &'static str,
    reduction: f64,
}

fn main() {
    banner(
        "fig12",
        "prefetch-operation reduction, IPEX on both prefetchers",
    );
    let trace = SimConfig::default_trace();
    let base = run_suite(&SimConfig::baseline(), &trace);
    let ipex = run_suite(&SimConfig::ipex_both(), &trace);
    let mut rows = Vec::new();
    for w in &ehs_workloads::SUITE {
        let b = base[w.name()].prefetch_operations().max(1);
        let i = ipex[w.name()].prefetch_operations();
        let row = Row {
            app: w.name(),
            reduction: 1.0 - i as f64 / b as f64,
        };
        println!("{:10} {:>8}", row.app, pct(row.reduction));
        rows.push(row);
    }
    let mean = rows.iter().map(|r| r.reduction).sum::<f64>() / rows.len() as f64;
    println!("{:10} {:>8}  (paper mean: 7.11%)", "mean", pct(mean));
    write_results("fig12_prefetch_reduction", &rows);
}
