//! Calibration sweep: prints the headline metrics for the four standard
//! configurations over the full suite so the simulator's shape can be
//! compared with the paper at a glance. Not one of the paper's figures;
//! a development aid.

use ehs_bench::{banner, gmean, pct, run_suite, speedups};
use ehs_sim::prelude::*;

fn main() {
    banner("calibrate", "headline metrics, RFHome trace");
    let trace = SimConfig::default_trace_spec();

    let t0 = std::time::Instant::now();
    let no_pf = run_suite(&SimConfig::builder().no_prefetch().build(), &trace);
    let base = run_suite(&SimConfig::builder().build(), &trace);
    let ipex_d = run_suite(&SimConfig::builder().ipex(Ipex::Data).build(), &trace);
    let ipex = run_suite(&SimConfig::builder().ipex(Ipex::Both).build(), &trace);
    println!("(simulated 80 runs in {:.1?})\n", t0.elapsed());

    println!(
        "{:10} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "app",
        "base_cyc",
        "pcycles",
        "stall_i",
        "stall_d",
        "nopf",
        "ipexD",
        "ipexID",
        "accI",
        "accD"
    );
    for w in &ehs_workloads::SUITE {
        let n = w.name();
        let b = &base[n];
        println!(
            "{:10} {:>9} {:>7} {:>7} {:>7} {:>7.3} {:>7.3} {:>7.3} {:>7} {:>7}",
            n,
            b.stats.total_cycles,
            b.stats.power_cycles,
            pct(b.stats.istall_fraction()),
            pct(b.stats.dstall_fraction()),
            no_pf[n].stats.total_cycles as f64 / b.stats.total_cycles as f64,
            b.stats.total_cycles as f64 / ipex_d[n].stats.total_cycles as f64,
            b.stats.total_cycles as f64 / ipex[n].stats.total_cycles as f64,
            pct(b.inst_prefetch_accuracy()),
            pct(b.data_prefetch_accuracy()),
        );
    }

    let (_, g_nopf) = speedups(&no_pf, &base);
    let (_, g_d) = speedups(&base, &ipex_d);
    let (_, g_id) = speedups(&base, &ipex);
    println!(
        "\nbaseline vs no-prefetch gmean speedup: {:.4} (paper: 1.0496)",
        g_nopf
    );
    println!(
        "IPEX(data) vs baseline gmean speedup:  {:.4} (paper: 1.0373)",
        g_d
    );
    println!(
        "IPEX(both) vs baseline gmean speedup:  {:.4} (paper: 1.0896)",
        g_id
    );

    let e_ratio: Vec<f64> = ehs_workloads::SUITE
        .iter()
        .map(|w| ipex[w.name()].total_energy_nj() / base[w.name()].total_energy_nj())
        .collect();
    println!(
        "IPEX(both) energy vs baseline gmean:   {:.4} (paper: 0.9214)",
        gmean(&e_ratio)
    );

    let acc_i: Vec<f64> = ehs_workloads::SUITE
        .iter()
        .map(|w| base[w.name()].inst_prefetch_accuracy())
        .collect();
    let acc_d: Vec<f64> = ehs_workloads::SUITE
        .iter()
        .map(|w| base[w.name()].data_prefetch_accuracy())
        .collect();
    let acc_i2: Vec<f64> = ehs_workloads::SUITE
        .iter()
        .map(|w| ipex[w.name()].inst_prefetch_accuracy())
        .collect();
    let acc_d2: Vec<f64> = ehs_workloads::SUITE
        .iter()
        .map(|w| ipex[w.name()].data_prefetch_accuracy())
        .collect();
    println!(
        "accuracy I/D baseline: {}/{}   IPEX: {}/{}  (paper: 54/53 -> 73/65)",
        pct(gmean(&acc_i)),
        pct(gmean(&acc_d)),
        pct(gmean(&acc_i2)),
        pct(gmean(&acc_d2)),
    );
    let pfred: Vec<f64> = ehs_workloads::SUITE
        .iter()
        .map(|w| {
            1.0 - ipex[w.name()].prefetch_operations() as f64
                / base[w.name()].prefetch_operations().max(1) as f64
        })
        .collect();
    println!(
        "prefetch-op reduction mean: {} (paper: 7.11%)",
        pct(pfred.iter().sum::<f64>() / pfred.len() as f64)
    );
}
