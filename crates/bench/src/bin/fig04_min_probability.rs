//! Figure 4, as a standalone binary: a shim over the shared figure
//! registry, so this output is byte-identical with `--bin paper`.

fn main() {
    ehs_bench::figures::run_standalone("fig04");
}
