//! Figure 4: the analytic minimum useful-prefetch probability P
//! (Inequality 4) versus E_prefetch for several E_leak values.

use ehs_bench::{banner, write_results};
use ehs_energy::min_useful_probability;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    e_leak_pj: f64,
    e_prefetch_pj: f64,
    min_p: f64,
}

fn main() {
    banner("fig04", "minimum useful-prefetch probability (Eq. 1-4)");
    let mut rows = Vec::new();
    for e_leak in [10.0, 20.0, 30.0, 40.0, 50.0] {
        print!("E_leak = {e_leak:>4} pJ: ");
        for e_pf in (0..=100).step_by(10) {
            let p = min_useful_probability(e_pf as f64, e_leak);
            print!("{:>5.1}% ", p * 100.0);
            rows.push(Row {
                e_leak_pj: e_leak,
                e_prefetch_pj: e_pf as f64,
                min_p: p,
            });
        }
        println!();
    }
    write_results("fig04_min_probability", &rows);
}
