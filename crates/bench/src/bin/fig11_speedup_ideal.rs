//! Figure 11: the Figure-10 comparison against the *ideal* NVSRAMCache
//! (zero-cost backup/restore) — the upper bound for cache-equipped EHSs.

use ehs_bench::{banner, run_suite, speedups, write_results};
use ehs_sim::SimConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    app: String,
    no_prefetch: f64,
    ipex_data: f64,
    ipex_both: f64,
}

fn main() {
    banner("fig11", "speedup over NVSRAMCache (ideal), RFHome");
    let trace = SimConfig::default_trace();
    let base = run_suite(&SimConfig::baseline().with_ideal_backup(), &trace);
    let nopf = run_suite(&SimConfig::no_prefetch().with_ideal_backup(), &trace);
    let ipex_d = run_suite(&SimConfig::ipex_data_only().with_ideal_backup(), &trace);
    let ipex = run_suite(&SimConfig::ipex_both().with_ideal_backup(), &trace);

    let (r0, g0) = speedups(&base, &nopf);
    let (r1, g1) = speedups(&base, &ipex_d);
    let (r2, g2) = speedups(&base, &ipex);
    let mut rows = Vec::new();
    println!(
        "{:10} {:>8} {:>8} {:>8}",
        "app", "no-pf", "+IPEX(D)", "+IPEX(I+D)"
    );
    for i in 0..r0.len() {
        println!(
            "{:10} {:>8.3} {:>8.3} {:>8.3}",
            r0[i].0, r0[i].1, r1[i].1, r2[i].1
        );
        rows.push(Row {
            app: r0[i].0.to_owned(),
            no_prefetch: r0[i].1,
            ipex_data: r1[i].1,
            ipex_both: r2[i].1,
        });
    }
    println!(
        "{:10} {:>8.3} {:>8.3} {:>8.3}  (paper IPEX-both gmean: 1.0906)",
        "gmean", g0, g1, g2
    );
    rows.push(Row {
        app: "gmean".into(),
        no_prefetch: g0,
        ipex_data: g1,
        ipex_both: g2,
    });
    write_results("fig11_speedup_ideal", &rows);
}
