//! Table 4: IPEX's gmean speedup with different data prefetchers (the
//! instruction prefetcher stays at the default sequential).

use ehs_bench::{banner, run_suite, speedups, write_results};
use ehs_prefetch::DataPrefetcherKind;
use ehs_sim::SimConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    prefetcher: &'static str,
    ipex_speedup: f64,
}

fn main() {
    banner("tab4", "IPEX speedup with varying data prefetchers");
    let trace = SimConfig::default_trace();
    let mut rows = Vec::new();
    for kind in DataPrefetcherKind::TABLE4 {
        let mut base = SimConfig::baseline();
        base.data_prefetcher = kind;
        let mut ipex = SimConfig::ipex_both();
        ipex.data_prefetcher = kind;
        let b = run_suite(&base, &trace);
        let i = run_suite(&ipex, &trace);
        let (_, g) = speedups(&b, &i);
        println!("{:12} IPEX speedup {:.4}", kind.name(), g);
        rows.push(Row {
            prefetcher: kind.name(),
            ipex_speedup: g,
        });
    }
    println!("(paper: Stride 8.96% / GHB 8.83% / BO 8.76%)");
    write_results("tab4_data_prefetchers", &rows);
}
