//! Figure 20: sensitivity to main-memory capacity (2-32 MB); larger
//! arrays have higher latency and per-access energy.

use ehs_bench::run_sweep;
use ehs_mem::{NvmConfig, NvmTech};
use ehs_sim::SimConfig;

fn main() {
    let trace = SimConfig::default_trace();
    let points = [2u64, 4, 8, 16, 32]
        .into_iter()
        .map(|mb| {
            let label = format!("{mb} MB");
            let f: Box<dyn Fn(&mut SimConfig)> = Box::new(move |c: &mut SimConfig| {
                c.nvm = NvmConfig::for_tech(NvmTech::ReRam, mb << 20);
            });
            (label, f)
        })
        .collect();
    run_sweep(
        "fig20_memory_size",
        "main-memory size (paper: gain grows with size)",
        &trace,
        points,
    );
}
