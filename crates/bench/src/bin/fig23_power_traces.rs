//! Figure 23: sensitivity to the harvested-power environment.

use ehs_bench::{banner, run_suite, speedups, write_results, SweepRow};
use ehs_energy::TraceKind;
use ehs_sim::SimConfig;

fn main() {
    banner(
        "fig23_power_traces",
        "power traces (paper: small gap, RF slightly ahead)",
    );
    let mut rows = Vec::new();
    for kind in TraceKind::ALL {
        let trace = kind.synthesize(42, 400_000);
        let b = run_suite(&SimConfig::baseline(), &trace);
        let i = run_suite(&SimConfig::ipex_both(), &trace);
        let (_, g) = speedups(&b, &i);
        println!("{:>10}  IPEX speedup over baseline: {g:.4}", kind.name());
        rows.push(SweepRow {
            label: kind.name().to_owned(),
            ipex_speedup: g,
        });
    }
    write_results("fig23_power_traces", &rows);
}
