//! Figure 14: energy breakdown (cache / memory / compute / backup+rst)
//! normalised to the baseline, three bars per application.

use ehs_bench::{banner, run_suite, write_results};
use ehs_energy::EnergyBreakdown;
use ehs_sim::SimConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    app: &'static str,
    config: &'static str,
    cache: f64,
    memory: f64,
    compute: f64,
    backup_restore: f64,
    total: f64,
}

fn bar(
    app: &'static str,
    config: &'static str,
    e: &EnergyBreakdown,
    base: &EnergyBreakdown,
) -> Row {
    let n = e.normalized_to(base);
    Row {
        app,
        config,
        cache: n.cache_nj,
        memory: n.memory_nj,
        compute: n.compute_nj,
        backup_restore: n.backup_restore_nj,
        total: n.total_nj(),
    }
}

fn main() {
    banner(
        "fig14",
        "normalised energy breakdown (baseline / +IPEX(D) / +IPEX(I+D))",
    );
    let trace = SimConfig::default_trace();
    let base = run_suite(&SimConfig::baseline(), &trace);
    let ipex_d = run_suite(&SimConfig::ipex_data_only(), &trace);
    let ipex = run_suite(&SimConfig::ipex_both(), &trace);
    let mut rows = Vec::new();
    println!(
        "{:10} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "app", "config", "cache", "mem", "comp", "bk+rst", "total"
    );
    for w in &ehs_workloads::SUITE {
        let b = &base[w.name()].energy;
        for (cfg, e) in [
            ("baseline", b),
            ("ipex-data", &ipex_d[w.name()].energy),
            ("ipex-both", &ipex[w.name()].energy),
        ] {
            let row = bar(w.name(), cfg, e, b);
            println!(
                "{:10} {:>10} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
                row.app,
                row.config,
                row.cache,
                row.memory,
                row.compute,
                row.backup_restore,
                row.total
            );
            rows.push(row);
        }
    }
    let m: f64 = rows
        .iter()
        .filter(|r| r.config == "ipex-both")
        .map(|r| r.total)
        .sum::<f64>()
        / 20.0;
    println!("ipex-both mean normalised energy: {m:.4}  (paper: 0.9214)");
    write_results("fig14_energy_breakdown", &rows);
}
