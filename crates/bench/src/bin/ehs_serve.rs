//! `ehs-serve` — the long-running sweep daemon.
//!
//! ```text
//! cargo run --release -p ehs-bench --bin ehs-serve -- [flags]
//!
//!   --socket PATH            Unix socket to listen on
//!                            (default results/ehs-serve.sock)
//!   --results DIR            results directory owning the cache
//!                            (default results)
//!   --no-cache               don't read or write <results>/.cache
//!   --jobs N                 worker-pool width (default: EHS_SWEEP_JOBS
//!                            env var if set, else available parallelism)
//!   --checkpoint-every N     crash-checkpoint in-flight simulations every
//!                            N simulated cycles (default 250000000;
//!                            0 disables)
//! ```
//!
//! The daemon owns one [`Sweep`] engine (and therefore the on-disk
//! cache) and serves batched simulation requests from any number of
//! concurrent clients over the socket; see `ehs_bench::service` for the
//! protocol. It runs until a client sends `Shutdown` (or the process is
//! killed — in-flight points then resume from their crash checkpoints
//! on the next start).

#[cfg(unix)]
fn main() {
    use std::path::PathBuf;
    use std::sync::Arc;

    use ehs_bench::service::Server;
    use ehs_bench::sweep::{CheckpointPolicy, Sweep, SweepOptions};

    fn usage() -> ! {
        eprintln!(
            "usage: ehs-serve [--socket PATH] [--results DIR] [--no-cache] \
             [--jobs N] [--checkpoint-every N]"
        );
        std::process::exit(2);
    }

    let mut socket: Option<PathBuf> = None;
    let mut results_dir = PathBuf::from("results");
    let mut use_cache = true;
    let mut jobs: Option<usize> = None;
    let mut checkpoint_every: u64 = 250_000_000;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--results" => results_dir = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--no-cache" => use_cache = false,
            "--jobs" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                _ => usage(),
            },
            "--checkpoint-every" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => checkpoint_every = n,
                None => usage(),
            },
            _ => usage(),
        }
    }
    let socket = socket.unwrap_or_else(|| results_dir.join("ehs-serve.sock"));

    let sweep = Arc::new(Sweep::new(SweepOptions {
        slices: None,
        jobs,
        disk_cache: use_cache.then(|| Sweep::default_cache_dir(&results_dir)),
        checkpoints: (checkpoint_every > 0).then(|| CheckpointPolicy {
            dir: Sweep::default_cache_dir(&results_dir),
            every_cycles: checkpoint_every,
        }),
    }));

    let server = Server::spawn(&socket, Arc::clone(&sweep)).unwrap_or_else(|e| {
        eprintln!("ehs-serve: cannot bind {}: {e}", socket.display());
        std::process::exit(1);
    });
    println!(
        "[ehs-serve] listening on {} ({} worker(s), cache {})",
        socket.display(),
        sweep.jobs(),
        if use_cache { "on" } else { "off" }
    );
    server.join();
    let stats = sweep.stats();
    println!(
        "[ehs-serve] shut down: {} requested, {} simulated, {} disk hits, {} memo hits",
        stats.requested, stats.simulated, stats.disk_hits, stats.memo_hits
    );
}

#[cfg(not(unix))]
fn main() {
    eprintln!("ehs-serve requires a Unix-domain-socket platform");
    std::process::exit(1);
}
