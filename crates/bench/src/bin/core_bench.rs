//! Single-thread core-engine throughput benchmark.
//!
//! ```text
//! cargo run --release -p ehs-bench --bin core_bench -- [flags]
//!
//!   --passes N      measurement passes over the suite (default 3; best wins)
//!   --check         fail (exit 1) if throughput regressed >20% from the best
//!                   recorded value, or if the result digest diverges from
//!                   the previous record (bit-identity guard)
//!   --no-append     measure and print only; don't touch BENCH_core.json
//!   --out PATH      trajectory file (default BENCH_core.json)
//! ```
//!
//! Runs the full 20-workload suite twice per pass — once under the
//! baseline configuration and once under IPEX(both) — on a single
//! thread, one fresh [`Machine`] per point, under the paper's default
//! RFHome trace. The best pass's `cycles/sec` is appended to
//! `BENCH_core.json` with the same append/migrate discipline as
//! `BENCH_sweep.json`, so engine throughput is tracked over time.
//!
//! Every record carries an FNV-1a digest of the canonical JSON of all
//! 40 results: engine rewrites must keep the digest constant, which is
//! the cheap always-on companion to the full differential-oracle proof.

use std::time::Instant;

use ehs_energy::TraceSpec;
use ehs_sim::prelude::*;
use serde::{Deserialize, Serialize};

/// One appended measurement in `BENCH_core.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CoreRecord {
    unix_ms: u64,
    /// Wall time of the best (fastest) pass, milliseconds.
    wall_ms: u64,
    /// Measurement passes taken (best pass is recorded).
    passes: u64,
    /// Simulation points per pass (workloads × configurations).
    points: u64,
    /// Simulated cycles per pass (including off/recharge cycles).
    cycles: u64,
    /// Instructions retired per pass.
    instructions: u64,
    /// Best-pass throughput: simulated cycles per wall-clock second.
    cycles_per_sec: f64,
    /// Best-pass throughput: retired instructions per wall-clock second.
    instr_per_sec: f64,
    /// Execution-engine generation that produced this record.
    engine: String,
    /// FNV-1a 64 digest (hex) of the canonical JSON of all results, in
    /// point order. Must be invariant across engine generations.
    digest: String,
}

/// Decodes one record; unrecognizable entries are dropped (the log is
/// advisory). New shapes migrate here, mirroring `BENCH_sweep.json`.
fn migrate_record(c: &serde::Content) -> Option<CoreRecord> {
    CoreRecord::from_content(c).ok()
}

fn load_records(path: &str) -> Vec<CoreRecord> {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<serde::Content>(&text).ok())
        .and_then(|c| {
            c.as_seq()
                .map(|s| s.iter().filter_map(migrate_record).collect())
        })
        .unwrap_or_default()
}

fn append_record(path: &str, record: CoreRecord) {
    let mut records = load_records(path);
    records.push(record);
    let json = serde_json::to_string_pretty(&records).expect("serialise core bench records");
    std::fs::write(path, json).expect("write core bench trajectory");
    println!("[core record appended to {path}]");
}

fn fnv1a64(bytes: &[u8], seed: u64) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn usage() -> ! {
    eprintln!("usage: core_bench [--passes N] [--check] [--no-append] [--out PATH]");
    std::process::exit(2);
}

/// One measured pass over the suite. Returns (wall_ms, cycles,
/// instructions, digest-of-results).
fn run_pass(points: &[(&ehs_workloads::Workload, SimConfig)]) -> (u64, u64, u64, u64) {
    let trace = TraceSpec::default_rfhome().synthesize();
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    // FNV-1a offset basis.
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let t0 = Instant::now();
    for (w, cfg) in points {
        let program = w.program();
        let mut machine = Machine::with_trace(cfg.clone(), &program, trace.clone());
        let r = ehs_bench::expect_ok(w.name(), cfg, machine.run());
        cycles += r.stats.total_cycles;
        instructions += r.stats.instructions;
        digest = fnv1a64(ehs_sim::canon::canonical_json(&r).as_bytes(), digest);
    }
    (
        t0.elapsed().as_millis() as u64,
        cycles,
        instructions,
        digest,
    )
}

fn main() {
    let mut passes: u64 = 3;
    let mut check = false;
    let mut append = true;
    let mut out = String::from("BENCH_core.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--passes" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => passes = n,
                _ => usage(),
            },
            "--check" => check = true,
            "--no-append" => append = false,
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }

    // The measured points: the whole suite under the paper's two
    // anchor configurations, single-threaded, cold machines.
    let base = SimConfig::builder().build();
    let ipex = SimConfig::builder().ipex(Ipex::Both).build();
    let suite: Vec<&ehs_workloads::Workload> = ehs_workloads::names()
        .iter()
        .map(|n| ehs_workloads::by_name(n).expect("suite name"))
        .collect();
    let points: Vec<_> = suite
        .iter()
        .flat_map(|w| [(*w, base.clone()), (*w, ipex.clone())])
        .collect();

    println!(
        "[core_bench] engine {} · {} points/pass · {} pass(es), single thread",
        ehs_sim::ENGINE_ID,
        points.len(),
        passes
    );

    let mut best: Option<(u64, u64, u64, u64)> = None;
    for p in 0..passes {
        let (wall_ms, cycles, instructions, digest) = run_pass(&points);
        println!(
            "[core_bench] pass {}/{}: {:.1}s, {:.2}M cycles/s",
            p + 1,
            passes,
            wall_ms as f64 / 1000.0,
            cycles as f64 / wall_ms.max(1) as f64 / 1000.0
        );
        if let Some(b) = &best {
            assert_eq!(b.3, digest, "nondeterministic results across passes");
        }
        if best.is_none() || wall_ms < best.unwrap().0 {
            best = Some((wall_ms, cycles, instructions, digest));
        }
    }
    let (wall_ms, cycles, instructions, digest) = best.unwrap();
    let cycles_per_sec = cycles as f64 * 1000.0 / wall_ms.max(1) as f64;
    let instr_per_sec = instructions as f64 * 1000.0 / wall_ms.max(1) as f64;
    println!(
        "[core_bench] best: {:.1}s → {:.2}M cycles/s, {:.2}M instr/s, digest {digest:016x}",
        wall_ms as f64 / 1000.0,
        cycles_per_sec / 1e6,
        instr_per_sec / 1e6
    );

    let prior = load_records(&out);
    let record = CoreRecord {
        unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
        wall_ms,
        passes,
        points: points.len() as u64,
        cycles,
        instructions,
        cycles_per_sec,
        instr_per_sec,
        engine: ehs_sim::ENGINE_ID.to_owned(),
        digest: format!("{digest:016x}"),
    };
    if append {
        append_record(&out, record.clone());
    }

    if check {
        let mut failed = false;
        // Bit-identity guard: identical point sets must produce
        // identical result digests, whatever the engine generation.
        let comparable: Vec<_> = prior
            .iter()
            .filter(|r| r.points == record.points && r.cycles == record.cycles)
            .collect();
        if let Some(r) = comparable.iter().find(|r| r.digest != record.digest) {
            eprintln!(
                "[core_bench] FAIL: result digest {} diverges from recorded {} (engine {})",
                record.digest, r.digest, r.engine
            );
            failed = true;
        }
        // Throughput guard: >20% regression from the best recorded
        // single-thread cycles/sec fails the run.
        let best_recorded = comparable
            .iter()
            .map(|r| r.cycles_per_sec)
            .fold(f64::NAN, f64::max);
        if best_recorded.is_finite() && record.cycles_per_sec < 0.8 * best_recorded {
            eprintln!(
                "[core_bench] FAIL: {:.2}M cycles/s is a >20% regression from the \
                 best recorded {:.2}M cycles/s",
                record.cycles_per_sec / 1e6,
                best_recorded / 1e6
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("[core_bench] check passed");
    }
}
