//! Figure 17: sensitivity to the prefetch-buffer size (32/64/128 B).

use ehs_bench::run_sweep;
use ehs_sim::SimConfig;

fn main() {
    let trace = SimConfig::default_trace();
    let points = [2usize, 4, 8]
        .into_iter()
        .map(|entries| {
            let label = format!("{} B ({entries} entries)", entries * 16);
            let f: Box<dyn Fn(&mut SimConfig)> = Box::new(move |c: &mut SimConfig| {
                c.prefetch_buffer_entries = entries;
            });
            (label, f)
        })
        .collect();
    run_sweep(
        "fig17_prefetch_buffer",
        "prefetch-buffer size (paper default: 64 B)",
        &trace,
        points,
    );
}
