//! Table 3: IPEX's gmean speedup with different instruction prefetchers
//! (the data prefetcher stays at the default stride).

use ehs_bench::{banner, run_suite, speedups, write_results};
use ehs_prefetch::InstPrefetcherKind;
use ehs_sim::SimConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    prefetcher: &'static str,
    ipex_speedup: f64,
}

fn main() {
    banner("tab3", "IPEX speedup with varying instruction prefetchers");
    let trace = SimConfig::default_trace();
    let mut rows = Vec::new();
    for kind in InstPrefetcherKind::TABLE3 {
        let mut base = SimConfig::baseline();
        base.inst_prefetcher = kind;
        let mut ipex = SimConfig::ipex_both();
        ipex.inst_prefetcher = kind;
        let b = run_suite(&base, &trace);
        let i = run_suite(&ipex, &trace);
        let (_, g) = speedups(&b, &i);
        println!("{:12} IPEX speedup {:.4}", kind.name(), g);
        rows.push(Row {
            prefetcher: kind.name(),
            ipex_speedup: g,
        });
    }
    println!("(paper: Sequential 8.96% / Markov 7.89% / TIFS 9.05%)");
    write_results("tab3_inst_prefetchers", &rows);
}
