//! Figure 16: sensitivity to the number of IPEX voltage thresholds.

use ehs_bench::run_sweep;
use ehs_sim::{PrefetchMode, SimConfig};
use ipex::IpexConfig;

fn main() {
    let trace = SimConfig::default_trace();
    let points = (1u32..=3)
        .map(|k| {
            let label = format!("{k} threshold(s)");
            let f: Box<dyn Fn(&mut SimConfig)> = Box::new(move |c: &mut SimConfig| {
                let ic = IpexConfig::with_threshold_count(k);
                if matches!(c.inst_mode, PrefetchMode::Ipex(_)) {
                    c.inst_mode = PrefetchMode::Ipex(ic);
                    c.data_mode = PrefetchMode::Ipex(ic);
                }
            });
            (label, f)
        })
        .collect();
    run_sweep(
        "fig16_threshold_count",
        "voltage-threshold count (paper: 2 is best)",
        &trace,
        points,
    );
}
