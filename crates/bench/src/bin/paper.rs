//! The whole paper in one process.
//!
//! ```text
//! cargo run --release -p ehs-bench --bin paper -- [flags]
//!
//!   --only fig10,tab2        render only the listed figures (short or file ids)
//!   --no-cache               don't read or write results/.cache
//!   --jobs N                 worker-pool width (default: EHS_SWEEP_JOBS env
//!                            var if set, else available parallelism)
//!   --checkpoint-every N     crash-checkpoint in-flight simulations every N
//!                            simulated cycles (default 250000000; 0 disables)
//!   --slices K               time-sliced execution: simulate every miss as K
//!                            parallel slices stitched bit-identically (cut
//!                            plans are cached; 1 disables)
//!   --sampled                SMARTS-style sampled mode: render fig27's
//!                            sampled-vs-full comparison only (equivalent to
//!                            --only fig27 when no --only is given)
//!   --stats                  Monte Carlo mode: seed-sweep every headline of
//!                            the selected figures and report 95% CIs into
//!                            results/stats/ instead of rendering the figures
//!   --seeds N                seeds per headline in --stats mode (default 16)
//!   --seed-base N            first seed in --stats mode (default 1000)
//!   --list                   print the registry and exit
//! ```
//!
//! All selected figures declare their simulation points up front; the
//! union is deduplicated by content-addressed key and each unique point
//! is simulated exactly once (asserted), with previously cached points
//! loaded from `results/.cache/`. Rendering then reuses the memoized
//! results, so every `results/*.json` is byte-identical to what the
//! standalone per-figure binaries produce. Each run appends a record to
//! `BENCH_sweep.json` so cold-vs-warm wall-clock is tracked over time.

use std::collections::HashSet;
use std::path::Path;
use std::time::Instant;

use ehs_bench::figures::{RenderCx, REGISTRY};
use ehs_bench::monte::{self, SeedPlan};
use ehs_bench::sweep::{CheckpointPolicy, Sweep, SweepOptions};
use serde::{Deserialize, Serialize};

/// One appended measurement in `BENCH_sweep.json`.
#[derive(Serialize, Deserialize)]
struct BenchRecord {
    unix_ms: u64,
    wall_ms: u64,
    jobs: u64,
    cache_enabled: bool,
    figures: u64,
    requested: u64,
    unique_points: u64,
    simulated: u64,
    disk_hits: u64,
    memo_hits: u64,
    in_flight_waits: u64,
    checkpoint_every_cycles: u64,
    resumed: u64,
    /// Cycles simulated in-process. `None` (JSON `null`) marks records
    /// from before cycle accounting existed, where the true count is
    /// unknowable — distinct from a genuine 0 (an all-cache-hit run).
    cycles_simulated: Option<u64>,
    /// Seeds per headline of a `--stats` run; `None` for a plain
    /// figure-rendering run (and for records predating the mode).
    stats_seeds: Option<u64>,
    /// First seed of a `--stats` run; `None` like `stats_seeds`.
    stats_seed_base: Option<u64>,
    /// Slice budget misses simulated under (`--slices`); 1 for a
    /// monolithic run, and for records predating sliced execution.
    slices: u64,
    /// Whether this was a `--sampled` (SMARTS-mode) run.
    sampled: bool,
}

/// The record shape between the `--stats` mode and sliced/sampled
/// execution. Those runs were monolithic: `slices` migrates to 1 and
/// `sampled` to false.
#[derive(Deserialize)]
struct BenchRecordV2 {
    unix_ms: u64,
    wall_ms: u64,
    jobs: u64,
    cache_enabled: bool,
    figures: u64,
    requested: u64,
    unique_points: u64,
    simulated: u64,
    disk_hits: u64,
    memo_hits: u64,
    in_flight_waits: u64,
    checkpoint_every_cycles: u64,
    resumed: u64,
    cycles_simulated: Option<u64>,
    stats_seeds: Option<u64>,
    stats_seed_base: Option<u64>,
}

/// The record shape between cycle accounting and the `--stats` Monte
/// Carlo mode. The stats fields migrate to `None` — those runs were
/// plain renders.
#[derive(Deserialize)]
struct BenchRecordV1 {
    unix_ms: u64,
    wall_ms: u64,
    jobs: u64,
    cache_enabled: bool,
    figures: u64,
    requested: u64,
    unique_points: u64,
    simulated: u64,
    disk_hits: u64,
    memo_hits: u64,
    in_flight_waits: u64,
    checkpoint_every_cycles: u64,
    resumed: u64,
    cycles_simulated: Option<u64>,
}

/// The record shape before the checkpoint counters existed. Old entries
/// migrate instead of wiping the history: the checkpoint counters were
/// truly zero then (the feature did not exist), while the cycle count —
/// which the run did burn but never measured — migrates to "unknown"
/// via [`fixup_unknown_cycles`].
#[derive(Deserialize)]
struct BenchRecordV0 {
    unix_ms: u64,
    wall_ms: u64,
    jobs: u64,
    cache_enabled: bool,
    figures: u64,
    requested: u64,
    unique_points: u64,
    simulated: u64,
    disk_hits: u64,
    memo_hits: u64,
    in_flight_waits: u64,
}

/// Decodes one bench-log entry, trying shapes newest-first;
/// unrecognizable entries are dropped (the log is advisory).
fn migrate_record(c: &serde::Content) -> Option<BenchRecord> {
    if let Ok(r) = BenchRecord::from_content(c) {
        return Some(fixup_unknown_cycles(r));
    }
    if let Ok(v2) = BenchRecordV2::from_content(c) {
        return Some(fixup_unknown_cycles(BenchRecord {
            unix_ms: v2.unix_ms,
            wall_ms: v2.wall_ms,
            jobs: v2.jobs,
            cache_enabled: v2.cache_enabled,
            figures: v2.figures,
            requested: v2.requested,
            unique_points: v2.unique_points,
            simulated: v2.simulated,
            disk_hits: v2.disk_hits,
            memo_hits: v2.memo_hits,
            in_flight_waits: v2.in_flight_waits,
            checkpoint_every_cycles: v2.checkpoint_every_cycles,
            resumed: v2.resumed,
            cycles_simulated: v2.cycles_simulated,
            stats_seeds: v2.stats_seeds,
            stats_seed_base: v2.stats_seed_base,
            slices: 1,
            sampled: false,
        }));
    }
    if let Ok(v1) = BenchRecordV1::from_content(c) {
        return Some(fixup_unknown_cycles(BenchRecord {
            unix_ms: v1.unix_ms,
            wall_ms: v1.wall_ms,
            jobs: v1.jobs,
            cache_enabled: v1.cache_enabled,
            figures: v1.figures,
            requested: v1.requested,
            unique_points: v1.unique_points,
            simulated: v1.simulated,
            disk_hits: v1.disk_hits,
            memo_hits: v1.memo_hits,
            in_flight_waits: v1.in_flight_waits,
            checkpoint_every_cycles: v1.checkpoint_every_cycles,
            resumed: v1.resumed,
            cycles_simulated: v1.cycles_simulated,
            stats_seeds: None,
            stats_seed_base: None,
            slices: 1,
            sampled: false,
        }));
    }
    let old = BenchRecordV0::from_content(c).ok()?;
    Some(fixup_unknown_cycles(BenchRecord {
        unix_ms: old.unix_ms,
        wall_ms: old.wall_ms,
        jobs: old.jobs,
        cache_enabled: old.cache_enabled,
        figures: old.figures,
        requested: old.requested,
        unique_points: old.unique_points,
        simulated: old.simulated,
        disk_hits: old.disk_hits,
        memo_hits: old.memo_hits,
        in_flight_waits: old.in_flight_waits,
        checkpoint_every_cycles: 0,
        resumed: 0,
        cycles_simulated: Some(0),
        stats_seeds: None,
        stats_seed_base: None,
        slices: 1,
        sampled: false,
    }))
}

/// Repairs records whose `cycles_simulated` predates cycle accounting.
/// A run that simulated at least one point necessarily burned cycles,
/// so `simulated > 0` with a zero (or V0-migrated) cycle count is a
/// provably-false value; it becomes `None` ("unknown") rather than
/// keeping the lie in the log. A zero alongside `simulated == 0` is a
/// genuine all-cache-hit run and is kept.
fn fixup_unknown_cycles(mut r: BenchRecord) -> BenchRecord {
    if r.simulated > 0 && r.cycles_simulated == Some(0) {
        r.cycles_simulated = None;
    }
    r
}

fn usage() -> ! {
    eprintln!(
        "usage: paper [--only id1,id2,...] [--no-cache] [--jobs N] [--slices K] \
         [--sampled] [--checkpoint-every N] [--stats] [--seeds N] \
         [--seed-base N] [--list]\n\
         ids are short (fig10, tab2) or file ids (fig10_speedup_baseline)"
    );
    std::process::exit(2);
}

fn main() {
    let mut only: Option<Vec<String>> = None;
    let mut use_cache = true;
    let mut jobs: Option<usize> = None;
    // Interrupted runs resume from these periodic machine snapshots;
    // 250M cycles keeps the worst-case repaid work to a few seconds.
    let mut checkpoint_every: u64 = 250_000_000;
    let mut stats_mode = false;
    let mut slices: Option<usize> = None;
    let mut sampled_mode = false;
    let mut seeds: u64 = 16;
    let mut seed_base: u64 = monte::DEFAULT_SEED_BASE;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--only" => {
                let list = args.next().unwrap_or_else(|| usage());
                only = Some(list.split(',').map(|s| s.trim().to_owned()).collect());
            }
            "--no-cache" => use_cache = false,
            "--checkpoint-every" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => checkpoint_every = n,
                None => usage(),
            },
            "--jobs" => {
                let n = args.next().and_then(|s| s.parse().ok());
                match n {
                    Some(n) if n >= 1 => jobs = Some(n),
                    _ => usage(),
                }
            }
            "--slices" => {
                let n = args.next().and_then(|s| s.parse().ok());
                match n {
                    Some(n) if n >= 1 => slices = Some(n),
                    _ => usage(),
                }
            }
            "--sampled" => sampled_mode = true,
            "--stats" => stats_mode = true,
            "--seeds" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => seeds = n,
                _ => usage(),
            },
            "--seed-base" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed_base = n,
                None => usage(),
            },
            "--list" => {
                for f in REGISTRY {
                    println!("{:10} {:28} {}", f.id(), f.file_id(), f.title());
                }
                return;
            }
            _ => usage(),
        }
    }

    if sampled_mode && only.is_none() {
        only = Some(vec!["fig27".to_owned()]);
    }
    let figures: Vec<_> = match &only {
        None => REGISTRY.to_vec(),
        Some(ids) => ids
            .iter()
            .map(|id| {
                ehs_bench::figures::by_id(id).unwrap_or_else(|| {
                    eprintln!("unknown figure id `{id}` (try --list)");
                    std::process::exit(2);
                })
            })
            .collect(),
    };

    let results_dir = Path::new("results");
    // Checkpoints are independent of the result cache: a --no-cache run
    // re-simulates every point but still survives being killed.
    let sweep = Sweep::new(SweepOptions {
        jobs,
        disk_cache: use_cache.then(|| Sweep::default_cache_dir(results_dir)),
        checkpoints: (checkpoint_every > 0).then(|| CheckpointPolicy {
            dir: Sweep::default_cache_dir(results_dir),
            every_cycles: checkpoint_every,
        }),
        slices,
    });

    let t0 = Instant::now();
    let plan = SeedPlan::new(seeds, seed_base);
    let points: Vec<_> = if stats_mode {
        monte::stats_points(&figures, &plan)
    } else {
        figures.iter().flat_map(|f| f.points()).collect()
    };
    let unique: HashSet<_> = points.iter().map(|p| p.key()).collect();
    println!(
        "[paper] {} figure(s); {} point(s), {} unique{}",
        figures.len(),
        points.len(),
        unique.len(),
        if stats_mode {
            format!(" (stats mode: {seeds} seed(s) from {seed_base})")
        } else {
            String::new()
        }
    );

    // Simulation phase: the union of every figure's needs, exactly once
    // per unique key. Errors surface during rendering, with the figure
    // that needed the point.
    let n_unique = unique.len() as u64;
    let _ = sweep.request(points).wait();

    // Render phase: all memo hits.
    if stats_mode {
        for fs in monte::evaluate(&figures, &sweep, &plan) {
            println!();
            monte::print_stats(&fs);
            monte::write_stats(results_dir, &fs);
        }
    } else {
        let cx = RenderCx::new(&sweep);
        for f in &figures {
            println!();
            f.render(&cx);
        }
    }

    let wall_ms = t0.elapsed().as_millis() as u64;
    let stats = sweep.stats();
    println!(
        "\n[paper] done in {:.1}s: {} requested, {} unique, {} simulated, \
         {} from disk cache, {} memo hits",
        wall_ms as f64 / 1000.0,
        stats.requested,
        n_unique,
        stats.simulated,
        stats.disk_hits,
        stats.memo_hits
    );
    if stats.resumed > 0 {
        println!(
            "[paper] {} point(s) resumed from crash checkpoints",
            stats.resumed
        );
    }
    // The engine's exactly-once invariant: every unique point was
    // materialised once — by simulation or by a disk-cache load.
    assert_eq!(
        stats.unique(),
        n_unique,
        "sweep engine simulated a point more than once (or lost one)"
    );
    if !use_cache {
        assert_eq!(stats.disk_hits, 0, "--no-cache must not read the cache");
    }

    let record = BenchRecord {
        unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
        wall_ms,
        jobs: sweep.jobs() as u64,
        cache_enabled: use_cache,
        figures: figures.len() as u64,
        requested: stats.requested,
        unique_points: n_unique,
        simulated: stats.simulated,
        disk_hits: stats.disk_hits,
        memo_hits: stats.memo_hits,
        in_flight_waits: stats.in_flight_waits,
        checkpoint_every_cycles: checkpoint_every,
        resumed: stats.resumed,
        cycles_simulated: Some(stats.cycles_simulated),
        stats_seeds: stats_mode.then_some(seeds),
        stats_seed_base: stats_mode.then_some(seed_base),
        slices: sweep.slices() as u64,
        sampled: sampled_mode,
    };
    append_bench_record("BENCH_sweep.json", record);
}

/// Appends one record to the JSON array in `path` (creating it if
/// missing; an unreadable file is replaced rather than crashing the
/// run, since the benchmark log is advisory).
fn append_bench_record(path: &str, record: BenchRecord) {
    let mut records: Vec<BenchRecord> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<serde::Content>(&text).ok())
        .and_then(|c| {
            c.as_seq()
                .map(|s| s.iter().filter_map(migrate_record).collect())
        })
        .unwrap_or_default();
    records.push(record);
    let json = serde_json::to_string_pretty(&records).expect("serialise bench records");
    std::fs::write(path, json).expect("write BENCH_sweep.json");
    println!("[bench record appended to {path}]");
}
