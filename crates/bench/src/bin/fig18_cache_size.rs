//! Figure 18: sensitivity to cache size (256 B - 8 kB).

use ehs_bench::run_sweep;
use ehs_sim::SimConfig;

fn main() {
    let trace = SimConfig::default_trace();
    let points = [256u32, 512, 1024, 2048, 4096, 8192]
        .into_iter()
        .map(|s| {
            let label = if s < 1024 {
                format!("{s} B")
            } else {
                format!("{} kB", s / 1024)
            };
            let f: Box<dyn Fn(&mut SimConfig)> = Box::new(move |c: &mut SimConfig| {
                *c = c.clone().with_cache_size(s);
            });
            (label, f)
        })
        .collect();
    run_sweep(
        "fig18_cache_size",
        "cache size (paper: gains shrink as caches grow)",
        &trace,
        points,
    );
}
