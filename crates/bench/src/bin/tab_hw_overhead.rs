//! Section 6.1: the hardware-overhead accounting for IPEX's registers.

use ehs_bench::{banner, write_results};

fn main() {
    banner("tab_hw_overhead", "IPEX hardware overhead (Section 6.1)");
    let r = ipex::overhead::report();
    println!(
        "bits per cache:      {} (Rthrottled 32 + Rtotal 32 + Rtr 32 + Ripd 3)",
        r.bits_per_cache
    );
    println!("caches extended:     {}", r.caches);
    println!("total bits:          {} (paper: 198)", r.total_bits);
    println!("added area:          {:.2} um^2", r.added_area_um2);
    println!(
        "core area:           {:.2} mm^2 (CACTI, 45 nm)",
        r.core_area_mm2
    );
    println!(
        "core-area overhead:  {:.4}% (paper: 0.0018%)",
        r.core_area_percent
    );
    write_results("tab_hw_overhead", &r);
}
