//! Deep-dive diagnostics for one workload (development aid, not a paper
//! figure).
//!
//! Usage: `diag [workload] [--trace [FILE]] [--checkpoint-every N]`
//! (default workload `g721e`).
//!
//! With `--trace`, the IPEX(both) run is re-executed with the JSONL
//! event trace enabled (default file `results/<workload>.trace.jsonl`),
//! then the tool prints a short timeline excerpt, a per-power-cycle
//! stall/energy attribution table built from the
//! [`PowerCycleSummary`](ehs_sim::SimEvent) rollups, and a
//! reconciliation of the per-event tallies against the aggregate
//! counters of the same run.
//!
//! With `--checkpoint-every N`, the IPEX(both) run is additionally
//! re-executed in snapshot/resume legs of N simulated cycles — every
//! pause serializes the full machine state to JSON, reloads it, and
//! resumes a fresh machine from it — and the tool verifies the split
//! run's state digests and final results are bit-identical to the
//! uninterrupted run's.

use ehs_bench::{expect_ok, pct, run_one};
use ehs_sim::prelude::*;

fn main() {
    let mut name = String::from("g721e");
    let mut trace_to: Option<Option<String>> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        if a == "--trace" {
            let file = args.peek().filter(|n| !n.starts_with('-')).cloned();
            if file.is_some() {
                args.next();
            }
            trace_to = Some(file);
        } else if a == "--checkpoint-every" {
            match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => checkpoint_every = Some(n),
                _ => {
                    eprintln!("--checkpoint-every needs a positive cycle count");
                    std::process::exit(2);
                }
            }
        } else {
            name = a;
        }
    }

    let w = ehs_workloads::by_name(&name).expect("workload name");
    let trace = SimConfig::default_trace();

    for (label, cfg) in [
        ("no-prefetch", SimConfig::builder().no_prefetch().build()),
        ("baseline", SimConfig::builder().build()),
        ("ipex-both", SimConfig::builder().ipex(Ipex::Both).build()),
    ] {
        let r = expect_ok(&name, &cfg, run_one(w, &cfg, &trace));
        print_result(&name, label, &r);
    }

    if let Some(file) = trace_to {
        let path = file.unwrap_or_else(|| format!("results/{name}.trace.jsonl"));
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("create trace dir");
        }
        traced_run(&name, w, &trace, &path);
    }

    if let Some(every) = checkpoint_every {
        checkpoint_demo(&name, w, &trace, every);
    }
}

/// Re-runs IPEX(both) in snapshot/resume legs of `every` cycles, round-
/// tripping the full machine state through JSON at each pause, and
/// verifies the split run is bit-identical to the uninterrupted one.
fn checkpoint_demo(name: &str, w: &ehs_workloads::Workload, trace: &PowerTrace, every: u64) {
    let cfg = SimConfig::builder().ipex(Ipex::Both).build();
    let program = w.program();
    println!("=== {name} / ipex-both (checkpoint/resume every {every} cycles) ===");
    let whole = Machine::with_trace(cfg.clone(), &program, trace.clone())
        .run()
        .expect("uninterrupted run completes");

    let mut machine = Machine::with_trace(cfg, &program, trace.clone());
    let mut legs = 0u64;
    let split = loop {
        match machine
            .run_until(machine.cycle().saturating_add(every))
            .expect("checkpointed run completes")
        {
            RunStatus::Completed(r) => break *r,
            RunStatus::Paused => {
                legs += 1;
                let json = machine.snapshot(&program).to_json();
                let snap = Snapshot::from_json(&json).expect("snapshot round-trips");
                machine =
                    Machine::resume(&snap, &program, trace.clone()).expect("snapshot resumes");
                let digest = machine.state_digest(&program);
                assert_eq!(
                    digest,
                    snap.digest(),
                    "resumed state digest diverged at cycle {}",
                    snap.cycle
                );
            }
        }
    };
    assert_eq!(
        split, whole,
        "split run result diverged from the uninterrupted run"
    );
    println!(
        "{legs} snapshot/resume legs ({} cycles total): state digests verified at \
         every pause; final result bit-identical to the uninterrupted run",
        whole.stats.total_cycles
    );
    println!();
}

/// Re-runs the IPEX(both) configuration with a JSONL sink attached and
/// prints the timeline excerpt, attribution table, and reconciliation.
fn traced_run(name: &str, w: &ehs_workloads::Workload, trace: &PowerTrace, path: &str) {
    let cfg = SimConfig::builder()
        .ipex(Ipex::Both)
        .build()
        .with_trace_mode(TraceMode::Jsonl { path: path.into() });
    let mut machine = Machine::with_trace(cfg, &w.program(), trace.clone());
    let result = machine.run().expect("traced run completes");
    let counts = *machine.trace_counts();

    println!("=== {name} / ipex-both (traced) ===");
    println!("[trace written to {path}]");

    let text = std::fs::read_to_string(path).expect("read trace back");
    let events: Vec<SimEvent> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("trace line parses"))
        .collect();
    println!("{} events", events.len());

    timeline_excerpt(&events);
    attribution_table(&events);
    reconcile(&counts, &result);
}

/// Prints the first few outage-adjacent events as a human-readable
/// timeline.
fn timeline_excerpt(events: &[SimEvent]) {
    println!("\n-- timeline (first outage, up to 12 events) --");
    let Some(first_outage) = events
        .iter()
        .position(|e| matches!(e, SimEvent::OutageBegin { .. }))
    else {
        println!("(no outage in this run)");
        return;
    };
    let start = first_outage.saturating_sub(4);
    for ev in events.iter().skip(start).take(12) {
        println!("{:>12}  {}", ev.cycle(), describe(ev));
    }
}

fn describe(ev: &SimEvent) -> String {
    match *ev {
        SimEvent::OutageBegin { voltage, .. } => {
            format!("outage-begin          V={voltage:.3}")
        }
        SimEvent::BackupDone {
            dirty_blocks,
            backup_cycles,
            energy_nj,
            ..
        } => format!(
            "backup-done           {dirty_blocks} dirty blocks in {backup_cycles} cycles, {energy_nj:.1} nJ"
        ),
        SimEvent::Restore { power_cycle, .. } => {
            format!("restore               power cycle {power_cycle} begins")
        }
        SimEvent::PrefetchIssued { path, block, done_at, .. } => {
            format!("prefetch-issued  [{}]  block {block:#x} ready at {done_at}", path.letter())
        }
        SimEvent::PrefetchThrottled { path, count, .. } => {
            format!("prefetch-throttled [{}] {count} candidates dropped", path.letter())
        }
        SimEvent::PrefetchReissued { path, block, .. } => {
            format!("prefetch-reissued [{}] block {block:#x}", path.letter())
        }
        SimEvent::BufferHit { path, block, late_by, .. } => {
            format!("buffer-hit       [{}]  block {block:#x} late_by {late_by}", path.letter())
        }
        SimEvent::LatePrefetch { path, block, stall_cycles, .. } => {
            format!("late-prefetch    [{}]  block {block:#x} stalled {stall_cycles}", path.letter())
        }
        SimEvent::EvictedUnused { path, block, .. } => {
            format!("evicted-unused   [{}]  block {block:#x}", path.letter())
        }
        SimEvent::LostUnused { path, count, .. } => {
            format!("lost-unused      [{}]  {count} entries", path.letter())
        }
        SimEvent::CacheFill { path, block, .. } => {
            format!("cache-fill       [{}]  block {block:#x}", path.letter())
        }
        SimEvent::Writeback { path, block, .. } => {
            format!("writeback        [{}]  block {block:#x}", path.letter())
        }
        SimEvent::ThresholdCross { path, voltage, old_degree, new_degree, .. } => format!(
            "threshold-cross  [{}]  V={voltage:.3} degree {old_degree} -> {new_degree}",
            path.letter()
        ),
        SimEvent::PolicyAdapt { path, adaptations, .. } => format!(
            "policy-adapt     [{}]  adaptation #{adaptations}",
            path.letter()
        ),
        SimEvent::PowerCycleSummary { power_cycle, on_cycles, off_cycles, .. } => format!(
            "power-cycle-summary   #{power_cycle}: on {on_cycles} off {off_cycles}"
        ),
    }
}

/// Prints per-power-cycle on/off time, energy buckets and throttle rate
/// from the `PowerCycleSummary` rollups.
fn attribution_table(events: &[SimEvent]) {
    println!("\n-- per-power-cycle attribution --");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "pc", "on", "off", "cache nJ", "mem nJ", "comp nJ", "bkrst nJ", "thr rate"
    );
    let mut shown = 0usize;
    let summaries: Vec<&SimEvent> = events
        .iter()
        .filter(|e| matches!(e, SimEvent::PowerCycleSummary { .. }))
        .collect();
    let total = summaries.len();
    for ev in &summaries {
        if let SimEvent::PowerCycleSummary {
            power_cycle,
            on_cycles,
            off_cycles,
            cache_nj,
            memory_nj,
            compute_nj,
            backup_restore_nj,
            throttle_rate,
            ..
        } = ev
        {
            if shown == 10 && total > 12 {
                println!("{:>6}", format!("(+{})", total - 12));
            }
            if shown < 10 || shown >= total.saturating_sub(2) {
                println!(
                    "{power_cycle:>6} {on_cycles:>12} {off_cycles:>12} {cache_nj:>10.1} {memory_nj:>10.1} {compute_nj:>10.1} {backup_restore_nj:>10.1} {:>9}",
                    pct(*throttle_rate)
                );
            }
            shown += 1;
        }
    }
}

/// Checks the per-event tallies against the aggregate statistics of the
/// same run; any mismatch is a simulator bug.
fn reconcile(c: &EventCounts, r: &SimResult) {
    println!("\n-- trace/aggregate reconciliation --");
    let ipex_throttled = r.ipex_i.map_or(0, |s| s.throttled) + r.ipex_d.map_or(0, |s| s.throttled);
    let ipex_reissued = r.ipex_i.map_or(0, |s| s.reissued) + r.ipex_d.map_or(0, |s| s.reissued);
    let checks: [(&str, u64, u64); 10] = [
        (
            "prefetch-issued == buffer inserts",
            c.prefetch_issued,
            r.ibuf.inserted + r.dbuf.inserted,
        ),
        (
            "prefetch-issued == NVM prefetch reads",
            c.prefetch_issued,
            r.nvm.prefetch_reads,
        ),
        (
            "buffer-hit == useful prefetches",
            c.buffer_hit,
            r.ibuf.useful + r.dbuf.useful,
        ),
        (
            "late-prefetch == duplicates suppressed",
            c.late_prefetch,
            r.ibuf.duplicate_suppressed + r.dbuf.duplicate_suppressed,
        ),
        (
            "evicted-unused == buffer evictions",
            c.evicted_unused,
            r.ibuf.evicted_unused + r.dbuf.evicted_unused,
        ),
        (
            "lost-unused == buffer losses",
            c.lost_unused,
            r.ibuf.lost_unused + r.dbuf.lost_unused,
        ),
        (
            "prefetch-throttled == IPEX throttled",
            c.prefetch_throttled,
            ipex_throttled,
        ),
        (
            "prefetch-reissued == IPEX reissued",
            c.prefetch_reissued,
            ipex_reissued,
        ),
        (
            "writeback+checkpoints == NVM writes",
            c.writeback + r.stats.checkpoint_blocks,
            r.nvm.writes,
        ),
        (
            "restore == power cycles - 1",
            c.restore,
            r.stats.power_cycles - 1,
        ),
    ];
    let mut ok = true;
    for (what, lhs, rhs) in checks {
        let mark = if lhs == rhs { "ok " } else { "FAIL" };
        ok &= lhs == rhs;
        println!("{mark}  {what}: {lhs} vs {rhs}");
    }
    assert!(ok, "trace does not reconcile with aggregates");
    println!("all reconciliation checks passed");
}

fn print_result(name: &str, label: &str, r: &SimResult) {
    println!("=== {name} / {label} ===");
    println!(
        "cycles total {} on {} off {}  pcycles {}  instr {}",
        r.stats.total_cycles,
        r.stats.on_cycles,
        r.stats.off_cycles,
        r.stats.power_cycles,
        r.stats.instructions
    );
    println!(
        "stall I {} D {}   demand reads I {} D {}",
        pct(r.stats.istall_fraction()),
        pct(r.stats.dstall_fraction()),
        r.stats.i_demand_reads,
        r.stats.d_demand_reads
    );
    println!(
        "NVM: demand {} prefetch {} writes {}  (traffic {})",
        r.nvm.demand_reads,
        r.nvm.prefetch_reads,
        r.nvm.writes,
        r.nvm.total_traffic()
    );
    for (side, b) in [("I", r.ibuf), ("D", r.dbuf)] {
        println!(
            "{side}buf: inserted {} useful {} evicted_unused {} lost_unused {} dupSupp {} redundant {} acc {}",
            b.inserted,
            b.useful,
            b.evicted_unused,
            b.lost_unused,
            b.duplicate_suppressed,
            b.redundant_skipped,
            pct(b.accuracy())
        );
    }
    println!("redundant cache skips {}", r.stats.redundant_cache_skips);
    println!(
        "energy nJ: cache {:.0} mem {:.0} compute {:.0} bkrst {:.0} total {:.0}",
        r.energy.cache_nj,
        r.energy.memory_nj,
        r.energy.compute_nj,
        r.energy.backup_restore_nj,
        r.energy.total_nj()
    );
    for (side, s) in [("I", r.ipex_i), ("D", r.ipex_d)] {
        if let Some(s) = s {
            println!(
                "IPEX {side}: issued {} throttled {} ({}) reissued {} savingEntries {} thrLow {} thrRaise {}",
                s.issued,
                s.throttled,
                pct(s.overall_throttle_rate()),
                s.reissued,
                s.saving_mode_entries,
                s.threshold_lowers,
                s.threshold_raises
            );
        }
    }
    println!();
}
