//! Deep-dive diagnostics for one workload (development aid, not a paper
//! figure). Usage: `diag [workload]` (default `g721e`).

use ehs_bench::{pct, run_one};
use ehs_sim::SimConfig;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "g721e".into());
    let w = ehs_workloads::by_name(&name).expect("workload name");
    let trace = SimConfig::default_trace();

    for (label, cfg) in [
        ("no-prefetch", SimConfig::no_prefetch()),
        ("baseline", SimConfig::baseline()),
        ("ipex-both", SimConfig::ipex_both()),
    ] {
        let r = run_one(w, &cfg, &trace);
        println!("=== {name} / {label} ===");
        println!(
            "cycles total {} on {} off {}  pcycles {}  instr {}",
            r.stats.total_cycles, r.stats.on_cycles, r.stats.off_cycles, r.stats.power_cycles, r.stats.instructions
        );
        println!(
            "stall I {} D {}   demand reads I {} D {}",
            pct(r.stats.istall_fraction()),
            pct(r.stats.dstall_fraction()),
            r.stats.i_demand_reads,
            r.stats.d_demand_reads
        );
        println!(
            "NVM: demand {} prefetch {} writes {}  (traffic {})",
            r.nvm.demand_reads,
            r.nvm.prefetch_reads,
            r.nvm.writes,
            r.nvm.total_traffic()
        );
        for (side, b) in [("I", r.ibuf), ("D", r.dbuf)] {
            println!(
                "{side}buf: inserted {} useful {} evicted_unused {} lost_unused {} dupSupp {} redundant {} acc {}",
                b.inserted,
                b.useful,
                b.evicted_unused,
                b.lost_unused,
                b.duplicate_suppressed,
                b.redundant_skipped,
                pct(b.accuracy())
            );
        }
        println!("redundant cache skips {}", r.stats.redundant_cache_skips);
        println!(
            "energy nJ: cache {:.0} mem {:.0} compute {:.0} bkrst {:.0} total {:.0}",
            r.energy.cache_nj,
            r.energy.memory_nj,
            r.energy.compute_nj,
            r.energy.backup_restore_nj,
            r.energy.total_nj()
        );
        for (side, s) in [("I", r.ipex_i), ("D", r.ipex_d)] {
            if let Some(s) = s {
                println!(
                    "IPEX {side}: issued {} throttled {} ({}) reissued {} savingEntries {} thrLow {} thrRaise {}",
                    s.issued,
                    s.throttled,
                    pct(s.overall_throttle_rate()),
                    s.reissued,
                    s.saving_mode_entries,
                    s.threshold_lowers,
                    s.threshold_raises
                );
            }
        }
        println!();
    }
}
