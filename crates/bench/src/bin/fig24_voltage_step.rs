//! Figure 24: sensitivity to the adaptive threshold step size.

use ehs_bench::run_sweep;
use ehs_sim::{PrefetchMode, SimConfig};
use ipex::IpexConfig;

fn main() {
    let trace = SimConfig::default_trace();
    let points = [0.05f64, 0.10, 0.15]
        .into_iter()
        .map(|step| {
            let label = format!("{step:.2} V");
            let f: Box<dyn Fn(&mut SimConfig)> = Box::new(move |c: &mut SimConfig| {
                let ic = IpexConfig {
                    voltage_step_v: step,
                    ..IpexConfig::paper_default()
                };
                if matches!(c.inst_mode, PrefetchMode::Ipex(_)) {
                    c.inst_mode = PrefetchMode::Ipex(ic);
                    c.data_mode = PrefetchMode::Ipex(ic);
                }
            });
            (label, f)
        })
        .collect();
    run_sweep(
        "fig24_voltage_step",
        "voltage step size (paper: 0.05 V is best)",
        &trace,
        points,
    );
}
