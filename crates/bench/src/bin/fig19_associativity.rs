//! Figure 19: sensitivity to cache associativity (1-8 ways).

use ehs_bench::run_sweep;
use ehs_sim::SimConfig;

fn main() {
    let trace = SimConfig::default_trace();
    let points = [1u32, 2, 4, 8]
        .into_iter()
        .map(|a| {
            let label = format!("{a}-way");
            let f: Box<dyn Fn(&mut SimConfig)> = Box::new(move |c: &mut SimConfig| {
                c.icache.assoc = a;
                c.dcache.assoc = a;
            });
            (label, f)
        })
        .collect();
    run_sweep(
        "fig19_associativity",
        "cache associativity (paper: 4.89%-8.96% across)",
        &trace,
        points,
    );
}
