//! Figure 2: fraction of on-time stalled on ICache/DCache misses per
//! application (prefetchers disabled, default 2 kB caches).

use ehs_bench::{banner, pct, run_suite, write_results};
use ehs_sim::SimConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    app: &'static str,
    istall: f64,
    dstall: f64,
}

fn main() {
    banner("fig02", "pipeline-stall breakdown (no prefetchers), RFHome");
    let trace = SimConfig::default_trace();
    let res = run_suite(&SimConfig::no_prefetch(), &trace);
    let mut rows = Vec::new();
    for w in &ehs_workloads::SUITE {
        let r = &res[w.name()];
        let row = Row {
            app: w.name(),
            istall: r.stats.istall_fraction(),
            dstall: r.stats.dstall_fraction(),
        };
        println!(
            "{:10} ICache {:>8}  DCache {:>8}",
            row.app,
            pct(row.istall),
            pct(row.dstall)
        );
        rows.push(row);
    }
    let gi = rows.iter().map(|r| r.istall).sum::<f64>() / rows.len() as f64;
    let gd = rows.iter().map(|r| r.dstall).sum::<f64>() / rows.len() as f64;
    println!(
        "{:10} ICache {:>8}  DCache {:>8}   (paper: 23.45% / 18.64%)",
        "mean",
        pct(gi),
        pct(gd)
    );
    write_results("fig02_stall_breakdown", &rows);
}
