//! Design-choice ablations called out in DESIGN.md (beyond the paper's
//! own figures): fixed vs adaptive thresholds, and the Section 5.1
//! reissue-on-recovery extension (the paper's future work).

use ehs_bench::run_sweep;
use ehs_sim::{PrefetchMode, SimConfig};
use ipex::IpexConfig;

fn main() {
    let trace = SimConfig::default_trace();
    let variants: Vec<(&str, IpexConfig)> = vec![
        ("adaptive (default)", IpexConfig::paper_default()),
        (
            "fixed thresholds",
            IpexConfig {
                adaptive_thresholds: false,
                ..IpexConfig::paper_default()
            },
        ),
        (
            "reissue extension",
            IpexConfig {
                reissue_throttled: true,
                ..IpexConfig::paper_default()
            },
        ),
        (
            "fixed + reissue",
            IpexConfig {
                adaptive_thresholds: false,
                reissue_throttled: true,
                ..IpexConfig::paper_default()
            },
        ),
    ];
    let points = variants
        .into_iter()
        .map(|(label, ic)| {
            let f: Box<dyn Fn(&mut SimConfig)> = Box::new(move |c: &mut SimConfig| {
                if matches!(c.inst_mode, PrefetchMode::Ipex(_)) {
                    c.inst_mode = PrefetchMode::Ipex(ic);
                    c.data_mode = PrefetchMode::Ipex(ic);
                }
            });
            (label.to_owned(), f)
        })
        .collect();
    run_sweep("ablations", "IPEX design ablations", &trace, points);
}
