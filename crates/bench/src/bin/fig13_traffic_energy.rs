//! Figure 13: main-memory traffic reduction (bars) and total energy
//! normalised to the baseline (line) with IPEX on both prefetchers.

use ehs_bench::{banner, pct, run_suite, write_results};
use ehs_sim::SimConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    app: &'static str,
    traffic_reduction: f64,
    normalized_energy: f64,
}

fn main() {
    banner("fig13", "memory-traffic reduction + normalised energy");
    let trace = SimConfig::default_trace();
    let base = run_suite(&SimConfig::baseline(), &trace);
    let ipex = run_suite(&SimConfig::ipex_both(), &trace);
    let mut rows = Vec::new();
    for w in &ehs_workloads::SUITE {
        let b = &base[w.name()];
        let i = &ipex[w.name()];
        let row = Row {
            app: w.name(),
            traffic_reduction: 1.0
                - i.nvm.total_traffic() as f64 / b.nvm.total_traffic().max(1) as f64,
            normalized_energy: i.total_energy_nj() / b.total_energy_nj(),
        };
        println!(
            "{:10} traffic {:>8}   energy {:>7.4}",
            row.app,
            pct(row.traffic_reduction),
            row.normalized_energy
        );
        rows.push(row);
    }
    let mt = rows.iter().map(|r| r.traffic_reduction).sum::<f64>() / rows.len() as f64;
    let me = rows.iter().map(|r| r.normalized_energy).sum::<f64>() / rows.len() as f64;
    println!(
        "{:10} traffic {:>8}   energy {:>7.4}  (paper: 2.00% / 0.921)",
        "mean",
        pct(mt),
        me
    );
    write_results("fig13_traffic_energy", &rows);
}
