//! Figure 1: speedup over the 2 kB baseline and cache-leakage share of
//! total energy, as cache size varies (prefetchers disabled).

use std::collections::BTreeMap;

use ehs_bench::{banner, gmean, pct, run_suite, write_results};
use ehs_sim::SimConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    size_bytes: u32,
    speedup_over_2kb: f64,
    cache_leak_share: f64,
}

fn main() {
    banner("fig01", "cache-size motivation (no prefetchers), RFHome");
    let trace = SimConfig::default_trace();
    let sizes = [256u32, 512, 1024, 2048, 4096, 8192];
    let mut results = BTreeMap::new();
    for &s in &sizes {
        results.insert(
            s,
            run_suite(&SimConfig::no_prefetch().with_cache_size(s), &trace),
        );
    }
    let base = &results[&2048];
    let mut rows = Vec::new();
    for &s in &sizes {
        let r = &results[&s];
        let speeds: Vec<f64> = ehs_workloads::SUITE
            .iter()
            .map(|w| {
                base[w.name()].stats.total_cycles as f64 / r[w.name()].stats.total_cycles as f64
            })
            .collect();
        // Leakage share: cache leak power / total energy. The cache
        // bucket is access energy + leakage; recompute leakage directly.
        let leak_share: Vec<f64> = ehs_workloads::SUITE
            .iter()
            .map(|w| {
                let res = &r[w.name()];
                let leak_nj = 2.0
                    * SimConfig::baseline().energy.cache_leak_nj_per_cycle(s)
                    * res.stats.on_cycles as f64;
                leak_nj / res.total_energy_nj()
            })
            .collect();
        let row = Row {
            size_bytes: s,
            speedup_over_2kb: gmean(&speeds),
            cache_leak_share: leak_share.iter().sum::<f64>() / leak_share.len() as f64,
        };
        println!(
            "{:>5} B  speedup {:.3}   cache leak {}",
            s,
            row.speedup_over_2kb,
            pct(row.cache_leak_share)
        );
        rows.push(row);
    }
    write_results("fig01_cache_size_motivation", &rows);
}
