//! Figure 15: ICache/DCache miss rates with and without IPEX on both
//! prefetchers.

use ehs_bench::{banner, pct, run_suite, write_results};
use ehs_sim::SimConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    app: &'static str,
    icache_miss: f64,
    dcache_miss: f64,
    icache_miss_ipex: f64,
    dcache_miss_ipex: f64,
}

fn main() {
    banner("fig15", "cache miss rates, baseline vs IPEX");
    let trace = SimConfig::default_trace();
    let base = run_suite(&SimConfig::baseline(), &trace);
    let ipex = run_suite(&SimConfig::ipex_both(), &trace);
    let mut rows = Vec::new();
    for w in &ehs_workloads::SUITE {
        let b = &base[w.name()];
        let i = &ipex[w.name()];
        let row = Row {
            app: w.name(),
            icache_miss: b.icache.miss_rate(),
            dcache_miss: b.dcache.miss_rate(),
            icache_miss_ipex: i.icache.miss_rate(),
            dcache_miss_ipex: i.dcache.miss_rate(),
        };
        println!(
            "{:10} I {:>7} -> {:>7}   D {:>7} -> {:>7}",
            row.app,
            pct(row.icache_miss),
            pct(row.icache_miss_ipex),
            pct(row.dcache_miss),
            pct(row.dcache_miss_ipex)
        );
        rows.push(row);
    }
    let di: f64 = rows
        .iter()
        .map(|r| r.icache_miss_ipex - r.icache_miss)
        .sum::<f64>()
        / rows.len() as f64;
    let dd: f64 = rows
        .iter()
        .map(|r| r.dcache_miss_ipex - r.dcache_miss)
        .sum::<f64>()
        / rows.len() as f64;
    println!(
        "mean miss-rate increase under IPEX: I {} D {}  (paper: +0.08% / +0.02%)",
        pct(di),
        pct(dd)
    );
    write_results("fig15_miss_rates", &rows);
}
