//! Figure 21: sensitivity to NVM technology (ReRAM / STT-RAM / PCM).

use ehs_bench::run_sweep;
use ehs_mem::{NvmConfig, NvmTech, DEFAULT_NVM_BYTES};
use ehs_sim::SimConfig;

fn main() {
    let trace = SimConfig::default_trace();
    let points = NvmTech::ALL
        .into_iter()
        .map(|tech| {
            let label = tech.name().to_owned();
            let f: Box<dyn Fn(&mut SimConfig)> = Box::new(move |c: &mut SimConfig| {
                c.nvm = NvmConfig::for_tech(tech, DEFAULT_NVM_BYTES);
            });
            (label, f)
        })
        .collect();
    run_sweep(
        "fig21_nvm_tech",
        "NVM technology (paper: slower NVM => bigger gain)",
        &trace,
        points,
    );
}
