//! Distribution statistics for Monte Carlo seed sweeps.
//!
//! Every headline number in `EXPERIMENTS.md` historically rested on a
//! single synthetic trace seed; this module turns those point estimates
//! into distributions. It is built around one hard requirement, which
//! the sweep service's sharding imposes: **merge- and order-invariance
//! down to the bit**. Seed batches arrive from many workers in
//! nondeterministic order and may be split across processes, yet
//! repeated runs must publish byte-identical figure JSON.
//!
//! The [`Accumulator`] achieves that by refusing to fold floats as they
//! arrive. It stores `(tag, value)` pairs in a `BTreeMap` keyed by tag
//! (the trace seed), so merging is set union and every statistic is
//! computed in ascending-tag order at [`Accumulator::summary`] time.
//! Identical sample sets therefore reduce through the identical
//! float-operation sequence, no matter how they were partitioned —
//! which is the property `tests/stats_prop.rs` checks exhaustively.
//!
//! The bootstrap resampler is deterministic for the same reason: its
//! RNG is seeded from the FNV-1a digest of the tag-ordered sample bits,
//! so the same distribution always draws the same resamples.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Bootstrap resample count (percentile method, 95 % interval).
pub const BOOTSTRAP_RESAMPLES: usize = 2000;

/// A 95 % confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ci {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Ci {
    /// Whether `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Summary statistics of one metric's seed distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples (seeds).
    pub n: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator); 0 for n < 2.
    pub sd: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Geometric mean, when every sample is positive.
    pub gmean: Option<f64>,
    /// Student-t 95 % CI on the mean (degenerate `[mean, mean]` for
    /// n < 2, where no dispersion estimate exists).
    pub ci95_t: Ci,
    /// Bootstrap percentile 95 % CI on the mean (deterministic
    /// resampler, see the module docs).
    pub ci95_bootstrap: Ci,
    /// Student-t 95 % CI on the *geometric* mean (computed on logs,
    /// exponentiated back), when every sample is positive.
    pub gmean_ci95_t: Option<Ci>,
}

/// An order- and merge-invariant accumulator of tagged samples.
///
/// Tags identify samples (for seed sweeps, the tag *is* the trace
/// seed). Pushing the same tag twice is allowed only with a
/// bit-identical value — anything else means two workers disagreed on
/// a deterministic simulation, which is a harness bug worth a panic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    samples: BTreeMap<u64, f64>,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Accumulator {
        Accumulator::default()
    }

    /// Builds an accumulator from `(tag, value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, f64)>) -> Accumulator {
        let mut acc = Accumulator::new();
        for (tag, value) in pairs {
            acc.push(tag, value);
        }
        acc
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `tag` was already recorded with a different bit
    /// pattern (deterministic replays must agree exactly).
    pub fn push(&mut self, tag: u64, value: f64) {
        match self.samples.entry(tag) {
            Entry::Vacant(e) => {
                e.insert(value);
            }
            Entry::Occupied(e) => {
                assert!(
                    e.get().to_bits() == value.to_bits(),
                    "tag {tag} re-recorded with a different value: {} vs {value}",
                    e.get()
                );
            }
        }
    }

    /// Merges another accumulator into this one (set union; duplicate
    /// tags must carry bit-identical values, as in [`push`](Self::push)).
    pub fn merge(&mut self, other: &Accumulator) {
        for (&tag, &value) in &other.samples {
            self.push(tag, value);
        }
    }

    /// Number of distinct samples recorded.
    pub fn n(&self) -> usize {
        self.samples.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples in ascending tag order — the canonical reduction
    /// order every statistic uses.
    pub fn values(&self) -> Vec<f64> {
        self.samples.values().copied().collect()
    }

    /// Computes the summary statistics over the recorded samples.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator is empty.
    pub fn summary(&self) -> Summary {
        let xs = self.values();
        assert!(!xs.is_empty(), "summary of an empty accumulator");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let sd = if n < 2 {
            0.0
        } else {
            let ss: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
            (ss / (n - 1) as f64).sqrt()
        };
        let mut min = xs[0];
        let mut max = xs[0];
        for &x in &xs[1..] {
            if x < min {
                min = x;
            }
            if x > max {
                max = x;
            }
        }
        let half = t_quantile_975(n.saturating_sub(1)) * sd / (n as f64).sqrt();
        let ci95_t = Ci {
            lo: mean - half,
            hi: mean + half,
        };
        let ci95_bootstrap = bootstrap_ci(&xs);

        let all_positive = xs.iter().all(|&x| x > 0.0);
        let (gmean, gmean_ci95_t) = if all_positive {
            let logs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
            let lmean = logs.iter().sum::<f64>() / n as f64;
            let lsd = if n < 2 {
                0.0
            } else {
                let ss: f64 = logs.iter().map(|l| (l - lmean) * (l - lmean)).sum();
                (ss / (n - 1) as f64).sqrt()
            };
            let lhalf = t_quantile_975(n.saturating_sub(1)) * lsd / (n as f64).sqrt();
            (
                Some(lmean.exp()),
                Some(Ci {
                    lo: (lmean - lhalf).exp(),
                    hi: (lmean + lhalf).exp(),
                }),
            )
        } else {
            (None, None)
        };

        Summary {
            n: n as u64,
            mean,
            sd,
            min,
            max,
            gmean,
            ci95_t,
            ci95_bootstrap,
            gmean_ci95_t,
        }
    }
}

/// Two-sided 97.5 % Student-t quantile for `df` degrees of freedom —
/// the multiplier of a 95 % CI on the mean.
///
/// Exact table values for df ≤ 30; above that the next *lower*
/// tabulated df is used (a slightly wider, conservative interval), and
/// past 120 the normal limit 1.96 applies. `df == 0` (a single sample)
/// returns 0 so the interval collapses to the point estimate instead
/// of pretending a dispersion estimate exists.
pub fn t_quantile_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => 0.0,
        1..=30 => TABLE[df - 1],
        31..=39 => TABLE[29], // conservative: df 30
        40..=49 => 2.021,     // df 40
        50..=59 => 2.009,     // df 50
        60..=79 => 2.000,     // df 60
        80..=99 => 1.990,     // df 80
        100..=119 => 1.984,   // df 100
        120..=199 => 1.980,   // df 120
        _ => 1.960,
    }
}

/// Percentile-bootstrap 95 % CI on the mean of `xs` (given in the
/// canonical tag order). Deterministic: the resampling RNG is seeded
/// from the FNV-1a digest of the sample bit patterns, so equal sample
/// sets always produce equal intervals regardless of how they were
/// accumulated.
fn bootstrap_ci(xs: &[f64]) -> Ci {
    let n = xs.len();
    if n < 2 {
        return Ci {
            lo: xs[0],
            hi: xs[0],
        };
    }
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    let mut rng = SplitMix64(seed);
    let mut means = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
    for _ in 0..BOOTSTRAP_RESAMPLES {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += xs[(rng.next() % n as u64) as usize];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(f64::total_cmp);
    let rank = |q: f64| means[(q * (BOOTSTRAP_RESAMPLES - 1) as f64).round() as usize];
    Ci {
        lo: rank(0.025),
        hi: rank(0.975),
    }
}

/// Minimal deterministic RNG for the bootstrap (splitmix64).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &Summary) -> Vec<u64> {
        let mut v = vec![
            s.n,
            s.mean.to_bits(),
            s.sd.to_bits(),
            s.min.to_bits(),
            s.max.to_bits(),
            s.ci95_t.lo.to_bits(),
            s.ci95_t.hi.to_bits(),
            s.ci95_bootstrap.lo.to_bits(),
            s.ci95_bootstrap.hi.to_bits(),
        ];
        if let (Some(g), Some(ci)) = (s.gmean, s.gmean_ci95_t) {
            v.extend([g.to_bits(), ci.lo.to_bits(), ci.hi.to_bits()]);
        }
        v
    }

    #[test]
    fn basic_moments() {
        let acc = Accumulator::from_pairs([(1, 2.0), (2, 4.0), (3, 6.0)]);
        let s = acc.summary();
        assert_eq!(s.n, 3);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.sd - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        // gmean(2,4,6) = (48)^(1/3)
        assert!((s.gmean.unwrap() - 48f64.powf(1.0 / 3.0)).abs() < 1e-12);
        // t(df=2) = 4.303; half-width = 4.303 * 2 / sqrt(3)
        let half = 4.303 * 2.0 / 3f64.sqrt();
        assert!((s.ci95_t.lo - (4.0 - half)).abs() < 1e-9);
        assert!((s.ci95_t.hi - (4.0 + half)).abs() < 1e-9);
        assert!(s.ci95_t.contains(s.mean));
        assert!(s.ci95_bootstrap.contains(s.mean));
    }

    #[test]
    fn single_sample_collapses_to_point() {
        let s = Accumulator::from_pairs([(9, 1.25)]).summary();
        assert_eq!(s.n, 1);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.ci95_t, Ci { lo: 1.25, hi: 1.25 });
        assert_eq!(s.ci95_bootstrap, Ci { lo: 1.25, hi: 1.25 });
        assert_eq!(s.ci95_t.width(), 0.0);
    }

    #[test]
    fn non_positive_samples_drop_gmean_only() {
        let s = Accumulator::from_pairs([(0, -1.0), (1, 3.0)]).summary();
        assert_eq!(s.gmean, None);
        assert_eq!(s.gmean_ci95_t, None);
        assert!((s.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_union_and_bit_identical() {
        let whole = Accumulator::from_pairs((0..40).map(|i| (i, (i as f64).sin())));
        let mut left = Accumulator::from_pairs((0..17).map(|i| (i, (i as f64).sin())));
        let right = Accumulator::from_pairs((17..40).map(|i| (i, (i as f64).sin())));
        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(bits(&left.summary()), bits(&whole.summary()));
    }

    #[test]
    fn duplicate_identical_push_is_idempotent() {
        let mut acc = Accumulator::new();
        acc.push(5, 0.1 + 0.2);
        acc.push(5, 0.1 + 0.2);
        assert_eq!(acc.n(), 1);
    }

    #[test]
    #[should_panic(expected = "re-recorded")]
    fn duplicate_conflicting_push_panics() {
        let mut acc = Accumulator::new();
        acc.push(5, 1.0);
        acc.push(5, 2.0);
    }

    #[test]
    fn t_table_is_monotone_and_bounded() {
        let mut prev = f64::INFINITY;
        for df in 1..400 {
            let t = t_quantile_975(df);
            assert!(t <= prev, "t must not increase with df ({df})");
            assert!(t >= 1.960, "t must stay above the normal limit ({df})");
            prev = t;
        }
        assert_eq!(t_quantile_975(0), 0.0);
    }

    #[test]
    fn bootstrap_is_deterministic_and_ordered() {
        let xs: Vec<f64> = (0..25).map(|i| 1.0 + (i as f64) * 0.01).collect();
        let a = bootstrap_ci(&xs);
        let b = bootstrap_ci(&xs);
        assert_eq!(a, b);
        assert!(a.lo <= a.hi);
        assert!(a.contains(xs.iter().sum::<f64>() / xs.len() as f64));
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = Accumulator::from_pairs([(1, 1.5), (2, 2.5), (3, 3.5)]).summary();
        let json = serde_json::to_string(&s).unwrap();
        let back: Summary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
