//! # ehs-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §4 for the
//! full index); this library holds the shared machinery: running a
//! workload under a configuration, running the whole 20-app suite in
//! parallel, geometric means, and JSON result emission.
//!
//! Run any experiment with
//! `cargo run --release -p ehs-bench --bin <figure>`; each prints the
//! paper's rows/series and writes `results/<id>.json`.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ehs_energy::PowerTrace;
use ehs_sim::{Machine, SimConfig, SimResult};
use ehs_workloads::Workload;
use serde::Serialize;

/// Runs one workload under `cfg` with the given trace.
///
/// # Panics
///
/// Panics if the simulation fails (cycle limit or program fault) — an
/// experiment configuration that cannot finish is a harness bug.
pub fn run_one(workload: &Workload, cfg: &SimConfig, trace: &PowerTrace) -> SimResult {
    let program = workload.program();
    let mut machine = Machine::with_trace(cfg.clone(), &program, trace.clone());
    machine.run().unwrap_or_else(|e| {
        panic!(
            "workload `{}` failed under {:?}: {e}",
            workload.name(),
            cfg.inst_mode
        )
    })
}

/// Runs the full 20-workload suite under `cfg`, in parallel, returning
/// results keyed by workload name (in suite order).
pub fn run_suite(cfg: &SimConfig, trace: &PowerTrace) -> BTreeMap<&'static str, SimResult> {
    run_suite_filtered(cfg, trace, |_| true)
}

/// Runs the workloads accepted by `filter` under `cfg`, in parallel.
///
/// The worker count is bounded at [`std::thread::available_parallelism`]
/// (capped by the number of selected workloads); workers pull from a
/// shared queue, so a sweep never oversubscribes the host with one
/// thread per workload.
pub fn run_suite_filtered(
    cfg: &SimConfig,
    trace: &PowerTrace,
    filter: impl Fn(&Workload) -> bool,
) -> BTreeMap<&'static str, SimResult> {
    let selected: Vec<&Workload> = ehs_workloads::SUITE.iter().filter(|w| filter(w)).collect();
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(selected.len())
        .max(1);
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<SimResult>>> =
        selected.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, selected, results) = (&next, &selected, &results);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(w) = selected.get(i).copied() else {
                        break;
                    };
                    let r = run_one(w, cfg, trace);
                    *results[i].lock().expect("result slot poisoned") = Some(r);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
    });
    selected
        .iter()
        .zip(results)
        .map(|(w, slot)| {
            let r = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot");
            (w.name(), r)
        })
        .collect()
}

/// Geometric mean of a sequence of positive values.
///
/// # Panics
///
/// Panics if `values` is empty or contains a non-positive value.
pub fn gmean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "gmean of an empty set");
    assert!(
        values.iter().all(|v| *v > 0.0),
        "gmean requires positive values"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Per-workload speedups of `test` over `base` plus the gmean, computed
/// from total execution cycles.
pub fn speedups(
    base: &BTreeMap<&'static str, SimResult>,
    test: &BTreeMap<&'static str, SimResult>,
) -> (Vec<(&'static str, f64)>, f64) {
    let mut rows = Vec::new();
    for w in &ehs_workloads::SUITE {
        let name = w.name();
        if let (Some(b), Some(t)) = (base.get(name), test.get(name)) {
            rows.push((name, t.speedup_over(b)));
        }
    }
    let g = gmean(&rows.iter().map(|(_, s)| *s).collect::<Vec<_>>());
    (rows, g)
}

/// Writes an experiment's rows as pretty JSON to `results/<id>.json`
/// (the `results` directory is created if needed) and reports the path.
pub fn write_results<T: Serialize>(id: &str, rows: &T) {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{id}.json"));
    let json = serde_json::to_string_pretty(rows).expect("serialise results");
    std::fs::write(&path, json).expect("write results file");
    println!("[results written to {}]", path.display());
}

/// Runs the suite under a baseline and an IPEX(both) configuration, both
/// transformed by `mutate`, and returns the gmean speedup of IPEX over
/// the baseline — the y-axis of every §6.7 sensitivity figure.
pub fn ipex_gmean_speedup(trace: &PowerTrace, mutate: impl Fn(&mut SimConfig)) -> f64 {
    let mut base = SimConfig::baseline();
    mutate(&mut base);
    let mut ipex = SimConfig::ipex_both();
    mutate(&mut ipex);
    let b = run_suite(&base, trace);
    let i = run_suite(&ipex, trace);
    speedups(&b, &i).1
}

/// A generic labelled row for sweep experiments, serialised to the
/// results JSON.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Sweep point label (e.g. `"2kB"`, `"PCM"`, `"0.47"`).
    pub label: String,
    /// IPEX-over-baseline gmean speedup at this point.
    pub ipex_speedup: f64,
}

/// A labelled configuration mutator — one point of a sensitivity sweep.
pub type SweepPoint = (String, Box<dyn Fn(&mut SimConfig)>);

/// Runs a whole sensitivity sweep: for each `(label, mutator)` point,
/// computes the IPEX gmean speedup, prints the row, writes
/// `results/<id>.json`, and returns the rows.
pub fn run_sweep(
    id: &str,
    what: &str,
    trace: &PowerTrace,
    points: Vec<SweepPoint>,
) -> Vec<SweepRow> {
    banner(id, what);
    let mut rows = Vec::new();
    for (label, m) in points {
        let s = ipex_gmean_speedup(trace, |c| m(c));
        println!("{label:>12}  IPEX speedup over baseline: {s:.4}");
        rows.push(SweepRow {
            label,
            ipex_speedup: s,
        });
    }
    write_results(id, &rows);
    rows
}

/// Formats a ratio as a percentage string with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Prints a standard experiment header.
pub fn banner(id: &str, what: &str) {
    println!("==============================================================");
    println!("{id}: {what}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn gmean_empty_panics() {
        gmean(&[]);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.0896), "8.96%");
    }

    #[test]
    fn run_one_completes_for_a_small_workload() {
        let w = ehs_workloads::by_name("gsmd").unwrap();
        let trace = PowerTrace::constant_mw(50.0, 8);
        let r = run_one(w, &SimConfig::baseline(), &trace);
        assert!(r.stats.instructions > 10_000);
    }
}
