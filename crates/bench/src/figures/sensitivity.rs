//! The §6.7 sensitivity studies and the design-choice ablations: all of
//! them are the same experiment — a labelled list of configuration
//! mutators, each evaluated as IPEX-over-baseline gmean speedup — so
//! one [`Sensitivity`] figure type covers the lot.

use ehs_energy::CapacitorConfig;
use ehs_mem::{NvmConfig, NvmTech, DEFAULT_NVM_BYTES};
use ehs_sim::prelude::*;
use ipex::IpexConfig;

use super::{base_cfg, ipex_both_cfg, rfhome, speedup_headline, suite_points};
use super::{Figure, Headline, RenderCx};
use crate::sweep::SimPoint;
use crate::{banner, speedups, SweepPoint, SweepRow};

/// A sensitivity sweep: for each `(label, mutator)` point the baseline
/// and IPEX(both) configurations are both transformed by the mutator
/// and the suite gmean speedup between them is reported.
pub struct Sensitivity {
    short: &'static str,
    file: &'static str,
    title: &'static str,
    sweep_points: fn() -> Vec<SweepPoint>,
}

/// The mutated (baseline, IPEX-both) configuration pair of one point.
fn pair(mutate: &dyn Fn(&mut SimConfig)) -> (SimConfig, SimConfig) {
    let mut base = base_cfg();
    mutate(&mut base);
    let mut ipex = ipex_both_cfg();
    mutate(&mut ipex);
    (base, ipex)
}

impl Figure for Sensitivity {
    fn id(&self) -> &'static str {
        self.short
    }

    fn file_id(&self) -> &'static str {
        self.file
    }

    fn title(&self) -> &'static str {
        self.title
    }

    fn points(&self) -> Vec<SimPoint> {
        let trace = rfhome();
        (self.sweep_points)()
            .iter()
            .flat_map(|(_, m)| {
                let (base, ipex) = pair(m);
                let mut pts = suite_points(&base, &trace);
                pts.extend(suite_points(&ipex, &trace));
                pts
            })
            .collect()
    }

    fn headlines(&self) -> Vec<Headline> {
        (self.sweep_points)()
            .iter()
            .map(|(label, m)| {
                let (base, ipex) = pair(m);
                speedup_headline(label.clone(), rfhome(), base, ipex)
            })
            .collect()
    }

    fn render(&self, cx: &RenderCx<'_>) {
        banner(self.file, self.title);
        let trace = rfhome();
        let mut rows = Vec::new();
        for (label, m) in (self.sweep_points)() {
            let (base, ipex) = pair(&*m);
            let b = cx.suite(&base, &trace);
            let i = cx.suite(&ipex, &trace);
            let s = speedups(&b, &i).1;
            println!("{label:>12}  IPEX speedup over baseline: {s:.4}");
            rows.push(SweepRow {
                label,
                ipex_speedup: s,
            });
        }
        cx.write(self.file, &rows);
    }
}

/// Applies an IPEX-parameter override to both modes of a configuration,
/// leaving non-IPEX configurations (the baseline) untouched.
fn set_ipex(c: &mut SimConfig, ic: IpexConfig) {
    if matches!(c.inst_mode, PrefetchMode::Ipex(_)) {
        c.inst_mode = PrefetchMode::Ipex(ic);
        c.data_mode = PrefetchMode::Ipex(ic);
    }
}

fn fig16_points() -> Vec<SweepPoint> {
    (1u32..=3)
        .map(|k| {
            let label = format!("{k} threshold(s)");
            let f: Box<dyn Fn(&mut SimConfig) + Sync> =
                Box::new(move |c| set_ipex(c, IpexConfig::with_threshold_count(k)));
            (label, f)
        })
        .collect()
}

/// Figure 16: sensitivity to the number of IPEX voltage thresholds.
pub static FIG16: Sensitivity = Sensitivity {
    short: "fig16",
    file: "fig16_threshold_count",
    title: "voltage-threshold count (paper: 2 is best)",
    sweep_points: fig16_points,
};

fn fig17_points() -> Vec<SweepPoint> {
    [2usize, 4, 8]
        .into_iter()
        .map(|entries| {
            let label = format!("{} B ({entries} entries)", entries * 16);
            let f: Box<dyn Fn(&mut SimConfig) + Sync> = Box::new(move |c| {
                c.prefetch_buffer_entries = entries;
            });
            (label, f)
        })
        .collect()
}

/// Figure 17: sensitivity to the prefetch-buffer size (32/64/128 B).
pub static FIG17: Sensitivity = Sensitivity {
    short: "fig17",
    file: "fig17_prefetch_buffer",
    title: "prefetch-buffer size (paper default: 64 B)",
    sweep_points: fig17_points,
};

fn fig18_points() -> Vec<SweepPoint> {
    [256u32, 512, 1024, 2048, 4096, 8192]
        .into_iter()
        .map(|s| {
            let label = if s < 1024 {
                format!("{s} B")
            } else {
                format!("{} kB", s / 1024)
            };
            let f: Box<dyn Fn(&mut SimConfig) + Sync> = Box::new(move |c| {
                *c = c.clone().with_cache_size(s);
            });
            (label, f)
        })
        .collect()
}

/// Figure 18: sensitivity to cache size (256 B - 8 kB).
pub static FIG18: Sensitivity = Sensitivity {
    short: "fig18",
    file: "fig18_cache_size",
    title: "cache size (paper: gains shrink as caches grow)",
    sweep_points: fig18_points,
};

fn fig19_points() -> Vec<SweepPoint> {
    [1u32, 2, 4, 8]
        .into_iter()
        .map(|a| {
            let label = format!("{a}-way");
            let f: Box<dyn Fn(&mut SimConfig) + Sync> = Box::new(move |c| {
                c.icache.assoc = a;
                c.dcache.assoc = a;
            });
            (label, f)
        })
        .collect()
}

/// Figure 19: sensitivity to cache associativity (1-8 ways).
pub static FIG19: Sensitivity = Sensitivity {
    short: "fig19",
    file: "fig19_associativity",
    title: "cache associativity (paper: 4.89%-8.96% across)",
    sweep_points: fig19_points,
};

fn fig20_points() -> Vec<SweepPoint> {
    [2u64, 4, 8, 16, 32]
        .into_iter()
        .map(|mb| {
            let label = format!("{mb} MB");
            let f: Box<dyn Fn(&mut SimConfig) + Sync> = Box::new(move |c| {
                c.nvm = NvmConfig::for_tech(NvmTech::ReRam, mb << 20);
            });
            (label, f)
        })
        .collect()
}

/// Figure 20: sensitivity to main-memory capacity (2-32 MB); larger
/// arrays have higher latency and per-access energy.
pub static FIG20: Sensitivity = Sensitivity {
    short: "fig20",
    file: "fig20_memory_size",
    title: "main-memory size (paper: gain grows with size)",
    sweep_points: fig20_points,
};

fn fig21_points() -> Vec<SweepPoint> {
    NvmTech::ALL
        .into_iter()
        .map(|tech| {
            let label = tech.name().to_owned();
            let f: Box<dyn Fn(&mut SimConfig) + Sync> = Box::new(move |c| {
                c.nvm = NvmConfig::for_tech(tech, DEFAULT_NVM_BYTES);
            });
            (label, f)
        })
        .collect()
}

/// Figure 21: sensitivity to NVM technology (ReRAM / STT-RAM / PCM).
pub static FIG21: Sensitivity = Sensitivity {
    short: "fig21",
    file: "fig21_nvm_tech",
    title: "NVM technology (paper: slower NVM => bigger gain)",
    sweep_points: fig21_points,
};

fn fig22_points() -> Vec<SweepPoint> {
    [0.47f64, 1.0, 4.7, 10.0, 47.0, 100.0, 1000.0]
        .into_iter()
        .map(|uf| {
            let label = format!("{uf} uF");
            let f: Box<dyn Fn(&mut SimConfig) + Sync> = Box::new(move |c| {
                c.capacitor = CapacitorConfig::with_capacitance_uf(uf);
            });
            (label, f)
        })
        .collect()
}

/// Figure 22: sensitivity to capacitor size (0.47-1000 uF); larger
/// capacitors mean longer power cycles and fewer IPEX opportunities.
pub static FIG22: Sensitivity = Sensitivity {
    short: "fig22",
    file: "fig22_capacitor_size",
    title: "capacitor size (paper: gain shrinks as C grows)",
    sweep_points: fig22_points,
};

fn fig24_points() -> Vec<SweepPoint> {
    [0.05f64, 0.10, 0.15]
        .into_iter()
        .map(|step| {
            let label = format!("{step:.2} V");
            let f: Box<dyn Fn(&mut SimConfig) + Sync> = Box::new(move |c| {
                set_ipex(
                    c,
                    IpexConfig {
                        voltage_step_v: step,
                        ..IpexConfig::paper_default()
                    },
                );
            });
            (label, f)
        })
        .collect()
}

/// Figure 24: sensitivity to the adaptive threshold step size.
pub static FIG24: Sensitivity = Sensitivity {
    short: "fig24",
    file: "fig24_voltage_step",
    title: "voltage step size (paper: 0.05 V is best)",
    sweep_points: fig24_points,
};

fn fig25_points() -> Vec<SweepPoint> {
    [0.01f64, 0.05, 0.10, 0.20]
        .into_iter()
        .map(|rate| {
            let label = format!("{:.0}%", rate * 100.0);
            let f: Box<dyn Fn(&mut SimConfig) + Sync> = Box::new(move |c| {
                set_ipex(
                    c,
                    IpexConfig {
                        throttle_rate_threshold: rate,
                        ..IpexConfig::paper_default()
                    },
                );
            });
            (label, f)
        })
        .collect()
}

/// Figure 25: sensitivity to the throttling-rate threshold that gates
/// the adaptive voltage-threshold update.
pub static FIG25: Sensitivity = Sensitivity {
    short: "fig25",
    file: "fig25_throttle_rate",
    title: "throttle-rate threshold (paper: 5% is best)",
    sweep_points: fig25_points,
};

fn ablation_points() -> Vec<SweepPoint> {
    let variants: Vec<(&str, IpexConfig)> = vec![
        ("adaptive (default)", IpexConfig::paper_default()),
        (
            "fixed thresholds",
            IpexConfig {
                adaptive_thresholds: false,
                ..IpexConfig::paper_default()
            },
        ),
        (
            "reissue extension",
            IpexConfig {
                reissue_throttled: true,
                ..IpexConfig::paper_default()
            },
        ),
        (
            "fixed + reissue",
            IpexConfig {
                adaptive_thresholds: false,
                reissue_throttled: true,
                ..IpexConfig::paper_default()
            },
        ),
    ];
    variants
        .into_iter()
        .map(|(label, ic)| {
            let f: Box<dyn Fn(&mut SimConfig) + Sync> = Box::new(move |c| set_ipex(c, ic));
            (label.to_owned(), f)
        })
        .collect()
}

/// Design-choice ablations called out in DESIGN.md (beyond the paper's
/// own figures): fixed vs adaptive thresholds, and the Section 5.1
/// reissue-on-recovery extension (the paper's future work).
pub static ABLATIONS: Sensitivity = Sensitivity {
    short: "ablations",
    file: "ablations",
    title: "IPEX design ablations",
    sweep_points: ablation_points,
};
