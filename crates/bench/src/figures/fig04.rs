//! Figure 4: the analytic minimum useful-prefetch probability P
//! (Inequality 4) versus E_prefetch for several E_leak values.

use ehs_energy::min_useful_probability;
use serde::Serialize;

use super::{Figure, RenderCx};
use crate::banner;
use crate::sweep::SimPoint;

pub struct Fig04;

impl Figure for Fig04 {
    fn id(&self) -> &'static str {
        "fig04"
    }

    fn file_id(&self) -> &'static str {
        "fig04_min_probability"
    }

    fn title(&self) -> &'static str {
        "minimum useful-prefetch probability (Eq. 1-4)"
    }

    fn points(&self) -> Vec<SimPoint> {
        Vec::new() // purely analytic
    }

    fn render(&self, cx: &RenderCx<'_>) {
        #[derive(Serialize)]
        struct Row {
            e_leak_pj: f64,
            e_prefetch_pj: f64,
            min_p: f64,
        }

        banner(self.id(), self.title());
        let mut rows = Vec::new();
        for e_leak in [10.0, 20.0, 30.0, 40.0, 50.0] {
            print!("E_leak = {e_leak:>4} pJ: ");
            for e_pf in (0..=100).step_by(10) {
                let p = min_useful_probability(e_pf as f64, e_leak);
                print!("{:>5.1}% ", p * 100.0);
                rows.push(Row {
                    e_leak_pj: e_leak,
                    e_prefetch_pj: e_pf as f64,
                    min_p: p,
                });
            }
            println!();
        }
        cx.write(self.file_id(), &rows);
    }
}
