//! Section 6.1: the hardware-overhead accounting for IPEX's registers.

use super::{Figure, RenderCx};
use crate::banner;
use crate::sweep::SimPoint;

pub struct TabHw;

impl Figure for TabHw {
    fn id(&self) -> &'static str {
        "tab_hw"
    }

    fn file_id(&self) -> &'static str {
        "tab_hw_overhead"
    }

    fn title(&self) -> &'static str {
        "IPEX hardware overhead (Section 6.1)"
    }

    fn points(&self) -> Vec<SimPoint> {
        Vec::new() // purely analytic
    }

    fn render(&self, cx: &RenderCx<'_>) {
        banner(self.file_id(), self.title());
        let r = ipex::overhead::report();
        println!(
            "bits per cache:      {} (Rthrottled 32 + Rtotal 32 + Rtr 32 + Ripd 3)",
            r.bits_per_cache
        );
        println!("caches extended:     {}", r.caches);
        println!("total bits:          {} (paper: 198)", r.total_bits);
        println!("added area:          {:.2} um^2", r.added_area_um2);
        println!(
            "core area:           {:.2} mm^2 (CACTI, 45 nm)",
            r.core_area_mm2
        );
        println!(
            "core-area overhead:  {:.4}% (paper: 0.0018%)",
            r.core_area_percent
        );
        cx.write(self.file_id(), &r);
    }
}
