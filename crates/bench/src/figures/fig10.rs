//! Figure 10: per-application speedup over the conventional-prefetcher
//! baseline (RFHome) for no-prefetcher, IPEX on the data prefetcher, and
//! IPEX on both prefetchers.

use serde::Serialize;

use super::{base_cfg, ipex_both_cfg, ipex_data_cfg, nopf_cfg, rfhome, suite_points};
use super::{speedup_headline, Figure, Headline, RenderCx};
use crate::sweep::SimPoint;
use crate::{banner, speedups};

#[derive(Serialize)]
pub(super) struct Row {
    pub app: String,
    pub no_prefetch: f64,
    pub ipex_data: f64,
    pub ipex_both: f64,
}

pub struct Fig10;

impl Figure for Fig10 {
    fn id(&self) -> &'static str {
        "fig10"
    }

    fn file_id(&self) -> &'static str {
        "fig10_speedup_baseline"
    }

    fn title(&self) -> &'static str {
        "speedup over NVSRAMCache baseline, RFHome"
    }

    fn points(&self) -> Vec<SimPoint> {
        let trace = rfhome();
        [base_cfg(), nopf_cfg(), ipex_data_cfg(), ipex_both_cfg()]
            .iter()
            .flat_map(|c| suite_points(c, &trace))
            .collect()
    }

    fn headlines(&self) -> Vec<Headline> {
        vec![
            speedup_headline("no_prefetch_gmean", rfhome(), base_cfg(), nopf_cfg()),
            speedup_headline("ipex_data_gmean", rfhome(), base_cfg(), ipex_data_cfg()),
            speedup_headline("ipex_both_gmean", rfhome(), base_cfg(), ipex_both_cfg()),
        ]
    }

    fn render(&self, cx: &RenderCx<'_>) {
        banner(self.id(), self.title());
        let trace = rfhome();
        let base = cx.suite(&base_cfg(), &trace);
        let nopf = cx.suite(&nopf_cfg(), &trace);
        let ipex_d = cx.suite(&ipex_data_cfg(), &trace);
        let ipex = cx.suite(&ipex_both_cfg(), &trace);

        let (r0, g0) = speedups(&base, &nopf);
        let (r1, g1) = speedups(&base, &ipex_d);
        let (r2, g2) = speedups(&base, &ipex);
        let mut rows = Vec::new();
        println!(
            "{:10} {:>8} {:>8} {:>8}",
            "app", "no-pf", "+IPEX(D)", "+IPEX(I+D)"
        );
        for i in 0..r0.len() {
            println!(
                "{:10} {:>8.3} {:>8.3} {:>8.3}",
                r0[i].0, r0[i].1, r1[i].1, r2[i].1
            );
            rows.push(Row {
                app: r0[i].0.to_owned(),
                no_prefetch: r0[i].1,
                ipex_data: r1[i].1,
                ipex_both: r2[i].1,
            });
        }
        println!("{:10} {:>8.3} {:>8.3} {:>8.3}", "gmean", g0, g1, g2);
        println!("(paper gmeans: 0.953 / 1.037 / 1.090 relative to baseline)");
        rows.push(Row {
            app: "gmean".into(),
            no_prefetch: g0,
            ipex_data: g1,
            ipex_both: g2,
        });
        cx.write(self.file_id(), &rows);
    }
}
