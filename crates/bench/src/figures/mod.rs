//! The figure registry: every table and figure of the paper as a
//! declarative [`Figure`] implementation over the [`crate::sweep`]
//! engine.
//!
//! A figure contributes two things: [`Figure::points`] — the simulation
//! points it needs, declared up front so the `paper` binary can request
//! the union of all figures and simulate each unique point exactly once
//! — and [`Figure::render`], which pulls those (now memoized) results
//! back out of the engine, prints the paper's rows, and writes
//! `results/<file_id>.json`. The historical one-figure binaries call
//! [`run_standalone`], which runs the same implementation against a
//! private in-memory engine, so both paths produce byte-identical
//! output.

use std::collections::BTreeMap;
use std::path::PathBuf;

use ehs_sim::prelude::*;
use ipex::{HysteresisConfig, PolicyConfig, PredictiveConfig, StaticDegreeConfig};
use serde::Serialize;

use crate::sweep::{SimPoint, Sweep};

mod fig01;
mod fig02;
mod fig04;
mod fig10;
mod fig11;
mod fig12;
mod fig13;
mod fig14;
mod fig15;
mod fig23;
mod fig26;
mod fig27;
mod sensitivity;
mod tab2;
mod tab3;
mod tab4;
mod tab_hw;

pub use sensitivity::Sensitivity;

/// One table or figure of the paper.
pub trait Figure: Sync {
    /// Short selector id (`fig10`, `tab2`, `ablations`) — what
    /// `paper --only` matches against.
    fn id(&self) -> &'static str;

    /// Stem of the results file, `results/<file_id>.json`.
    fn file_id(&self) -> &'static str;

    /// One-line description, shown by `paper --list`.
    fn title(&self) -> &'static str;

    /// Every simulation point this figure's render needs. Purely
    /// declarative — nothing is simulated here.
    fn points(&self) -> Vec<SimPoint>;

    /// Prints the figure's rows and writes its results file, resolving
    /// all simulation through `cx` (so shared points are hits).
    fn render(&self, cx: &RenderCx<'_>);

    /// The figure's headline scalars, re-evaluable under any trace
    /// environment — what `paper --stats` seed-sweeps into
    /// distributions with confidence intervals (see [`crate::monte`]).
    /// Empty (the default) for analytic figures and those whose
    /// headline is not a scalar.
    fn headlines(&self) -> Vec<Headline> {
        Vec::new()
    }
}

/// One headline scalar of a figure (a gmean-speedup bar, a mean
/// reduction, …), declared so the Monte Carlo layer can re-evaluate it
/// under arbitrary trace seeds.
///
/// Every headline in the registry has the same shape: run the full
/// 20-workload suite under each configuration in `configs` with one
/// trace environment, then reduce those suites to a single number.
/// `base_trace` is the environment the *published* figure uses (the
/// single-seed value); [`crate::monte`] replaces its seed via
/// [`TraceSpec::with_seed`] to build the seed distribution.
pub struct Headline {
    /// Metric label within the figure (e.g. `"ipex_both_gmean"`).
    pub label: String,
    /// The single-seed trace environment the published figure uses.
    pub base_trace: TraceSpec,
    /// Configurations whose full-suite results the metric needs.
    pub configs: Vec<SimConfig>,
    /// Reduces the suites (same order as `configs`) to the scalar.
    pub eval: fn(&[BTreeMap<&'static str, SimResult>]) -> f64,
}

impl Headline {
    /// The simulation points needed to evaluate this headline under
    /// `trace`.
    pub fn points_under(&self, trace: &TraceSpec) -> Vec<SimPoint> {
        self.configs
            .iter()
            .flat_map(|c| suite_points(c, trace))
            .collect()
    }

    /// Evaluates the metric under `trace`, resolving all simulation
    /// through `sweep` (memoized; points already simulated are hits).
    pub fn eval_under(&self, sweep: &Sweep, trace: &TraceSpec) -> f64 {
        let suites: Vec<BTreeMap<&'static str, SimResult>> =
            self.configs.iter().map(|c| sweep.suite(c, trace)).collect();
        (self.eval)(&suites)
    }
}

/// The standard two-config headline: gmean speedup of the suite under
/// `test` over the suite under `base` — the y-axis of most figures.
pub(crate) fn speedup_headline(
    label: impl Into<String>,
    trace: TraceSpec,
    base: SimConfig,
    test: SimConfig,
) -> Headline {
    Headline {
        label: label.into(),
        base_trace: trace,
        configs: vec![base, test],
        eval: |suites| crate::speedups(&suites[0], &suites[1]).1,
    }
}

/// What a figure renders against: the engine resolving its points and
/// the directory its results file goes to.
pub struct RenderCx<'a> {
    /// The simulation engine (shared across figures in a `paper` run).
    pub sweep: &'a Sweep,
    /// Output directory, normally `results`.
    pub out_dir: PathBuf,
}

impl RenderCx<'_> {
    /// A context writing to the standard `results/` directory.
    pub fn new(sweep: &Sweep) -> RenderCx<'_> {
        RenderCx {
            sweep,
            out_dir: PathBuf::from("results"),
        }
    }

    /// The full suite under `cfg`/`trace`, through the engine.
    pub fn suite(&self, cfg: &SimConfig, trace: &TraceSpec) -> BTreeMap<&'static str, SimResult> {
        self.sweep.suite(cfg, trace)
    }

    /// Writes `<out_dir>/<file_id>.json` exactly like the historical
    /// binaries did.
    pub fn write<T: Serialize>(&self, file_id: &str, rows: &T) {
        crate::write_results_to(&self.out_dir, file_id, rows);
    }
}

/// All 26 experiments, in presentation order.
pub static REGISTRY: [&dyn Figure; 26] = [
    &fig01::Fig01,
    &fig02::Fig02,
    &fig04::Fig04,
    &fig10::Fig10,
    &fig11::Fig11,
    &fig12::Fig12,
    &fig13::Fig13,
    &fig14::Fig14,
    &fig15::Fig15,
    &sensitivity::FIG16,
    &sensitivity::FIG17,
    &sensitivity::FIG18,
    &sensitivity::FIG19,
    &sensitivity::FIG20,
    &sensitivity::FIG21,
    &sensitivity::FIG22,
    &fig23::Fig23,
    &sensitivity::FIG24,
    &sensitivity::FIG25,
    &fig26::Fig26,
    &tab2::Tab2,
    &tab3::Tab3,
    &tab4::Tab4,
    &tab_hw::TabHw,
    &sensitivity::ABLATIONS,
    &fig27::Fig27,
];

/// Looks a figure up by its short id or its file id.
pub fn by_id(id: &str) -> Option<&'static dyn Figure> {
    REGISTRY
        .iter()
        .find(|f| f.id() == id || f.file_id() == id)
        .copied()
}

/// Runs one figure the way its historical standalone binary did: a
/// private in-memory engine, results into `results/`.
///
/// # Panics
///
/// Panics if `id` names no registered figure or a simulation fails.
pub fn run_standalone(id: &str) {
    let fig = by_id(id).unwrap_or_else(|| panic!("no figure with id `{id}`"));
    let sweep = Sweep::in_memory();
    let cx = RenderCx::new(&sweep);
    fig.render(&cx);
}

/// The default power environment of §6 (synthetic RFHome).
pub(crate) fn rfhome() -> TraceSpec {
    TraceSpec::default_rfhome()
}

/// The suite's points under one configuration and trace.
pub(crate) fn suite_points(cfg: &SimConfig, trace: &TraceSpec) -> Vec<SimPoint> {
    ehs_workloads::SUITE
        .iter()
        .map(|w| SimPoint::new(w.name(), cfg.clone(), trace.clone()))
        .collect()
}

/// The four §6 comparison configurations.
pub(crate) fn base_cfg() -> SimConfig {
    SimConfig::builder().build()
}

pub(crate) fn nopf_cfg() -> SimConfig {
    SimConfig::builder().no_prefetch().build()
}

pub(crate) fn ipex_data_cfg() -> SimConfig {
    SimConfig::builder().ipex(Ipex::Data).build()
}

pub(crate) fn ipex_both_cfg() -> SimConfig {
    SimConfig::builder().ipex(Ipex::Both).build()
}

/// The alternative throttling policies of fig26, each on both caches.
pub(crate) fn predictive_cfg() -> SimConfig {
    SimConfig::builder()
        .throttle_policy(
            Ipex::Both,
            PolicyConfig::Predictive(PredictiveConfig::paper_default()),
        )
        .build()
}

pub(crate) fn hysteresis_cfg() -> SimConfig {
    SimConfig::builder()
        .throttle_policy(
            Ipex::Both,
            PolicyConfig::Hysteresis(HysteresisConfig::paper_default()),
        )
        .build()
}

pub(crate) fn static_deg_cfg() -> SimConfig {
    SimConfig::builder()
        .throttle_policy(
            Ipex::Both,
            PolicyConfig::StaticDegree(StaticDegreeConfig::conservative()),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_resolvable() {
        let mut ids: Vec<&str> = REGISTRY.iter().map(|f| f.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), REGISTRY.len(), "duplicate figure ids");
        for f in REGISTRY {
            assert!(by_id(f.id()).is_some());
            assert!(by_id(f.file_id()).is_some());
            assert!(!f.title().is_empty());
        }
    }

    #[test]
    fn every_simulating_figure_declares_points() {
        for f in REGISTRY {
            // The two analytic artefacts need no simulation.
            let analytic = matches!(f.id(), "fig04" | "tab_hw");
            assert_eq!(f.points().is_empty(), analytic, "{}", f.id());
        }
    }
}
