//! Table 3: IPEX's gmean speedup with different instruction prefetchers
//! (the data prefetcher stays at the default stride).

use ehs_prefetch::InstPrefetcherKind;
use ehs_sim::prelude::*;
use serde::Serialize;

use super::{base_cfg, ipex_both_cfg, rfhome, speedup_headline, suite_points};
use super::{Figure, Headline, RenderCx};
use crate::sweep::SimPoint;
use crate::{banner, speedups};

fn pair_for(kind: InstPrefetcherKind) -> (SimConfig, SimConfig) {
    let mut base = base_cfg();
    base.inst_prefetcher = kind;
    let mut ipex = ipex_both_cfg();
    ipex.inst_prefetcher = kind;
    (base, ipex)
}

pub struct Tab3;

impl Figure for Tab3 {
    fn id(&self) -> &'static str {
        "tab3"
    }

    fn file_id(&self) -> &'static str {
        "tab3_inst_prefetchers"
    }

    fn title(&self) -> &'static str {
        "IPEX speedup with varying instruction prefetchers"
    }

    fn points(&self) -> Vec<SimPoint> {
        let trace = rfhome();
        InstPrefetcherKind::TABLE3
            .into_iter()
            .flat_map(|kind| {
                let (base, ipex) = pair_for(kind);
                let mut pts = suite_points(&base, &trace);
                pts.extend(suite_points(&ipex, &trace));
                pts
            })
            .collect()
    }

    fn headlines(&self) -> Vec<Headline> {
        InstPrefetcherKind::TABLE3
            .into_iter()
            .map(|kind| {
                let (base, ipex) = pair_for(kind);
                speedup_headline(format!("{}_ipex_gmean", kind.name()), rfhome(), base, ipex)
            })
            .collect()
    }

    fn render(&self, cx: &RenderCx<'_>) {
        #[derive(Serialize)]
        struct Row {
            prefetcher: &'static str,
            ipex_speedup: f64,
        }

        banner(self.id(), self.title());
        let trace = rfhome();
        let mut rows = Vec::new();
        for kind in InstPrefetcherKind::TABLE3 {
            let (base, ipex) = pair_for(kind);
            let b = cx.suite(&base, &trace);
            let i = cx.suite(&ipex, &trace);
            let (_, g) = speedups(&b, &i);
            println!("{:12} IPEX speedup {:.4}", kind.name(), g);
            rows.push(Row {
                prefetcher: kind.name(),
                ipex_speedup: g,
            });
        }
        println!("(paper: Sequential 8.96% / Markov 7.89% / TIFS 9.05%)");
        cx.write(self.file_id(), &rows);
    }
}
