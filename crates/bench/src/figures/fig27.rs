//! Figure 27 (repo-original): sampled-mode (SMARTS-style) estimation
//! error versus the full runs, all 20 workloads under the default
//! configuration and RFHome.
//!
//! For every workload the full run provides the ground-truth IPC and
//! energy-per-cycle; sampled mode re-estimates both from systematic
//! measurement windows (`crate::sampled`) and reports 95 % CIs. The
//! figure records, per workload, the relative estimation error and
//! whether the truth falls inside the reported interval — the honesty
//! check the sampled mode's CIs are claimed to pass.

use serde::Serialize;

use super::{base_cfg, rfhome, suite_points, Figure, RenderCx};
use crate::sampled::{sampled_report, SampledOptions};
use crate::sweep::SimPoint;
use crate::{banner, pct};

pub struct Fig27;

impl Figure for Fig27 {
    fn id(&self) -> &'static str {
        "fig27"
    }

    fn file_id(&self) -> &'static str {
        "fig27_sampled_error"
    }

    fn title(&self) -> &'static str {
        "sampled-mode estimation error vs full runs, RFHome"
    }

    fn points(&self) -> Vec<SimPoint> {
        // The ground-truth side only; sampled estimates are built in
        // render (their forward pass is not a sweep point).
        suite_points(&base_cfg(), &rfhome())
    }

    fn render(&self, cx: &RenderCx<'_>) {
        #[derive(Serialize)]
        struct Row {
            app: &'static str,
            windows: u64,
            window_cycles: u64,
            full_ipc: f64,
            sampled_ipc: f64,
            ipc_ci_lo: f64,
            ipc_ci_hi: f64,
            ipc_rel_error: f64,
            ipc_ci_contains_truth: bool,
            full_energy_nj_per_cycle: f64,
            sampled_energy_nj_per_cycle: f64,
            energy_rel_error: f64,
            energy_ci_contains_truth: bool,
        }

        banner(self.id(), self.title());
        let cfg = base_cfg();
        let full = cx.suite(&cfg, &rfhome());
        let trace = rfhome().synthesize();
        let opts = SampledOptions::default();
        let mut rows = Vec::new();
        for w in &ehs_workloads::SUITE {
            let truth = &full[w.name()];
            let t_ipc = truth.stats.instructions as f64 / truth.stats.total_cycles as f64;
            let t_energy = truth.total_energy_nj() / truth.stats.total_cycles as f64;
            let rep = sampled_report(w, &cfg, &trace, &opts)
                .unwrap_or_else(|e| panic!("sampled run of `{}` failed: {e}", w.name()));
            let row = Row {
                app: w.name(),
                windows: rep.windows,
                window_cycles: rep.window_cycles,
                full_ipc: t_ipc,
                sampled_ipc: rep.ipc.mean,
                ipc_ci_lo: rep.ipc.ci95.lo,
                ipc_ci_hi: rep.ipc.ci95.hi,
                ipc_rel_error: (rep.ipc.mean - t_ipc).abs() / t_ipc,
                ipc_ci_contains_truth: rep.ipc.ci95.contains(t_ipc),
                full_energy_nj_per_cycle: t_energy,
                sampled_energy_nj_per_cycle: rep.energy_nj_per_cycle.mean,
                energy_rel_error: (rep.energy_nj_per_cycle.mean - t_energy).abs() / t_energy,
                energy_ci_contains_truth: rep.energy_nj_per_cycle.ci95.contains(t_energy),
            };
            println!(
                "{:10} {:>3} windows  ipc err {:>7}{}  energy err {:>7}{}",
                row.app,
                row.windows,
                pct(row.ipc_rel_error),
                if row.ipc_ci_contains_truth { " " } else { "!" },
                pct(row.energy_rel_error),
                if row.energy_ci_contains_truth {
                    " "
                } else {
                    "!"
                },
            );
            rows.push(row);
        }
        let contained = rows.iter().filter(|r| r.ipc_ci_contains_truth).count();
        let max_err = rows.iter().map(|r| r.ipc_rel_error).fold(0.0, f64::max);
        println!(
            "{:10} ipc CIs containing truth: {contained}/{}  max ipc rel error {}",
            "summary",
            rows.len(),
            pct(max_err)
        );
        cx.write(self.file_id(), &rows);
    }
}
