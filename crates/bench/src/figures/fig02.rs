//! Figure 2: fraction of on-time stalled on ICache/DCache misses per
//! application (prefetchers disabled, default 2 kB caches).

use serde::Serialize;

use super::{nopf_cfg, rfhome, suite_points, Figure, Headline, RenderCx};
use crate::sweep::SimPoint;
use crate::{banner, pct};

pub struct Fig02;

impl Figure for Fig02 {
    fn id(&self) -> &'static str {
        "fig02"
    }

    fn file_id(&self) -> &'static str {
        "fig02_stall_breakdown"
    }

    fn title(&self) -> &'static str {
        "pipeline-stall breakdown (no prefetchers), RFHome"
    }

    fn points(&self) -> Vec<SimPoint> {
        suite_points(&nopf_cfg(), &rfhome())
    }

    fn headlines(&self) -> Vec<Headline> {
        vec![
            Headline {
                label: "mean_istall_fraction".into(),
                base_trace: rfhome(),
                configs: vec![nopf_cfg()],
                eval: |s| {
                    s[0].values()
                        .map(|r| r.stats.istall_fraction())
                        .sum::<f64>()
                        / s[0].len() as f64
                },
            },
            Headline {
                label: "mean_dstall_fraction".into(),
                base_trace: rfhome(),
                configs: vec![nopf_cfg()],
                eval: |s| {
                    s[0].values()
                        .map(|r| r.stats.dstall_fraction())
                        .sum::<f64>()
                        / s[0].len() as f64
                },
            },
        ]
    }

    fn render(&self, cx: &RenderCx<'_>) {
        #[derive(Serialize)]
        struct Row {
            app: &'static str,
            istall: f64,
            dstall: f64,
        }

        banner(self.id(), self.title());
        let res = cx.suite(&nopf_cfg(), &rfhome());
        let mut rows = Vec::new();
        for w in &ehs_workloads::SUITE {
            let r = &res[w.name()];
            let row = Row {
                app: w.name(),
                istall: r.stats.istall_fraction(),
                dstall: r.stats.dstall_fraction(),
            };
            println!(
                "{:10} ICache {:>8}  DCache {:>8}",
                row.app,
                pct(row.istall),
                pct(row.dstall)
            );
            rows.push(row);
        }
        let gi = rows.iter().map(|r| r.istall).sum::<f64>() / rows.len() as f64;
        let gd = rows.iter().map(|r| r.dstall).sum::<f64>() / rows.len() as f64;
        println!(
            "{:10} ICache {:>8}  DCache {:>8}   (paper: 23.45% / 18.64%)",
            "mean",
            pct(gi),
            pct(gd)
        );
        cx.write(self.file_id(), &rows);
    }
}
