//! Figure 12: reduction in issued prefetch operations when IPEX controls
//! both prefetchers.

use serde::Serialize;

use super::{base_cfg, ipex_both_cfg, rfhome, suite_points, Figure, Headline, RenderCx};
use crate::sweep::SimPoint;
use crate::{banner, pct};

pub struct Fig12;

impl Figure for Fig12 {
    fn id(&self) -> &'static str {
        "fig12"
    }

    fn file_id(&self) -> &'static str {
        "fig12_prefetch_reduction"
    }

    fn title(&self) -> &'static str {
        "prefetch-operation reduction, IPEX on both prefetchers"
    }

    fn points(&self) -> Vec<SimPoint> {
        let trace = rfhome();
        let mut pts = suite_points(&base_cfg(), &trace);
        pts.extend(suite_points(&ipex_both_cfg(), &trace));
        pts
    }

    fn headlines(&self) -> Vec<Headline> {
        vec![Headline {
            label: "mean_prefetch_reduction".into(),
            base_trace: rfhome(),
            configs: vec![base_cfg(), ipex_both_cfg()],
            eval: |s| {
                let mut sum = 0.0;
                for w in &ehs_workloads::SUITE {
                    let b = s[0][w.name()].prefetch_operations().max(1);
                    let i = s[1][w.name()].prefetch_operations();
                    sum += 1.0 - i as f64 / b as f64;
                }
                sum / ehs_workloads::SUITE.len() as f64
            },
        }]
    }

    fn render(&self, cx: &RenderCx<'_>) {
        #[derive(Serialize)]
        struct Row {
            app: &'static str,
            reduction: f64,
        }

        banner(self.id(), self.title());
        let trace = rfhome();
        let base = cx.suite(&base_cfg(), &trace);
        let ipex = cx.suite(&ipex_both_cfg(), &trace);
        let mut rows = Vec::new();
        for w in &ehs_workloads::SUITE {
            let b = base[w.name()].prefetch_operations().max(1);
            let i = ipex[w.name()].prefetch_operations();
            let row = Row {
                app: w.name(),
                reduction: 1.0 - i as f64 / b as f64,
            };
            println!("{:10} {:>8}", row.app, pct(row.reduction));
            rows.push(row);
        }
        let mean = rows.iter().map(|r| r.reduction).sum::<f64>() / rows.len() as f64;
        println!("{:10} {:>8}  (paper mean: 7.11%)", "mean", pct(mean));
        cx.write(self.file_id(), &rows);
    }
}
