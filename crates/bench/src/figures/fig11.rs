//! Figure 11: the Figure-10 comparison against the *ideal* NVSRAMCache
//! (zero-cost backup/restore) — the upper bound for cache-equipped EHSs.

use super::fig10::Row;
use super::{base_cfg, ipex_both_cfg, ipex_data_cfg, nopf_cfg, rfhome, suite_points};
use super::{speedup_headline, Figure, Headline, RenderCx};
use crate::sweep::SimPoint;
use crate::{banner, speedups};

fn configs() -> [ehs_sim::SimConfig; 4] {
    [
        base_cfg().with_ideal_backup(),
        nopf_cfg().with_ideal_backup(),
        ipex_data_cfg().with_ideal_backup(),
        ipex_both_cfg().with_ideal_backup(),
    ]
}

pub struct Fig11;

impl Figure for Fig11 {
    fn id(&self) -> &'static str {
        "fig11"
    }

    fn file_id(&self) -> &'static str {
        "fig11_speedup_ideal"
    }

    fn title(&self) -> &'static str {
        "speedup over NVSRAMCache (ideal), RFHome"
    }

    fn points(&self) -> Vec<SimPoint> {
        let trace = rfhome();
        configs()
            .iter()
            .flat_map(|c| suite_points(c, &trace))
            .collect()
    }

    fn headlines(&self) -> Vec<Headline> {
        let [base_c, nopf_c, ipex_d_c, ipex_c] = configs();
        vec![
            speedup_headline("no_prefetch_gmean", rfhome(), base_c.clone(), nopf_c),
            speedup_headline("ipex_data_gmean", rfhome(), base_c.clone(), ipex_d_c),
            speedup_headline("ipex_both_gmean", rfhome(), base_c, ipex_c),
        ]
    }

    fn render(&self, cx: &RenderCx<'_>) {
        banner(self.id(), self.title());
        let trace = rfhome();
        let [base_c, nopf_c, ipex_d_c, ipex_c] = configs();
        let base = cx.suite(&base_c, &trace);
        let nopf = cx.suite(&nopf_c, &trace);
        let ipex_d = cx.suite(&ipex_d_c, &trace);
        let ipex = cx.suite(&ipex_c, &trace);

        let (r0, g0) = speedups(&base, &nopf);
        let (r1, g1) = speedups(&base, &ipex_d);
        let (r2, g2) = speedups(&base, &ipex);
        let mut rows = Vec::new();
        println!(
            "{:10} {:>8} {:>8} {:>8}",
            "app", "no-pf", "+IPEX(D)", "+IPEX(I+D)"
        );
        for i in 0..r0.len() {
            println!(
                "{:10} {:>8.3} {:>8.3} {:>8.3}",
                r0[i].0, r0[i].1, r1[i].1, r2[i].1
            );
            rows.push(Row {
                app: r0[i].0.to_owned(),
                no_prefetch: r0[i].1,
                ipex_data: r1[i].1,
                ipex_both: r2[i].1,
            });
        }
        println!(
            "{:10} {:>8.3} {:>8.3} {:>8.3}  (paper IPEX-both gmean: 1.0906)",
            "gmean", g0, g1, g2
        );
        rows.push(Row {
            app: "gmean".into(),
            no_prefetch: g0,
            ipex_data: g1,
            ipex_both: g2,
        });
        cx.write(self.file_id(), &rows);
    }
}
