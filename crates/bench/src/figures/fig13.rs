//! Figure 13: main-memory traffic reduction (bars) and total energy
//! normalised to the baseline (line) with IPEX on both prefetchers.

use serde::Serialize;

use super::{base_cfg, ipex_both_cfg, rfhome, suite_points, Figure, Headline, RenderCx};
use crate::sweep::SimPoint;
use crate::{banner, pct};

pub struct Fig13;

impl Figure for Fig13 {
    fn id(&self) -> &'static str {
        "fig13"
    }

    fn file_id(&self) -> &'static str {
        "fig13_traffic_energy"
    }

    fn title(&self) -> &'static str {
        "memory-traffic reduction + normalised energy"
    }

    fn points(&self) -> Vec<SimPoint> {
        let trace = rfhome();
        let mut pts = suite_points(&base_cfg(), &trace);
        pts.extend(suite_points(&ipex_both_cfg(), &trace));
        pts
    }

    fn headlines(&self) -> Vec<Headline> {
        vec![
            Headline {
                label: "mean_traffic_reduction".into(),
                base_trace: rfhome(),
                configs: vec![base_cfg(), ipex_both_cfg()],
                eval: |s| {
                    let mut sum = 0.0;
                    for w in &ehs_workloads::SUITE {
                        let b = s[0][w.name()].nvm.total_traffic().max(1);
                        let i = s[1][w.name()].nvm.total_traffic();
                        sum += 1.0 - i as f64 / b as f64;
                    }
                    sum / ehs_workloads::SUITE.len() as f64
                },
            },
            Headline {
                label: "mean_normalized_energy".into(),
                base_trace: rfhome(),
                configs: vec![base_cfg(), ipex_both_cfg()],
                eval: |s| {
                    let mut sum = 0.0;
                    for w in &ehs_workloads::SUITE {
                        sum += s[1][w.name()].total_energy_nj() / s[0][w.name()].total_energy_nj();
                    }
                    sum / ehs_workloads::SUITE.len() as f64
                },
            },
        ]
    }

    fn render(&self, cx: &RenderCx<'_>) {
        #[derive(Serialize)]
        struct Row {
            app: &'static str,
            traffic_reduction: f64,
            normalized_energy: f64,
        }

        banner(self.id(), self.title());
        let trace = rfhome();
        let base = cx.suite(&base_cfg(), &trace);
        let ipex = cx.suite(&ipex_both_cfg(), &trace);
        let mut rows = Vec::new();
        for w in &ehs_workloads::SUITE {
            let b = &base[w.name()];
            let i = &ipex[w.name()];
            let row = Row {
                app: w.name(),
                traffic_reduction: 1.0
                    - i.nvm.total_traffic() as f64 / b.nvm.total_traffic().max(1) as f64,
                normalized_energy: i.total_energy_nj() / b.total_energy_nj(),
            };
            println!(
                "{:10} traffic {:>8}   energy {:>7.4}",
                row.app,
                pct(row.traffic_reduction),
                row.normalized_energy
            );
            rows.push(row);
        }
        let mt = rows.iter().map(|r| r.traffic_reduction).sum::<f64>() / rows.len() as f64;
        let me = rows.iter().map(|r| r.normalized_energy).sum::<f64>() / rows.len() as f64;
        println!(
            "{:10} traffic {:>8}   energy {:>7.4}  (paper: 2.00% / 0.921)",
            "mean",
            pct(mt),
            me
        );
        cx.write(self.file_id(), &rows);
    }
}
