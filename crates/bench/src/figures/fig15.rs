//! Figure 15: ICache/DCache miss rates with and without IPEX on both
//! prefetchers.

use serde::Serialize;

use super::{base_cfg, ipex_both_cfg, rfhome, suite_points, Figure, Headline, RenderCx};
use crate::sweep::SimPoint;
use crate::{banner, pct};

pub struct Fig15;

impl Figure for Fig15 {
    fn id(&self) -> &'static str {
        "fig15"
    }

    fn file_id(&self) -> &'static str {
        "fig15_miss_rates"
    }

    fn title(&self) -> &'static str {
        "cache miss rates, baseline vs IPEX"
    }

    fn points(&self) -> Vec<SimPoint> {
        let trace = rfhome();
        let mut pts = suite_points(&base_cfg(), &trace);
        pts.extend(suite_points(&ipex_both_cfg(), &trace));
        pts
    }

    fn headlines(&self) -> Vec<Headline> {
        vec![
            Headline {
                label: "mean_imiss_delta".into(),
                base_trace: rfhome(),
                configs: vec![base_cfg(), ipex_both_cfg()],
                eval: |s| {
                    let mut sum = 0.0;
                    for w in &ehs_workloads::SUITE {
                        sum +=
                            s[1][w.name()].icache.miss_rate() - s[0][w.name()].icache.miss_rate();
                    }
                    sum / ehs_workloads::SUITE.len() as f64
                },
            },
            Headline {
                label: "mean_dmiss_delta".into(),
                base_trace: rfhome(),
                configs: vec![base_cfg(), ipex_both_cfg()],
                eval: |s| {
                    let mut sum = 0.0;
                    for w in &ehs_workloads::SUITE {
                        sum +=
                            s[1][w.name()].dcache.miss_rate() - s[0][w.name()].dcache.miss_rate();
                    }
                    sum / ehs_workloads::SUITE.len() as f64
                },
            },
        ]
    }

    fn render(&self, cx: &RenderCx<'_>) {
        #[derive(Serialize)]
        struct Row {
            app: &'static str,
            icache_miss: f64,
            dcache_miss: f64,
            icache_miss_ipex: f64,
            dcache_miss_ipex: f64,
        }

        banner(self.id(), self.title());
        let trace = rfhome();
        let base = cx.suite(&base_cfg(), &trace);
        let ipex = cx.suite(&ipex_both_cfg(), &trace);
        let mut rows = Vec::new();
        for w in &ehs_workloads::SUITE {
            let b = &base[w.name()];
            let i = &ipex[w.name()];
            let row = Row {
                app: w.name(),
                icache_miss: b.icache.miss_rate(),
                dcache_miss: b.dcache.miss_rate(),
                icache_miss_ipex: i.icache.miss_rate(),
                dcache_miss_ipex: i.dcache.miss_rate(),
            };
            println!(
                "{:10} I {:>7} -> {:>7}   D {:>7} -> {:>7}",
                row.app,
                pct(row.icache_miss),
                pct(row.icache_miss_ipex),
                pct(row.dcache_miss),
                pct(row.dcache_miss_ipex)
            );
            rows.push(row);
        }
        let di: f64 = rows
            .iter()
            .map(|r| r.icache_miss_ipex - r.icache_miss)
            .sum::<f64>()
            / rows.len() as f64;
        let dd: f64 = rows
            .iter()
            .map(|r| r.dcache_miss_ipex - r.dcache_miss)
            .sum::<f64>()
            / rows.len() as f64;
        println!(
            "mean miss-rate increase under IPEX: I {} D {}  (paper: +0.08% / +0.02%)",
            pct(di),
            pct(dd)
        );
        cx.write(self.file_id(), &rows);
    }
}
