//! Figure 14: energy breakdown (cache / memory / compute / backup+rst)
//! normalised to the baseline, three bars per application.

use ehs_energy::EnergyBreakdown;
use serde::Serialize;

use super::RenderCx;
use super::{base_cfg, ipex_both_cfg, ipex_data_cfg, rfhome, suite_points, Figure, Headline};
use crate::banner;
use crate::sweep::SimPoint;

#[derive(Serialize)]
struct Row {
    app: &'static str,
    config: &'static str,
    cache: f64,
    memory: f64,
    compute: f64,
    backup_restore: f64,
    total: f64,
}

fn bar(
    app: &'static str,
    config: &'static str,
    e: &EnergyBreakdown,
    base: &EnergyBreakdown,
) -> Row {
    let n = e.normalized_to(base);
    Row {
        app,
        config,
        cache: n.cache_nj,
        memory: n.memory_nj,
        compute: n.compute_nj,
        backup_restore: n.backup_restore_nj,
        total: n.total_nj(),
    }
}

pub struct Fig14;

impl Figure for Fig14 {
    fn id(&self) -> &'static str {
        "fig14"
    }

    fn file_id(&self) -> &'static str {
        "fig14_energy_breakdown"
    }

    fn title(&self) -> &'static str {
        "normalised energy breakdown (baseline / +IPEX(D) / +IPEX(I+D))"
    }

    fn points(&self) -> Vec<SimPoint> {
        let trace = rfhome();
        [base_cfg(), ipex_data_cfg(), ipex_both_cfg()]
            .iter()
            .flat_map(|c| suite_points(c, &trace))
            .collect()
    }

    fn headlines(&self) -> Vec<Headline> {
        vec![Headline {
            label: "ipex_both_mean_normalized_energy".into(),
            base_trace: rfhome(),
            configs: vec![base_cfg(), ipex_both_cfg()],
            eval: |s| {
                let mut sum = 0.0;
                for w in &ehs_workloads::SUITE {
                    let b = &s[0][w.name()].energy;
                    let i = &s[1][w.name()].energy;
                    sum += i.normalized_to(b).total_nj();
                }
                sum / ehs_workloads::SUITE.len() as f64
            },
        }]
    }

    fn render(&self, cx: &RenderCx<'_>) {
        banner(self.id(), self.title());
        let trace = rfhome();
        let base = cx.suite(&base_cfg(), &trace);
        let ipex_d = cx.suite(&ipex_data_cfg(), &trace);
        let ipex = cx.suite(&ipex_both_cfg(), &trace);
        let mut rows = Vec::new();
        println!(
            "{:10} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "app", "config", "cache", "mem", "comp", "bk+rst", "total"
        );
        for w in &ehs_workloads::SUITE {
            let b = &base[w.name()].energy;
            for (cfg, e) in [
                ("baseline", b),
                ("ipex-data", &ipex_d[w.name()].energy),
                ("ipex-both", &ipex[w.name()].energy),
            ] {
                let row = bar(w.name(), cfg, e, b);
                println!(
                    "{:10} {:>10} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
                    row.app,
                    row.config,
                    row.cache,
                    row.memory,
                    row.compute,
                    row.backup_restore,
                    row.total
                );
                rows.push(row);
            }
        }
        let m: f64 = rows
            .iter()
            .filter(|r| r.config == "ipex-both")
            .map(|r| r.total)
            .sum::<f64>()
            / 20.0;
        println!("ipex-both mean normalised energy: {m:.4}  (paper: 0.9214)");
        cx.write(self.file_id(), &rows);
    }
}
