//! Figure 26 (extension): per-application speedup over the
//! conventional-prefetcher baseline (RFHome) for every throttling
//! policy — IPEX on both prefetchers next to the predictive,
//! hysteresis/EWMA and static degree-1 controllers on both prefetchers.
//!
//! Not a figure of the paper: it answers the natural follow-up question
//! the policy API makes askable — how much of IPEX's win comes from
//! *adaptive* thresholds versus merely throttling at all (static),
//! smoothing (hysteresis), or learning outage timing (predictive).

use serde::Serialize;

use super::{base_cfg, hysteresis_cfg, ipex_both_cfg, predictive_cfg, static_deg_cfg};
use super::{rfhome, speedup_headline, suite_points, Figure, Headline, RenderCx};
use crate::sweep::SimPoint;
use crate::{banner, speedups};

#[derive(Serialize)]
struct Row {
    app: String,
    ipex_both: f64,
    predictive: f64,
    hysteresis: f64,
    static_deg1: f64,
}

pub struct Fig26;

impl Figure for Fig26 {
    fn id(&self) -> &'static str {
        "fig26"
    }

    fn file_id(&self) -> &'static str {
        "fig26_policy_comparison"
    }

    fn title(&self) -> &'static str {
        "throttling-policy comparison vs baseline, RFHome"
    }

    fn points(&self) -> Vec<SimPoint> {
        let trace = rfhome();
        [
            base_cfg(),
            ipex_both_cfg(),
            predictive_cfg(),
            hysteresis_cfg(),
            static_deg_cfg(),
        ]
        .iter()
        .flat_map(|c| suite_points(c, &trace))
        .collect()
    }

    fn headlines(&self) -> Vec<Headline> {
        vec![
            speedup_headline("ipex_both_gmean", rfhome(), base_cfg(), ipex_both_cfg()),
            speedup_headline("predictive_gmean", rfhome(), base_cfg(), predictive_cfg()),
            speedup_headline("hysteresis_gmean", rfhome(), base_cfg(), hysteresis_cfg()),
            speedup_headline("static_deg1_gmean", rfhome(), base_cfg(), static_deg_cfg()),
        ]
    }

    fn render(&self, cx: &RenderCx<'_>) {
        banner(self.id(), self.title());
        let trace = rfhome();
        let base = cx.suite(&base_cfg(), &trace);
        let ipex = cx.suite(&ipex_both_cfg(), &trace);
        let pred = cx.suite(&predictive_cfg(), &trace);
        let hyst = cx.suite(&hysteresis_cfg(), &trace);
        let stat = cx.suite(&static_deg_cfg(), &trace);

        let (r0, g0) = speedups(&base, &ipex);
        let (r1, g1) = speedups(&base, &pred);
        let (r2, g2) = speedups(&base, &hyst);
        let (r3, g3) = speedups(&base, &stat);
        let mut rows = Vec::new();
        println!(
            "{:10} {:>10} {:>10} {:>10} {:>10}",
            "app", "+IPEX(I+D)", "predictive", "hysteresis", "static-1"
        );
        for i in 0..r0.len() {
            println!(
                "{:10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                r0[i].0, r0[i].1, r1[i].1, r2[i].1, r3[i].1
            );
            rows.push(Row {
                app: r0[i].0.to_owned(),
                ipex_both: r0[i].1,
                predictive: r1[i].1,
                hysteresis: r2[i].1,
                static_deg1: r3[i].1,
            });
        }
        println!(
            "{:10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            "gmean", g0, g1, g2, g3
        );
        rows.push(Row {
            app: "gmean".into(),
            ipex_both: g0,
            predictive: g1,
            hysteresis: g2,
            static_deg1: g3,
        });
        cx.write(self.file_id(), &rows);
    }
}
