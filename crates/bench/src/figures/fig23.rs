//! Figure 23: sensitivity to the harvested-power environment.

use ehs_energy::{TraceKind, TraceSpec};

use super::{base_cfg, ipex_both_cfg, speedup_headline, suite_points, Figure, Headline, RenderCx};
use crate::sweep::SimPoint;
use crate::{banner, speedups, SweepRow};

pub struct Fig23;

impl Figure for Fig23 {
    fn id(&self) -> &'static str {
        "fig23"
    }

    fn file_id(&self) -> &'static str {
        "fig23_power_traces"
    }

    fn title(&self) -> &'static str {
        "power traces (paper: small gap, RF slightly ahead)"
    }

    fn points(&self) -> Vec<SimPoint> {
        TraceKind::ALL
            .into_iter()
            .flat_map(|kind| {
                let trace = TraceSpec::standard(kind);
                let mut pts = suite_points(&base_cfg(), &trace);
                pts.extend(suite_points(&ipex_both_cfg(), &trace));
                pts
            })
            .collect()
    }

    fn headlines(&self) -> Vec<Headline> {
        // One headline per energy environment, each seed-swept within
        // its own kind (the cross-kind comparison is the figure).
        TraceKind::ALL
            .into_iter()
            .map(|kind| {
                speedup_headline(
                    format!("{}_ipex_gmean", kind.name()),
                    TraceSpec::standard(kind),
                    base_cfg(),
                    ipex_both_cfg(),
                )
            })
            .collect()
    }

    fn render(&self, cx: &RenderCx<'_>) {
        banner(self.file_id(), self.title());
        let mut rows = Vec::new();
        for kind in TraceKind::ALL {
            let trace = TraceSpec::standard(kind);
            let b = cx.suite(&base_cfg(), &trace);
            let i = cx.suite(&ipex_both_cfg(), &trace);
            let (_, g) = speedups(&b, &i);
            println!("{:>10}  IPEX speedup over baseline: {g:.4}", kind.name());
            rows.push(SweepRow {
                label: kind.name().to_owned(),
                ipex_speedup: g,
            });
        }
        cx.write(self.file_id(), &rows);
    }
}
