//! Table 2: prefetch accuracy and coverage for instruction and data
//! streams, baseline vs IPEX.

use std::collections::BTreeMap;

use ehs_sim::prelude::*;
use serde::Serialize;

use super::{base_cfg, ipex_both_cfg, rfhome, suite_points, Figure, Headline, RenderCx};
use crate::sweep::SimPoint;
use crate::{banner, pct};

#[derive(Serialize)]
struct Row {
    config: &'static str,
    acc_inst: f64,
    acc_data: f64,
    cov_inst: f64,
    cov_data: f64,
}

fn aggregate(results: &BTreeMap<&'static str, SimResult>, config: &'static str) -> Row {
    // Aggregate over the pooled counts (not a mean of ratios), matching
    // how suite-level accuracy/coverage is usually reported.
    let (mut iu, mut iw, mut du, mut dw, mut im, mut dm) = (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    for r in results.values() {
        iu += r.ibuf.useful;
        iw += r.ibuf.useless();
        du += r.dbuf.useful;
        dw += r.dbuf.useless();
        im += r.stats.i_demand_reads;
        dm += r.stats.d_demand_reads;
    }
    Row {
        config,
        acc_inst: iu as f64 / (iu + iw).max(1) as f64,
        acc_data: du as f64 / (du + dw).max(1) as f64,
        cov_inst: iu as f64 / (iu + im).max(1) as f64,
        cov_data: du as f64 / (du + dm).max(1) as f64,
    }
}

pub struct Tab2;

impl Figure for Tab2 {
    fn id(&self) -> &'static str {
        "tab2"
    }

    fn file_id(&self) -> &'static str {
        "tab2_accuracy_coverage"
    }

    fn title(&self) -> &'static str {
        "prefetch accuracy and coverage"
    }

    fn points(&self) -> Vec<SimPoint> {
        let trace = rfhome();
        let mut pts = suite_points(&base_cfg(), &trace);
        pts.extend(suite_points(&ipex_both_cfg(), &trace));
        pts
    }

    fn headlines(&self) -> Vec<Headline> {
        fn delta(s: &[BTreeMap<&'static str, SimResult>], pick: fn(&Row) -> f64) -> f64 {
            pick(&aggregate(&s[1], "ipex")) - pick(&aggregate(&s[0], "base"))
        }
        let mk = |label: &str, eval: fn(&[BTreeMap<&'static str, SimResult>]) -> f64| Headline {
            label: label.into(),
            base_trace: rfhome(),
            configs: vec![base_cfg(), ipex_both_cfg()],
            eval,
        };
        vec![
            mk("acc_inst_gain", |s| delta(s, |r| r.acc_inst)),
            mk("acc_data_gain", |s| delta(s, |r| r.acc_data)),
            mk("cov_inst_gain", |s| delta(s, |r| r.cov_inst)),
            mk("cov_data_gain", |s| delta(s, |r| r.cov_data)),
        ]
    }

    fn render(&self, cx: &RenderCx<'_>) {
        banner(self.id(), self.title());
        let trace = rfhome();
        let base = aggregate(&cx.suite(&base_cfg(), &trace), "NVSRAMCache");
        let ipex = aggregate(&cx.suite(&ipex_both_cfg(), &trace), "IPEX");
        println!(
            "{:12} {:>9} {:>9} {:>9} {:>9}",
            "config", "acc(I)", "acc(D)", "cov(I)", "cov(D)"
        );
        for r in [&base, &ipex] {
            println!(
                "{:12} {:>9} {:>9} {:>9} {:>9}",
                r.config,
                pct(r.acc_inst),
                pct(r.acc_data),
                pct(r.cov_inst),
                pct(r.cov_data)
            );
        }
        println!("(paper: 54.03/52.88/80.56/64.51 -> 72.88/64.93/78.24/61.44)");
        cx.write(self.file_id(), &vec![base, ipex]);
    }
}
