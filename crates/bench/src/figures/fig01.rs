//! Figure 1: speedup over the 2 kB baseline and cache-leakage share of
//! total energy, as cache size varies (prefetchers disabled).

use std::collections::BTreeMap;

use ehs_sim::prelude::*;
use serde::Serialize;

use super::{nopf_cfg, rfhome, suite_points, Figure, RenderCx};
use crate::sweep::SimPoint;
use crate::{banner, gmean, pct};

const SIZES: [u32; 6] = [256, 512, 1024, 2048, 4096, 8192];

fn cfg_for(size: u32) -> SimConfig {
    nopf_cfg().with_cache_size(size)
}

pub struct Fig01;

impl Figure for Fig01 {
    fn id(&self) -> &'static str {
        "fig01"
    }

    fn file_id(&self) -> &'static str {
        "fig01_cache_size_motivation"
    }

    fn title(&self) -> &'static str {
        "cache-size motivation (no prefetchers), RFHome"
    }

    fn points(&self) -> Vec<SimPoint> {
        let trace = rfhome();
        SIZES
            .iter()
            .flat_map(|&s| suite_points(&cfg_for(s), &trace))
            .collect()
    }

    fn render(&self, cx: &RenderCx<'_>) {
        #[derive(Serialize)]
        struct Row {
            size_bytes: u32,
            speedup_over_2kb: f64,
            cache_leak_share: f64,
        }

        banner(self.id(), self.title());
        let trace = rfhome();
        let mut results = BTreeMap::new();
        for &s in &SIZES {
            results.insert(s, cx.suite(&cfg_for(s), &trace));
        }
        let base = &results[&2048];
        let mut rows = Vec::new();
        for &s in &SIZES {
            let r = &results[&s];
            let speeds: Vec<f64> = ehs_workloads::SUITE
                .iter()
                .map(|w| {
                    base[w.name()].stats.total_cycles as f64 / r[w.name()].stats.total_cycles as f64
                })
                .collect();
            // Leakage share: cache leak power / total energy. The cache
            // bucket is access energy + leakage; recompute leakage directly.
            let leak_share: Vec<f64> = ehs_workloads::SUITE
                .iter()
                .map(|w| {
                    let res = &r[w.name()];
                    let leak_nj = 2.0
                        * SimConfig::default().energy.cache_leak_nj_per_cycle(s)
                        * res.stats.on_cycles as f64;
                    leak_nj / res.total_energy_nj()
                })
                .collect();
            let row = Row {
                size_bytes: s,
                speedup_over_2kb: gmean(&speeds),
                cache_leak_share: leak_share.iter().sum::<f64>() / leak_share.len() as f64,
            };
            println!(
                "{:>5} B  speedup {:.3}   cache leak {}",
                s,
                row.speedup_over_2kb,
                pct(row.cache_leak_share)
            );
            rows.push(row);
        }
        cx.write(self.file_id(), &rows);
    }
}
