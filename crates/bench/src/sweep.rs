//! The content-addressed simulation-point engine.
//!
//! The paper's evaluation is a dense matrix — 20 workloads × ~10
//! configurations × several power traces — and most figures share large
//! parts of it (nearly every one re-measures the RFHome baseline
//! suite). This module makes every *point* of that matrix a value with
//! an identity, so it is simulated **at most once per process and at
//! most once per cache lifetime**, no matter how many figures ask for
//! it:
//!
//! * A [`SimPoint`] is `(workload, SimConfig, TraceSpec)`. Its
//!   [`PointKey`] is the FNV-1a 64 digest of the canonical JSON of
//!   those inputs plus [`SIM_VERSION_SALT`] (see [`ehs_sim::canon`]);
//!   field order and construction path cannot perturb it.
//! * [`Sweep`] is the engine: an in-memory memo store, an optional
//!   on-disk cache (`results/.cache/<key>.json`, invalidated by bumping
//!   the salt), in-flight deduplication so concurrent requests for the
//!   same key run one simulation, and a bounded worker pool for misses.
//! * [`Sweep::request`] batches any number of points into a
//!   [`SweepHandle`]; `wait()` resolves them all. Figures declare what
//!   they need and automatically share every hit with every other
//!   figure in the process.
//!
//! [`SweepStats`] exposes the exactly-once accounting (`simulated`
//! counts real machine runs; `unique()` is `simulated + disk_hits`)
//! that the `paper` binary asserts on and records in `BENCH_sweep.json`.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use ehs_energy::{PowerTrace, TraceSpec};
use ehs_sim::canon;
use ehs_sim::prelude::*;
use ehs_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Version salt folded into every [`PointKey`].
///
/// Bump this whenever the simulator's *semantics* change (a fixed
/// model, a new energy constant, a different default): every previously
/// cached result silently becomes unreachable and the next run
/// re-simulates, so a stale `results/.cache/` can never contaminate a
/// figure.
pub const SIM_VERSION_SALT: &str = "ehs-sim-2026-08-ipex-v1";

/// One point of the evaluation matrix: a workload executed under a
/// configuration while replaying a power trace.
#[derive(Debug, Clone)]
pub struct SimPoint {
    /// Workload name (must exist in [`ehs_workloads::SUITE`]).
    pub workload: &'static str,
    /// Full machine configuration.
    pub config: SimConfig,
    /// Identity of the input power (synthesized on demand, not stored).
    pub trace: TraceSpec,
}

impl SimPoint {
    /// Builds a point.
    pub fn new(workload: &'static str, config: SimConfig, trace: TraceSpec) -> SimPoint {
        SimPoint {
            workload,
            config,
            trace,
        }
    }

    /// The point's content-addressed identity: FNV-1a 64 over the
    /// newline-joined canonical JSON of (salt, workload, config,
    /// trace). Stable across processes, field reorderings, and
    /// construction paths; changed by any semantic input difference.
    pub fn key(&self) -> PointKey {
        let mut material = String::with_capacity(1024);
        material.push_str(SIM_VERSION_SALT);
        material.push('\n');
        material.push_str(self.workload);
        material.push('\n');
        material.push_str(&canon::canonical_json(&self.config));
        material.push('\n');
        material.push_str(&canon::canonical_json(&self.trace));
        PointKey(canon::fnv1a_64(material.as_bytes()))
    }
}

/// A 64-bit content digest identifying a [`SimPoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointKey(pub u64);

impl std::fmt::Display for PointKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Tuning knobs for a [`Sweep`].
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker-pool width for simulating misses; `None` consults the
    /// `EHS_SWEEP_JOBS` environment variable, then
    /// [`std::thread::available_parallelism`]. The env override exists
    /// for containers whose cgroup quota misreports the usable core
    /// count.
    pub jobs: Option<usize>,
    /// Directory for the on-disk result cache (typically
    /// `results/.cache`); `None` disables persistence entirely.
    pub disk_cache: Option<PathBuf>,
    /// Periodic crash checkpoints for in-flight simulations; `None`
    /// disables them. Deliberately independent of `disk_cache`: a
    /// `--no-cache` run re-simulates every point yet still survives
    /// being killed mid-flight.
    pub checkpoints: Option<CheckpointPolicy>,
    /// Time-sliced execution: `Some(k)` with `k >= 2` routes every
    /// simulated miss through [`crate::slice::run_one_sliced`] (cut
    /// plans are cached next to the result cache when `disk_cache` is
    /// set). Results are bit-identical to monolithic runs — the digest
    /// chain is asserted per point. `None`/`Some(1)` is the monolithic
    /// engine.
    pub slices: Option<usize>,
}

/// Upper bound on the worker-pool width. No real machine this harness
/// targets has more cores; a larger request is a typo (`EHS_SWEEP_JOBS=
/// 10000`) that would only burn memory on idle stacks.
pub const MAX_JOBS: usize = 256;

/// The `EHS_SWEEP_JOBS` override, if set to a positive integer.
/// Anything else (unset, empty, garbage, zero) is ignored rather than
/// erroring, and absurd widths are clamped to [`MAX_JOBS`]: the
/// variable is an operator escape hatch, not an API.
fn env_jobs() -> Option<usize> {
    parse_jobs(&std::env::var("EHS_SWEEP_JOBS").unwrap_or_default())
}

/// Pure parser behind [`env_jobs`], split out so the validation rules
/// are unit-testable without touching process environment.
fn parse_jobs(raw: &str) -> Option<usize> {
    raw.trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
        .map(|n| n.min(MAX_JOBS))
}

/// Where and how often in-flight simulations checkpoint.
///
/// While a point simulates, its machine state is snapshotted every
/// `every_cycles` simulated cycles to `<dir>/<key>.ckpt.json`
/// (write-then-rename; deleted on completion). A later engine finding a
/// checkpoint resumes from it bit-identically, so an interrupted sweep
/// repays only the cycles since the last checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint directory (typically the same `results/.cache` the
    /// result cache uses; the `.ckpt.json` suffix keeps them apart).
    pub dir: PathBuf,
    /// Snapshot period in simulated cycles (on + off time).
    pub every_cycles: u64,
}

impl CheckpointPolicy {
    /// The checkpoint file for a point.
    pub fn path_for(&self, key: PointKey) -> PathBuf {
        self.dir.join(format!("{key}.ckpt.json"))
    }
}

/// Exactly-once accounting for one engine lifetime.
///
/// Every requested point ends up in exactly one bucket per resolution:
/// `memo_hits` (already resolved in this process), `disk_hits` (loaded
/// from the persistent cache), or `simulated` (an actual machine run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Points passed to [`Sweep::request`], duplicates included.
    pub requested: u64,
    /// Request points resolved from the in-memory memo store.
    pub memo_hits: u64,
    /// Misses satisfied by the on-disk cache.
    pub disk_hits: u64,
    /// Misses that ran a real simulation.
    pub simulated: u64,
    /// Times a request found its point already being simulated by
    /// another in-flight batch and waited instead of re-running it.
    pub in_flight_waits: u64,
    /// Simulations that resumed from an on-disk crash checkpoint
    /// instead of starting cold (a subset of `simulated`).
    pub resumed: u64,
    /// Cycles actually simulated in this process. A resumed point
    /// contributes only the cycles past its checkpoint, so this is what
    /// shrinks when an interrupted sweep restarts.
    pub cycles_simulated: u64,
}

impl SweepStats {
    /// Distinct points this engine materialised (from disk or by
    /// simulating). On a cold cache this equals `simulated` — the
    /// "every unique point exactly once" invariant.
    pub fn unique(&self) -> u64 {
        self.simulated + self.disk_hits
    }
}

enum Slot {
    /// Claimed by an in-flight batch; wait on the condvar.
    Running,
    /// Resolved (possibly to a simulation error). Boxed so the map slot
    /// stays pointer-sized while a point is merely claimed.
    Done(Box<Result<SimResult, SimError>>),
}

/// The deduplicating, memoizing simulation engine. See the module docs.
pub struct Sweep {
    jobs: usize,
    slices: usize,
    disk_cache: Option<PathBuf>,
    checkpoints: Option<CheckpointPolicy>,
    state: Mutex<HashMap<PointKey, Slot>>,
    ready: Condvar,
    /// Materialised power traces, keyed by the spec's canonical JSON
    /// (each trace is synthesized once and shared by every point).
    traces: Mutex<HashMap<String, Arc<PowerTrace>>>,
    requested: AtomicU64,
    memo_hits: AtomicU64,
    disk_hits: AtomicU64,
    simulated: AtomicU64,
    in_flight_waits: AtomicU64,
    resumed: AtomicU64,
    cycles_simulated: AtomicU64,
}

impl Sweep {
    /// Builds an engine with the given options.
    pub fn new(opts: SweepOptions) -> Sweep {
        let jobs = opts.jobs.or_else(env_jobs).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        Sweep {
            jobs: jobs.clamp(1, MAX_JOBS),
            slices: opts.slices.unwrap_or(1).max(1),
            disk_cache: opts.disk_cache,
            checkpoints: opts.checkpoints,
            state: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            traces: Mutex::new(HashMap::new()),
            requested: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            simulated: AtomicU64::new(0),
            in_flight_waits: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            cycles_simulated: AtomicU64::new(0),
        }
    }

    /// An engine with no on-disk persistence — what the per-figure shim
    /// binaries and tests use.
    pub fn in_memory() -> Sweep {
        Sweep::new(SweepOptions::default())
    }

    /// The worker-pool width this engine actually uses. This is the
    /// resolved value (explicit option, `EHS_SWEEP_JOBS`, or detected
    /// parallelism, clamped to at least 1), so callers recording "how
    /// many workers ran" must read it from here rather than re-deriving
    /// it from the options they passed in.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The slice budget misses simulate under (1 = monolithic). Like
    /// [`Sweep::jobs`], the resolved value for callers recording it.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// The standard on-disk cache location, `<results>/​.cache`.
    pub fn default_cache_dir(results_dir: &Path) -> PathBuf {
        results_dir.join(".cache")
    }

    /// Registers a batch of points and returns a handle that resolves
    /// them. Requesting is cheap; nothing is simulated until
    /// [`SweepHandle::wait`] (or [`Sweep::get`]) forces it.
    pub fn request(&self, points: Vec<SimPoint>) -> SweepHandle<'_> {
        self.requested
            .fetch_add(points.len() as u64, Ordering::Relaxed);
        SweepHandle {
            sweep: self,
            points,
        }
    }

    /// Resolves one point (memoized; simulates only on a true miss) and
    /// returns a clone of its result.
    pub fn get(&self, point: &SimPoint) -> Result<SimResult, SimError> {
        self.ensure(std::slice::from_ref(point));
        let state = self.state.lock().expect("sweep state poisoned");
        match state.get(&point.key()) {
            Some(Slot::Done(r)) => (**r).clone(),
            _ => unreachable!("ensure() resolves every requested key"),
        }
    }

    /// Runs the full 20-workload suite under `cfg`/`trace` through the
    /// engine and returns results keyed by workload name, panicking on
    /// any simulation failure (an experiment configuration that cannot
    /// finish is a harness bug).
    pub fn suite(&self, cfg: &SimConfig, trace: &TraceSpec) -> BTreeMap<&'static str, SimResult> {
        self.suite_filtered(cfg, trace, |_| true)
    }

    /// [`Sweep::suite`] restricted to the workloads accepted by
    /// `filter`.
    pub fn suite_filtered(
        &self,
        cfg: &SimConfig,
        trace: &TraceSpec,
        filter: impl Fn(&Workload) -> bool,
    ) -> BTreeMap<&'static str, SimResult> {
        let points: Vec<SimPoint> = ehs_workloads::SUITE
            .iter()
            .filter(|w| filter(w))
            .map(|w| SimPoint::new(w.name(), cfg.clone(), trace.clone()))
            .collect();
        let results = self.request(points.clone()).wait();
        points
            .iter()
            .zip(results)
            .map(|(p, r)| (p.workload, crate::expect_ok(p.workload, &p.config, r)))
            .collect()
    }

    /// Current counters (a consistent snapshot is only guaranteed while
    /// no batch is in flight).
    pub fn stats(&self) -> SweepStats {
        SweepStats {
            requested: self.requested.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            simulated: self.simulated.load(Ordering::Relaxed),
            in_flight_waits: self.in_flight_waits.load(Ordering::Relaxed),
            resumed: self.resumed.load(Ordering::Relaxed),
            cycles_simulated: self.cycles_simulated.load(Ordering::Relaxed),
        }
    }

    /// Resolves every point in `points`: claims unclaimed keys and runs
    /// them on the worker pool, then blocks until keys claimed by other
    /// in-flight batches are done too.
    fn ensure(&self, points: &[SimPoint]) {
        // Claim phase: one pass under the lock decides, for every key,
        // whether this batch runs it, another batch is running it, or
        // it is already done.
        let mut to_run: Vec<&SimPoint> = Vec::new();
        {
            let mut state = self.state.lock().expect("sweep state poisoned");
            let mut claimed_here: Vec<PointKey> = Vec::new();
            for p in points {
                let key = p.key();
                match state.get(&key) {
                    Some(Slot::Done(_)) => {
                        self.memo_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(Slot::Running) => {
                        // In-flight dedup: either another batch owns it,
                        // or this batch already claimed a duplicate.
                        if claimed_here.contains(&key) {
                            self.memo_hits.fetch_add(1, Ordering::Relaxed);
                        } else {
                            self.in_flight_waits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    None => {
                        state.insert(key, Slot::Running);
                        claimed_here.push(key);
                        to_run.push(p);
                    }
                }
            }
        }

        // Execution phase: bounded pool over this batch's misses.
        if !to_run.is_empty() {
            let workers = self.jobs.min(to_run.len());
            if workers <= 1 {
                for p in &to_run {
                    self.compute_and_publish(p);
                }
            } else {
                let next = AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        let (next, to_run) = (&next, &to_run);
                        scope.spawn(move || loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(p) = to_run.get(i) else { break };
                            self.compute_and_publish(p);
                        });
                    }
                });
            }
        }

        // Wait phase: keys claimed by other in-flight batches.
        let mut state = self.state.lock().expect("sweep state poisoned");
        loop {
            let pending = points
                .iter()
                .any(|p| matches!(state.get(&p.key()), Some(Slot::Running)));
            if !pending {
                break;
            }
            state = self.ready.wait(state).expect("sweep state poisoned");
        }
    }

    /// Computes one claimed point (disk cache first, simulation on a
    /// true miss), publishes the result, and wakes waiters.
    fn compute_and_publish(&self, point: &SimPoint) {
        let key = point.key();
        let result = match self.load_cached(point, key) {
            Some(hit) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                Ok(hit)
            }
            None => {
                let workload = ehs_workloads::by_name(point.workload)
                    .unwrap_or_else(|| panic!("unknown workload `{}` in sweep", point.workload));
                let trace = self.materialise(&point.trace);
                self.simulated.fetch_add(1, Ordering::Relaxed);
                let r = if self.slices >= 2 {
                    // Sliced execution: bit-identical by construction
                    // (the digest chain is asserted inside), so the
                    // published result — and every figure derived from
                    // it — matches a monolithic engine's byte-for-byte.
                    let opts = crate::slice::SliceRunOptions {
                        slices: self.slices,
                        jobs: self.jobs,
                        cuts_path: self
                            .disk_cache
                            .as_ref()
                            .map(|d| crate::slice::cuts_path(d, key, self.slices)),
                    };
                    match crate::slice::run_one_sliced(workload, &point.config, &trace, &opts) {
                        Ok(run) => {
                            self.cycles_simulated
                                .fetch_add(run.cycles_simulated, Ordering::Relaxed);
                            Ok(run.result)
                        }
                        Err(e) => Err(e),
                    }
                } else {
                    match &self.checkpoints {
                        Some(policy) => {
                            let out = crate::run_one_checkpointed(
                                workload,
                                &point.config,
                                &trace,
                                &policy.path_for(key),
                                policy.every_cycles,
                            );
                            if out.resumed_from.is_some() {
                                self.resumed.fetch_add(1, Ordering::Relaxed);
                            }
                            self.cycles_simulated
                                .fetch_add(out.cycles_simulated, Ordering::Relaxed);
                            out.result
                        }
                        None => {
                            // Counted even when the outcome is an error: a
                            // point that hit its cycle budget or faulted
                            // still simulated every one of those cycles.
                            let (r, cycles) =
                                crate::run_one_counted(workload, &point.config, &trace);
                            self.cycles_simulated.fetch_add(cycles, Ordering::Relaxed);
                            r
                        }
                    }
                };
                if let Ok(ok) = &r {
                    self.store_cached(point, key, ok);
                }
                r
            }
        };
        let mut state = self.state.lock().expect("sweep state poisoned");
        state.insert(key, Slot::Done(Box::new(result)));
        drop(state);
        self.ready.notify_all();
    }

    /// Synthesizes (or reuses) the power trace a spec describes.
    fn materialise(&self, spec: &TraceSpec) -> Arc<PowerTrace> {
        let id = canon::canonical_json(spec);
        let mut traces = self.traces.lock().expect("trace store poisoned");
        traces
            .entry(id)
            .or_insert_with(|| Arc::new(spec.synthesize()))
            .clone()
    }

    fn cache_path(&self, key: PointKey) -> Option<PathBuf> {
        self.disk_cache
            .as_ref()
            .map(|d| d.join(format!("{key}.json")))
    }

    fn load_cached(&self, point: &SimPoint, key: PointKey) -> Option<SimResult> {
        let path = self.cache_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        let entry: CacheEntry = serde_json::from_str(&text).ok()?;
        // The salt is already folded into the file name via the key;
        // checking it again guards against a hand-copied stale file.
        (entry.salt == SIM_VERSION_SALT && entry.workload == point.workload).then_some(entry.result)
    }

    fn store_cached(&self, point: &SimPoint, key: PointKey, result: &SimResult) {
        let Some(path) = self.cache_path(key) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return; // caching is best-effort; the run still succeeds
        }
        let entry = CacheEntry {
            salt: SIM_VERSION_SALT.to_owned(),
            key: key.to_string(),
            workload: point.workload.to_owned(),
            trace: point.trace.clone(),
            result: result.clone(),
        };
        let json = serde_json::to_string(&entry).expect("serialise cache entry");
        // Write-then-rename so a crashed run can never leave a torn
        // entry that a later run would half-parse.
        let tmp = path.with_extension("json.tmp");
        if std::fs::write(&tmp, json).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

/// One persisted point result (`results/.cache/<key>.json`).
#[derive(Serialize, Deserialize)]
struct CacheEntry {
    salt: String,
    key: String,
    workload: String,
    trace: TraceSpec,
    result: SimResult,
}

/// A batch of requested points; dropping it without calling
/// [`wait`](SweepHandle::wait) abandons the request (nothing is
/// simulated on its behalf).
#[must_use = "a SweepHandle does nothing until wait() resolves it"]
pub struct SweepHandle<'a> {
    sweep: &'a Sweep,
    points: Vec<SimPoint>,
}

impl SweepHandle<'_> {
    /// Resolves every point in the batch (deduplicated against the
    /// store, other in-flight batches, the disk cache, and within the
    /// batch itself) and returns the results in request order.
    pub fn wait(self) -> Vec<Result<SimResult, SimError>> {
        self.sweep.ensure(&self.points);
        let state = self.sweep.state.lock().expect("sweep state poisoned");
        self.points
            .iter()
            .map(|p| match state.get(&p.key()) {
                Some(Slot::Done(r)) => (**r).clone(),
                _ => unreachable!("ensure() resolves every requested key"),
            })
            .collect()
    }

    /// The points this handle will resolve.
    pub fn points(&self) -> &[SimPoint] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_point() -> SimPoint {
        SimPoint::new(
            "gsmd",
            SimConfig::builder().build(),
            TraceSpec::Constant {
                power_mw: 50.0,
                samples: 8,
            },
        )
    }

    #[test]
    fn key_is_stable_and_discriminating() {
        let a = tiny_point();
        assert_eq!(a.key(), tiny_point().key());
        let mut other = tiny_point();
        other.config.prefetch_degree = 4;
        assert_ne!(a.key(), other.key());
        let mut other_trace = tiny_point();
        other_trace.trace = TraceSpec::Constant {
            power_mw: 51.0,
            samples: 8,
        };
        assert_ne!(a.key(), other_trace.key());
        let renamed = SimPoint::new("fft", a.config.clone(), a.trace.clone());
        assert_ne!(a.key(), renamed.key());
    }

    #[test]
    fn duplicate_requests_simulate_once() {
        let sweep = Sweep::in_memory();
        let p = tiny_point();
        // Duplicates within one batch...
        let rs = sweep.request(vec![p.clone(), p.clone(), p.clone()]).wait();
        assert_eq!(rs.len(), 3);
        assert!(rs.iter().all(|r| r.is_ok()));
        // ...and across later batches all collapse to one simulation.
        let _ = sweep.request(vec![p.clone()]).wait();
        let _ = sweep.get(&p).unwrap();
        let stats = sweep.stats();
        assert_eq!(stats.simulated, 1, "{stats:?}");
        assert_eq!(stats.requested, 4);
        assert_eq!(stats.memo_hits, 4, "2 in-batch + 2 later");
    }

    #[test]
    fn concurrent_batches_dedup_in_flight() {
        let sweep = Sweep::in_memory();
        let p = tiny_point();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (sweep, p) = (&sweep, p.clone());
                scope.spawn(move || {
                    let r = sweep.request(vec![p]).wait();
                    assert!(r[0].is_ok());
                });
            }
        });
        assert_eq!(sweep.stats().simulated, 1);
    }

    #[test]
    fn checkpointed_engine_resumes_a_planted_snapshot() {
        use ehs_sim::Machine;

        let dir = std::env::temp_dir().join(format!(
            "ehs-sweep-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let point = tiny_point();
        let policy = CheckpointPolicy {
            dir: dir.clone(),
            every_cycles: 10_000,
        };

        // Simulate an interrupted run: execute the point partway by
        // hand and leave its checkpoint behind.
        let workload = ehs_workloads::by_name(point.workload).unwrap();
        let program = workload.program();
        let trace = point.trace.synthesize();
        let mut m = Machine::with_trace(point.config.clone(), &program, trace);
        assert!(matches!(
            m.run_until(20_000).unwrap(),
            RunStatus::Paused,
            // gsmd takes far longer than 20k cycles at 50 mW
        ));
        crate::write_checkpoint(&policy.path_for(point.key()), &m.snapshot(&program));

        // A fresh engine must resume it — and produce the cold result.
        let cold = Sweep::in_memory().get(&point).unwrap();
        let sweep = Sweep::new(SweepOptions {
            jobs: Some(1),
            disk_cache: None,
            checkpoints: Some(policy.clone()),
            slices: None,
        });
        let warm = sweep.get(&point).unwrap();
        let stats = sweep.stats();
        assert_eq!(warm, cold, "resumed result must be identical");
        assert_eq!(stats.resumed, 1, "{stats:?}");
        assert!(
            stats.cycles_simulated < cold.stats.total_cycles,
            "resume must repay fewer cycles ({} vs {})",
            stats.cycles_simulated,
            cold.stats.total_cycles
        );
        assert!(
            !policy.path_for(point.key()).exists(),
            "checkpoint must be deleted after completion"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_jobs_rejects_garbage_and_clamps_absurd_widths() {
        assert_eq!(parse_jobs(""), None);
        assert_eq!(parse_jobs("   "), None);
        assert_eq!(parse_jobs("zero"), None);
        assert_eq!(parse_jobs("0"), None, "a zero-width pool cannot run");
        assert_eq!(parse_jobs("-4"), None);
        assert_eq!(parse_jobs("1.5"), None);
        assert_eq!(parse_jobs("1"), Some(1));
        assert_eq!(parse_jobs(" 8 "), Some(8));
        assert_eq!(parse_jobs(&MAX_JOBS.to_string()), Some(MAX_JOBS));
        assert_eq!(
            parse_jobs("10000"),
            Some(MAX_JOBS),
            "absurd widths clamp instead of spawning 10k threads"
        );
        assert_eq!(parse_jobs(&u64::MAX.to_string()), Some(MAX_JOBS));
    }

    #[test]
    fn sliced_engine_publishes_the_monolithic_result() {
        let p = tiny_point();
        let mono = Sweep::in_memory().get(&p).unwrap();
        let sliced = Sweep::new(SweepOptions {
            jobs: Some(2),
            slices: Some(3),
            ..SweepOptions::default()
        });
        assert_eq!(sliced.slices(), 3);
        let r = sliced.get(&p).unwrap();
        assert_eq!(r, mono, "sliced sweep must be bit-identical");
        assert_eq!(sliced.stats().simulated, 1);
    }

    #[test]
    fn errors_are_memoized_too() {
        let mut cfg = SimConfig::builder().build();
        cfg.max_cycles = 10; // guaranteed cycle-limit error
        let p = SimPoint::new(
            "gsmd",
            cfg,
            TraceSpec::Constant {
                power_mw: 50.0,
                samples: 8,
            },
        );
        let sweep = Sweep::in_memory();
        let e1 = sweep.get(&p).expect_err("10 cycles cannot complete gsmd");
        let e2 = sweep.get(&p).expect_err("memoized outcome must match");
        assert!(matches!(e1, SimError::CycleLimit { .. }));
        assert_eq!(e1, e2);
        assert_eq!(sweep.stats().simulated, 1);
    }
}
