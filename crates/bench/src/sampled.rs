//! SMARTS-style sampled simulation: systematic cycle sampling with
//! snapshot-exact warming, reporting confidence intervals.
//!
//! SMARTS (Wunderlich et al.) estimates a long run's metrics from many
//! short, systematically spaced *measurement windows*, fast-forwarding
//! between them with functional warming. Our engine has something
//! better than approximate functional warming: the slice planner's
//! entry snapshots (`ehs_sim::slice`) are *bit-exact* machine states at
//! evenly spaced points of the run. Sampled mode resumes a measurement
//! window of `window_cycles` simulated cycles at every cut, so the only
//! error left is sampling error — the gaps between windows — which the
//! reported CIs quantify honestly.
//!
//! Per window the estimator measures rate metrics over the window's
//! *total* cycle span (on + off time), so every window carries ~equal
//! weight and the mean of per-window rates estimates the run-level
//! rate:
//!
//! * `ipc` — instructions retired per simulated cycle,
//! * `energy_nj_per_cycle` — total energy per simulated cycle,
//! * `prefetch_accuracy` — useful prefetches over settled prefetches
//!   (windows where no prefetch settles contribute no sample).
//!
//! CIs are Student-t 95 % over the window samples, computed by
//! [`crate::stats`]'s order/merge-invariant accumulators, so the report
//! is byte-identical no matter how the windows were scheduled across
//! workers — and byte-identical between a cold run (fresh forward
//! pass) and a warm one (cuts loaded from the cache), because snapshot
//! JSON round-trips f64 state exactly.
//!
//! Cost model, stated honestly: building the cuts requires one full
//! forward simulation, so a *cold* sampled run saves nothing. Once the
//! cuts are cached, a sampled re-run simulates only
//! `windows × window_cycles` cycles — the fraction of the run the
//! estimate is built from.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use ehs_energy::PowerTrace;
use ehs_isa::Program;
use ehs_sim::prelude::*;
use ehs_sim::slice::{self, SliceError, SlicePlan};
use ehs_workloads::Workload;
use serde::{Deserialize, Serialize};

use crate::stats::{Accumulator, Ci};

/// Initial snapshot spacing for the sampled forward pass — half the
/// slicing grain, so even short suite workloads yield enough windows
/// for a meaningful dispersion estimate.
pub const SAMPLE_GRAIN_CYCLES: u64 = 25_000;

/// Minimum measurement-window length: long enough to amortise the
/// post-resume cache/prefetcher state into steady behaviour.
pub const MIN_WINDOW_CYCLES: u64 = 2_000;

/// How to run sampled mode.
#[derive(Debug, Clone)]
pub struct SampledOptions {
    /// Target number of measurement windows (= slice-plan cut budget).
    pub windows: usize,
    /// Fraction of the inter-cut spacing each window measures
    /// (`0 < fraction <= 1`); the balance is the sampled-out gap.
    pub fraction: f64,
    /// Cut-cache file (shared format with `crate::slice`); `None`
    /// rebuilds the forward pass every run.
    pub cuts_path: Option<PathBuf>,
    /// Worker threads for the window fan-out.
    pub jobs: usize,
}

impl Default for SampledOptions {
    fn default() -> SampledOptions {
        SampledOptions {
            windows: 32,
            fraction: 0.25,
            cuts_path: None,
            jobs: 1,
        }
    }
}

/// A point estimate with its 95 % confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Mean of the per-window samples.
    pub mean: f64,
    /// Student-t 95 % CI on the mean.
    pub ci95: Ci,
    /// Number of windows that contributed a sample.
    pub n: u64,
}

impl Estimate {
    fn from_acc(acc: &Accumulator) -> Estimate {
        let s = acc.summary();
        Estimate {
            mean: s.mean,
            ci95: s.ci95_t,
            n: s.n,
        }
    }
}

/// One workload's sampled-mode estimates.
///
/// Deliberately excludes whole-run totals (total cycles, coverage):
/// a warm run never learns them, and the report must be byte-identical
/// between cold and warm runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledReport {
    /// Workload name.
    pub workload: String,
    /// Measurement windows executed.
    pub windows: u64,
    /// Per-window measurement length, simulated cycles.
    pub window_cycles: u64,
    /// Cycles actually measured (sum of window spans; the final window
    /// may be shorter when the program completes inside it).
    pub measured_cycles: u64,
    /// Instructions per simulated cycle (on + off time).
    pub ipc: Estimate,
    /// Total energy per simulated cycle, nanojoules.
    pub energy_nj_per_cycle: Estimate,
    /// Useful / settled prefetches; `None` when no window settled any
    /// prefetch (e.g. prefetchers disabled).
    pub prefetch_accuracy: Option<Estimate>,
}

/// One window's raw deltas.
struct WindowSample {
    index: usize,
    dcycles: u64,
    dinstr: u64,
    denergy_nj: f64,
    dpf_useful: u64,
    dpf_settled: u64,
}

/// Runs sampled mode for one workload; see the module docs.
///
/// # Errors
///
/// [`SimError`] when a window (or the cold forward pass) fails.
pub fn sampled_report(
    workload: &Workload,
    cfg: &SimConfig,
    trace: &PowerTrace,
    opts: &SampledOptions,
) -> Result<SampledReport, SimError> {
    let program = workload.program();
    let plan = obtain_plan(cfg, trace, opts, &program)?;
    let window_cycles = window_length(&plan, opts.fraction);

    let samples = measure_windows(&plan, &program, trace, window_cycles, opts.jobs)?;

    let mut ipc = Accumulator::new();
    let mut energy = Accumulator::new();
    let mut accuracy = Accumulator::new();
    let mut measured = 0u64;
    for s in &samples {
        if s.dcycles == 0 {
            continue;
        }
        measured += s.dcycles;
        let tag = s.index as u64;
        ipc.push(tag, s.dinstr as f64 / s.dcycles as f64);
        energy.push(tag, s.denergy_nj / s.dcycles as f64);
        if s.dpf_settled > 0 {
            accuracy.push(tag, s.dpf_useful as f64 / s.dpf_settled as f64);
        }
    }
    assert!(!ipc.is_empty(), "sampled mode measured no cycles");

    Ok(SampledReport {
        workload: workload.name().to_owned(),
        windows: ipc.n() as u64,
        window_cycles,
        measured_cycles: measured,
        ipc: Estimate::from_acc(&ipc),
        energy_nj_per_cycle: Estimate::from_acc(&energy),
        prefetch_accuracy: (!accuracy.is_empty()).then(|| Estimate::from_acc(&accuracy)),
    })
}

/// Loads (or builds and caches) the cut plan the windows resume from.
fn obtain_plan(
    cfg: &SimConfig,
    trace: &PowerTrace,
    opts: &SampledOptions,
    program: &Program,
) -> Result<SlicePlan, SimError> {
    if let Some(path) = &opts.cuts_path {
        if let Some(plan) = crate::slice::load_plan(path, cfg) {
            // Entry identities are verified when each window resumes; a
            // stale plan surfaces as a Snapshot error below and a cold
            // rebuild (one level of retry, then the error is real).
            if plan_resumable(&plan, program, trace) {
                return Ok(plan);
            }
            let _ = std::fs::remove_file(path);
        }
    }
    let fwd = match slice::plan_auto(
        cfg,
        program,
        trace,
        opts.windows.max(1),
        SAMPLE_GRAIN_CYCLES,
    ) {
        Ok(f) => f,
        Err(SliceError::Sim(e)) => return Err(e),
        Err(e) => panic!("sampled forward pass failed structurally: {e}"),
    };
    if let Some(path) = &opts.cuts_path {
        crate::slice::store_plan(path, &fwd.plan);
    }
    Ok(fwd.plan)
}

/// Cheap staleness probe: can the plan's first entry resume against
/// this program/trace?
fn plan_resumable(plan: &SlicePlan, program: &Program, trace: &PowerTrace) -> bool {
    Machine::resume(&plan.entries[0], program, trace.clone()).is_ok()
}

/// Picks the common window length: `fraction` of the median inter-cut
/// spacing, floored at [`MIN_WINDOW_CYCLES`]. A single-cut plan (the
/// whole program fits in one grain) measures everything — the estimate
/// degenerates to the exact value.
fn window_length(plan: &SlicePlan, fraction: f64) -> u64 {
    let mut gaps: Vec<u64> = plan
        .entries
        .windows(2)
        .map(|w| w[1].cycle - w[0].cycle)
        .collect();
    if gaps.is_empty() {
        return u64::MAX;
    }
    gaps.sort_unstable();
    let median = gaps[gaps.len() / 2];
    let frac = fraction.clamp(0.01, 1.0);
    ((median as f64 * frac) as u64).max(MIN_WINDOW_CYCLES)
}

/// Simulates one measurement window per plan entry, in parallel.
fn measure_windows(
    plan: &SlicePlan,
    program: &Program,
    trace: &PowerTrace,
    window_cycles: u64,
    jobs: usize,
) -> Result<Vec<WindowSample>, SimError> {
    let n = plan.len();
    let run_window = |i: usize| -> Result<WindowSample, SimError> {
        let mut machine = Machine::resume(&plan.entries[i], program, trace.clone())
            .unwrap_or_else(|e| panic!("window {i} cannot resume its own plan entry: {e}"));
        let c0 = machine.cycle();
        let r0 = machine.result();
        let _ = machine.run_until(c0.saturating_add(window_cycles))?;
        let r1 = machine.result();
        Ok(WindowSample {
            index: i,
            dcycles: machine.cycle() - c0,
            dinstr: r1.stats.instructions - r0.stats.instructions,
            denergy_nj: r1.total_energy_nj() - r0.total_energy_nj(),
            dpf_useful: (r1.ibuf.useful + r1.dbuf.useful) - (r0.ibuf.useful + r0.dbuf.useful),
            dpf_settled: (r1.ibuf.useful + r1.ibuf.useless() + r1.dbuf.useful + r1.dbuf.useless())
                - (r0.ibuf.useful + r0.ibuf.useless() + r0.dbuf.useful + r0.dbuf.useless()),
        })
    };

    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(run_window).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<Result<WindowSample, SimError>>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (next, tx, run_window) = (&next, tx.clone(), &run_window);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send(run_window(i)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut samples: Vec<WindowSample> = Vec::with_capacity(n);
    for s in rx {
        samples.push(s?);
    }
    samples.sort_by_key(|s| s.index);
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (&'static Workload, SimConfig, PowerTrace) {
        let workload = ehs_workloads::by_name("gsmd").unwrap();
        let mut cfg = SimConfig::builder().build();
        cfg.nvm.size_bytes = 1 << 21;
        (workload, cfg, PowerTrace::constant_mw(30.0, 16))
    }

    #[test]
    fn estimates_contain_the_full_run_truth() {
        let (workload, cfg, trace) = setup();
        let truth = crate::run_one(workload, &cfg, &trace).unwrap();
        let t_ipc = truth.stats.instructions as f64 / truth.stats.total_cycles as f64;
        let t_energy = truth.total_energy_nj() / truth.stats.total_cycles as f64;

        let report = sampled_report(workload, &cfg, &trace, &SampledOptions::default()).unwrap();
        assert!(
            report.ipc.ci95.contains(t_ipc),
            "ipc CI {:?} must contain {t_ipc}",
            report.ipc.ci95
        );
        assert!(
            report.energy_nj_per_cycle.ci95.contains(t_energy),
            "energy CI {:?} must contain {t_energy}",
            report.energy_nj_per_cycle.ci95
        );
        assert!(report.windows >= 2, "gsmd must yield several windows");
    }

    #[test]
    fn report_is_byte_identical_cold_and_warm() {
        let (workload, cfg, trace) = setup();
        let dir = std::env::temp_dir().join(format!(
            "ehs-sampled-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = SampledOptions {
            cuts_path: Some(dir.join("gsmd.cuts.json")),
            jobs: 2,
            ..SampledOptions::default()
        };
        let cold = sampled_report(workload, &cfg, &trace, &opts).unwrap();
        let warm = sampled_report(workload, &cfg, &trace, &opts).unwrap();
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            serde_json::to_string(&warm).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
