//! The Monte Carlo layer: seed-sweeping every headline figure.
//!
//! The paper reports each headline as a single number measured under one
//! synthetic power trace (RFHome, seed 42). That number is a draw from a
//! distribution — a different trace seed gives a different trace, a
//! different interleaving of power failures, and a different speedup.
//! This module re-evaluates every [`Headline`] the figure registry
//! declares under `N` seed-varied copies of its trace environment
//! ([`TraceSpec::with_seed`]) and summarises the resulting sample into
//! mean / gmean with Student-t and bootstrap 95% confidence intervals
//! (see [`crate::stats`]).
//!
//! The expansion is declarative: [`stats_points`] lists every simulation
//! point a stats run needs up front, so the `paper --stats` driver can
//! push the whole matrix through the [`Sweep`] engine in one batch —
//! each unique point simulated exactly once, shared across headlines,
//! figures, and the published single-seed rendering.

use std::path::Path;

use ehs_energy::TraceSpec;
use serde::{Deserialize, Serialize};

use crate::figures::Figure;
use crate::stats::{Accumulator, Summary};
use crate::sweep::{SimPoint, Sweep};

/// The seed schedule of a stats run: `count` consecutive seeds starting
/// at `base`.
///
/// Consecutive seeds are statistically as good as any other choice here
/// — the trace synthesizer feeds each seed through its own generator —
/// and they make the schedule trivially reproducible from two numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedPlan {
    /// Number of seed-varied evaluations per headline.
    pub count: u64,
    /// First seed; the run uses `base, base+1, …, base+count-1`.
    pub base: u64,
}

/// Default first seed of `paper --stats` (chosen away from the published
/// figures' seed 42 so the Monte Carlo sample never silently includes
/// the published draw).
pub const DEFAULT_SEED_BASE: u64 = 1000;

impl SeedPlan {
    /// Builds a plan of `count` seeds starting at `base`.
    pub fn new(count: u64, base: u64) -> SeedPlan {
        SeedPlan { count, base }
    }

    /// The seeds of the plan, in order.
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.count).map(|i| self.base.wrapping_add(i)).collect()
    }

    /// The seed-varied copies of a trace environment. A seed-free
    /// environment ([`TraceSpec::Constant`]) is returned unchanged for
    /// every seed: its headline honestly degenerates to a zero-width
    /// interval rather than being silently dropped.
    pub fn traces(&self, base: &TraceSpec) -> Vec<TraceSpec> {
        self.seeds().iter().map(|s| base.with_seed(*s)).collect()
    }
}

/// One headline's seed-swept statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatRow {
    /// Metric label within the figure (e.g. `"ipex_both_gmean"`).
    pub label: String,
    /// The value under the published single-seed trace — what the
    /// non-stats figure rendering reports.
    pub single_seed: f64,
    /// Summary of the seed-swept sample.
    pub summary: Summary,
}

/// All seed-swept headline statistics of one figure — the unit that
/// `results/stats/<file_id>.json` serialises.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureStats {
    /// The figure's short id (`fig10`, `tab3`, …).
    pub figure: String,
    /// The figure's results-file stem.
    pub file_id: String,
    /// The seed schedule the sample was drawn under.
    pub plan: SeedPlan,
    /// One row per headline, in declaration order.
    pub rows: Vec<StatRow>,
}

/// Every simulation point a stats run over `figures` needs: each
/// headline's points under its published trace plus under every seed of
/// the plan. Duplicates (headlines sharing suites, seeds colliding with
/// the published trace) are expected — the [`Sweep`] engine collapses
/// them to one simulation each.
pub fn stats_points(figures: &[&dyn Figure], plan: &SeedPlan) -> Vec<SimPoint> {
    let mut pts = Vec::new();
    for fig in figures {
        for h in fig.headlines() {
            pts.extend(h.points_under(&h.base_trace));
            for trace in plan.traces(&h.base_trace) {
                pts.extend(h.points_under(&trace));
            }
        }
    }
    pts
}

/// Seed-sweeps one figure's headlines, resolving all simulation through
/// `sweep`. Returns `None` for figures with no headlines (analytic
/// artefacts). Evaluation order cannot perturb the result: samples are
/// tagged by seed and summarised in canonical order (see
/// [`crate::stats::Accumulator`]).
pub fn evaluate_figure(fig: &dyn Figure, sweep: &Sweep, plan: &SeedPlan) -> Option<FigureStats> {
    let headlines = fig.headlines();
    if headlines.is_empty() {
        return None;
    }
    let rows = headlines
        .iter()
        .map(|h| {
            let mut acc = Accumulator::new();
            for seed in plan.seeds() {
                acc.push(seed, h.eval_under(sweep, &h.base_trace.with_seed(seed)));
            }
            StatRow {
                label: h.label.clone(),
                single_seed: h.eval_under(sweep, &h.base_trace),
                summary: acc.summary(),
            }
        })
        .collect();
    Some(FigureStats {
        figure: fig.id().to_owned(),
        file_id: fig.file_id().to_owned(),
        plan: *plan,
        rows,
    })
}

/// Seed-sweeps every figure that declares headlines, in registry order.
pub fn evaluate(figures: &[&dyn Figure], sweep: &Sweep, plan: &SeedPlan) -> Vec<FigureStats> {
    figures
        .iter()
        .filter_map(|f| evaluate_figure(*f, sweep, plan))
        .collect()
}

/// Writes one figure's stats to `<out_dir>/stats/<file_id>.json`.
pub fn write_stats(out_dir: &Path, fs: &FigureStats) {
    crate::write_results_to(&out_dir.join("stats"), &fs.file_id, fs);
}

/// Prints one figure's CI table in the harness's standard layout.
pub fn print_stats(fs: &FigureStats) {
    println!(
        "{}: {} seeds from {} (95% CIs: Student-t, bootstrap)",
        fs.figure, fs.plan.count, fs.plan.base
    );
    for r in &fs.rows {
        let s = &r.summary;
        println!(
            "  {:32} mean {:>9.4} t[{:>9.4}, {:>9.4}] boot[{:>9.4}, {:>9.4}] sd {:>8.5} published {:>9.4}",
            r.label, s.mean, s.ci95_t.lo, s.ci95_t.hi, s.ci95_bootstrap.lo, s.ci95_bootstrap.hi, s.sd, r.single_seed
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::REGISTRY;

    #[test]
    fn seed_plan_enumerates_consecutively() {
        let plan = SeedPlan::new(4, 100);
        assert_eq!(plan.seeds(), vec![100, 101, 102, 103]);
    }

    #[test]
    fn most_registry_figures_declare_headlines() {
        // Analytic artefacts and the motivational trace figure have no
        // scalar headline; everything else must be seed-sweepable.
        let exempt = ["fig01", "fig04", "tab_hw", "fig27"];
        for f in REGISTRY {
            let has = !f.headlines().is_empty();
            assert_eq!(
                has,
                !exempt.contains(&f.id()),
                "unexpected headline presence for {}",
                f.id()
            );
        }
    }

    #[test]
    fn headline_points_are_seed_scaled() {
        let fig = crate::figures::by_id("fig10").unwrap();
        let plan = SeedPlan::new(3, 1000);
        let pts = stats_points(&[fig], &plan);
        // fig10 has 3 headlines over 2 configs x 20 workloads, under the
        // published trace plus 3 seeds; dedup happens in the engine, so
        // the declarative listing is the raw product.
        assert_eq!(pts.len(), 3 * 2 * 20 * (1 + 3));
        // ...but the unique points collapse: the three headlines share
        // the baseline suite.
        let unique: std::collections::BTreeSet<_> = pts.iter().map(|p| p.key()).collect();
        assert_eq!(unique.len(), 4 * 2 * 20 * (1 + 3) / 2);
    }

    #[test]
    fn constant_trace_headlines_degenerate_honestly() {
        let plan = SeedPlan::new(3, 7);
        let base = TraceSpec::Constant {
            power_mw: 50.0,
            samples: 8,
        };
        let traces = plan.traces(&base);
        assert!(traces.iter().all(|t| t == &base));
    }
}
