//! # ehs-mem — memory hierarchy models for the EHS simulator
//!
//! Timing/metadata models of the memory system evaluated in the IPEX paper
//! (Table 1): small SRAM instruction/data caches, per-cache prefetch
//! buffers, and a nonvolatile main memory (ReRAM by default) behind a
//! simple bus.
//!
//! These models track *tags, timing and statistics only* — actual data
//! values live in the functional interpreter of `ehs-isa` (see its crate
//! docs for why the split is sound for this study). Power failure wipes
//! cache and prefetch-buffer state via [`Cache::power_loss`] and
//! [`PrefetchBuffer::power_loss`], which is exactly the loss IPEX is
//! designed to anticipate.
//!
//! ```
//! use ehs_mem::{Cache, CacheConfig};
//!
//! let mut dcache = Cache::new(CacheConfig::paper_default());
//! assert!(!dcache.access(0x1000, false)); // cold miss
//! dcache.fill(0x1000, false);
//! assert!(dcache.access(0x1004, false)); // same 16-byte block: hit
//! ```

mod block;
mod buffer;
mod cache;
mod nvm;
mod persist;

pub use block::{block_of, BLOCK_SIZE};
pub use buffer::{
    BufferEntryState, BufferLookup, BufferState, InsertOutcome, PrefetchBuffer, PrefetchBufferStats,
};
pub use cache::{Cache, CacheConfig, CacheState, CacheStats, LineState, Writeback};
pub use nvm::{
    Nvm, NvmConfig, NvmState, NvmStats, NvmTech, ReadReason, DEFAULT_ACTIVE_LEAK_FRACTION,
    DEFAULT_NVM_BYTES,
};
pub use persist::Persist;
