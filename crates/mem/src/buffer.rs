//! Per-cache prefetch buffer.
//!
//! Following the paper's baseline (§6), prefetched blocks are *not*
//! installed in the cache directly; they land in a small FIFO buffer
//! (4 × 16 B entries by default) to avoid polluting the cache. A demand
//! access that finds its block here promotes it into the cache and counts
//! the prefetch as *useful*. Blocks that are evicted unused, or wiped by a
//! power failure before any hit, count as *useless* — the exact waste IPEX
//! exists to suppress (paper §2.3). The buffer also answers "is a prefetch
//! for this block already in flight?", which §5.1 uses to suppress
//! duplicate demand requests.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::block::block_of;

/// Counters maintained by a [`PrefetchBuffer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchBufferStats {
    /// Prefetched blocks inserted into the buffer.
    pub inserted: u64,
    /// Prefetches that received a demand hit (promoted to the cache).
    pub useful: u64,
    /// Entries evicted by newer prefetches before any demand hit.
    pub evicted_unused: u64,
    /// Entries wiped by power failure before any demand hit.
    pub lost_unused: u64,
    /// Demand misses that found an in-flight prefetch and waited for it
    /// instead of issuing a duplicate NVM request (§5.1).
    pub duplicate_suppressed: u64,
    /// Prefetch requests skipped because the block was already resident
    /// in the buffer or cache.
    pub redundant_skipped: u64,
}

impl PrefetchBufferStats {
    /// Prefetches whose block never received a hit (evicted or lost).
    pub fn useless(&self) -> u64 {
        self.evicted_unused + self.lost_unused
    }

    /// Prefetch accuracy: useful / (useful + useless), in `[0, 1]`.
    /// Returns 1.0 when no prefetch has completed its fate yet.
    pub fn accuracy(&self) -> f64 {
        let settled = self.useful + self.useless();
        if settled == 0 {
            1.0
        } else {
            self.useful as f64 / settled as f64
        }
    }
}

/// Outcome of [`PrefetchBuffer::insert`], so the caller (e.g. a tracing
/// simulator) can see buffer-internal fates without re-deriving them from
/// the statistics deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The prefetch was accepted; the buffer had a free entry.
    Inserted,
    /// The prefetch was accepted and the oldest entry — the contained
    /// block address — was evicted unused to make room.
    InsertedEvicting(u32),
    /// The block was already resident or in flight; nothing changed.
    Redundant,
}

/// Outcome of [`PrefetchBuffer::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferLookup {
    /// Cycle at which the prefetched data is (or was) available. If this
    /// is in the future, the prefetch is *late* and the pipeline must
    /// stall until then (§5.1).
    pub ready_at: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    block: u32,
    ready_at: u64,
}

/// Serializable image of one buffered prefetch (see [`BufferState`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferEntryState {
    /// Block base address.
    pub block: u32,
    /// Cycle at which the prefetched data is (or was) available.
    pub ready_at: u64,
}

/// Complete serializable state of a [`PrefetchBuffer`] — entries in
/// FIFO order (oldest first) plus the accumulated statistics. Produced
/// by [`PrefetchBuffer::export_state`], consumed by
/// [`PrefetchBuffer::import_state`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferState {
    /// Entries oldest-first.
    pub entries: Vec<BufferEntryState>,
    /// Counters at the time of the export.
    pub stats: PrefetchBufferStats,
}

/// A small FIFO buffer holding prefetched blocks (and in-flight
/// prefetches) for one cache.
#[derive(Debug, Clone)]
pub struct PrefetchBuffer {
    capacity: usize,
    entries: VecDeque<Entry>,
    stats: PrefetchBufferStats,
}

impl PrefetchBuffer {
    /// Creates a buffer with room for `capacity` blocks (paper default: 4).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> PrefetchBuffer {
        assert!(capacity > 0, "prefetch buffer needs at least one entry");
        PrefetchBuffer {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            stats: PrefetchBufferStats::default(),
        }
    }

    /// Buffer capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy in entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no prefetches are buffered or in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> PrefetchBufferStats {
        self.stats
    }

    /// `true` if the block containing `addr` is buffered or in flight.
    #[inline]
    pub fn contains(&self, addr: u32) -> bool {
        let block = block_of(addr);
        self.entries.iter().any(|e| e.block == block)
    }

    /// Inserts a prefetch for the block containing `addr` that will
    /// complete at `ready_at`. If the buffer is full the oldest entry is
    /// evicted (counted as useless if it was never hit). Re-inserting a
    /// resident block is counted in
    /// [`PrefetchBufferStats::redundant_skipped`] and ignored.
    pub fn insert(&mut self, addr: u32, ready_at: u64) -> InsertOutcome {
        let block = block_of(addr);
        if self.contains(block) {
            self.stats.redundant_skipped += 1;
            return InsertOutcome::Redundant;
        }
        let mut outcome = InsertOutcome::Inserted;
        if self.entries.len() == self.capacity {
            let victim = self.entries.pop_front().expect("buffer is full");
            self.stats.evicted_unused += 1;
            outcome = InsertOutcome::InsertedEvicting(victim.block);
        }
        self.entries.push_back(Entry { block, ready_at });
        self.stats.inserted += 1;
        outcome
    }

    /// Looks up a demand access. On a match the entry is consumed (the
    /// block is promoted into the cache by the caller) and counted as a
    /// useful prefetch; if the prefetch is still in flight at `now` the
    /// wait is counted as a suppressed duplicate request.
    pub fn lookup(&mut self, addr: u32, now: u64) -> Option<BufferLookup> {
        let block = block_of(addr);
        let idx = self.entries.iter().position(|e| e.block == block)?;
        let entry = self.entries.remove(idx).expect("index in range");
        self.stats.useful += 1;
        if entry.ready_at > now {
            self.stats.duplicate_suppressed += 1;
        }
        Some(BufferLookup {
            ready_at: entry.ready_at,
        })
    }

    /// Wipes the buffer — the effect of a power failure. Every entry that
    /// never received a hit is counted as a useless (lost) prefetch.
    /// Returns how many entries were lost.
    pub fn power_loss(&mut self) -> usize {
        let lost = self.entries.len();
        self.stats.lost_unused += lost as u64;
        self.entries.clear();
        lost
    }

    /// The complete internal state (FIFO contents, statistics) as a
    /// serializable value, for snapshot/resume.
    pub fn export_state(&self) -> BufferState {
        BufferState {
            entries: self
                .entries
                .iter()
                .map(|e| BufferEntryState {
                    block: e.block,
                    ready_at: e.ready_at,
                })
                .collect(),
            stats: self.stats,
        }
    }

    /// Restores state previously produced by
    /// [`PrefetchBuffer::export_state`].
    ///
    /// # Errors
    ///
    /// Rejects a state holding more entries than this buffer's capacity
    /// (snapshot taken under a different configuration).
    pub fn import_state(&mut self, state: &BufferState) -> Result<(), String> {
        if state.entries.len() > self.capacity {
            return Err(format!(
                "buffer state has {} entries, capacity is {}",
                state.entries.len(),
                self.capacity
            ));
        }
        self.entries.clear();
        self.entries.extend(state.entries.iter().map(|e| Entry {
            block: e.block,
            ready_at: e.ready_at,
        }));
        self.stats = state.stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_hit_is_useful() {
        let mut b = PrefetchBuffer::new(4);
        b.insert(0x100, 10);
        let hit = b.lookup(0x10c, 20).expect("same block");
        assert_eq!(hit.ready_at, 10);
        assert_eq!(b.stats().useful, 1);
        assert_eq!(b.stats().duplicate_suppressed, 0);
        assert!(b.is_empty());
    }

    #[test]
    fn late_prefetch_counts_suppressed_duplicate() {
        let mut b = PrefetchBuffer::new(4);
        b.insert(0x100, 100);
        let hit = b.lookup(0x100, 50).expect("in flight");
        assert_eq!(hit.ready_at, 100);
        assert_eq!(b.stats().duplicate_suppressed, 1);
    }

    #[test]
    fn fifo_eviction_counts_useless() {
        let mut b = PrefetchBuffer::new(2);
        assert_eq!(b.insert(0x000, 0), InsertOutcome::Inserted);
        assert_eq!(b.insert(0x010, 0), InsertOutcome::Inserted);
        assert_eq!(b.insert(0x020, 0), InsertOutcome::InsertedEvicting(0x000));
        assert!(!b.contains(0x000));
        assert!(b.contains(0x010) && b.contains(0x020));
        assert_eq!(b.stats().evicted_unused, 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn power_loss_counts_lost() {
        let mut b = PrefetchBuffer::new(4);
        b.insert(0x000, 0);
        b.insert(0x010, 0);
        b.lookup(0x000, 5);
        assert_eq!(b.power_loss(), 1);
        assert_eq!(b.stats().lost_unused, 1);
        assert_eq!(b.stats().useful, 1);
        assert!(b.is_empty());
    }

    #[test]
    fn redundant_insert_skipped() {
        let mut b = PrefetchBuffer::new(4);
        b.insert(0x100, 0);
        assert_eq!(b.insert(0x104, 0), InsertOutcome::Redundant); // same block
        assert_eq!(b.len(), 1);
        assert_eq!(b.stats().redundant_skipped, 1);
        assert_eq!(b.stats().inserted, 1);
    }

    #[test]
    fn accuracy_tracks_fate() {
        let mut b = PrefetchBuffer::new(2);
        assert_eq!(b.stats().accuracy(), 1.0);
        b.insert(0x000, 0);
        b.insert(0x010, 0);
        b.lookup(0x000, 1);
        b.power_loss(); // 0x010 lost
        let s = b.stats();
        assert_eq!(s.useless(), 1);
        assert!((s.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        PrefetchBuffer::new(0);
    }
}
