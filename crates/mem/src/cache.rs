//! Set-associative, write-back, write-allocate SRAM cache (tag store).

use serde::{Deserialize, Serialize};

use crate::block::{block_of, BLOCK_SIZE};

/// Geometry of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Number of ways per set (1 = direct-mapped).
    pub assoc: u32,
}

impl CacheConfig {
    /// The paper's default: 2 kB, 4-way, 16 B blocks (Table 1).
    pub fn paper_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 2048,
            assoc: 4,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u32 {
        self.size_bytes / BLOCK_SIZE / self.assoc
    }

    fn validate(&self) {
        assert!(
            self.size_bytes >= BLOCK_SIZE,
            "cache smaller than one block"
        );
        assert!(self.assoc >= 1, "associativity must be at least 1");
        assert_eq!(
            self.size_bytes % (BLOCK_SIZE * self.assoc),
            0,
            "capacity must be a multiple of assoc * block size"
        );
        assert!(
            self.num_sets().is_power_of_two(),
            "number of sets must be a power of two (got {})",
            self.num_sets()
        );
    }
}

/// Aggregate counters maintained by a [`Cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses (loads + stores, or instruction fetches).
    pub accesses: u64,
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Block fills (demand fills + prefetch promotions).
    pub fills: u64,
    /// Dirty evictions that required a write-back to NVM.
    pub writebacks: u64,
    /// Dirty blocks flushed by JIT checkpoints on power failure.
    pub checkpoint_flushes: u64,
}

impl CacheStats {
    /// Miss rate over demand accesses, in `[0, 1]`. Zero if no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A dirty block evicted by [`Cache::fill`]; the owner must write it back
/// to NVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// Block base address of the evicted line.
    pub block: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u32,
    last_use: u64,
}

/// Serializable image of one cache line (see [`CacheState`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineState {
    /// Line holds a block.
    pub valid: bool,
    /// Line differs from NVM.
    pub dirty: bool,
    /// Stored tag bits.
    pub tag: u32,
    /// LRU timestamp (the cache's `tick` at last touch).
    pub last_use: u64,
}

/// Complete serializable state of a [`Cache`] — lines in set-major
/// order, the LRU tick and the accumulated statistics. Produced by
/// [`Cache::export_state`], consumed by [`Cache::import_state`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheState {
    /// All lines, `num_sets * assoc` of them, set-major.
    pub lines: Vec<LineState>,
    /// Monotonic LRU clock.
    pub tick: u64,
    /// Counters at the time of the export.
    pub stats: CacheStats,
}

/// A write-back, write-allocate, LRU set-associative cache.
///
/// The cache stores tags and dirty bits only; see the
/// [crate documentation](crate) for the timing/functional split. Misses do
/// *not* allocate automatically — the simulator calls [`Cache::fill`] once
/// the NVM read completes, which keeps miss timing explicit.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Line>,
    set_shift: u32,
    set_mask: u32,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig`]): the number
    /// of sets must be a power of two and the capacity a multiple of
    /// `assoc * 16`.
    pub fn new(cfg: CacheConfig) -> Cache {
        cfg.validate();
        let num_sets = cfg.num_sets();
        Cache {
            cfg,
            sets: vec![Line::default(); (num_sets * cfg.assoc) as usize],
            set_shift: BLOCK_SIZE.trailing_zeros(),
            set_mask: num_sets - 1,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn set_of(&self, block: u32) -> usize {
        (((block >> self.set_shift) & self.set_mask) * self.cfg.assoc) as usize
    }

    #[inline]
    fn tag_of(&self, block: u32) -> u32 {
        block >> self.set_shift >> self.set_mask.count_ones()
    }

    fn ways(&mut self, block: u32) -> &mut [Line] {
        let start = self.set_of(block);
        let assoc = self.cfg.assoc as usize;
        &mut self.sets[start..start + assoc]
    }

    /// Performs a demand access to the block containing `addr`.
    ///
    /// Returns `true` on hit (updating LRU state and, for writes, the
    /// dirty bit). Returns `false` on miss; the caller is expected to
    /// fetch the block and then [`Cache::fill`] it.
    #[inline]
    pub fn access(&mut self, addr: u32, is_write: bool) -> bool {
        let block = block_of(addr);
        let tag = self.tag_of(block);
        self.tick += 1;
        let tick = self.tick;
        self.stats.accesses += 1;
        for line in self.ways(block) {
            if line.valid && line.tag == tag {
                line.last_use = tick;
                line.dirty |= is_write;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Checks residency without disturbing LRU state or statistics.
    #[inline]
    pub fn contains(&self, addr: u32) -> bool {
        let block = block_of(addr);
        let tag = self.tag_of(block);
        let start = self.set_of(block);
        let assoc = self.cfg.assoc as usize;
        self.sets[start..start + assoc]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Installs the block containing `addr`, evicting the LRU way if the
    /// set is full.
    ///
    /// Returns the dirty victim (if any) that must be written back to NVM.
    /// Filling a block that is already resident only updates its LRU/dirty
    /// state.
    pub fn fill(&mut self, addr: u32, is_write: bool) -> Option<Writeback> {
        let block = block_of(addr);
        let tag = self.tag_of(block);
        self.tick += 1;
        let tick = self.tick;
        self.stats.fills += 1;
        let set_bits = self.set_mask.count_ones();
        let set_index = (block >> self.set_shift) & self.set_mask;
        let shift = self.set_shift;

        // Already resident (e.g. racing prefetch promotion): refresh only.
        for line in self.ways(block) {
            if line.valid && line.tag == tag {
                line.last_use = tick;
                line.dirty |= is_write;
                return None;
            }
        }
        // Prefer an invalid way.
        if let Some(line) = self.ways(block).iter_mut().find(|l| !l.valid) {
            *line = Line {
                valid: true,
                dirty: is_write,
                tag,
                last_use: tick,
            };
            return None;
        }
        // Evict the LRU way.
        let victim = self
            .ways(block)
            .iter_mut()
            .min_by_key(|l| l.last_use)
            .expect("assoc >= 1");
        let evicted_dirty = victim.dirty;
        let evicted_tag = victim.tag;
        *victim = Line {
            valid: true,
            dirty: is_write,
            tag,
            last_use: tick,
        };
        if evicted_dirty {
            self.stats.writebacks += 1;
            let victim_block = ((evicted_tag << set_bits) | set_index) << shift;
            Some(Writeback {
                block: victim_block,
            })
        } else {
            None
        }
    }

    /// Number of dirty lines currently resident (cost of a JIT checkpoint).
    pub fn dirty_count(&self) -> u32 {
        self.sets.iter().filter(|l| l.valid && l.dirty).count() as u32
    }

    /// Number of valid lines currently resident.
    pub fn valid_count(&self) -> u32 {
        self.sets.iter().filter(|l| l.valid).count() as u32
    }

    /// Flushes all dirty lines (JIT checkpoint): marks them clean, counts
    /// them in [`CacheStats::checkpoint_flushes`], and returns how many
    /// blocks were flushed (each costs one NVM write).
    pub fn checkpoint_flush(&mut self) -> u32 {
        let mut flushed = 0;
        for line in &mut self.sets {
            if line.valid && line.dirty {
                line.dirty = false;
                flushed += 1;
            }
        }
        self.stats.checkpoint_flushes += flushed as u64;
        flushed
    }

    /// Wipes the entire cache — the effect of a power failure on volatile
    /// SRAM. Dirty lines are assumed to have been flushed by the JIT
    /// checkpoint beforehand (call [`Cache::checkpoint_flush`] first).
    pub fn power_loss(&mut self) {
        for line in &mut self.sets {
            *line = Line::default();
        }
    }

    /// The complete internal state (lines, LRU clock, statistics) as a
    /// serializable value, for snapshot/resume.
    pub fn export_state(&self) -> CacheState {
        CacheState {
            lines: self
                .sets
                .iter()
                .map(|l| LineState {
                    valid: l.valid,
                    dirty: l.dirty,
                    tag: l.tag,
                    last_use: l.last_use,
                })
                .collect(),
            tick: self.tick,
            stats: self.stats,
        }
    }

    /// Restores state previously produced by [`Cache::export_state`].
    ///
    /// # Errors
    ///
    /// Rejects a state whose line count does not match this cache's
    /// geometry (snapshot taken under a different configuration).
    pub fn import_state(&mut self, state: &CacheState) -> Result<(), String> {
        if state.lines.len() != self.sets.len() {
            return Err(format!(
                "cache state has {} lines, geometry expects {}",
                state.lines.len(),
                self.sets.len()
            ));
        }
        for (line, s) in self.sets.iter_mut().zip(&state.lines) {
            *line = Line {
                valid: s.valid,
                dirty: s.dirty,
                tag: s.tag,
                last_use: s.last_use,
            };
        }
        self.tick = state.tick;
        self.stats = state.stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16B = 128 B
        Cache::new(CacheConfig {
            size_bytes: 128,
            assoc: 2,
        })
    }

    #[test]
    fn paper_default_geometry() {
        let cfg = CacheConfig::paper_default();
        assert_eq!(cfg.num_sets(), 32);
        Cache::new(cfg); // must not panic
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_geometry_panics() {
        Cache::new(CacheConfig {
            size_bytes: 96,
            assoc: 2,
        });
    }

    #[test]
    fn hit_after_fill_same_block() {
        let mut c = tiny();
        assert!(!c.access(0x100, false));
        c.fill(0x100, false);
        assert!(c.access(0x10f, false)); // same block
        assert!(!c.access(0x110, false)); // next block
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds blocks whose set index bits are 0: 0x000, 0x040, 0x080...
        c.fill(0x000, false);
        c.fill(0x040, false);
        // Touch 0x000 so 0x040 becomes LRU.
        assert!(c.access(0x000, false));
        c.fill(0x080, false);
        assert!(c.contains(0x000));
        assert!(!c.contains(0x040));
        assert!(c.contains(0x080));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0x000, true); // dirty
        c.fill(0x040, false);
        let wb = c.fill(0x080, false); // evicts 0x000 (LRU, dirty)
        assert_eq!(wb, Some(Writeback { block: 0x000 }));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny();
        c.fill(0x000, false);
        c.fill(0x040, false);
        assert_eq!(c.fill(0x080, false), None);
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut c = tiny();
        c.fill(0x000, false);
        assert_eq!(c.dirty_count(), 0);
        assert!(c.access(0x004, true));
        assert_eq!(c.dirty_count(), 1);
    }

    #[test]
    fn checkpoint_flush_cleans_everything() {
        let mut c = tiny();
        c.fill(0x000, true); // set 0
        c.fill(0x010, true); // set 1
        c.fill(0x020, false); // set 2
        assert_eq!(c.dirty_count(), 2);
        assert_eq!(c.checkpoint_flush(), 2);
        assert_eq!(c.dirty_count(), 0);
        assert_eq!(c.stats().checkpoint_flushes, 2);
        // Lines remain resident after a checkpoint (it is a flush, not a wipe).
        assert!(c.contains(0x000));
    }

    #[test]
    fn power_loss_wipes_all() {
        let mut c = tiny();
        c.fill(0x000, false);
        c.fill(0x040, true);
        c.power_loss();
        assert_eq!(c.valid_count(), 0);
        assert!(!c.contains(0x000));
    }

    #[test]
    fn refill_resident_block_updates_dirty() {
        let mut c = tiny();
        c.fill(0x000, false);
        assert_eq!(c.fill(0x000, true), None);
        assert_eq!(c.dirty_count(), 1);
        // Only counted as fills, not duplicated lines.
        assert_eq!(c.valid_count(), 1);
    }

    #[test]
    fn direct_mapped_works() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 64,
            assoc: 1,
        });
        c.fill(0x000, false);
        c.fill(0x040, false); // same set (4 sets), evicts 0x000
        assert!(!c.contains(0x000));
        assert!(c.contains(0x040));
    }

    #[test]
    fn victim_block_address_reconstructed_correctly() {
        let mut c = tiny();
        // Block 0x7d30 maps to set ((0x7d30>>4)&3); use two in the same set.
        let a = 0x7d30;
        let b = a + 4 * 16; // same set, different tag
        let d = a + 8 * 16;
        c.fill(a, true);
        c.fill(b, true);
        let wb = c.fill(d, false).expect("dirty eviction");
        assert_eq!(wb.block, a);
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.access(0x0, false);
        c.fill(0x0, false);
        c.access(0x0, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }
}
