//! Nonvolatile main memory (NVM) timing/energy model with a single-port
//! bus.
//!
//! Latency and per-access energy follow the paper's Table 1 for the
//! default 16 MB ReRAM (read 0.039 nJ, write 0.160 nJ, leak 12.133 mW).
//! The paper does not publish latencies, so standard NVSim-era figures are
//! used (see `DESIGN.md` §2); they are calibration inputs, not results.
//!
//! For the sensitivity studies the model also provides:
//!
//! * alternative technologies (STT-RAM, PCM — Fig. 21),
//! * capacity scaling (Fig. 20): latency and access energy grow with
//!   `sqrt(capacity / 16 MB)`, reflecting longer word/bit lines in larger
//!   arrays.

use serde::{Deserialize, Serialize};

/// Default NVM capacity (16 MB, Table 1).
pub const DEFAULT_NVM_BYTES: u64 = 16 << 20;

/// Nonvolatile memory technology (Fig. 21).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvmTech {
    /// Resistive RAM — the paper's default.
    ReRam,
    /// Spin-transfer-torque magnetic RAM — faster, pricier writes than
    /// reads but quicker than ReRAM overall.
    SttRam,
    /// Phase-change memory — slowest, most expensive accesses.
    Pcm,
}

impl NvmTech {
    /// All modelled technologies.
    pub const ALL: [NvmTech; 3] = [NvmTech::ReRam, NvmTech::SttRam, NvmTech::Pcm];

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            NvmTech::ReRam => "ReRAM",
            NvmTech::SttRam => "STTRAM",
            NvmTech::Pcm => "PCM",
        }
    }

    /// Baseline parameters at 16 MB:
    /// `(read_cycles, write_cycles, read_nj, write_nj, leak_mw)` at the
    /// simulator's 200 MHz clock (1 cycle = 5 ns).
    fn base(self) -> (u64, u64, f64, f64, f64) {
        match self {
            // 100 ns read / 300 ns write (ultra-low-power array, slow
            // low-voltage sensing).
            NvmTech::ReRam => (20, 60, 0.039, 0.160, 12.133),
            // 70 ns read / 200 ns write.
            NvmTech::SttRam => (14, 40, 0.030, 0.120, 13.5),
            // 240 ns read / 800 ns write.
            NvmTech::Pcm => (48, 160, 0.070, 0.480, 10.0),
        }
    }
}

/// Timing and energy parameters of an [`Nvm`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmConfig {
    /// Technology point.
    pub tech: NvmTech,
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Block-read latency in core cycles.
    pub read_cycles: u64,
    /// Block-write latency in core cycles.
    pub write_cycles: u64,
    /// Energy per block read, nanojoules.
    pub read_nj: f64,
    /// Energy per block write, nanojoules.
    pub write_nj: f64,
    /// Leakage power of the whole array, milliwatts.
    pub leak_mw: f64,
    /// Fraction of [`NvmConfig::leak_mw`] that is actually un-gated while
    /// a transfer is in flight. The array's standby power is gated when
    /// idle (it is nonvolatile); during an access only the addressed bank
    /// and the shared periphery (decoders, sense amps, I/O) wake up. The
    /// default models a 4-bank array plus shared periphery: 25% of the
    /// whole-array leakage (DESIGN.md §2, "Block energy").
    pub active_leak_fraction: f64,
}

/// Default [`NvmConfig::active_leak_fraction`]: one bank of a 4-bank
/// array plus the shared periphery.
pub const DEFAULT_ACTIVE_LEAK_FRACTION: f64 = 0.25;

impl NvmConfig {
    /// Parameters for `tech` at `size_bytes` capacity, applying the
    /// `sqrt(capacity / 16 MB)` latency/energy scaling described in the
    /// module docs.
    pub fn for_tech(tech: NvmTech, size_bytes: u64) -> NvmConfig {
        let (r_cyc, w_cyc, r_nj, w_nj, leak) = tech.base();
        let factor = ((size_bytes as f64) / (DEFAULT_NVM_BYTES as f64)).sqrt();
        NvmConfig {
            tech,
            size_bytes,
            read_cycles: ((r_cyc as f64 * factor).round() as u64).max(1),
            write_cycles: ((w_cyc as f64 * factor).round() as u64).max(1),
            read_nj: r_nj * factor,
            write_nj: w_nj * factor,
            // Leakage scales linearly with the number of cells.
            leak_mw: leak * (size_bytes as f64) / (DEFAULT_NVM_BYTES as f64),
            active_leak_fraction: DEFAULT_ACTIVE_LEAK_FRACTION,
        }
    }

    /// Leakage power awake during a transfer, milliwatts.
    pub fn active_leak_mw(&self) -> f64 {
        self.leak_mw * self.active_leak_fraction
    }

    /// The paper's default: 16 MB ReRAM.
    pub fn paper_default() -> NvmConfig {
        NvmConfig::for_tech(NvmTech::ReRam, DEFAULT_NVM_BYTES)
    }

    /// Energy to transfer one 16 B cache block (four word accesses at
    /// [`NvmConfig::read_nj`] each), nanojoules.
    pub fn block_read_nj(&self) -> f64 {
        4.0 * self.read_nj
    }

    /// Energy to write one 16 B cache block (four word accesses), nJ.
    pub fn block_write_nj(&self) -> f64 {
        4.0 * self.write_nj
    }
}

/// Traffic counters maintained by an [`Nvm`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvmStats {
    /// Block reads serviced for demand misses.
    pub demand_reads: u64,
    /// Block reads serviced for prefetches.
    pub prefetch_reads: u64,
    /// Block writes (write-backs and checkpoint flushes).
    pub writes: u64,
    /// Prefetch requests dropped because the port was busy (prefetches
    /// are lowest priority and are not queued).
    pub prefetch_drops: u64,
}

impl NvmStats {
    /// Total block transfers on the memory bus.
    pub fn total_traffic(&self) -> u64 {
        self.demand_reads + self.prefetch_reads + self.writes
    }
}

/// Why an NVM read was issued; affects statistics only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadReason {
    /// Servicing a demand miss.
    Demand,
    /// Servicing a prefetch.
    Prefetch,
}

/// Complete serializable state of an [`Nvm`] — port occupancy plus the
/// accumulated statistics. Produced by [`Nvm::export_state`], consumed
/// by [`Nvm::import_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvmState {
    /// First cycle at which the port is free.
    pub busy_until: u64,
    /// Counters at the time of the export.
    pub stats: NvmStats,
}

/// Single-ported NVM behind a simple bus.
///
/// Requests serialise: one issued at cycle `now` starts when the port is
/// free and completes after the technology latency. This models the bus
/// contention that makes useless prefetches delay demand misses.
#[derive(Debug, Clone)]
pub struct Nvm {
    cfg: NvmConfig,
    busy_until: u64,
    stats: NvmStats,
}

impl Nvm {
    /// Creates an idle NVM with the given parameters.
    pub fn new(cfg: NvmConfig) -> Nvm {
        Nvm {
            cfg,
            busy_until: 0,
            stats: NvmStats::default(),
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> NvmConfig {
        self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> NvmStats {
        self.stats
    }

    /// First cycle at which the port is free.
    pub fn free_at(&self) -> u64 {
        self.busy_until
    }

    /// Issues a block read at cycle `now`; returns the completion cycle.
    ///
    /// Demand reads have priority: they wait at most for the transfer
    /// currently on the wires (one block time), jumping ahead of any
    /// queued prefetches. Prefetch reads are lowest priority and queue
    /// behind everything.
    pub fn read(&mut self, now: u64, reason: ReadReason) -> u64 {
        match reason {
            ReadReason::Demand => {
                self.stats.demand_reads += 1;
                // Bounded wait: at most one in-flight block transfer.
                let start = now.max(self.busy_until.min(now + self.cfg.read_cycles));
                let done = start + self.cfg.read_cycles;
                self.busy_until = self.busy_until.max(done);
                done
            }
            ReadReason::Prefetch => {
                self.stats.prefetch_reads += 1;
                let start = self.busy_until.max(now);
                let done = start + self.cfg.read_cycles;
                self.busy_until = done;
                done
            }
        }
    }

    /// Attempts to issue a low-priority (prefetch) block read at cycle
    /// `now`. Prefetches are issued only when the port is idle — they
    /// are not queued, so a busy port drops the request (counted in
    /// [`NvmStats::prefetch_drops`]). Returns the completion cycle when
    /// issued.
    pub fn try_prefetch_read(&mut self, now: u64) -> Option<u64> {
        if self.busy_until > now {
            self.stats.prefetch_drops += 1;
            return None;
        }
        self.stats.prefetch_reads += 1;
        let done = now + self.cfg.read_cycles;
        self.busy_until = done;
        Some(done)
    }

    /// Issues a block write at cycle `now`; returns the completion cycle.
    /// Writes (write-backs, checkpoint flushes) get the same bounded
    /// wait as demand reads — write buffers drain ahead of queued
    /// prefetches.
    pub fn write(&mut self, now: u64) -> u64 {
        self.stats.writes += 1;
        let start = now.max(self.busy_until.min(now + self.cfg.write_cycles));
        let done = start + self.cfg.write_cycles;
        self.busy_until = self.busy_until.max(done);
        done
    }

    /// Resets port occupancy across a power cycle (the bus does not stay
    /// busy through an outage). Statistics are preserved.
    pub fn power_cycle_reset(&mut self, now: u64) {
        self.busy_until = now;
    }

    /// The complete internal state (port occupancy, statistics) as a
    /// serializable value, for snapshot/resume.
    pub fn export_state(&self) -> NvmState {
        NvmState {
            busy_until: self.busy_until,
            stats: self.stats,
        }
    }

    /// Restores state previously produced by [`Nvm::export_state`].
    pub fn import_state(&mut self, state: &NvmState) {
        self.busy_until = state.busy_until;
        self.stats = state.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1() {
        let cfg = NvmConfig::paper_default();
        assert_eq!(cfg.tech, NvmTech::ReRam);
        assert_eq!(cfg.size_bytes, DEFAULT_NVM_BYTES);
        assert!((cfg.read_nj - 0.039).abs() < 1e-12);
        assert!((cfg.write_nj - 0.160).abs() < 1e-12);
        assert!((cfg.leak_mw - 12.133).abs() < 1e-12);
        assert_eq!(cfg.read_cycles, 20);
        assert_eq!(cfg.write_cycles, 60);
    }

    #[test]
    fn capacity_scaling_monotonic() {
        let small = NvmConfig::for_tech(NvmTech::ReRam, 2 << 20);
        let big = NvmConfig::for_tech(NvmTech::ReRam, 32 << 20);
        assert!(small.read_cycles < big.read_cycles);
        assert!(small.read_nj < big.read_nj);
        assert!(small.leak_mw < big.leak_mw);
        // 32 MB = sqrt(2) x default latency.
        assert_eq!(big.read_cycles, 28);
    }

    #[test]
    fn tech_ordering_pcm_slowest() {
        let r = NvmConfig::for_tech(NvmTech::ReRam, DEFAULT_NVM_BYTES);
        let s = NvmConfig::for_tech(NvmTech::SttRam, DEFAULT_NVM_BYTES);
        let p = NvmConfig::for_tech(NvmTech::Pcm, DEFAULT_NVM_BYTES);
        assert!(s.read_cycles < r.read_cycles);
        assert!(r.read_cycles < p.read_cycles);
    }

    #[test]
    fn demand_reads_jump_queued_prefetches() {
        let mut nvm = Nvm::new(NvmConfig::paper_default());
        // Two prefetches queue: port busy until 40.
        assert_eq!(nvm.read(0, ReadReason::Prefetch), 20);
        assert_eq!(nvm.read(0, ReadReason::Prefetch), 40);
        // A demand read at 5 waits only for the in-flight transfer
        // (until 25), not the whole queue.
        assert_eq!(nvm.read(5, ReadReason::Demand), 25 + 20);
    }

    #[test]
    fn port_serialises_requests() {
        let mut nvm = Nvm::new(NvmConfig::paper_default());
        let d1 = nvm.read(0, ReadReason::Demand);
        assert_eq!(d1, 20);
        // Issued while busy: queues behind.
        let d2 = nvm.read(5, ReadReason::Prefetch);
        assert_eq!(d2, 40);
        // Issued after idle: starts immediately.
        let d3 = nvm.write(100);
        assert_eq!(d3, 160);
        let s = nvm.stats();
        assert_eq!(s.demand_reads, 1);
        assert_eq!(s.prefetch_reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.total_traffic(), 3);
    }

    #[test]
    fn power_cycle_reset_frees_port() {
        let mut nvm = Nvm::new(NvmConfig::paper_default());
        nvm.read(0, ReadReason::Demand);
        nvm.power_cycle_reset(3);
        assert_eq!(nvm.free_at(), 3);
        assert_eq!(nvm.read(3, ReadReason::Demand), 23);
    }

    #[test]
    fn prefetch_reads_drop_when_port_busy() {
        let mut nvm = Nvm::new(NvmConfig::paper_default());
        assert_eq!(nvm.try_prefetch_read(0), Some(20));
        // Port busy until 20: a second prefetch is dropped, not queued.
        assert_eq!(nvm.try_prefetch_read(5), None);
        assert_eq!(nvm.stats().prefetch_drops, 1);
        // Idle again: issues.
        assert_eq!(nvm.try_prefetch_read(20), Some(40));
        assert_eq!(nvm.stats().prefetch_reads, 2);
    }
}
