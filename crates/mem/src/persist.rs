//! The shared persistence contract for snapshot/resume.
//!
//! Every stateful component the simulator checkpoints — prefetchers,
//! throttling policies, the IPEX controller itself — follows the same
//! pattern: export a plain serializable *state* value, and rebuild the
//! live component from it later, validating on the way in. Before this
//! trait each component spelled that pair out ad hoc
//! (`export_state`/`from_state`/`import_state`), so wiring a new
//! component into `ehs-sim`'s snapshot path meant three hand-rolled call
//! sites. [`Persist`] names the pattern once; `ehs-sim` resumes any
//! `Persist` implementor through the same two methods.

/// A component whose complete live state can be exported as a plain
/// serializable value and later rebuilt from it.
///
/// The associated [`Persist::State`] type is the wire format: it should
/// derive `Serialize`/`Deserialize` (the trait does not force the bound
/// so implementors keep control of their serde attributes) and carry
/// *everything* needed to reconstruct the component bit-identically —
/// resuming from an exported state and running `m` more cycles must be
/// indistinguishable from never having stopped.
pub trait Persist: Sized {
    /// The serializable wire form of the component's state.
    type State;

    /// Exports the complete live state.
    fn export_state(&self) -> Self::State;

    /// Rebuilds the component from a previously exported state.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description when the state is internally
    /// inconsistent (e.g. a corrupted or hand-edited snapshot).
    fn from_state(state: &Self::State) -> Result<Self, String>;
}
