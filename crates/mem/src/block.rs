//! Cache-block address arithmetic.

/// Cache block (line) size in bytes — fixed at 16 B by the paper's
/// configuration (Table 1) for both caches and the prefetch buffers.
pub const BLOCK_SIZE: u32 = 16;

/// Returns the block-aligned base address containing `addr`.
///
/// ```
/// assert_eq!(ehs_mem::block_of(0x1237), 0x1230);
/// assert_eq!(ehs_mem::block_of(0x1230), 0x1230);
/// ```
#[inline]
pub fn block_of(addr: u32) -> u32 {
    addr & !(BLOCK_SIZE - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_masks_low_bits() {
        assert_eq!(block_of(0), 0);
        assert_eq!(block_of(15), 0);
        assert_eq!(block_of(16), 16);
        assert_eq!(block_of(0xffff_ffff), 0xffff_fff0);
    }
}
