//! Harvested input-power traces.
//!
//! The paper digitises real harvester output into a text file of average
//! power values, one per 10 µs interval, and replays the file so that
//! every simulated configuration receives exactly the same input energy
//! (§6). This module reproduces that format: [`PowerTrace::to_text`] /
//! [`PowerTrace::from_text`] round-trip the file format, and
//! [`TraceKind::synthesize`] generates deterministic synthetic traces
//! standing in for the proprietary measured ones:
//!
//! * **RFHome / RFOffice** — bursty two-state (burst/idle) RF harvesting;
//!   the office environment has denser bursts than the home one.
//! * **Solar / Thermal** — a larger stable fraction with slow modulation
//!   and noise, still interrupted by weak spells (the paper notes even
//!   these traces cause frequent outages with a 0.47 µF capacitor).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Trace sample interval in microseconds (paper: 10 µs).
pub const TRACE_SAMPLE_US: f64 = 10.0;

/// The four energy environments evaluated in Fig. 23.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum TraceKind {
    /// Ambient RF in a home — weakest, burstiest supply (the paper's
    /// headline environment).
    RfHome,
    /// Ambient RF in an office — bursty but denser than home.
    RfOffice,
    /// Photovoltaic — a relatively high stable fraction.
    Solar,
    /// Thermoelectric — the steadiest supply.
    Thermal,
}

impl TraceKind {
    /// All four environments, in the paper's Fig. 23 order.
    pub const ALL: [TraceKind; 4] = [
        TraceKind::Thermal,
        TraceKind::Solar,
        TraceKind::RfOffice,
        TraceKind::RfHome,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::RfHome => "RFHome",
            TraceKind::RfOffice => "RFOffice",
            TraceKind::Solar => "solar",
            TraceKind::Thermal => "thermal",
        }
    }

    /// Generates a deterministic synthetic trace of `samples` 10 µs
    /// intervals from `seed`. Identical `(kind, seed, samples)` inputs
    /// yield identical traces, which is what makes cross-configuration
    /// comparisons fair.
    pub fn synthesize(self, seed: u64, samples: usize) -> PowerTrace {
        // Distinct kinds must not share RNG streams even with equal seeds.
        let salt = match self {
            TraceKind::RfHome => 0x52_46_48,
            TraceKind::RfOffice => 0x52_46_4f,
            TraceKind::Solar => 0x53_4f_4c,
            TraceKind::Thermal => 0x54_48_45,
        };
        let mut rng = StdRng::seed_from_u64(seed ^ salt);
        let mut power_mw = Vec::with_capacity(samples);
        match self {
            TraceKind::RfHome | TraceKind::RfOffice => {
                // Two-state burst/idle process. Mean dwell times in samples.
                // Burst power sits below the ~14 mW system draw, so the
                // capacitor drains even while harvesting (the paper's RF
                // environments never sustain operation indefinitely).
                let (burst_mw, idle_mw, p_start, p_stop) = if self == TraceKind::RfOffice {
                    (12.0, 0.8, 0.090, 0.035)
                } else {
                    (11.0, 0.5, 0.070, 0.045)
                };
                let mut bursting = false;
                for _ in 0..samples {
                    if bursting {
                        if rng.gen_bool(p_stop) {
                            bursting = false;
                        }
                    } else if rng.gen_bool(p_start) {
                        bursting = true;
                    }
                    let base = if bursting { burst_mw } else { idle_mw };
                    let jitter = 1.0 + 0.35 * (rng.gen::<f64>() - 0.5);
                    power_mw.push((base * jitter).max(0.0));
                }
            }
            TraceKind::Solar => {
                // Slow sinusoidal irradiance with cloud dips.
                let mut cloud = 1.0f64;
                for i in 0..samples {
                    if rng.gen_bool(0.002) {
                        cloud = rng.gen_range(0.05..0.5);
                    } else {
                        cloud = (cloud + 0.01).min(1.0);
                    }
                    let slow = 1.0 + 0.25 * (i as f64 / 4000.0).sin();
                    let noise = 1.0 + 0.10 * (rng.gen::<f64>() - 0.5);
                    power_mw.push((9.0 * slow * cloud * noise).max(0.0));
                }
            }
            TraceKind::Thermal => {
                // Steady gradient with small drift and occasional sags.
                let mut sag = 1.0f64;
                for i in 0..samples {
                    if rng.gen_bool(0.001) {
                        sag = rng.gen_range(0.2..0.6);
                    } else {
                        sag = (sag + 0.02).min(1.0);
                    }
                    let drift = 1.0 + 0.08 * (i as f64 / 9000.0).cos();
                    let noise = 1.0 + 0.05 * (rng.gen::<f64>() - 0.5);
                    power_mw.push((8.5 * drift * sag * noise).max(0.0));
                }
            }
        }
        PowerTrace { power_mw }
    }
}

/// A self-describing *recipe* for a power trace.
///
/// Where [`PowerTrace`] is hundreds of kilobytes of samples, a
/// `TraceSpec` is a few words that deterministically reproduce it — the
/// trace's *identity* for content-addressed caching: two simulation
/// points with equal specs received byte-identical input power, so a
/// spec (not the sample vector) belongs in a cache key. The sweep
/// engine in `ehs-bench` keys every simulation point on
/// `(workload, config, trace spec, version salt)` and synthesises the
/// actual samples at most once per spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum TraceSpec {
    /// A [`TraceKind::synthesize`] trace: `(kind, seed, samples)`.
    Synthetic {
        /// Which energy environment to synthesize.
        kind: TraceKind,
        /// RNG seed (kind-salted internally, see [`TraceKind::synthesize`]).
        seed: u64,
        /// Number of 10 µs samples.
        samples: usize,
    },
    /// A constant-power trace (tests, ideal-supply experiments).
    Constant {
        /// Power during every sample, milliwatts.
        power_mw: f64,
        /// Number of 10 µs samples.
        samples: usize,
    },
}

impl TraceSpec {
    /// The paper's default §6 environment: synthetic RFHome, seed 42,
    /// 4 s of samples.
    pub fn default_rfhome() -> TraceSpec {
        TraceSpec::Synthetic {
            kind: TraceKind::RfHome,
            seed: 42,
            samples: 400_000,
        }
    }

    /// A synthetic spec for `kind` with the standard seed and length
    /// (what Fig. 23 uses for every environment).
    pub fn standard(kind: TraceKind) -> TraceSpec {
        TraceSpec::Synthetic {
            kind,
            seed: 42,
            samples: 400_000,
        }
    }

    /// The spec's RNG seed, if it has one (`Constant` traces are
    /// seedless).
    pub fn seed(&self) -> Option<u64> {
        match self {
            TraceSpec::Synthetic { seed, .. } => Some(*seed),
            TraceSpec::Constant { .. } => None,
        }
    }

    /// The same environment under a different RNG seed — the expansion
    /// step of a Monte Carlo seed sweep. Seedless specs (`Constant`)
    /// are returned unchanged: the metric they feed is seed-invariant
    /// by construction.
    pub fn with_seed(&self, seed: u64) -> TraceSpec {
        match *self {
            TraceSpec::Synthetic { kind, samples, .. } => TraceSpec::Synthetic {
                kind,
                seed,
                samples,
            },
            TraceSpec::Constant { .. } => self.clone(),
        }
    }

    /// Materialises the trace this spec describes. Deterministic: equal
    /// specs always produce equal traces.
    pub fn synthesize(&self) -> PowerTrace {
        match *self {
            TraceSpec::Synthetic {
                kind,
                seed,
                samples,
            } => kind.synthesize(seed, samples),
            TraceSpec::Constant { power_mw, samples } => PowerTrace::constant_mw(power_mw, samples),
        }
    }

    /// Short human label (`"RFHome(seed=42,n=400000)"`).
    pub fn label(&self) -> String {
        match self {
            TraceSpec::Synthetic {
                kind,
                seed,
                samples,
            } => format!("{}(seed={seed},n={samples})", kind.name()),
            TraceSpec::Constant { power_mw, samples } => {
                format!("const({power_mw}mW,n={samples})")
            }
        }
    }
}

/// A harvested-power trace: average input power per 10 µs interval.
///
/// Traces repeat cyclically when the simulation outlives them, matching
/// the paper's "record and replay" methodology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    power_mw: Vec<f64>,
}

impl PowerTrace {
    /// Builds a trace from raw milliwatt samples.
    ///
    /// # Panics
    ///
    /// Panics if `power_mw` is empty or contains a negative sample.
    pub fn from_samples_mw(power_mw: Vec<f64>) -> PowerTrace {
        assert!(
            !power_mw.is_empty(),
            "trace must contain at least one sample"
        );
        assert!(
            power_mw.iter().all(|p| *p >= 0.0),
            "power samples must be non-negative"
        );
        PowerTrace { power_mw }
    }

    /// A constant-power trace (useful in tests and for ideal-supply
    /// experiments).
    pub fn constant_mw(mw: f64, samples: usize) -> PowerTrace {
        PowerTrace::from_samples_mw(vec![mw; samples])
    }

    /// Number of 10 µs samples.
    pub fn len(&self) -> usize {
        self.power_mw.len()
    }

    /// `true` if the trace has no samples (never constructible).
    pub fn is_empty(&self) -> bool {
        self.power_mw.is_empty()
    }

    /// Input power (mW) during sample `idx`, repeating cyclically.
    #[inline]
    pub fn power_mw_at(&self, idx: u64) -> f64 {
        self.power_mw[(idx % self.power_mw.len() as u64) as usize]
    }

    /// Harvested energy in nanojoules over one core cycle (5 ns) during
    /// trace sample `idx`: `P · 5 ns`.
    #[inline]
    pub fn harvest_nj_per_cycle(&self, idx: u64) -> f64 {
        crate::mw_to_nj_per_cycle(self.power_mw_at(idx))
    }

    /// Mean power over the whole trace, in milliwatts.
    pub fn mean_power_mw(&self) -> f64 {
        self.power_mw.iter().sum::<f64>() / self.power_mw.len() as f64
    }

    /// Fraction of samples at or above `threshold_mw` (a proxy for the
    /// "stable energy portion" the paper discusses in §6.7.9).
    pub fn stable_fraction(&self, threshold_mw: f64) -> f64 {
        let n = self.power_mw.iter().filter(|p| **p >= threshold_mw).count();
        n as f64 / self.power_mw.len() as f64
    }

    /// Serialises to the paper's text format: one average-power value
    /// (milliwatts) per line.
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(self.power_mw.len() * 8);
        for p in &self.power_mw {
            s.push_str(&format!("{p:.6}\n"));
        }
        s
    }

    /// Parses the text format produced by [`PowerTrace::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line if any line is not a
    /// non-negative number, or if the file holds no samples.
    pub fn from_text(text: &str) -> Result<PowerTrace, String> {
        let mut power_mw = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v: f64 = line
                .parse()
                .map_err(|_| format!("line {}: bad sample `{line}`", i + 1))?;
            if v < 0.0 || !v.is_finite() {
                return Err(format!(
                    "line {}: power must be finite and non-negative",
                    i + 1
                ));
            }
            power_mw.push(v);
        }
        if power_mw.is_empty() {
            return Err("trace contains no samples".to_owned());
        }
        Ok(PowerTrace { power_mw })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_reproduces_synthesis() {
        let spec = TraceSpec::Synthetic {
            kind: TraceKind::Solar,
            seed: 9,
            samples: 3000,
        };
        assert_eq!(spec.synthesize(), TraceKind::Solar.synthesize(9, 3000));
        let c = TraceSpec::Constant {
            power_mw: 25.0,
            samples: 8,
        };
        assert_eq!(c.synthesize(), PowerTrace::constant_mw(25.0, 8));
    }

    #[test]
    fn spec_round_trips_through_json() {
        for spec in [
            TraceSpec::default_rfhome(),
            TraceSpec::standard(TraceKind::Thermal),
            TraceSpec::Constant {
                power_mw: 50.0,
                samples: 16,
            },
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: TraceSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{json}");
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = TraceKind::RfHome.synthesize(7, 5000);
        let b = TraceKind::RfHome.synthesize(7, 5000);
        assert_eq!(a, b);
        let c = TraceKind::RfHome.synthesize(8, 5000);
        assert_ne!(a, c);
    }

    /// The kind-salting contract of [`TraceKind::synthesize`], pinned:
    /// equal `(seed, samples)` across *distinct* kinds must never yield
    /// identical traces (kinds must not share RNG streams), while equal
    /// full inputs must be byte-identical across two synthesize calls.
    #[test]
    fn kinds_differ_for_same_seed() {
        let samples = 2000;
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let traces: Vec<(TraceKind, PowerTrace)> = TraceKind::ALL
                .into_iter()
                .map(|k| (k, k.synthesize(seed, samples)))
                .collect();
            for (i, (ka, a)) in traces.iter().enumerate() {
                for (kb, b) in &traces[i + 1..] {
                    assert_ne!(
                        a, b,
                        "kinds {ka:?} and {kb:?} share a stream at seed {seed}"
                    );
                }
                // Byte-identical re-synthesis: the text rendering (the
                // persisted format) must match down to the last byte.
                let again = ka.synthesize(seed, samples);
                assert_eq!(a, &again, "{ka:?} seed {seed} not deterministic");
                assert_eq!(
                    a.to_text().into_bytes(),
                    again.to_text().into_bytes(),
                    "{ka:?} seed {seed} text form not byte-identical"
                );
            }
        }
    }

    #[test]
    fn with_seed_reseeds_synthetic_and_keeps_constant() {
        let spec = TraceSpec::default_rfhome();
        assert_eq!(spec.seed(), Some(42));
        let reseeded = spec.with_seed(7);
        assert_eq!(reseeded.seed(), Some(7));
        assert_eq!(
            reseeded,
            TraceSpec::Synthetic {
                kind: TraceKind::RfHome,
                seed: 7,
                samples: 400_000,
            }
        );
        assert_ne!(reseeded.synthesize(), spec.synthesize());

        let c = TraceSpec::Constant {
            power_mw: 25.0,
            samples: 8,
        };
        assert_eq!(c.seed(), None);
        assert_eq!(c.with_seed(99), c);
    }

    #[test]
    fn stable_sources_have_higher_stable_fraction() {
        let n = 200_000;
        let thermal = TraceKind::Thermal.synthesize(3, n);
        let solar = TraceKind::Solar.synthesize(3, n);
        let home = TraceKind::RfHome.synthesize(3, n);
        let office = TraceKind::RfOffice.synthesize(3, n);
        let t = 4.0; // mW
        assert!(thermal.stable_fraction(t) > solar.stable_fraction(t) * 0.9);
        assert!(solar.stable_fraction(t) > office.stable_fraction(t));
        assert!(office.stable_fraction(t) > home.stable_fraction(t));
    }

    #[test]
    fn rf_traces_are_weak_on_average() {
        let home = TraceKind::RfHome.synthesize(11, 100_000);
        let mean = home.mean_power_mw();
        // Mean must sit well below the ~13.8 mW system draw so outages occur.
        assert!(mean > 1.0 && mean < 13.0, "mean {mean}");
    }

    #[test]
    fn cyclic_indexing() {
        let tr = PowerTrace::from_samples_mw(vec![1.0, 2.0, 3.0]);
        assert_eq!(tr.power_mw_at(0), 1.0);
        assert_eq!(tr.power_mw_at(4), 2.0);
        assert_eq!(tr.power_mw_at(3_000_000_002), 3.0);
    }

    #[test]
    fn text_round_trip() {
        let tr = TraceKind::Solar.synthesize(5, 100);
        let text = tr.to_text();
        let back = PowerTrace::from_text(&text).unwrap();
        assert_eq!(back.len(), tr.len());
        for i in 0..tr.len() as u64 {
            assert!((back.power_mw_at(i) - tr.power_mw_at(i)).abs() < 1e-5);
        }
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(PowerTrace::from_text("1.0\nnope\n").is_err());
        assert!(PowerTrace::from_text("-3.0\n").is_err());
        assert!(PowerTrace::from_text("\n\n").is_err());
        assert!(PowerTrace::from_text("1.0\n\n2.0\n").is_ok());
    }

    #[test]
    fn harvest_energy_per_cycle() {
        let tr = PowerTrace::constant_mw(10.0, 4);
        // 10 mW * 5 ns = 0.05 nJ.
        assert!((tr.harvest_nj_per_cycle(0) - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_panics() {
        PowerTrace::from_samples_mw(vec![]);
    }
}
