//! Per-event energy constants (Table 1 plus McPAT-derived compute
//! figures) and the analytic prefetch-profitability bound of §2.2.

use serde::{Deserialize, Serialize};

use crate::mw_to_nj_per_cycle;

/// Dynamic energy per executed instruction, by execution class, in
/// nanojoules. Derived for a 45 nm in-order embedded core in the spirit
/// of McPAT (the paper's §6 methodology); absolute values are calibration
/// inputs documented in `DESIGN.md`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeEnergy {
    /// Simple ALU / branch / jump operations.
    pub alu_nj: f64,
    /// Multiply.
    pub mul_nj: f64,
    /// Divide / remainder.
    pub div_nj: f64,
    /// Pipeline overhead of a load or store (cache/NVM energy separate).
    pub mem_nj: f64,
}

impl ComputeEnergy {
    /// Default 45 nm figures.
    pub fn paper_default() -> ComputeEnergy {
        ComputeEnergy {
            alu_nj: 0.008,
            mul_nj: 0.020,
            div_nj: 0.045,
            mem_nj: 0.008,
        }
    }
}

/// All energy parameters of the modelled EHS except the NVM's (which
/// live in [`ehs_mem::NvmConfig`]-shaped configs owned by the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per cache access (hit or fill), nanojoules (Table 1: 0.015 nJ).
    pub cache_access_nj: f64,
    /// Leakage power of one cache, milliwatts (Table 1: 0.205 mW for the
    /// default 2 kB; scaled linearly with capacity for Fig. 1/18 sweeps).
    pub cache_leak_mw_per_2kb: f64,
    /// Core (pipeline + register file) leakage power, milliwatts.
    pub core_leak_mw: f64,
    /// Per-instruction dynamic energies.
    pub compute: ComputeEnergy,
    /// Energy to checkpoint one bit into nonvolatile flip-flops, nJ.
    pub nvff_store_nj_per_bit: f64,
    /// Energy to restore one bit from nonvolatile flip-flops, nJ.
    pub nvff_restore_nj_per_bit: f64,
}

impl EnergyModel {
    /// The paper's Table 1 constants with McPAT-style compute figures.
    pub fn paper_default() -> EnergyModel {
        EnergyModel {
            cache_access_nj: 0.015,
            cache_leak_mw_per_2kb: 0.205,
            core_leak_mw: 1.0,
            compute: ComputeEnergy::paper_default(),
            // ReRAM-based NVFF store/restore (order of the cited 7T1R work).
            nvff_store_nj_per_bit: 0.002,
            nvff_restore_nj_per_bit: 0.0005,
        }
    }

    /// Leakage power of one cache of `size_bytes`, milliwatts. Leakage is
    /// proportional to the number of SRAM cells.
    pub fn cache_leak_mw(&self, size_bytes: u32) -> f64 {
        self.cache_leak_mw_per_2kb * (size_bytes as f64 / 2048.0)
    }

    /// Cache leakage energy for one cycle, nanojoules.
    pub fn cache_leak_nj_per_cycle(&self, size_bytes: u32) -> f64 {
        mw_to_nj_per_cycle(self.cache_leak_mw(size_bytes))
    }

    /// Core leakage energy for one cycle, nanojoules.
    pub fn core_leak_nj_per_cycle(&self) -> f64 {
        mw_to_nj_per_cycle(self.core_leak_mw)
    }

    /// Checkpoint energy for `bits` of volatile register state, nJ.
    pub fn nvff_store_nj(&self, bits: u32) -> f64 {
        self.nvff_store_nj_per_bit * bits as f64
    }

    /// Restoration energy for `bits` of register state, nJ.
    pub fn nvff_restore_nj(&self, bits: u32) -> f64 {
        self.nvff_restore_nj_per_bit * bits as f64
    }
}

/// The minimum probability `P` of a prefetch being useful for prefetching
/// to pay off, per §2.2's Inequality 4:
///
/// `P > 1 − E_leak / (E_prefetch + E_leak)  =  E_prefetch / (E_prefetch + E_leak)`
///
/// where `E_prefetch` is the cost of fetching a block from NVM and
/// `E_leak` the system leakage burnt while stalling on the miss the
/// prefetch would have hidden. Both arguments are in the same unit
/// (e.g. picojoules, as in Fig. 4).
///
/// # Panics
///
/// Panics if either energy is negative or both are zero.
///
/// ```
/// let p = ehs_energy::min_useful_probability(40.0, 40.0);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
pub fn min_useful_probability(e_prefetch: f64, e_leak: f64) -> f64 {
    assert!(
        e_prefetch >= 0.0 && e_leak >= 0.0,
        "energies must be non-negative"
    );
    assert!(
        e_prefetch + e_leak > 0.0,
        "at least one energy must be positive"
    );
    e_prefetch / (e_prefetch + e_leak)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let m = EnergyModel::paper_default();
        assert!((m.cache_access_nj - 0.015).abs() < 1e-12);
        assert!((m.cache_leak_mw(2048) - 0.205).abs() < 1e-12);
    }

    #[test]
    fn cache_leak_scales_with_size() {
        let m = EnergyModel::paper_default();
        assert!((m.cache_leak_mw(8192) - 0.82).abs() < 1e-12);
        assert!((m.cache_leak_mw(256) - 0.0256).abs() < 1e-4);
    }

    #[test]
    fn leak_per_cycle_magnitude() {
        let m = EnergyModel::paper_default();
        // 0.205 mW over 5 ns ≈ 1.025 pJ.
        let nj = m.cache_leak_nj_per_cycle(2048);
        assert!((nj - 0.001025).abs() < 1e-9);
    }

    #[test]
    fn min_probability_monotonic_in_prefetch_cost() {
        let p1 = min_useful_probability(10.0, 30.0);
        let p2 = min_useful_probability(50.0, 30.0);
        let p3 = min_useful_probability(100.0, 30.0);
        assert!(p1 < p2 && p2 < p3);
    }

    #[test]
    fn min_probability_decreases_with_leak() {
        let p1 = min_useful_probability(50.0, 10.0);
        let p2 = min_useful_probability(50.0, 50.0);
        assert!(p2 < p1);
    }

    #[test]
    fn min_probability_limits() {
        assert_eq!(min_useful_probability(0.0, 10.0), 0.0);
        assert_eq!(min_useful_probability(10.0, 0.0), 1.0);
    }

    #[test]
    fn nvff_costs() {
        let m = EnergyModel::paper_default();
        // 16 regs x 32b + 32b PC = 544 bits.
        assert!((m.nvff_store_nj(544) - 1.088).abs() < 1e-9);
        assert!(m.nvff_restore_nj(544) < m.nvff_store_nj(544));
    }
}
