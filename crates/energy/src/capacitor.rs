//! The storage capacitor and its voltage thresholds.

use serde::{Deserialize, Serialize};

/// Electrical configuration of a [`Capacitor`].
///
/// The voltage levels partition the capacitor's range into the regions
/// the paper's NVP platform uses:
///
/// * `(v_on, v_max]` — fully charged; the system (re)boots at `v_on`.
/// * `(v_backup, v_on]` — normal operating region. IPEX's thresholds
///   (initially 3.3 V / 3.25 V, Fig. 9) live here.
/// * `(v_min, v_backup]` — reserve region: crossing `v_backup` downward
///   triggers the JIT checkpoint, which must complete before `v_min`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacitorConfig {
    /// Capacitance in microfarads (paper default: 0.47 µF).
    pub capacitance_uf: f64,
    /// Maximum (fully charged) voltage.
    pub v_max: f64,
    /// Voltage at which a powered-off system reboots.
    pub v_on: f64,
    /// Voltage at which the JIT checkpoint (backup) is triggered.
    pub v_backup: f64,
    /// Minimum usable voltage; below this the logic browns out.
    pub v_min: f64,
}

impl CapacitorConfig {
    /// The paper's default electrical point: 0.47 µF, operating between
    /// 3.2 V (backup trigger) and 3.4 V (full). The narrow band follows
    /// the paper's own voltage landmarks: Fig. 7 shows the system running
    /// at 3.22 V and the IPEX thresholds live at 3.3/3.25 V, so `V_backup`
    /// must sit below 3.2 V and the full charge just above 3.4 V. The
    /// resulting ~310 nJ operating budget produces the short, frequent
    /// power cycles that define the paper's environment.
    pub fn paper_default() -> CapacitorConfig {
        CapacitorConfig {
            capacitance_uf: 0.47,
            v_max: 3.4,
            v_on: 3.4,
            v_backup: 3.2,
            v_min: 3.0,
        }
    }

    /// The paper default with a different capacitance (Fig. 22 sweep).
    pub fn with_capacitance_uf(uf: f64) -> CapacitorConfig {
        CapacitorConfig {
            capacitance_uf: uf,
            ..CapacitorConfig::paper_default()
        }
    }

    fn validate(&self) {
        assert!(self.capacitance_uf > 0.0, "capacitance must be positive");
        assert!(
            self.v_min < self.v_backup && self.v_backup < self.v_on && self.v_on <= self.v_max,
            "voltage levels must satisfy v_min < v_backup < v_on <= v_max"
        );
    }

    /// Stored energy at `voltage`, in nanojoules (`½CV²`).
    pub fn energy_at_nj(&self, voltage: f64) -> f64 {
        0.5 * self.capacitance_uf * 1.0e-6 * voltage * voltage * 1.0e9
    }

    /// Usable energy between `v_on` and `v_backup` — the budget of one
    /// power cycle before the checkpoint triggers, in nanojoules.
    pub fn operating_budget_nj(&self) -> f64 {
        self.energy_at_nj(self.v_on) - self.energy_at_nj(self.v_backup)
    }

    /// Energy reserved between `v_backup` and `v_min` for completing the
    /// JIT checkpoint, in nanojoules.
    pub fn backup_reserve_nj(&self) -> f64 {
        self.energy_at_nj(self.v_backup) - self.energy_at_nj(self.v_min)
    }
}

/// The storage capacitor: an energy integrator exposing its voltage.
#[derive(Debug, Clone, Copy)]
pub struct Capacitor {
    cfg: CapacitorConfig,
    energy_nj: f64,
    /// Capacity at `v_max`, cached so the per-cycle harvest saturation
    /// check is a compare instead of a `½CV²` recomputation. Always
    /// exactly `cfg.energy_at_nj(cfg.v_max)`.
    max_nj: f64,
}

impl Capacitor {
    /// Creates a capacitor charged to `v_max`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's voltage ordering is invalid.
    pub fn full(cfg: CapacitorConfig) -> Capacitor {
        cfg.validate();
        let max_nj = cfg.energy_at_nj(cfg.v_max);
        Capacitor {
            cfg,
            energy_nj: max_nj,
            max_nj,
        }
    }

    /// Creates a capacitor at a specific voltage.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `voltage` exceeds `v_max`.
    pub fn at_voltage(cfg: CapacitorConfig, voltage: f64) -> Capacitor {
        cfg.validate();
        assert!(
            voltage >= 0.0 && voltage <= cfg.v_max,
            "voltage out of range"
        );
        Capacitor {
            cfg,
            energy_nj: cfg.energy_at_nj(voltage),
            max_nj: cfg.energy_at_nj(cfg.v_max),
        }
    }

    /// Creates a capacitor holding exactly `energy_nj` nanojoules.
    ///
    /// Unlike [`Capacitor::at_voltage`] (which recomputes `½CV²` from a
    /// rounded voltage), this restores the stored energy bit-exactly —
    /// the constructor the snapshot/resume subsystem uses.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, `energy_nj` is negative,
    /// or the energy exceeds the `v_max` capacity.
    pub fn with_energy_nj(cfg: CapacitorConfig, energy_nj: f64) -> Capacitor {
        cfg.validate();
        assert!(
            energy_nj >= 0.0 && energy_nj <= cfg.energy_at_nj(cfg.v_max),
            "stored energy out of range"
        );
        Capacitor {
            cfg,
            energy_nj,
            max_nj: cfg.energy_at_nj(cfg.v_max),
        }
    }

    /// The electrical configuration.
    pub fn config(&self) -> CapacitorConfig {
        self.cfg
    }

    /// Current voltage in volts (`√(2E/C)`).
    pub fn voltage(&self) -> f64 {
        (2.0 * self.energy_nj * 1.0e-9 / (self.cfg.capacitance_uf * 1.0e-6)).sqrt()
    }

    /// Current stored energy in nanojoules.
    pub fn energy_nj(&self) -> f64 {
        self.energy_nj
    }

    /// Adds harvested energy, saturating at the `v_max` capacity.
    ///
    /// Returns the energy actually absorbed (excess input is discarded —
    /// the harvester's regulator sheds power once the capacitor is full).
    pub fn harvest_nj(&mut self, nj: f64) -> f64 {
        debug_assert!(nj >= 0.0);
        let absorbed = nj.min(self.max_nj - self.energy_nj);
        self.energy_nj += absorbed;
        absorbed
    }

    /// Drains energy. The charge never goes negative; draining more than
    /// is stored empties the capacitor (the brown-out case — callers
    /// check voltages before relying on completed work).
    pub fn consume_nj(&mut self, nj: f64) {
        debug_assert!(nj >= 0.0);
        self.energy_nj = (self.energy_nj - nj).max(0.0);
    }

    /// `true` when the voltage is at or below the backup threshold.
    pub fn needs_backup(&self) -> bool {
        self.voltage() <= self.cfg.v_backup
    }

    /// `true` when the voltage has recovered to the reboot threshold.
    pub fn can_boot(&self) -> bool {
        self.voltage() >= self.cfg.v_on
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_energy_budget() {
        let cfg = CapacitorConfig::paper_default();
        // ½·0.47µF·(3.4² − 3.2²) = 310.2 nJ.
        assert!((cfg.operating_budget_nj() - 310.2).abs() < 0.5);
        // Reserve: ½·0.47µF·(3.2² − 3.0²) = 291.4 nJ.
        assert!((cfg.backup_reserve_nj() - 291.4).abs() < 0.5);
    }

    #[test]
    fn voltage_energy_round_trip() {
        let cap = Capacitor::at_voltage(CapacitorConfig::paper_default(), 3.25);
        assert!((cap.voltage() - 3.25).abs() < 1e-9);
    }

    #[test]
    fn harvest_saturates_at_vmax() {
        let cfg = CapacitorConfig::paper_default();
        let mut cap = Capacitor::at_voltage(cfg, 3.3);
        let absorbed = cap.harvest_nj(1.0e9);
        assert!((cap.voltage() - 3.4).abs() < 1e-9);
        assert!(absorbed < 1.0e9);
        // A full capacitor absorbs nothing.
        assert_eq!(cap.harvest_nj(10.0), 0.0);
    }

    #[test]
    fn consume_lowers_voltage_monotonically() {
        let mut cap = Capacitor::full(CapacitorConfig::paper_default());
        let mut last = cap.voltage();
        for _ in 0..10 {
            cap.consume_nj(50.0);
            let v = cap.voltage();
            assert!(v < last);
            last = v;
        }
    }

    #[test]
    fn consume_never_negative() {
        let mut cap = Capacitor::at_voltage(CapacitorConfig::paper_default(), 0.5);
        cap.consume_nj(1.0e9);
        assert_eq!(cap.energy_nj(), 0.0);
        assert_eq!(cap.voltage(), 0.0);
    }

    #[test]
    fn threshold_predicates() {
        let cfg = CapacitorConfig::paper_default();
        let full = Capacitor::full(cfg);
        assert!(full.can_boot());
        assert!(!full.needs_backup());
        let low = Capacitor::at_voltage(cfg, 3.15);
        assert!(low.needs_backup());
        assert!(!low.can_boot());
    }

    #[test]
    #[should_panic(expected = "v_min < v_backup")]
    fn invalid_ordering_panics() {
        let cfg = CapacitorConfig {
            v_backup: 2.0,
            ..CapacitorConfig::paper_default()
        };
        Capacitor::full(cfg);
    }

    #[test]
    fn larger_capacitance_stores_more() {
        let small = CapacitorConfig::paper_default();
        let big = CapacitorConfig::with_capacitance_uf(47.0);
        assert!(big.operating_budget_nj() > 50.0 * small.operating_budget_nj());
    }
}
