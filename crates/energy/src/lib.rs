//! # ehs-energy — harvested-energy models for the EHS simulator
//!
//! Everything about energy in the reproduced system lives here:
//!
//! * [`Capacitor`] — the tiny storage capacitor (0.47 µF by default) whose
//!   voltage IPEX monitors. Energy is `½·C·V²`; the simulator harvests
//!   into it and drains it with every modelled event.
//! * [`PowerTrace`] / [`TraceKind`] — harvested input power over time in
//!   the paper's digitised format (one average-power sample per 10 µs).
//!   The measured RFHome/RFOffice/solar/thermal traces are proprietary, so
//!   seeded synthetic generators with the same qualitative structure are
//!   provided (see `DESIGN.md` for the substitution argument); recorded
//!   traces in the text format can be loaded as well.
//! * [`EnergyModel`] — per-event energies (Table 1 constants) and leakage
//!   powers, plus the analytic minimum-useful-prefetch-probability bound
//!   of §2.2 (Equations 1–4, Figure 4).
//! * [`EnergyBreakdown`] — the four-bucket accounting
//!   (cache / memory / compute / backup+restore) reported in Figure 14.
//!
//! ```
//! use ehs_energy::{Capacitor, CapacitorConfig};
//!
//! let mut cap = Capacitor::full(CapacitorConfig::paper_default());
//! assert!((cap.voltage() - 3.4).abs() < 1e-9);
//! cap.consume_nj(100.0);
//! assert!(cap.voltage() < 3.4);
//! ```

mod breakdown;
mod capacitor;
mod model;
mod trace;

pub use breakdown::EnergyBreakdown;
pub use capacitor::{Capacitor, CapacitorConfig};
pub use model::{min_useful_probability, ComputeEnergy, EnergyModel};
pub use trace::{PowerTrace, TraceKind, TraceSpec, TRACE_SAMPLE_US};

/// Core clock frequency modelled throughout the workspace (200 MHz).
pub const CLOCK_HZ: f64 = 200.0e6;

/// Duration of one core cycle in seconds (5 ns at 200 MHz).
pub const CYCLE_SECONDS: f64 = 1.0 / CLOCK_HZ;

/// Converts a power in milliwatts to energy in nanojoules per core cycle.
///
/// ```
/// // 12.133 mW of NVM leakage costs ~0.0607 nJ every 5 ns cycle.
/// let nj = ehs_energy::mw_to_nj_per_cycle(12.133);
/// assert!((nj - 0.060665).abs() < 1e-6);
/// ```
pub fn mw_to_nj_per_cycle(mw: f64) -> f64 {
    // mW = 1e-3 J/s; per cycle: * CYCLE_SECONDS; to nJ: * 1e9.
    mw * 1.0e-3 * CYCLE_SECONDS * 1.0e9
}
