//! Four-bucket energy accounting (Fig. 14).

use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Energy consumed by each subsystem, in nanojoules, matching the four
/// bars of the paper's Figure 14: cache, (main) memory, compute, and
/// backup + restoration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// ICache/DCache dynamic access energy plus cache leakage.
    pub cache_nj: f64,
    /// NVM dynamic access energy plus NVM leakage.
    pub memory_nj: f64,
    /// Core pipeline dynamic energy plus core leakage.
    pub compute_nj: f64,
    /// JIT checkpoint (backup) and restoration energy.
    pub backup_restore_nj: f64,
}

impl EnergyBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> EnergyBreakdown {
        EnergyBreakdown::default()
    }

    /// Total energy across all buckets, in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.cache_nj + self.memory_nj + self.compute_nj + self.backup_restore_nj
    }

    /// This breakdown normalised so the *other* breakdown's total is 1.0
    /// (used for "normalised to baseline" figures).
    ///
    /// # Panics
    ///
    /// Panics if `baseline` has zero total energy.
    pub fn normalized_to(&self, baseline: &EnergyBreakdown) -> EnergyBreakdown {
        let t = baseline.total_nj();
        assert!(t > 0.0, "cannot normalise to a zero-energy baseline");
        EnergyBreakdown {
            cache_nj: self.cache_nj / t,
            memory_nj: self.memory_nj / t,
            compute_nj: self.compute_nj / t,
            backup_restore_nj: self.backup_restore_nj / t,
        }
    }

    /// Fraction of the total spent in the cache bucket (Fig. 1's leakage
    /// share uses this with leakage-only accounting).
    pub fn cache_share(&self) -> f64 {
        let t = self.total_nj();
        if t == 0.0 {
            0.0
        } else {
            self.cache_nj / t
        }
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            cache_nj: self.cache_nj + rhs.cache_nj,
            memory_nj: self.memory_nj + rhs.memory_nj,
            compute_nj: self.compute_nj + rhs.compute_nj,
            backup_restore_nj: self.backup_restore_nj + rhs.backup_restore_nj,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EnergyBreakdown {
        EnergyBreakdown {
            cache_nj: 10.0,
            memory_nj: 60.0,
            compute_nj: 25.0,
            backup_restore_nj: 5.0,
        }
    }

    #[test]
    fn total_sums_buckets() {
        assert_eq!(sample().total_nj(), 100.0);
    }

    #[test]
    fn normalisation_against_baseline() {
        let half = EnergyBreakdown {
            cache_nj: 5.0,
            memory_nj: 30.0,
            compute_nj: 12.5,
            backup_restore_nj: 2.5,
        };
        let n = half.normalized_to(&sample());
        assert!((n.total_nj() - 0.5).abs() < 1e-12);
        assert!((n.memory_nj - 0.3).abs() < 1e-12);
    }

    #[test]
    fn addition_accumulates() {
        let mut acc = EnergyBreakdown::new();
        acc += sample();
        acc += sample();
        assert_eq!(acc.total_nj(), 200.0);
    }

    #[test]
    fn cache_share() {
        assert!((sample().cache_share() - 0.1).abs() < 1e-12);
        assert_eq!(EnergyBreakdown::new().cache_share(), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero-energy baseline")]
    fn zero_baseline_panics() {
        sample().normalized_to(&EnergyBreakdown::new());
    }
}
