//! Tracing invariants: conservation of prefetch events, reconciliation
//! with the aggregate statistics, and JSONL determinism/round-tripping.

use std::io::Write;
use std::sync::{Arc, Mutex};

use ehs_isa::{asm, Program};
use ehs_sim::prelude::*;
use proptest::prelude::*;

/// ~60k cycles of streaming loads/stores: enough to exercise prefetch
/// buffers, and to span several power cycles under weak harvested power.
fn streaming_program() -> Program {
    asm::assemble(
        r#"
        .text
        main:
            li   t0, 0
            li   t1, 6000
            la   a1, buf
        loop:
            andi t4, t0, 255
            slli t2, t4, 2
            add  t2, a1, t2
            sw   t0, 0(t2)
            lw   t3, 0(t2)
            add  a0, a0, t3
            addi t0, t0, 1
            blt  t0, t1, loop
            halt
        .data
        buf: .space 1024
        "#,
    )
    .unwrap()
}

fn preset(which: u8) -> SimConfig {
    match which {
        0 => SimConfig::builder().no_prefetch().build(),
        1 => SimConfig::default(),
        2 => SimConfig::builder().ipex(Ipex::Both).build(),
        _ => SimConfig::builder().ipex(Ipex::Data).build(),
    }
}

/// Asserts every identity that must hold between the per-event tallies
/// and the aggregate counters of the same run.
fn assert_reconciles(c: &EventCounts, r: &SimResult, buffer_entries: u64) {
    // Conservation: every issued prefetch is eventually a buffer hit, an
    // unused eviction, an outage loss — or still resident at halt.
    let consumed = c.buffer_hit + c.evicted_unused + c.lost_unused;
    assert!(
        c.prefetch_issued >= consumed,
        "more consumptions ({consumed}) than issues ({})",
        c.prefetch_issued
    );
    let resident = c.prefetch_issued - consumed;
    assert!(
        resident <= 2 * buffer_entries,
        "residual {resident} exceeds both buffers' capacity"
    );

    assert_eq!(c.prefetch_issued, r.ibuf.inserted + r.dbuf.inserted);
    assert_eq!(c.prefetch_issued, r.nvm.prefetch_reads);
    assert_eq!(c.buffer_hit, r.ibuf.useful + r.dbuf.useful);
    assert_eq!(
        c.late_prefetch,
        r.ibuf.duplicate_suppressed + r.dbuf.duplicate_suppressed
    );
    assert_eq!(
        c.evicted_unused,
        r.ibuf.evicted_unused + r.dbuf.evicted_unused
    );
    assert_eq!(c.lost_unused, r.ibuf.lost_unused + r.dbuf.lost_unused);

    let throttled = r.ipex_i.map_or(0, |s| s.throttled) + r.ipex_d.map_or(0, |s| s.throttled);
    let reissued = r.ipex_i.map_or(0, |s| s.reissued) + r.ipex_d.map_or(0, |s| s.reissued);
    assert_eq!(c.prefetch_throttled, throttled);
    assert_eq!(c.prefetch_reissued, reissued);

    assert_eq!(c.outage_begin, r.stats.power_cycles - 1);
    assert_eq!(c.restore, r.stats.power_cycles - 1);
    assert_eq!(c.power_cycle_summary, r.stats.power_cycles);
    assert_eq!(
        c.cache_fill,
        c.buffer_hit + r.stats.i_demand_reads + r.stats.d_demand_reads
    );
    assert_eq!(c.writeback + r.stats.checkpoint_blocks, r.nvm.writes);
}

proptest! {
    /// Event tallies reconcile with the aggregate statistics for any
    /// supply strength and any prefetch configuration.
    #[test]
    fn event_counts_reconcile_with_aggregates(
        mw in 2.0f64..12.0,
        which in 0u8..4,
    ) {
        let cfg = preset(which).with_trace_mode(TraceMode::Counting);
        let buffer_entries = cfg.prefetch_buffer_entries as u64;
        let trace = PowerTrace::constant_mw(mw, 16);
        let mut m = Machine::with_trace(cfg, &streaming_program(), trace);
        let r = m.run().expect("completes under >=2 mW");
        assert_reconciles(m.trace_counts(), &r, buffer_entries);
    }
}

/// A cloneable in-memory writer, to retrieve what a [`JsonlSink`] wrote
/// after the machine consumed the sink.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn traced_jsonl_run(cfg: &SimConfig, mw: f64) -> (Vec<u8>, EventCounts, SimResult) {
    let trace = PowerTrace::constant_mw(mw, 16);
    let buf = SharedBuf::default();
    let mut m = Machine::with_trace(cfg.clone(), &streaming_program(), trace);
    m.set_trace_sink(Box::new(JsonlSink::new(buf.clone())));
    let r = m.run().expect("completes");
    let counts = *m.trace_counts();
    (buf.contents(), counts, r)
}

#[test]
fn jsonl_trace_is_deterministic_and_round_trips() {
    let cfg = SimConfig::builder().ipex(Ipex::Both).build();
    // 3 mW forces several outages on the streaming program.
    let (bytes_a, counts_a, result_a) = traced_jsonl_run(&cfg, 3.0);
    let (bytes_b, counts_b, result_b) = traced_jsonl_run(&cfg, 3.0);

    // Determinism: two identical runs emit byte-identical traces and
    // identical tallies.
    assert_eq!(bytes_a, bytes_b);
    assert_eq!(counts_a, counts_b);
    assert_eq!(result_a.stats, result_b.stats);

    // Round-trip: every line parses as a SimEvent and re-serializes to
    // the same text; cycle stamps never decrease; replaying the events
    // rebuilds the tallies exactly.
    let text = String::from_utf8(bytes_a).expect("trace is UTF-8");
    let mut replayed = EventCounts::default();
    let mut last_cycle = 0u64;
    let mut lines = 0u64;
    for line in text.lines() {
        let ev: SimEvent = serde_json::from_str(line).expect("line parses");
        assert_eq!(serde_json::to_string(&ev).unwrap(), line);
        assert!(ev.cycle() >= last_cycle, "cycle stamps must be monotone");
        last_cycle = ev.cycle();
        replayed.record(&ev);
        lines += 1;
    }
    assert!(lines > 0, "an outage-heavy run must emit events");
    assert_eq!(replayed, counts_a);
    assert_reconciles(&counts_a, &result_a, cfg.prefetch_buffer_entries as u64);
}

#[test]
fn trace_mode_jsonl_writes_the_configured_file() {
    let path = std::env::temp_dir().join(format!("ehs-trace-test-{}.jsonl", std::process::id()));
    let cfg = SimConfig::builder()
        .ipex(Ipex::Both)
        .build()
        .with_trace_mode(TraceMode::Jsonl {
            path: path.to_str().unwrap().into(),
        });
    let trace = PowerTrace::constant_mw(3.0, 16);
    let mut m = Machine::with_trace(cfg, &streaming_program(), trace);
    let r = m.run().expect("completes");
    let text = std::fs::read_to_string(&path).expect("trace file exists");
    std::fs::remove_file(&path).ok();
    let events: u64 = text
        .lines()
        .map(|l| {
            serde_json::from_str::<SimEvent>(l).expect("line parses");
            1
        })
        .sum();
    assert!(events > 0);
    assert!(r.stats.power_cycles > 1, "3 mW must force outages");
}

#[test]
fn disabled_tracing_records_nothing() {
    let trace = PowerTrace::constant_mw(5.0, 16);
    let mut m = Machine::with_trace(
        SimConfig::builder().ipex(Ipex::Both).build(),
        &streaming_program(),
        trace,
    );
    m.run().expect("completes");
    assert_eq!(*m.trace_counts(), EventCounts::default());
}
