//! Canonical serialization and FNV-1a hashing for content-addressed
//! simulation-point keys.
//!
//! The sweep engine in `ehs-bench` memoizes [`SimResult`](crate::SimResult)s
//! under a digest of the *inputs* that determine them: workload name,
//! [`SimConfig`](crate::SimConfig), trace identity, and a simulator
//! version salt. For that digest to be stable it must not depend on
//! incidental serialization details, so keys are derived from a
//! *canonical* JSON rendering:
//!
//! * map keys are sorted recursively (struct-field declaration order and
//!   any future field reordering cannot change the digest),
//! * output is compact (no whitespace),
//! * floats render exactly as the vendored `serde_json` writer renders
//!   them (shortest round-trip, integral values as `1.0`), so a config
//!   that round-trips through JSON hashes identically.
//!
//! The digest itself is 64-bit FNV-1a — the same construction the
//! verification oracle already uses for memory digests: tiny, portable,
//! and deterministic across platforms (unlike `DefaultHasher`, which is
//! randomly seeded per process).

use serde::{Content, Serialize};

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Renders any serializable value as canonical JSON: compact, with all
/// map keys sorted recursively.
pub fn canonical_json<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_canonical(&value.to_content(), &mut out);
    out
}

/// Convenience: the FNV-1a 64 digest of a value's canonical JSON.
pub fn canonical_digest<T: Serialize + ?Sized>(value: &T) -> u64 {
    fnv1a_64(canonical_json(value).as_bytes())
}

/// Field-level difference report between two serializable values.
///
/// Walks both values' `Content` trees in lockstep and returns one line
/// per leaf that differs, as `path: left != right` with dotted/indexed
/// paths (`stats.total_cycles`, `mem_delta[3].hex`). Used by the
/// golden-snapshot corpus test so drift reads as *which fields* moved,
/// not as two multi-kilobyte JSON blobs.
pub fn content_diff<A: Serialize + ?Sized, B: Serialize + ?Sized>(a: &A, b: &B) -> Vec<String> {
    let mut out = Vec::new();
    diff_content(&a.to_content(), &b.to_content(), "", &mut out);
    out
}

fn diff_content(a: &Content, b: &Content, path: &str, out: &mut Vec<String>) {
    let label = |p: &str| {
        if p.is_empty() {
            "<root>".to_string()
        } else {
            p.to_string()
        }
    };
    match (a, b) {
        (Content::Seq(xs), Content::Seq(ys)) => {
            if xs.len() != ys.len() {
                out.push(format!(
                    "{}: length {} != {}",
                    label(path),
                    xs.len(),
                    ys.len()
                ));
            }
            for (i, (x, y)) in xs.iter().zip(ys.iter()).enumerate() {
                diff_content(x, y, &format!("{path}[{i}]"), out);
            }
        }
        (Content::Map(xs), Content::Map(ys)) => {
            fn lookup(entries: &[(String, Content)]) -> Vec<(&str, &Content)> {
                let mut m: Vec<(&str, &Content)> =
                    entries.iter().map(|(k, v)| (k.as_str(), v)).collect();
                m.sort_by_key(|(k, _)| *k);
                m
            }
            let (xs, ys) = (lookup(xs), lookup(ys));
            let (mut i, mut j) = (0, 0);
            while i < xs.len() || j < ys.len() {
                match (xs.get(i), ys.get(j)) {
                    (Some((kx, vx)), Some((ky, vy))) if kx == ky => {
                        let sub = if path.is_empty() {
                            (*kx).to_string()
                        } else {
                            format!("{path}.{kx}")
                        };
                        diff_content(vx, vy, &sub, out);
                        i += 1;
                        j += 1;
                    }
                    (Some((kx, _)), Some((ky, _))) if kx < ky => {
                        out.push(format!("{}: key '{kx}' only on the left", label(path)));
                        i += 1;
                    }
                    (Some(_), Some((ky, _))) => {
                        out.push(format!("{}: key '{ky}' only on the right", label(path)));
                        j += 1;
                    }
                    (Some((kx, _)), None) => {
                        out.push(format!("{}: key '{kx}' only on the left", label(path)));
                        i += 1;
                    }
                    (None, Some((ky, _))) => {
                        out.push(format!("{}: key '{ky}' only on the right", label(path)));
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
        _ => {
            let (mut ra, mut rb) = (String::new(), String::new());
            write_canonical(a, &mut ra);
            write_canonical(b, &mut rb);
            if ra != rb {
                out.push(format!("{}: {ra} != {rb}", label(path)));
            }
        }
    }
}

fn write_canonical(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_str(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            let mut sorted: Vec<&(String, Content)> = entries.iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            out.push('{');
            for (i, (k, v)) in sorted.into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(k, out);
                out.push(':');
                write_canonical(v, out);
            }
            out.push('}');
        }
    }
}

/// Matches the vendored `serde_json` float rendering so values hash the
/// same whether derived in-process or re-parsed from a cache file.
fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e16 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn map_keys_are_sorted_recursively() {
        let inner = Content::Map(vec![
            ("z".into(), Content::U64(1)),
            ("a".into(), Content::U64(2)),
        ]);
        let outer = Content::Map(vec![
            ("beta".into(), inner.clone()),
            ("alpha".into(), Content::Bool(true)),
        ]);
        let mut out = String::new();
        write_canonical(&outer, &mut out);
        assert_eq!(out, r#"{"alpha":true,"beta":{"a":2,"z":1}}"#);
    }

    #[test]
    fn field_order_does_not_change_digest() {
        let forward = Content::Map(vec![
            ("size_bytes".into(), Content::U64(2048)),
            ("assoc".into(), Content::U64(4)),
        ]);
        let reversed = Content::Map(vec![
            ("assoc".into(), Content::U64(4)),
            ("size_bytes".into(), Content::U64(2048)),
        ]);
        let (mut a, mut b) = (String::new(), String::new());
        write_canonical(&forward, &mut a);
        write_canonical(&reversed, &mut b);
        assert_eq!(a, b);
        assert_eq!(fnv1a_64(a.as_bytes()), fnv1a_64(b.as_bytes()));
    }

    #[test]
    fn config_digest_is_stable_across_clones_and_runs() {
        let a = canonical_digest(&SimConfig::default());
        let b = canonical_digest(&SimConfig::default().clone());
        assert_eq!(a, b);
    }

    #[test]
    fn config_digest_distinguishes_configs() {
        let base = SimConfig::default();
        let mut bigger = SimConfig::default();
        bigger.icache.size_bytes = 4096;
        assert_ne!(canonical_digest(&base), canonical_digest(&bigger));
    }

    #[test]
    fn floats_render_like_serde_json() {
        let mut out = String::new();
        write_canonical(
            &Content::Seq(vec![
                Content::F64(1.0),
                Content::F64(0.47),
                Content::F64(f64::NAN),
            ]),
            &mut out,
        );
        assert_eq!(out, "[1.0,0.47,null]");
    }
}
