//! Time-sliced execution of a single long run.
//!
//! PR 4's snapshot layer proved that pausing is *computation-neutral*:
//! `run_until(a)` then `run_until(b)` performs the identical sequence of
//! operations — including every f64 — as one `run_until(b)`, and
//! [`Machine::resume`] reconstructs a paused machine bit-identically.
//! This module builds on that guarantee to cut one long run into K
//! *slices* that can execute on K cores:
//!
//! 1. A **forward pass** ([`plan_at`] for explicit boundaries,
//!    [`plan_auto`] for evenly spaced adaptive cuts) simulates the run
//!    once, capturing a [`Snapshot`] at each pause boundary. The
//!    snapshots plus the `run_until` targets that produced them form a
//!    [`SlicePlan`].
//! 2. Each slice ([`run_slice`]) resumes from its entry snapshot and
//!    replays `run_until` with the *same target* the forward pass used.
//!    Because pauses are neutral and resume is exact, slice *i* must
//!    land on precisely the state the forward pass captured as entry
//!    *i+1* — so every slice is independently re-executable on any
//!    worker, in any order.
//! 3. [`stitch`] verifies the digest chain (each slice's exit state
//!    equals the next slice's entry snapshot) and extracts the final
//!    [`SimResult`] + state digest from the completing slice. Since all
//!    statistics accumulate inside the machine state, the completing
//!    slice's result *is* the whole run's result — bit-identical to a
//!    monolithic `run()`.
//!
//! Why `run_until` boundaries are safe cut points: the phase machine
//! freezes all in-flight loop state into the [`Phase`] variant itself
//! (mid-backup block counts, the growing backup window, recharge
//! progress), so a pause can land *inside* an outage without perturbing
//! the operation sequence. The slice executor replays the forward
//! pass's exact target rather than the captured entry cycle, because a
//! machine paused mid-backup reports the cycle the backup *started* at;
//! re-targeting that cycle would pause in `Phase::Run` before the
//! backup ever began. Replaying the original target reproduces the
//! original pause point exactly.
//!
//! The forward pass itself is a full simulation — state at a boundary
//! requires every cycle before it — so a *cold* sliced run cannot beat
//! the monolithic run. The wins are (a) a self-verifying execution
//! (every slice's landing is digest-checked against the plan) and
//! (b) plans are serializable: a cached plan turns every later run of
//! the same point into K independent jobs of ~1/K the work each (see
//! `ehs_bench::slice`).

use ehs_energy::PowerTrace;
use ehs_isa::Program;
use serde::{Deserialize, Serialize};

use crate::machine::{Machine, RunStatus, SimError};
use crate::result::SimResult;
use crate::snapshot::{Snapshot, SnapshotError};
use crate::SimConfig;

/// A planned K-way cut of one run: K entry snapshots plus the
/// `run_until` targets that link them.
///
/// `entries[0]` is the fresh (cycle-0) machine; `targets[i]` is the
/// pause target that, applied to a machine in state `entries[i]`,
/// produces exactly `entries[i + 1]`. The final slice (`entries[K-1]`)
/// has no target: it runs to completion.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlicePlan {
    /// Slice-entry snapshots, in execution order.
    pub entries: Vec<Snapshot>,
    /// `run_until` targets; `targets.len() == entries.len() - 1`.
    pub targets: Vec<u64>,
}

impl SlicePlan {
    /// Number of slices in the plan (at least 1).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the plan is degenerate (no entries at all — an invalid
    /// plan; a valid single-slice plan has `len() == 1`).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Structural sanity checks for plans loaded from untrusted storage
    /// (the identity digests inside each snapshot are still verified by
    /// [`Machine::resume`] when a slice runs).
    pub fn validate(&self) -> Result<(), SliceError> {
        if self.entries.is_empty() {
            return Err(SliceError::BadPlan("plan has no entry snapshots".into()));
        }
        if self.targets.len() + 1 != self.entries.len() {
            return Err(SliceError::BadPlan(format!(
                "{} entries need {} targets, found {}",
                self.entries.len(),
                self.entries.len() - 1,
                self.targets.len()
            )));
        }
        let first = &self.entries[0];
        for (i, e) in self.entries.iter().enumerate().skip(1) {
            if e.program_digest != first.program_digest || e.trace_digest != first.trace_digest {
                return Err(SliceError::BadPlan(format!(
                    "entry {i} identifies a different program/trace than entry 0"
                )));
            }
            if e.cycle < self.entries[i - 1].cycle {
                return Err(SliceError::BadPlan(format!(
                    "entry {i} at cycle {} precedes entry {} at cycle {}",
                    e.cycle,
                    i - 1,
                    self.entries[i - 1].cycle
                )));
            }
        }
        Ok(())
    }

    /// Serializes the plan to JSON (for `ehs_bench`'s cut cache).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("slice plan serialization cannot fail")
    }

    /// Parses a plan from JSON and validates its structure.
    ///
    /// # Errors
    ///
    /// [`SliceError::BadPlan`] on malformed JSON or inconsistent
    /// entry/target counts.
    pub fn from_json(json: &str) -> Result<SlicePlan, SliceError> {
        let plan: SlicePlan = serde_json::from_str(json)
            .map_err(|e| SliceError::BadPlan(format!("bad plan JSON: {e}")))?;
        plan.validate()?;
        Ok(plan)
    }
}

/// Everything a completed forward pass knows: the plan, plus the
/// monolithic result and final state digest it computed along the way
/// (the ground truth sliced execution is verified against).
#[derive(Debug)]
pub struct ForwardPass {
    /// The cut plan.
    pub plan: SlicePlan,
    /// The full-run result (the forward pass runs to completion).
    pub result: SimResult,
    /// `state_digest` of the completed machine.
    pub final_digest: u64,
}

/// What one slice produced.
#[derive(Debug, Clone)]
pub enum SliceOutcome {
    /// A non-final slice reached its pause target; `exit_digest` must
    /// equal the next entry snapshot's digest.
    Boundary {
        /// `state_digest` of the machine at the pause.
        exit_digest: u64,
    },
    /// The program halted (expected only for the final slice).
    Completed {
        /// Final run statistics (cumulative — the whole run's result).
        result: Box<SimResult>,
        /// `state_digest` of the completed machine.
        exit_digest: u64,
    },
}

/// A verified, stitched sliced run.
#[derive(Debug, Clone)]
pub struct Stitched {
    /// The final result, bit-identical to a monolithic run's.
    pub result: SimResult,
    /// The final machine state digest.
    pub state_digest: u64,
}

/// Why slicing failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SliceError {
    /// The plan (or the boundary list that would build one) is
    /// structurally invalid.
    BadPlan(String),
    /// An entry snapshot could not be resumed.
    Snapshot(SnapshotError),
    /// The underlying simulation failed.
    Sim(SimError),
    /// A slice's exit state does not match the next slice's entry — the
    /// equivalence guarantee is broken (or the plan is stale).
    DigestMismatch {
        /// Index of the offending slice.
        slice: usize,
        /// Digest the plan's next entry snapshot expects.
        expected: u64,
        /// Digest the slice actually exited with.
        found: u64,
    },
    /// A non-final slice ran to completion (the plan's boundaries
    /// disagree with the program's actual length).
    ShortRun {
        /// Index of the offending slice.
        slice: usize,
    },
    /// The final slice paused instead of completing.
    NotCompleted {
        /// Index of the offending slice.
        slice: usize,
    },
}

impl std::fmt::Display for SliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SliceError::BadPlan(msg) => write!(f, "invalid slice plan: {msg}"),
            SliceError::Snapshot(e) => write!(f, "slice entry snapshot: {e}"),
            SliceError::Sim(e) => write!(f, "slice simulation: {e}"),
            SliceError::DigestMismatch {
                slice,
                expected,
                found,
            } => write!(
                f,
                "slice {slice} exited with state digest {found:016x}, \
                 but the next entry expects {expected:016x}"
            ),
            SliceError::ShortRun { slice } => {
                write!(f, "non-final slice {slice} ran to completion")
            }
            SliceError::NotCompleted { slice } => {
                write!(f, "final slice {slice} paused instead of completing")
            }
        }
    }
}

impl std::error::Error for SliceError {}

impl From<SnapshotError> for SliceError {
    fn from(e: SnapshotError) -> SliceError {
        SliceError::Snapshot(e)
    }
}

impl From<SimError> for SliceError {
    fn from(e: SimError) -> SliceError {
        SliceError::Sim(e)
    }
}

/// Forward pass at explicit, strictly increasing cycle boundaries.
///
/// Runs the machine once, pausing at each boundary and capturing the
/// entry snapshot. Boundaries at or beyond the program's completion are
/// dropped (the plan simply has fewer slices). Unlike [`plan_auto`],
/// this does *not* run past the last boundary, so it carries no
/// [`ForwardPass::result`]; it exists for callers (tests, the verify
/// oracle) that choose their own cut cycles.
///
/// # Errors
///
/// [`SliceError::BadPlan`] for an empty/non-increasing/zero boundary
/// list, [`SliceError::Sim`] if the run fails before the last boundary.
pub fn plan_at(
    cfg: &SimConfig,
    program: &Program,
    trace: &PowerTrace,
    boundaries: &[u64],
) -> Result<SlicePlan, SliceError> {
    if boundaries.is_empty() {
        return Err(SliceError::BadPlan("no boundaries given".into()));
    }
    if boundaries[0] == 0 || boundaries.windows(2).any(|w| w[0] >= w[1]) {
        return Err(SliceError::BadPlan(
            "boundaries must be strictly increasing and nonzero".into(),
        ));
    }
    let mut machine = Machine::with_trace(cfg.clone(), program, trace.clone());
    let mut entries = vec![machine.snapshot(program)];
    let mut targets = Vec::new();
    for &b in boundaries {
        match machine.run_until(b)? {
            RunStatus::Paused => {
                entries.push(machine.snapshot(program));
                targets.push(b);
            }
            RunStatus::Completed(_) => break,
        }
    }
    Ok(SlicePlan { entries, targets })
}

/// Forward pass with adaptive, evenly spaced cuts: runs to completion,
/// snapshotting every `grain` cycles, and thins the retained set (drop
/// every other cut, double the spacing) whenever it would exceed
/// `2 * max_slices` — so a run of *unknown* length ends with between
/// `max_slices` and `max_slices / 2` evenly spaced slices without ever
/// holding more than `2 * max_slices` snapshots.
///
/// Thinning is sound because pausing is neutral: dropping an
/// intermediate pause point leaves `resume(entries[i]) +
/// run_until(targets[i])` landing on exactly `entries[i + 1]`, whether
/// or not the forward pass paused in between.
///
/// # Errors
///
/// [`SliceError::BadPlan`] for `max_slices == 0` or `grain == 0`,
/// [`SliceError::Sim`] if the run fails.
pub fn plan_auto(
    cfg: &SimConfig,
    program: &Program,
    trace: &PowerTrace,
    max_slices: usize,
    grain: u64,
) -> Result<ForwardPass, SliceError> {
    if max_slices == 0 {
        return Err(SliceError::BadPlan("max_slices must be at least 1".into()));
    }
    if grain == 0 {
        return Err(SliceError::BadPlan("grain must be at least 1".into()));
    }
    let mut machine = Machine::with_trace(cfg.clone(), program, trace.clone());
    let mut entries = vec![machine.snapshot(program)];
    let mut targets: Vec<u64> = Vec::new();
    let mut g = grain;
    let (result, final_digest) = loop {
        // Pause targets advance from the machine's *actual* cycle, not
        // an accumulated schedule, so overshooting pause points (backup
        // windows are indivisible) cannot produce degenerate slices.
        let target = machine.cycle().saturating_add(g);
        match machine.run_until(target)? {
            RunStatus::Paused => {
                entries.push(machine.snapshot(program));
                targets.push(target);
                if entries.len() >= 2 * max_slices {
                    thin(&mut entries, &mut targets);
                    g = g.saturating_mul(2);
                }
            }
            RunStatus::Completed(r) => break (*r, machine.state_digest(program)),
        }
    };
    while entries.len() > max_slices {
        thin(&mut entries, &mut targets);
    }
    Ok(ForwardPass {
        plan: SlicePlan { entries, targets },
        result,
        final_digest,
    })
}

/// Drops every other cut: keeps entries 0, 2, 4, … and rebinds each
/// kept entry to the target that produced it. Strictly reduces any
/// plan with two or more entries.
fn thin(entries: &mut Vec<Snapshot>, targets: &mut Vec<u64>) {
    let kept_entries: Vec<Snapshot> = entries.iter().step_by(2).cloned().collect();
    // `targets[i]` produced `entries[i + 1]`; a kept entry at old index
    // j (j > 0) keeps old target j - 1.
    let kept_targets: Vec<u64> = (1..entries.len())
        .filter(|j| j % 2 == 0)
        .map(|j| targets[j - 1])
        .collect();
    *entries = kept_entries;
    *targets = kept_targets;
}

/// Executes slice `index` of a plan: resumes its entry snapshot and
/// replays the forward pass's pause target (final slice: runs to
/// completion).
///
/// # Errors
///
/// [`SliceError::BadPlan`] for an out-of-range index,
/// [`SliceError::Snapshot`] if the entry does not match
/// `program`/`trace`, [`SliceError::Sim`] if the simulation fails.
pub fn run_slice(
    plan: &SlicePlan,
    index: usize,
    program: &Program,
    trace: &PowerTrace,
) -> Result<SliceOutcome, SliceError> {
    let entry = plan
        .entries
        .get(index)
        .ok_or_else(|| SliceError::BadPlan(format!("slice {index} of {}", plan.len())))?;
    let mut machine = Machine::resume(entry, program, trace.clone())?;
    if index + 1 < plan.entries.len() {
        match machine.run_until(plan.targets[index])? {
            RunStatus::Paused => Ok(SliceOutcome::Boundary {
                exit_digest: machine.state_digest(program),
            }),
            RunStatus::Completed(result) => Ok(SliceOutcome::Completed {
                result,
                exit_digest: machine.state_digest(program),
            }),
        }
    } else {
        let result = machine.run()?;
        Ok(SliceOutcome::Completed {
            result: Box::new(result),
            exit_digest: machine.state_digest(program),
        })
    }
}

/// Verifies the digest chain and extracts the final result.
///
/// Every non-final slice must have paused with an exit digest equal to
/// the next entry snapshot's digest; the final slice must have
/// completed. Because all statistics accumulate inside machine state,
/// the completing slice's [`SimResult`] *is* the stitched whole-run
/// result.
///
/// # Errors
///
/// [`SliceError::DigestMismatch`], [`SliceError::ShortRun`],
/// [`SliceError::NotCompleted`], or [`SliceError::BadPlan`] when
/// `outcomes` and the plan disagree in length.
pub fn stitch(plan: &SlicePlan, outcomes: &[SliceOutcome]) -> Result<Stitched, SliceError> {
    if outcomes.len() != plan.len() {
        return Err(SliceError::BadPlan(format!(
            "{} outcomes for a {}-slice plan",
            outcomes.len(),
            plan.len()
        )));
    }
    let last = outcomes.len() - 1;
    for (i, outcome) in outcomes.iter().enumerate().take(last) {
        match outcome {
            SliceOutcome::Boundary { exit_digest } => {
                let expected = plan.entries[i + 1].digest();
                if *exit_digest != expected {
                    return Err(SliceError::DigestMismatch {
                        slice: i,
                        expected,
                        found: *exit_digest,
                    });
                }
            }
            SliceOutcome::Completed { .. } => return Err(SliceError::ShortRun { slice: i }),
        }
    }
    match &outcomes[last] {
        SliceOutcome::Completed {
            result,
            exit_digest,
        } => Ok(Stitched {
            result: (**result).clone(),
            state_digest: *exit_digest,
        }),
        SliceOutcome::Boundary { .. } => Err(SliceError::NotCompleted { slice: last }),
    }
}

/// Runs every slice of a plan serially (in order) and stitches — the
/// single-threaded reference executor used by tests and the verify
/// oracle. `ehs_bench::slice` provides the parallel fan-out.
///
/// # Errors
///
/// Any error [`run_slice`] or [`stitch`] can produce.
pub fn run_sliced_serial(
    plan: &SlicePlan,
    program: &Program,
    trace: &PowerTrace,
) -> Result<Stitched, SliceError> {
    let outcomes = (0..plan.len())
        .map(|i| run_slice(plan, i, program, trace))
        .collect::<Result<Vec<_>, _>>()?;
    stitch(plan, &outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SimConfig, Program, PowerTrace) {
        let workload = ehs_workloads::by_name("gsmd").unwrap();
        let mut cfg = SimConfig::builder().build();
        cfg.nvm.size_bytes = 1 << 21; // small image -> cheap snapshots
        let trace = PowerTrace::constant_mw(30.0, 16);
        (cfg, workload.program(), trace)
    }

    fn monolithic(cfg: &SimConfig, program: &Program, trace: &PowerTrace) -> (SimResult, u64) {
        let mut m = Machine::with_trace(cfg.clone(), program, trace.clone());
        let r = m.run().expect("monolithic run completes");
        let d = m.state_digest(program);
        (r, d)
    }

    #[test]
    fn explicit_boundaries_stitch_bit_identically() {
        let (cfg, program, trace) = setup();
        let (truth, truth_digest) = monolithic(&cfg, &program, &trace);
        let plan = plan_at(&cfg, &program, &trace, &[40_000, 90_000, 160_000]).unwrap();
        assert!(plan.len() >= 2, "gsmd must outlive the first boundary");
        let stitched = run_sliced_serial(&plan, &program, &trace).unwrap();
        assert_eq!(stitched.result, truth);
        assert_eq!(stitched.state_digest, truth_digest);
    }

    #[test]
    fn auto_plan_matches_its_own_forward_pass_and_the_monolith() {
        let (cfg, program, trace) = setup();
        let (truth, truth_digest) = monolithic(&cfg, &program, &trace);
        let fwd = plan_auto(&cfg, &program, &trace, 4, 20_000).unwrap();
        assert_eq!(fwd.result, truth);
        assert_eq!(fwd.final_digest, truth_digest);
        assert!(fwd.plan.len() <= 4, "thinning must respect max_slices");
        let stitched = run_sliced_serial(&fwd.plan, &program, &trace).unwrap();
        assert_eq!(stitched.result, truth);
        assert_eq!(stitched.state_digest, truth_digest);
    }

    #[test]
    fn slices_can_run_out_of_order() {
        let (cfg, program, trace) = setup();
        let fwd = plan_auto(&cfg, &program, &trace, 4, 25_000).unwrap();
        let plan = &fwd.plan;
        let mut outcomes = vec![None; plan.len()];
        for i in (0..plan.len()).rev() {
            outcomes[i] = Some(run_slice(plan, i, &program, &trace).unwrap());
        }
        let outcomes: Vec<SliceOutcome> = outcomes.into_iter().map(Option::unwrap).collect();
        let stitched = stitch(plan, &outcomes).unwrap();
        assert_eq!(stitched.result, fwd.result);
        assert_eq!(stitched.state_digest, fwd.final_digest);
    }

    #[test]
    fn boundaries_past_completion_shrink_the_plan() {
        let (cfg, program, trace) = setup();
        let plan = plan_at(&cfg, &program, &trace, &[50_000, u64::MAX - 1]).unwrap();
        assert_eq!(plan.len(), 2, "the second boundary is past completion");
        let (truth, truth_digest) = monolithic(&cfg, &program, &trace);
        let stitched = run_sliced_serial(&plan, &program, &trace).unwrap();
        assert_eq!(stitched.result, truth);
        assert_eq!(stitched.state_digest, truth_digest);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let (cfg, program, trace) = setup();
        let plan = plan_at(&cfg, &program, &trace, &[60_000]).unwrap();
        let back = SlicePlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back.targets, plan.targets);
        assert_eq!(back.entries.len(), plan.entries.len());
        assert_eq!(back.entries[1].digest(), plan.entries[1].digest());
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let (cfg, program, trace) = setup();
        assert!(matches!(
            plan_at(&cfg, &program, &trace, &[]),
            Err(SliceError::BadPlan(_))
        ));
        assert!(matches!(
            plan_at(&cfg, &program, &trace, &[0, 10]),
            Err(SliceError::BadPlan(_))
        ));
        assert!(matches!(
            plan_at(&cfg, &program, &trace, &[20, 10]),
            Err(SliceError::BadPlan(_))
        ));
        assert!(matches!(
            plan_auto(&cfg, &program, &trace, 0, 100),
            Err(SliceError::BadPlan(_))
        ));
        let plan = plan_at(&cfg, &program, &trace, &[60_000]).unwrap();
        assert!(matches!(
            run_slice(&plan, plan.len(), &program, &trace),
            Err(SliceError::BadPlan(_))
        ));
        assert!(matches!(stitch(&plan, &[]), Err(SliceError::BadPlan(_))));
    }

    #[test]
    fn stitch_detects_a_corrupted_chain() {
        let (cfg, program, trace) = setup();
        let plan = plan_at(&cfg, &program, &trace, &[60_000]).unwrap();
        let mut outcomes: Vec<SliceOutcome> = (0..plan.len())
            .map(|i| run_slice(&plan, i, &program, &trace).unwrap())
            .collect();
        if let SliceOutcome::Boundary { exit_digest } = &mut outcomes[0] {
            *exit_digest ^= 1;
        }
        assert!(matches!(
            stitch(&plan, &outcomes),
            Err(SliceError::DigestMismatch { slice: 0, .. })
        ));
    }
}
