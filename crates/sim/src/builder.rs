//! Validating, chainable construction of [`SimConfig`]s.
//!
//! The preset constructor zoo (`baseline()` / `ipex_both()` / ...) grew
//! one ad-hoc name per paper configuration and still could not express
//! most sweep points without field-poking. The builder replaces it:
//!
//! ```
//! use ehs_sim::{Ipex, SimConfig};
//!
//! let cfg = SimConfig::builder()
//!     .ipex(Ipex::Both)
//!     .cache_kb(1)
//!     .prefetch_degree(4)
//!     .build();
//! assert_eq!(cfg.icache.size_bytes, 1024);
//! ```
//!
//! `build()` validates the whole configuration (cache geometry,
//! capacitor voltage ordering, IPEX parameters, prefetch settings) and
//! panics with a field-naming message on contradiction;
//! [`SimConfigBuilder::try_build`] returns the error instead.

use ehs_energy::{CapacitorConfig, EnergyModel};
use ehs_mem::{CacheConfig, NvmConfig, NvmTech, BLOCK_SIZE};
use ehs_prefetch::{DataPrefetcherKind, InstPrefetcherKind};
use ipex::{IpexConfig, PolicyConfig};

use crate::config::PrefetchMode;
use crate::trace::TraceMode;
use crate::SimConfig;

/// Which caches IPEX throttles — the paper's three comparison points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ipex {
    /// No IPEX anywhere: conventional, unthrottled prefetching (the
    /// paper's NVSRAMCache baseline).
    Off,
    /// IPEX on the data prefetcher only ("+IPEX(D)").
    Data,
    /// IPEX on both prefetchers — the headline configuration
    /// ("+IPEX(I+D)").
    Both,
}

/// An invalid [`SimConfig`] under construction, naming the offending
/// field(s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid SimConfig: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Chainable builder for [`SimConfig`]; start from
/// [`SimConfig::builder`], finish with [`build`](Self::build) or
/// [`try_build`](Self::try_build).
///
/// Defaults are the paper's Table-1 system with conventional
/// (unthrottled) prefetching — `SimConfig::builder().build()` is the
/// NVSRAMCache baseline.
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
    prefetch: bool,
    ipex: Ipex,
    ipex_cfg: IpexConfig,
    policy: Option<(Ipex, PolicyConfig)>,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder {
            cfg: SimConfig::default(),
            prefetch: true,
            ipex: Ipex::Off,
            ipex_cfg: IpexConfig::paper_default(),
            policy: None,
        }
    }
}

impl SimConfigBuilder {
    /// Disables both prefetchers ("NVSRAMCache (No Prefetcher)").
    /// Incompatible with [`ipex`](Self::ipex) other than [`Ipex::Off`].
    pub fn no_prefetch(mut self) -> Self {
        self.prefetch = false;
        self
    }

    /// Selects which caches IPEX throttles (default: [`Ipex::Off`]).
    pub fn ipex(mut self, which: Ipex) -> Self {
        self.ipex = which;
        self
    }

    /// Replaces the IPEX controller parameters applied to whichever
    /// caches [`ipex`](Self::ipex) selects (default:
    /// [`IpexConfig::paper_default`]).
    pub fn ipex_config(mut self, cfg: IpexConfig) -> Self {
        self.ipex_cfg = cfg;
        self
    }

    /// Throttles prefetching with an alternative [`PolicyConfig`]
    /// controller (predictive, hysteresis, static-degree) on the caches
    /// `which` selects — the same placement semantics as
    /// [`ipex`](Self::ipex): [`Ipex::Data`] leaves the instruction side
    /// conventional. Incompatible with a non-`Off` [`ipex`](Self::ipex)
    /// selection; for IPEX itself use `ipex()`, which keeps the
    /// dedicated config variant (and cache keys) unchanged.
    pub fn throttle_policy(mut self, which: Ipex, cfg: PolicyConfig) -> Self {
        self.policy = Some((which, cfg));
        self
    }

    /// Sets both caches to `kb` kilobytes (Table 1: 2 kB each).
    pub fn cache_kb(self, kb: u32) -> Self {
        self.cache_bytes(kb * 1024)
    }

    /// Sets both caches to `bytes` bytes.
    pub fn cache_bytes(mut self, bytes: u32) -> Self {
        self.cfg.icache.size_bytes = bytes;
        self.cfg.dcache.size_bytes = bytes;
        self
    }

    /// Sets both caches' associativity (Table 1: 4-way).
    pub fn cache_assoc(mut self, ways: u32) -> Self {
        self.cfg.icache.assoc = ways;
        self.cfg.dcache.assoc = ways;
        self
    }

    /// Replaces the ICache geometry wholesale.
    pub fn icache(mut self, cache: CacheConfig) -> Self {
        self.cfg.icache = cache;
        self
    }

    /// Replaces the DCache geometry wholesale.
    pub fn dcache(mut self, cache: CacheConfig) -> Self {
        self.cfg.dcache = cache;
        self
    }

    /// Prefetch-buffer entries per cache (Table 1: 4 × 16 B).
    pub fn prefetch_buffer_entries(mut self, entries: usize) -> Self {
        self.cfg.prefetch_buffer_entries = entries;
        self
    }

    /// Instruction prefetcher (Table 1 default: sequential).
    pub fn inst_prefetcher(mut self, kind: InstPrefetcherKind) -> Self {
        self.cfg.inst_prefetcher = kind;
        self
    }

    /// Data prefetcher (Table 1 default: stride).
    pub fn data_prefetcher(mut self, kind: DataPrefetcherKind) -> Self {
        self.cfg.data_prefetcher = kind;
        self
    }

    /// Natural prefetch degree (Table 1: 2).
    pub fn prefetch_degree(mut self, degree: u32) -> Self {
        self.cfg.prefetch_degree = degree;
        self
    }

    /// Replaces the main-memory parameters (Table 1: 16 MB ReRAM).
    pub fn nvm(mut self, nvm: NvmConfig) -> Self {
        self.cfg.nvm = nvm;
        self
    }

    /// Main memory of `size_bytes` in the given technology, with the
    /// documented capacity scaling for latency and energy.
    pub fn nvm_tech(mut self, tech: NvmTech, size_bytes: u64) -> Self {
        self.cfg.nvm = NvmConfig::for_tech(tech, size_bytes);
        self
    }

    /// Replaces the capacitor parameters (Table 1: 0.47 µF).
    pub fn capacitor(mut self, cap: CapacitorConfig) -> Self {
        self.cfg.capacitor = cap;
        self
    }

    /// The paper's capacitor electrical point at a different
    /// capacitance (the Fig. 22 sweep).
    pub fn capacitor_uf(mut self, uf: f64) -> Self {
        self.cfg.capacitor = CapacitorConfig::with_capacitance_uf(uf);
        self
    }

    /// Replaces the energy-model constants.
    pub fn energy(mut self, model: EnergyModel) -> Self {
        self.cfg.energy = model;
        self
    }

    /// Zero-cost backup/restore — "NVSRAMCache (ideal)" of Fig. 11.
    pub fn ideal_backup(mut self, ideal: bool) -> Self {
        self.cfg.ideal_backup = ideal;
        self
    }

    /// Fixed restore latency after reboot, cycles.
    pub fn restore_cycles(mut self, cycles: u64) -> Self {
        self.cfg.restore_cycles = cycles;
        self
    }

    /// Fixed backup latency on power failure, cycles.
    pub fn backup_base_cycles(mut self, cycles: u64) -> Self {
        self.cfg.backup_base_cycles = cycles;
        self
    }

    /// Safety limit on total simulated cycles.
    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.cfg.max_cycles = cycles;
        self
    }

    /// Instruction latencies `[alu, mul, div, branch, jump]`.
    pub fn latencies(mut self, latencies: [u64; 5]) -> Self {
        self.cfg.latencies = latencies;
        self
    }

    /// Event tracing mode (off by default).
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.cfg.trace = mode;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming every violated constraint.
    pub fn try_build(self) -> Result<SimConfig, ConfigError> {
        let SimConfigBuilder {
            mut cfg,
            prefetch,
            ipex,
            ipex_cfg,
            policy,
        } = self;

        let mut problems = Vec::new();
        if !prefetch && ipex != Ipex::Off {
            problems.push(
                "no_prefetch() conflicts with ipex(): IPEX throttles a prefetcher, so there \
                 must be one to throttle"
                    .to_owned(),
            );
        }
        if let Some((which, pc)) = &policy {
            if ipex != Ipex::Off {
                problems.push(
                    "throttle_policy() conflicts with ipex(): pick one controller per build \
                     (use throttle_policy() alone, or ipex() for IPEX itself)"
                        .to_owned(),
                );
            }
            if !prefetch && *which != Ipex::Off {
                problems.push(
                    "no_prefetch() conflicts with throttle_policy(): a throttling policy \
                     needs a prefetcher to throttle"
                        .to_owned(),
                );
            }
            if let Err(e) = pc.validate() {
                problems.push(format!("throttle_policy: {e}"));
            }
        }
        for (name, c) in [("icache", &cfg.icache), ("dcache", &cfg.dcache)] {
            if c.size_bytes < BLOCK_SIZE {
                problems.push(format!("{name}: smaller than one {BLOCK_SIZE}-byte block"));
            } else if c.assoc == 0 {
                problems.push(format!("{name}: associativity must be at least 1"));
            } else if c.size_bytes % (BLOCK_SIZE * c.assoc) != 0 {
                problems.push(format!(
                    "{name}: capacity must be a multiple of assoc * block size"
                ));
            } else if !c.num_sets().is_power_of_two() {
                problems.push(format!(
                    "{name}: number of sets must be a power of two (got {})",
                    c.num_sets()
                ));
            }
        }
        if cfg.prefetch_buffer_entries == 0 {
            problems.push("prefetch_buffer_entries: must be at least 1".to_owned());
        }
        if cfg.prefetch_degree == 0 {
            problems.push("prefetch_degree: must be at least 1".to_owned());
        }
        if cfg.max_cycles == 0 {
            problems.push("max_cycles: must be positive".to_owned());
        }
        if cfg.latencies.contains(&0) {
            problems.push("latencies: every instruction class takes at least one cycle".to_owned());
        }
        let cap = &cfg.capacitor;
        if cap.capacitance_uf <= 0.0 {
            problems.push("capacitor: capacitance must be positive".to_owned());
        }
        if !(cap.v_min < cap.v_backup && cap.v_backup < cap.v_on && cap.v_on <= cap.v_max) {
            problems.push(
                "capacitor: voltage levels must satisfy v_min < v_backup < v_on <= v_max"
                    .to_owned(),
            );
        }
        if ipex != Ipex::Off {
            if ipex_cfg.threshold_count == 0 {
                problems.push("ipex_config: threshold_count must be at least 1".to_owned());
            }
            if ipex_cfg.initial_degree == 0 || ipex_cfg.max_degree < ipex_cfg.initial_degree {
                problems.push(
                    "ipex_config: need 1 <= initial_degree <= max_degree for the degree ladder"
                        .to_owned(),
                );
            }
            if ipex_cfg.voltage_step_v <= 0.0 {
                problems.push("ipex_config: voltage_step_v must be positive".to_owned());
            }
        }
        if !problems.is_empty() {
            return Err(ConfigError(problems.join("; ")));
        }

        let (inst_mode, data_mode) = if !prefetch {
            (PrefetchMode::Off, PrefetchMode::Off)
        } else if let Some((which, pc)) = policy {
            match which {
                Ipex::Off => (PrefetchMode::Conventional, PrefetchMode::Conventional),
                Ipex::Data => (PrefetchMode::Conventional, PrefetchMode::Policy(pc)),
                Ipex::Both => (PrefetchMode::Policy(pc), PrefetchMode::Policy(pc)),
            }
        } else {
            match ipex {
                Ipex::Off => (PrefetchMode::Conventional, PrefetchMode::Conventional),
                Ipex::Data => (PrefetchMode::Conventional, PrefetchMode::Ipex(ipex_cfg)),
                Ipex::Both => (PrefetchMode::Ipex(ipex_cfg), PrefetchMode::Ipex(ipex_cfg)),
            }
        };
        cfg.inst_mode = inst_mode;
        cfg.data_mode = data_mode;
        Ok(cfg)
    }

    /// Validates and produces the configuration.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if any constraint is
    /// violated; use [`try_build`](Self::try_build) to handle the error.
    pub fn build(self) -> SimConfig {
        match self.try_build() {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_is_the_baseline() {
        let cfg = SimConfig::builder().build();
        assert_eq!(cfg.icache.size_bytes, 2048);
        assert!(matches!(cfg.inst_mode, PrefetchMode::Conventional));
        assert!(matches!(cfg.data_mode, PrefetchMode::Conventional));
        assert!(!cfg.ideal_backup);
    }

    #[test]
    fn ipex_placements() {
        let both = SimConfig::builder().ipex(Ipex::Both).build();
        assert!(matches!(both.inst_mode, PrefetchMode::Ipex(_)));
        assert!(matches!(both.data_mode, PrefetchMode::Ipex(_)));
        let data = SimConfig::builder().ipex(Ipex::Data).build();
        assert!(matches!(data.inst_mode, PrefetchMode::Conventional));
        assert!(matches!(data.data_mode, PrefetchMode::Ipex(_)));
    }

    #[test]
    fn no_prefetch_disables_both() {
        let cfg = SimConfig::builder().no_prefetch().build();
        assert!(!cfg.inst_mode.enabled());
        assert!(!cfg.data_mode.enabled());
    }

    #[test]
    fn chained_geometry() {
        let cfg = SimConfig::builder()
            .ipex(Ipex::Both)
            .cache_kb(1)
            .cache_assoc(2)
            .prefetch_buffer_entries(8)
            .prefetch_degree(4)
            .capacitor_uf(47.0)
            .ideal_backup(true)
            .build();
        assert_eq!(cfg.icache.size_bytes, 1024);
        assert_eq!(cfg.dcache.assoc, 2);
        assert_eq!(cfg.prefetch_buffer_entries, 8);
        assert_eq!(cfg.prefetch_degree, 4);
        assert!((cfg.capacitor.capacitance_uf - 47.0).abs() < 1e-12);
        assert!(cfg.ideal_backup);
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let err = SimConfig::builder().cache_bytes(100).try_build();
        assert!(err.is_err(), "non-power-of-two sets must be rejected");
        let err = SimConfig::builder()
            .no_prefetch()
            .ipex(Ipex::Both)
            .try_build()
            .unwrap_err();
        assert!(err.0.contains("no_prefetch"), "{err}");
        let err = SimConfig::builder().prefetch_degree(0).try_build();
        assert!(err.is_err());
    }

    #[test]
    fn custom_ipex_config_is_applied() {
        let ic = IpexConfig {
            voltage_step_v: 0.15,
            ..IpexConfig::paper_default()
        };
        let cfg = SimConfig::builder()
            .ipex(Ipex::Both)
            .ipex_config(ic)
            .build();
        match cfg.inst_mode {
            PrefetchMode::Ipex(c) => assert!((c.voltage_step_v - 0.15).abs() < 1e-12),
            other => panic!("expected Ipex mode, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid SimConfig")]
    fn build_panics_on_invalid() {
        SimConfig::builder().cache_assoc(0).build();
    }

    #[test]
    fn throttle_policy_placements() {
        use ipex::{HysteresisConfig, PredictiveConfig};
        let pc = PolicyConfig::Predictive(PredictiveConfig::paper_default());
        let both = SimConfig::builder().throttle_policy(Ipex::Both, pc).build();
        assert!(matches!(both.inst_mode, PrefetchMode::Policy(_)));
        assert!(matches!(both.data_mode, PrefetchMode::Policy(_)));
        let hc = PolicyConfig::Hysteresis(HysteresisConfig::paper_default());
        let data = SimConfig::builder().throttle_policy(Ipex::Data, hc).build();
        assert!(matches!(data.inst_mode, PrefetchMode::Conventional));
        assert!(matches!(data.data_mode, PrefetchMode::Policy(_)));
    }

    #[test]
    fn throttle_policy_conflicts_are_rejected() {
        use ipex::{PredictiveConfig, StaticDegreeConfig};
        let pc = PolicyConfig::Predictive(PredictiveConfig::paper_default());
        let err = SimConfig::builder()
            .ipex(Ipex::Both)
            .throttle_policy(Ipex::Both, pc)
            .try_build()
            .unwrap_err();
        assert!(
            err.0.contains("throttle_policy() conflicts with ipex()"),
            "{err}"
        );
        let err = SimConfig::builder()
            .no_prefetch()
            .throttle_policy(Ipex::Data, pc)
            .try_build()
            .unwrap_err();
        assert!(err.0.contains("no_prefetch()"), "{err}");
        let bad = PolicyConfig::StaticDegree(StaticDegreeConfig { degree: 0 });
        let err = SimConfig::builder()
            .throttle_policy(Ipex::Both, bad)
            .try_build()
            .unwrap_err();
        assert!(err.0.contains("throttle_policy:"), "{err}");
    }
}
