//! Versioned, canonically-serialized machine snapshots.
//!
//! A [`Snapshot`] captures the *complete* state of a [`Machine`] — core
//! registers, memory image (as a sparse delta against the program's
//! fresh load image), cache and prefetch-buffer contents, prefetcher
//! tables, IPEX throttle counters, NVM port/statistics state, capacitor
//! charge, energy accounting, event-count tallies, and the exact phase
//! of an in-flight outage — such that
//!
//! ```text
//! run_until(n); snapshot; resume; run()      ≡      run()
//! ```
//!
//! bit-for-bit: the final statistics, energy totals (f64-exact), memory
//! digest and emitted event counts of the split run equal those of the
//! uninterrupted run. Snapshots serialize to JSON through the vendored
//! `serde_json`, whose float writer is shortest-round-trip, so every
//! `f64` survives a save/load cycle exactly.
//!
//! The power trace and program text are deliberately *not* stored:
//! snapshots record their FNV-1a digests instead and [`Machine::resume`]
//! refuses to rebind a snapshot to different inputs. This keeps
//! checkpoint files small (the sweep engine writes one next to its disk
//! cache every N cycles) while still making stale-checkpoint reuse a
//! loud error rather than silent corruption.
//!
//! [`Machine`]: crate::Machine
//! [`Machine::resume`]: crate::Machine::resume

use ehs_energy::{EnergyBreakdown, PowerTrace};
use ehs_mem::{BufferState, CacheState, NvmState};
use ehs_prefetch::PrefetcherState;
use ipex::ThrottleState;
use serde::{Deserialize, Serialize};

use crate::canon;
use crate::machine::CycleMark;
use crate::result::SimStats;
use crate::trace::EventCounts;
use crate::SimConfig;

/// Snapshot format version. Bumped whenever [`Snapshot`]'s layout or the
/// machine's execution semantics change; [`Machine::resume`] rejects any
/// version [`Snapshot::migrate`] cannot bring forward, so stale
/// checkpoint files invalidate themselves.
///
/// History:
/// * **1** — initial format.
/// * **2** — throttling-policy API: `ithrottle`/`dthrottle` may carry
///   any [`ThrottleState`] kind (predictive, hysteresis, static-degree,
///   not just passthrough/IPEX) and `event_counts` gained
///   `policy_adapt`. v1 files are forward-compatible (the new
///   `ThrottleState` kinds are additive and `policy_adapt` defaults to
///   0), so migration is a version bump.
///
/// [`Machine::resume`]: crate::Machine::resume
pub const SNAPSHOT_VERSION: u32 = 2;

/// Where in the power-cycle state machine a snapshot was taken.
///
/// The machine's main loop is a phase machine precisely so that pauses —
/// and therefore snapshots — can land *inside* an outage: between two
/// dirty-block backup writes, or between two recharge ticks. Each
/// variant carries exactly the loop state the interrupted phase needs to
/// continue with an identical sequence of f64 operations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum Phase {
    /// Normal execution: fetching and retiring instructions.
    Run,
    /// Mid-backup: the JIT checkpoint is flushing dirty cache blocks.
    Backup {
        /// Dirty blocks still to write.
        remaining: u64,
        /// Backup window length so far (base + serialized NVM writes).
        backup_cycles: u64,
        /// `energy.backup_restore_nj` when the backup began, for the
        /// `BackupDone` event's energy delta.
        br_before: f64,
        /// Total dirty blocks this backup started with.
        dirty_total: u64,
    },
    /// Powered off, harvesting until the capacitor reaches `v_on`.
    Recharge,
}

/// One run of bytes that differ from the fresh program image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemRun {
    /// Address of the first byte in this run.
    pub addr: u32,
    /// The bytes, hex-encoded (two lowercase digits per byte).
    pub hex: String,
}

/// Complete serialized state of a [`Machine`](crate::Machine).
///
/// All fields are public: the golden-state regression corpus diffs
/// snapshots field-by-field, and the checkpointed trace shrinker
/// rebinds `trace_digest` when it proves prefix equivalence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version; must equal [`SNAPSHOT_VERSION`].
    pub version: u32,
    /// Full simulator configuration the machine was built with.
    pub cfg: SimConfig,
    /// FNV-1a digest of the fresh load image of the program.
    pub program_digest: u64,
    /// FNV-1a digest of the power trace (length + sample bits).
    pub trace_digest: u64,
    /// Simulated cycle (on + off time) at capture.
    pub cycle: u64,
    /// Power-cycle phase at capture.
    pub phase: Phase,
    /// Core register file.
    pub regs: [u32; 16],
    /// Core program counter.
    pub pc: u32,
    /// Whether the core has executed `halt`.
    pub halted: bool,
    /// Instructions retired by the functional core.
    pub executed: u64,
    /// Sparse memory delta against the fresh load image.
    pub mem_delta: Vec<MemRun>,
    /// FNV-1a digest of the full memory image at capture.
    pub mem_digest: u64,
    /// ICache lines, LRU order and dirty bits.
    pub icache: CacheState,
    /// DCache lines, LRU order and dirty bits.
    pub dcache: CacheState,
    /// ICache-side prefetch buffer entries.
    pub ibuf: BufferState,
    /// DCache-side prefetch buffer entries.
    pub dbuf: BufferState,
    /// Instruction prefetcher kind and tables.
    pub ipf: PrefetcherState,
    /// Data prefetcher kind and tables.
    pub dpf: PrefetcherState,
    /// ICache IPEX throttle state (or passthrough).
    pub ithrottle: ThrottleState,
    /// DCache IPEX throttle state (or passthrough).
    pub dthrottle: ThrottleState,
    /// NVM port scheduling and access counters.
    pub nvm: NvmState,
    /// Capacitor charge, nanojoules (exact).
    pub cap_energy_nj: f64,
    /// Simulation statistics so far.
    pub stats: SimStats,
    /// Energy accounting so far.
    pub energy: EnergyBreakdown,
    /// Dynamic energy charged since the last `advance_on`.
    pub pending_draw_nj: f64,
    /// Power-cycle summary mark (tracing deltas).
    pub mark: CycleMark,
    /// Event tallies emitted so far.
    pub event_counts: EventCounts,
    /// Injected fault: register index skipped on restore, if any.
    pub fault_skip_restore_reg: Option<u32>,
}

impl Snapshot {
    /// Serializes to pretty JSON (deterministic: struct-field order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization cannot fail")
    }

    /// Parses a snapshot from JSON.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::State`] on malformed JSON. Version and identity
    /// digests are checked later, by [`Machine::resume`](crate::Machine::resume).
    pub fn from_json(json: &str) -> Result<Snapshot, SnapshotError> {
        serde_json::from_str(json).map_err(|e| SnapshotError::State(format!("bad snapshot: {e}")))
    }

    /// FNV-1a digest of this snapshot's canonical JSON — a single `u64`
    /// that covers *all* machine state. Two machines with equal digests
    /// are in bit-identical states (modulo FNV collisions).
    pub fn digest(&self) -> u64 {
        canon::canonical_digest(self)
    }

    /// Brings a snapshot written by an older format version forward to
    /// [`SNAPSHOT_VERSION`]. Called by
    /// [`Machine::resume`](crate::Machine::resume) before any state is
    /// applied, so old checkpoint files keep working where the layouts
    /// allow it.
    ///
    /// Current migrations: v1 → v2 is a pure version bump — every v1
    /// field deserializes identically under v2 (`policy_adapt` defaults
    /// to 0, throttle-state kinds are additive).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::VersionMismatch`] for versions with no migration
    /// path (anything other than 1 or 2).
    pub fn migrate(mut self) -> Result<Snapshot, SnapshotError> {
        match self.version {
            SNAPSHOT_VERSION => Ok(self),
            1 => {
                self.version = 2;
                Ok(self)
            }
            found => Err(SnapshotError::VersionMismatch {
                found,
                expected: SNAPSHOT_VERSION,
            }),
        }
    }
}

/// Why a snapshot could not be resumed.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The snapshot was written by a different format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The snapshot was captured from a different program.
    ProgramMismatch {
        /// Digest recorded in the snapshot.
        found: u64,
        /// Digest of the program supplied to resume.
        expected: u64,
    },
    /// The snapshot was captured under a different power trace.
    TraceMismatch {
        /// Digest recorded in the snapshot.
        found: u64,
        /// Digest of the trace supplied to resume.
        expected: u64,
    },
    /// The snapshot's throttle state is for a different policy kind
    /// than the configuration builds.
    PolicyMismatch {
        /// Which path's throttle disagreed (`"instruction"` / `"data"`).
        which: &'static str,
        /// Policy kind recorded in the snapshot.
        found: &'static str,
        /// Policy kind the configuration builds.
        expected: &'static str,
    },
    /// A state component failed validation against the configuration.
    State(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "snapshot version {found} but this build reads {expected}"
                )
            }
            SnapshotError::ProgramMismatch { found, expected } => write!(
                f,
                "snapshot program digest {found:#018x} != supplied program {expected:#018x}"
            ),
            SnapshotError::TraceMismatch { found, expected } => write!(
                f,
                "snapshot trace digest {found:#018x} != supplied trace {expected:#018x}"
            ),
            SnapshotError::PolicyMismatch {
                which,
                found,
                expected,
            } => write!(
                f,
                "snapshot {which} throttle is a '{found}' policy but the \
                 configuration builds '{expected}'"
            ),
            SnapshotError::State(msg) => write!(f, "snapshot state invalid: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Identity digest of a power trace: FNV-1a over the sample count and
/// every sample's IEEE-754 bit pattern (little-endian). Bit-exact — two
/// traces digest equal iff every sample is the same f64.
pub fn trace_digest(trace: &PowerTrace) -> u64 {
    let mut bytes = Vec::with_capacity(8 + trace.len() * 8);
    bytes.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    for i in 0..trace.len() as u64 {
        bytes.extend_from_slice(&trace.power_mw_at(i).to_bits().to_le_bytes());
    }
    canon::fnv1a_64(&bytes)
}

/// Gaps of fewer than this many equal bytes between two differing runs
/// are absorbed into one [`MemRun`] (run-header overhead beats storing
/// a few redundant bytes).
const COALESCE_GAP: usize = 16;

/// Computes the sparse delta of `cur` against the fresh image `base`.
///
/// # Panics
///
/// Panics if the images differ in length (always equal in practice:
/// both are sized by `cfg.nvm.size_bytes`).
pub fn mem_delta(base: &[u8], cur: &[u8]) -> Vec<MemRun> {
    assert_eq!(base.len(), cur.len(), "image size mismatch");
    let mut runs = Vec::new();
    let mut i = 0usize;
    while let Some(start) = first_diff(base, cur, i) {
        // Extend the run until COALESCE_GAP consecutive equal bytes.
        let mut end = start + 1;
        let mut j = start + 1;
        while j < cur.len() && j < end + COALESCE_GAP {
            if base[j] != cur[j] {
                end = j + 1;
            }
            j += 1;
        }
        runs.push(MemRun {
            addr: start as u32,
            hex: hex_encode(&cur[start..end]),
        });
        i = end;
    }
    runs
}

/// Applies a delta produced by [`mem_delta`] via `write(addr, bytes)`.
///
/// # Errors
///
/// [`SnapshotError::State`] on malformed hex or out-of-range addresses.
pub fn apply_mem_delta(
    delta: &[MemRun],
    image_len: usize,
    mut write: impl FnMut(u32, &[u8]),
) -> Result<(), SnapshotError> {
    for run in delta {
        let bytes = hex_decode(&run.hex)
            .ok_or_else(|| SnapshotError::State(format!("bad hex in mem run @{:#x}", run.addr)))?;
        let end = run.addr as usize + bytes.len();
        if end > image_len {
            return Err(SnapshotError::State(format!(
                "mem run @{:#x}+{} exceeds the {image_len}-byte image",
                run.addr,
                bytes.len()
            )));
        }
        write(run.addr, &bytes);
    }
    Ok(())
}

/// First index `>= from` where the images differ, skipping equal spans
/// eight bytes at a time.
fn first_diff(base: &[u8], cur: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i < cur.len() && !i.is_multiple_of(8) {
        if base[i] != cur[i] {
            return Some(i);
        }
        i += 1;
    }
    while i + 8 <= cur.len() && base[i..i + 8] == cur[i..i + 8] {
        i += 8;
    }
    while i < cur.len() {
        if base[i] != cur[i] {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn hex_encode(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(DIGITS[(b >> 4) as usize] as char);
        s.push(DIGITS[(b & 0xf) as usize] as char);
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digit = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            _ => None,
        }
    };
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks_exact(2) {
        out.push((digit(pair[0])? << 4) | digit(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert!(hex_decode("0g").is_none());
        assert!(hex_decode("abc").is_none());
    }

    #[test]
    fn mem_delta_round_trip() {
        let base = vec![0u8; 4096];
        let mut cur = base.clone();
        cur[3] = 7;
        cur[5] = 9; // gap of 1: coalesced with the first run
        cur[100] = 1;
        cur[4000..4096].fill(0xaa); // run to the very end
        let delta = mem_delta(&base, &cur);
        assert_eq!(delta.len(), 3, "{delta:?}");
        assert_eq!(delta[0].addr, 3);
        let mut rebuilt = base.clone();
        apply_mem_delta(&delta, rebuilt.len(), |addr, bytes| {
            rebuilt[addr as usize..addr as usize + bytes.len()].copy_from_slice(bytes);
        })
        .unwrap();
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn mem_delta_of_identical_images_is_empty() {
        let img = vec![42u8; 1 << 16];
        assert!(mem_delta(&img, &img).is_empty());
    }

    #[test]
    fn delta_out_of_range_is_rejected() {
        let delta = vec![MemRun {
            addr: 10,
            hex: "aabb".into(),
        }];
        assert!(apply_mem_delta(&delta, 11, |_, _| {}).is_err());
    }

    #[test]
    fn trace_digest_is_bit_sensitive() {
        let a = PowerTrace::from_samples_mw(vec![1.0, 2.0, 3.0]);
        let b = PowerTrace::from_samples_mw(vec![1.0, 2.0, f64::from_bits(3.0f64.to_bits() + 1)]);
        let c = PowerTrace::from_samples_mw(vec![1.0, 2.0, 3.0]);
        assert_ne!(trace_digest(&a), trace_digest(&b));
        assert_eq!(trace_digest(&a), trace_digest(&c));
    }
}
