//! The simulated machine and its main loop.

use ehs_energy::{mw_to_nj_per_cycle, Capacitor, EnergyBreakdown, PowerTrace};
use ehs_isa::{ExecClass, ExecError, Interpreter, Program};
use ehs_mem::{block_of, Cache, InsertOutcome, Nvm, Persist, PrefetchBuffer, ReadReason};
use ehs_prefetch::{AccessEvent, AccessOutcome, AnyPrefetcher, Prefetcher};
use ipex::AnyPolicy;

use serde::{Deserialize, Serialize};

use crate::config::{PrefetchMode, CYCLES_PER_TRACE_SAMPLE};
use crate::snapshot::{self, Phase, Snapshot, SnapshotError, SNAPSHOT_VERSION};
use crate::trace::{EventCounts, PathId, SimEvent, TraceSink, Tracer};
use crate::{SimConfig, SimResult, SimStats};

/// Volatile register state checkpointed to NVFFs on every outage:
/// 16 × 32-bit registers plus the 32-bit PC. Each path's throttling
/// policy adds its own [`AnyPolicy::nvff_bits`] on top (64 for IPEX's
/// `Rthrottled` + `Rtotal`, 4096 for the predictive policy's tables).
const CORE_NVFF_BITS: u32 = 16 * 32 + 32;

/// Why a simulation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configured cycle budget ran out (e.g. the harvested power can
    /// never recharge the capacitor).
    CycleLimit {
        /// The budget that was exhausted.
        max_cycles: u64,
    },
    /// The program faulted.
    Exec(ExecError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimit { max_cycles } => {
                write!(f, "simulation exceeded the {max_cycles}-cycle budget")
            }
            SimError::Exec(e) => write!(f, "program fault: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> SimError {
        SimError::Exec(e)
    }
}

/// Deliberate consistency faults, injected for verification only.
///
/// The `ehs-verify` crate uses this to prove that its differential
/// oracle and trace shrinker actually catch crash-consistency bugs: a
/// machine configured to skip one register on restore must diverge from
/// the golden interpreter, and the fuzzer must minimize the triggering
/// power trace. A default (all-`None`) plan leaves behaviour untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// After each restore, zero this register instead of restoring it
    /// (writes to `zero` are discarded, so pick any other register).
    pub skip_restore_reg: Option<ehs_isa::Reg>,
}

/// One side (instruction or data) of the memory hierarchy.
struct MemPath {
    cache: Cache,
    buf: PrefetchBuffer,
    /// Enum-dispatched so the per-access `observe` call in the hot loop
    /// inlines instead of going through a vtable (see `ehs-prefetch`'s
    /// `any` module and the `dispatch` micro-benchmark).
    pf: AnyPrefetcher,
    throttle: AnyPolicy,
}

impl MemPath {
    /// Wipes all volatile state; returns how many unused prefetch-buffer
    /// entries were lost.
    fn power_loss(&mut self) -> u64 {
        self.cache.checkpoint_flush(); // ICache is never dirty; DCache flush counted by caller
        self.cache.power_loss();
        let lost = self.buf.power_loss() as u64;
        self.pf.power_loss();
        self.throttle.on_power_failure();
        lost
    }
}

/// Did [`Machine::run_until`] reach its pause target or finish the
/// program?
#[derive(Debug, Clone)]
pub enum RunStatus {
    /// The program halted; here are the final statistics (boxed:
    /// `SimResult` dwarfs the `Paused` variant).
    Completed(Box<SimResult>),
    /// The pause target was reached; the machine can be snapshotted and
    /// the run continued (here or, via [`Machine::resume`], elsewhere).
    Paused,
}

/// Statistics snapshot at the start of the current power cycle, used to
/// compute [`SimEvent::PowerCycleSummary`] deltas. Only updated while
/// tracing is enabled. Part of [`Snapshot`] (summary deltas of a split
/// run must match an uninterrupted one), hence serializable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleMark {
    on_cycles: u64,
    off_cycles: u64,
    cache_nj: f64,
    memory_nj: f64,
    compute_nj: f64,
    backup_restore_nj: f64,
    /// Candidates seen by IPEX (issued + throttled, both paths).
    ipex_seen: u64,
    /// Candidates throttled by IPEX (both paths).
    ipex_throttled: u64,
}

/// The simulated energy-harvesting system.
///
/// Construct with [`Machine::new`] (default synthetic RFHome trace) or
/// [`Machine::with_trace`], then call [`Machine::run`].
pub struct Machine {
    cfg: SimConfig,
    interp: Interpreter,
    ipath: MemPath,
    dpath: MemPath,
    nvm: Nvm,
    cap: Capacitor,
    trace: PowerTrace,
    cycle: u64,
    stats: SimStats,
    energy: EnergyBreakdown,
    /// Dynamic energy charged since the last `advance_on`.
    pending_draw_nj: f64,
    /// Cached per-cycle leakage, nJ: (icache, dcache, core, nvm).
    leak_nj: (f64, f64, f64, f64),
    /// Scratch buffer for prefetch candidates.
    cand: Vec<u32>,
    /// Event tracing front end ([`TraceMode::Off`](crate::TraceMode) by
    /// default: a single disabled branch per emission site).
    tracer: Tracer,
    /// Power-cycle statistics mark for summary events.
    mark: CycleMark,
    /// Injected consistency faults (verification only; default none).
    fault: FaultPlan,
    /// Where in the power-cycle state machine execution currently is —
    /// persisted by [`Machine::snapshot`] so pauses can land mid-outage.
    phase: Phase,
    /// Per-[`ExecClass`] execute latency, indexed by
    /// [`ExecClass::index`] (pre-resolved from `cfg.latencies`).
    lat_by_class: [u64; ExecClass::COUNT],
    /// Per-[`ExecClass`] dynamic compute energy, nJ.
    nj_by_class: [f64; ExecClass::COUNT],
    /// Safe energy band for batched voltage observation: while the
    /// capacitor's stored energy stays strictly inside
    /// `(vwin_lo_nj, vwin_hi_nj)`, no IPEX threshold nor the backup
    /// trigger can cross, so the per-instruction voltage observation is
    /// provably a no-op and is skipped. Derived state (never
    /// snapshotted); an invalid band (`lo > hi`) forces the next
    /// instruction down the exact legacy observe path, which recomputes
    /// it. See [`Machine::recompute_voltage_window`].
    vwin_lo_nj: f64,
    vwin_hi_nj: f64,
    /// Verification hook: `true` pins the band invalid so every
    /// instruction performs the full legacy observation sequence.
    vwin_forced_off: bool,
    /// `true` when either path's throttling policy accumulates state on
    /// every observation ([`AnyPolicy::batched_observation_safe`] is
    /// `false`), in which case batching would change results and the
    /// exact per-instruction path is mandatory, not a hook.
    vwin_policy_exact: bool,
    /// Cached power-trace sample: harvesting proceeds at `hspan_rate`
    /// nJ/cycle over cycles `[hspan_start, hspan_end)`. Spares the hot
    /// loop a div+mod per instruction; spans outside the cached sample
    /// take the exact multi-sample walk (which refreshes the cache).
    /// Derived state, never snapshotted (`hspan_start == hspan_end`
    /// marks it empty).
    hspan_start: u64,
    hspan_end: u64,
    hspan_rate: f64,
}

impl Machine {
    /// Builds a machine over `program` with the standard synthetic
    /// RFHome trace ([`SimConfig::default_trace`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (invalid
    /// cache geometry, zero-entry prefetch buffer, bad capacitor
    /// ordering).
    pub fn new(cfg: SimConfig, program: &Program) -> Machine {
        Machine::with_trace(cfg, program, SimConfig::default_trace())
    }

    /// Builds a machine with an explicit power trace.
    ///
    /// # Panics
    ///
    /// See [`Machine::new`].
    pub fn with_trace(cfg: SimConfig, program: &Program, trace: PowerTrace) -> Machine {
        let build_path = |mode: &PrefetchMode, is_inst: bool| -> MemPath {
            let pf = match mode {
                PrefetchMode::Off => AnyPrefetcher::Null(ehs_prefetch::NullPrefetcher::new()),
                _ => {
                    if is_inst {
                        cfg.inst_prefetcher.build_any(cfg.prefetch_degree)
                    } else {
                        cfg.data_prefetcher.build_any(cfg.prefetch_degree)
                    }
                }
            };
            let throttle = match mode {
                PrefetchMode::Ipex(ic) => AnyPolicy::ipex(*ic),
                PrefetchMode::Policy(pc) => pc.build(),
                _ => AnyPolicy::Passthrough,
            };
            MemPath {
                cache: Cache::new(if is_inst { cfg.icache } else { cfg.dcache }),
                buf: PrefetchBuffer::new(cfg.prefetch_buffer_entries),
                pf,
                throttle,
            }
        };
        let ipath = build_path(&cfg.inst_mode, true);
        let dpath = build_path(&cfg.data_mode, false);
        let vwin_policy_exact = !ipath.throttle.batched_observation_safe()
            || !dpath.throttle.batched_observation_safe();
        let interp = Interpreter::with_mem_size(program, cfg.nvm.size_bytes as usize);
        // NVM standby power is gated: being nonvolatile, the array and
        // its periphery are powered only during transfers (charged per
        // access below). Idle leakage is caches + core only.
        let leak_nj = (
            cfg.energy.cache_leak_nj_per_cycle(cfg.icache.size_bytes),
            cfg.energy.cache_leak_nj_per_cycle(cfg.dcache.size_bytes),
            cfg.energy.core_leak_nj_per_cycle(),
            mw_to_nj_per_cycle(cfg.nvm.leak_mw),
        );
        // Pre-resolve the per-class latency/energy tables the hot loop
        // indexes by `ExecClass::index` (Load/Store/Halt execute in 1
        // cycle; their memory time is modelled by the cache path).
        let mut lat_by_class = [1u64; ExecClass::COUNT];
        lat_by_class[ExecClass::Alu.index()] = cfg.latencies[0];
        lat_by_class[ExecClass::Mul.index()] = cfg.latencies[1];
        lat_by_class[ExecClass::Div.index()] = cfg.latencies[2];
        lat_by_class[ExecClass::Branch.index()] = cfg.latencies[3];
        lat_by_class[ExecClass::Jump.index()] = cfg.latencies[4];
        let mut nj_by_class = [cfg.energy.compute.alu_nj; ExecClass::COUNT];
        nj_by_class[ExecClass::Mul.index()] = cfg.energy.compute.mul_nj;
        nj_by_class[ExecClass::Div.index()] = cfg.energy.compute.div_nj;
        nj_by_class[ExecClass::Load.index()] = cfg.energy.compute.mem_nj;
        nj_by_class[ExecClass::Store.index()] = cfg.energy.compute.mem_nj;
        Machine {
            interp,
            ipath,
            dpath,
            nvm: Nvm::new(cfg.nvm),
            cap: Capacitor::full(cfg.capacitor),
            trace,
            cycle: 0,
            stats: SimStats::default(),
            energy: EnergyBreakdown::new(),
            pending_draw_nj: 0.0,
            leak_nj,
            cand: Vec::with_capacity(8),
            tracer: Tracer::from_mode(&cfg.trace),
            mark: CycleMark::default(),
            fault: FaultPlan::default(),
            phase: Phase::Run,
            lat_by_class,
            nj_by_class,
            // Invalid band: the first instruction takes the full legacy
            // observe path, which computes the real band.
            vwin_lo_nj: f64::INFINITY,
            vwin_hi_nj: f64::NEG_INFINITY,
            vwin_forced_off: false,
            vwin_policy_exact,
            hspan_start: 0,
            hspan_end: 0,
            hspan_rate: 0.0,
            cfg,
        }
    }

    /// Verification/benchmark hook: `true` disables voltage-observation
    /// batching, reproducing the legacy per-instruction observe
    /// sequence exactly. Results must be bit-identical either way
    /// (regression-tested); default `false`.
    pub fn set_exhaustive_voltage_checks(&mut self, on: bool) {
        self.vwin_forced_off = on;
        self.vwin_lo_nj = f64::INFINITY;
        self.vwin_hi_nj = f64::NEG_INFINITY;
    }

    /// Verification/benchmark hook: disables (or re-enables) the
    /// interpreter's pre-decoded fast path; see
    /// [`ehs_isa::Interpreter::set_decode_cache_enabled`].
    pub fn set_decode_cache_enabled(&mut self, on: bool) {
        self.interp.set_decode_cache_enabled(on);
    }

    /// Installs a deliberate consistency fault (see [`FaultPlan`]).
    /// Verification tooling only; call before [`Machine::run`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// Replaces the tracer with one forwarding to `sink` (enables
    /// tracing regardless of the configured [`TraceMode`](crate::TraceMode)).
    /// Call before [`Machine::run`].
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        // Preserve tallies already accumulated (a resumed machine
        // carries the counts of the run's earlier leg).
        let counts = *self.tracer.counts();
        self.tracer = Tracer::with_sink(sink);
        self.tracer.restore_counts(counts);
    }

    /// Per-kind tallies of the events emitted so far (all zero when
    /// tracing is disabled).
    pub fn trace_counts(&self) -> &EventCounts {
        self.tracer.counts()
    }

    /// Current simulated cycle (on + off time).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current capacitor voltage.
    pub fn voltage(&self) -> f64 {
        self.cap.voltage()
    }

    /// Reads an architectural register of the simulated core — useful to
    /// check a workload's checksum (`a0`) after [`Machine::run`].
    pub fn reg(&self, r: ehs_isa::Reg) -> u32 {
        self.interp.reg(r)
    }

    /// A snapshot of the simulated core's full register file.
    pub fn registers(&self) -> [u32; 16] {
        self.interp.registers()
    }

    /// The simulated core's program counter.
    pub fn pc(&self) -> u32 {
        self.interp.pc()
    }

    /// FNV-1a digest of the simulated memory image (see
    /// [`ehs_isa::Interpreter::mem_digest`]).
    pub fn mem_digest(&self) -> u64 {
        self.interp.mem_digest()
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.stats.instructions
    }

    /// Runs the program to completion across power cycles.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] if the budget runs out before `halt`,
    /// [`SimError::Exec`] if the program faults.
    pub fn run(&mut self) -> Result<SimResult, SimError> {
        match self.run_until(u64::MAX)? {
            RunStatus::Completed(r) => Ok(*r),
            // Unreachable: max_cycles < u64::MAX errors out first, and
            // pausing requires cycle >= u64::MAX.
            RunStatus::Paused => unreachable!("run(u64::MAX) cannot pause"),
        }
    }

    /// Runs until the program halts or the simulated cycle counter
    /// reaches `target`, whichever comes first.
    ///
    /// Pausing is computation-neutral: `run_until(n)` followed by
    /// `run_until(m)` performs the *identical* sequence of operations —
    /// including every f64 — as a single `run_until(m)`, so statistics,
    /// energy and emitted events match bit-for-bit. A paused machine may
    /// pause mid-outage (between backup writes or recharge ticks); its
    /// exact phase is carried by [`Machine::snapshot`].
    ///
    /// Note `target` is a floor, not an exact stop cycle: the machine
    /// pauses at the first pause point at or after `target` (instruction
    /// latencies, backup windows and recharge ticks are indivisible).
    ///
    /// # Errors
    ///
    /// See [`Machine::run`].
    pub fn run_until(&mut self, target: u64) -> Result<RunStatus, SimError> {
        // The first power cycle starts implicitly (capacitor full); a
        // resumed machine keeps its restored count.
        if self.stats.power_cycles == 0 {
            self.stats.power_cycles = 1;
        }
        // The backup phase does not advance `cycle` until it completes,
        // so its pause check uses the growing window end instead; this
        // flag guarantees each call still makes progress (at least one
        // block write) even when that end is already past `target`.
        let mut wrote_block = false;
        let outcome = loop {
            match self.phase {
                Phase::Run => {
                    if self.interp.halted() {
                        break Ok(true);
                    }
                    if self.cycle >= self.cfg.max_cycles {
                        break Err(SimError::CycleLimit {
                            max_cycles: self.cfg.max_cycles,
                        });
                    }
                    if self.cycle >= target {
                        break Ok(false);
                    }
                    if let Err(e) = self.step_instruction() {
                        break Err(e);
                    }
                }
                Phase::Backup {
                    remaining,
                    backup_cycles,
                    br_before,
                    dirty_total,
                } => {
                    if wrote_block
                        && remaining > 0
                        && self.cycle.saturating_add(backup_cycles) >= target
                    {
                        break Ok(false);
                    }
                    if remaining > 0 {
                        // One dirty block: NVM writes serialize on the
                        // port, stretching the backup window.
                        let done = self.nvm.write(self.cycle + backup_cycles);
                        let w = self.cfg.nvm.block_write_nj();
                        self.energy.backup_restore_nj += w;
                        self.cap.consume_nj(w);
                        self.phase = Phase::Backup {
                            remaining: remaining - 1,
                            backup_cycles: done - self.cycle,
                            br_before,
                            dirty_total,
                        };
                        wrote_block = true;
                    } else {
                        self.finish_backup(backup_cycles, br_before, dirty_total);
                    }
                }
                Phase::Recharge => {
                    if self.cap.can_boot() {
                        self.reboot();
                    } else {
                        if self.cycle >= self.cfg.max_cycles {
                            self.stats.total_cycles = self.cycle;
                            break Err(SimError::CycleLimit {
                                max_cycles: self.cfg.max_cycles,
                            });
                        }
                        if self.cycle >= target {
                            break Ok(false);
                        }
                        // Harvest one trace-sample tick while off.
                        let idx = self.cycle / CYCLES_PER_TRACE_SAMPLE;
                        let boundary = (idx + 1) * CYCLES_PER_TRACE_SAMPLE;
                        let take = boundary - self.cycle;
                        self.cap
                            .harvest_nj(self.trace.harvest_nj_per_cycle(idx) * take as f64);
                        self.cycle = boundary;
                        self.stats.off_cycles += take;
                    }
                }
            }
        };
        if let Ok(true) = outcome {
            // The final (still-running) power cycle gets its rollup too.
            self.emit_power_cycle_summary();
        }
        self.tracer.flush();
        match outcome {
            Ok(true) => Ok(RunStatus::Completed(Box::new(self.result()))),
            Ok(false) => Ok(RunStatus::Paused),
            Err(e) => Err(e),
        }
    }

    /// The current power-cycle phase ([`Phase::Run`] unless paused
    /// mid-outage).
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Captures the complete machine state as a [`Snapshot`].
    ///
    /// `program` must be the program this machine was built with: the
    /// memory image is stored as a sparse delta against its fresh load
    /// image (and the program itself is recorded only as a digest).
    ///
    /// Meaningful at any pause point — after construction, after a
    /// paused [`Machine::run_until`] (including mid-backup and
    /// mid-recharge), or after completion.
    pub fn snapshot(&self, program: &Program) -> Snapshot {
        let fresh = Interpreter::with_mem_size(program, self.cfg.nvm.size_bytes as usize);
        let mem_delta = snapshot::mem_delta(fresh.mem(), self.interp.mem());
        Snapshot {
            version: SNAPSHOT_VERSION,
            cfg: self.cfg.clone(),
            program_digest: fresh.mem_digest(),
            trace_digest: snapshot::trace_digest(&self.trace),
            cycle: self.cycle,
            phase: self.phase,
            regs: self.interp.registers(),
            pc: self.interp.pc(),
            halted: self.interp.halted(),
            executed: self.interp.executed(),
            mem_delta,
            mem_digest: self.interp.mem_digest(),
            icache: self.ipath.cache.export_state(),
            dcache: self.dpath.cache.export_state(),
            ibuf: self.ipath.buf.export_state(),
            dbuf: self.dpath.buf.export_state(),
            ipf: Persist::export_state(&self.ipath.pf),
            dpf: Persist::export_state(&self.dpath.pf),
            ithrottle: self.ipath.throttle.export_state(),
            dthrottle: self.dpath.throttle.export_state(),
            nvm: self.nvm.export_state(),
            cap_energy_nj: self.cap.energy_nj(),
            stats: self.stats,
            energy: self.energy,
            pending_draw_nj: self.pending_draw_nj,
            mark: self.mark,
            event_counts: *self.tracer.counts(),
            fault_skip_restore_reg: self.fault.skip_restore_reg.map(|r| r.index() as u32),
        }
    }

    /// FNV-1a digest over the complete machine state (the canonical
    /// JSON of [`Machine::snapshot`]): the equality oracle the snapshot
    /// test suites compare split and uninterrupted runs with.
    pub fn state_digest(&self, program: &Program) -> u64 {
        self.snapshot(program).digest()
    }

    /// Reconstructs a machine from a snapshot, bit-identical to the one
    /// that captured it.
    ///
    /// `program` and `trace` must be the originals: both are validated
    /// against the digests recorded in the snapshot. Continuing the
    /// returned machine performs the identical operation sequence an
    /// uninterrupted run would, so results, energy totals (f64-exact)
    /// and event counts all match.
    ///
    /// Tracing restarts from the snapshot's [`EventCounts`] under the
    /// configured [`TraceMode`](crate::TraceMode) — but note that
    /// resuming with a JSONL file sink truncates the file (the events of
    /// the earlier leg live in the earlier process's file).
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the snapshot's version, program, trace, or
    /// any state component does not match this build / the supplied
    /// inputs.
    pub fn resume(
        snap: &Snapshot,
        program: &Program,
        trace: PowerTrace,
    ) -> Result<Machine, SnapshotError> {
        // Bring older-format snapshots forward (or reject them) before
        // any state is applied; see `Snapshot::migrate` for the history.
        let snap = &snap.clone().migrate()?;
        debug_assert_eq!(snap.version, SNAPSHOT_VERSION);
        let mut m = Machine::with_trace(snap.cfg.clone(), program, trace);
        let program_digest = m.interp.mem_digest();
        if snap.program_digest != program_digest {
            return Err(SnapshotError::ProgramMismatch {
                found: snap.program_digest,
                expected: program_digest,
            });
        }
        let trace_digest = snapshot::trace_digest(&m.trace);
        if snap.trace_digest != trace_digest {
            return Err(SnapshotError::TraceMismatch {
                found: snap.trace_digest,
                expected: trace_digest,
            });
        }

        let image_len = m.interp.mem().len();
        snapshot::apply_mem_delta(&snap.mem_delta, image_len, |addr, bytes| {
            m.interp.write_bytes(addr, bytes)
        })?;
        if m.interp.mem_digest() != snap.mem_digest {
            return Err(SnapshotError::State(
                "memory digest mismatch after applying the delta".into(),
            ));
        }
        m.interp
            .restore_state(snap.regs, snap.pc, snap.halted, snap.executed);

        m.ipath
            .cache
            .import_state(&snap.icache)
            .map_err(|e| SnapshotError::State(format!("icache: {e}")))?;
        m.dpath
            .cache
            .import_state(&snap.dcache)
            .map_err(|e| SnapshotError::State(format!("dcache: {e}")))?;
        m.ipath
            .buf
            .import_state(&snap.ibuf)
            .map_err(|e| SnapshotError::State(format!("ibuf: {e}")))?;
        m.dpath
            .buf
            .import_state(&snap.dbuf)
            .map_err(|e| SnapshotError::State(format!("dbuf: {e}")))?;

        for (state, path, which) in [
            (&snap.ipf, &mut m.ipath, "instruction"),
            (&snap.dpf, &mut m.dpath, "data"),
        ] {
            if state.kind_name() != path.pf.name() {
                return Err(SnapshotError::State(format!(
                    "{which} prefetcher is '{}' in the snapshot but the config builds '{}'",
                    state.kind_name(),
                    path.pf.name()
                )));
            }
            path.pf = Persist::from_state(state)
                .map_err(|e| SnapshotError::State(format!("{which} prefetcher: {e}")))?;
        }
        for (state, path, which) in [
            (&snap.ithrottle, &mut m.ipath, "instruction"),
            (&snap.dthrottle, &mut m.dpath, "data"),
        ] {
            if state.kind_name() != path.throttle.kind_name() {
                return Err(SnapshotError::PolicyMismatch {
                    which,
                    found: state.kind_name(),
                    expected: path.throttle.kind_name(),
                });
            }
            path.throttle = Persist::from_state(state)
                .map_err(|e| SnapshotError::State(format!("{which} throttle: {e}")))?;
        }

        m.nvm.import_state(&snap.nvm);
        let cap_max_nj = snap.cfg.capacitor.energy_at_nj(snap.cfg.capacitor.v_max);
        if !(snap.cap_energy_nj >= 0.0 && snap.cap_energy_nj <= cap_max_nj) {
            return Err(SnapshotError::State(format!(
                "capacitor energy {} nJ outside [0, {cap_max_nj}]",
                snap.cap_energy_nj
            )));
        }
        m.cap = Capacitor::with_energy_nj(snap.cfg.capacitor, snap.cap_energy_nj);

        m.cycle = snap.cycle;
        m.stats = snap.stats;
        m.energy = snap.energy;
        m.pending_draw_nj = snap.pending_draw_nj;
        m.mark = snap.mark;
        m.phase = snap.phase;
        m.tracer.restore_counts(snap.event_counts);
        m.fault.skip_restore_reg = match snap.fault_skip_restore_reg {
            None => None,
            Some(i) => Some(ehs_isa::Reg::from_index(i as usize).ok_or_else(|| {
                SnapshotError::State(format!("fault register index {i} out of range"))
            })?),
        };
        Ok(m)
    }

    /// Snapshot of all statistics so far.
    pub fn result(&self) -> SimResult {
        SimResult {
            stats: self.stats,
            energy: self.energy,
            icache: self.ipath.cache.stats(),
            dcache: self.dpath.cache.stats(),
            ibuf: self.ipath.buf.stats(),
            dbuf: self.dpath.buf.stats(),
            nvm: self.nvm.stats(),
            ipex_i: self.ipath.throttle.stats(),
            ipex_d: self.dpath.throttle.stats(),
        }
    }

    // ------------------------------------------------------------------
    // Core loop
    // ------------------------------------------------------------------

    fn step_instruction(&mut self) -> Result<(), SimError> {
        // Voltage monitor: IPEX threshold crossings (possibly reissuing
        // throttled prefetches, §5.1 extension) and the backup trigger.
        // Batched over the safe energy band: strictly inside
        // `(vwin_lo_nj, vwin_hi_nj)` the observation sequence below is
        // provably a no-op (every threshold comparison lands in the same
        // band it did when the band was computed), so it is skipped.
        // The comparison is written so an invalid band (lo > hi, the
        // NaN-free "recompute me" state) always takes the slow path.
        let e = self.cap.energy_nj();
        if !(e > self.vwin_lo_nj && e < self.vwin_hi_nj) {
            let v = self.cap.voltage();
            self.observe_voltage(true, v);
            self.observe_voltage(false, v);
            if self.cap.needs_backup() {
                // Enter the outage phases; the main loop drives them so
                // a pause (snapshot) can land mid-backup or mid-recharge.
                self.begin_outage();
                return Ok(());
            }
            self.recompute_voltage_window();
        }

        // Instruction fetch through the ICache.
        let pc = self.interp.pc();
        let fetch_cycles = self.mem_access::<true>(pc, pc, false);

        // Execute (functional; the pre-decoded step carries its class).
        let step = self.interp.step()?;
        let class = step.class.index();
        let exec_cycles = self.lat_by_class[class];
        let compute_nj = self.nj_by_class[class];
        self.energy.compute_nj += compute_nj;
        self.pending_draw_nj += compute_nj;

        // Data access through the DCache.
        let mem_cycles = match step.access {
            Some(acc) => {
                let is_write = acc.kind == ehs_isa::AccessKind::Write;
                self.mem_access::<false>(step.pc, acc.addr, is_write)
            }
            None => 0,
        };

        self.stats.instructions += 1;
        self.advance_on(fetch_cycles + exec_cycles + mem_cycles);
        Ok(())
    }

    /// Feeds the capacitor voltage to one path's IPEX controller,
    /// tracing threshold crossings and reissuing throttled prefetches
    /// (§5.1 extension).
    fn observe_voltage(&mut self, inst: bool, v: f64) {
        let now = self.cycle;
        let Machine {
            ipath,
            dpath,
            nvm,
            energy,
            stats,
            pending_draw_nj,
            tracer,
            ..
        } = self;
        let (path, pid) = if inst {
            (ipath, PathId::Inst)
        } else {
            (dpath, PathId::Data)
        };
        // Querying the degree costs a couple of loads; only pay for it
        // while tracing.
        let old_degree = if tracer.is_enabled() {
            path.throttle.current_degree()
        } else {
            None
        };
        let reissue = path.throttle.observe_voltage(v);
        // The controller only returns a list when the §5.1 reissue
        // extension drains its queue, so degree changes are detected by
        // comparing Rcpd around the update rather than from the return
        // value (otherwise crossings would go untraced under the default
        // `reissue_throttled: false`).
        if tracer.is_enabled() {
            let new_degree = path.throttle.current_degree();
            if new_degree != old_degree {
                tracer.emit_with(|| SimEvent::ThresholdCross {
                    cycle: now,
                    path: pid,
                    voltage: v,
                    old_degree: old_degree.unwrap_or(0),
                    new_degree: new_degree.unwrap_or(0),
                });
            }
        }
        if let Some(reissue) = reissue {
            for block in reissue {
                tracer.emit_with(|| SimEvent::PrefetchReissued {
                    cycle: now,
                    path: pid,
                    block,
                });
                issue_prefetch(
                    path,
                    nvm,
                    energy,
                    stats,
                    pending_draw_nj,
                    now,
                    block,
                    tracer,
                    pid,
                );
            }
        }
    }

    /// Recomputes the safe energy band for batched voltage observation.
    ///
    /// Called only immediately after a real observation pass, so each
    /// controller's level agrees with the current voltage. The band's
    /// edges are the capacitor energies of every voltage the step
    /// sequence compares against — the backup trigger plus both
    /// throttles' threshold ladders — split into those below and above
    /// the current energy. While the stored energy stays strictly
    /// inside the band, every `voltage <= threshold` comparison and the
    /// `needs_backup` check resolve exactly as they did when the band
    /// was computed (energy and voltage are monotonically related by
    /// `E = ½CV²`), so `observe_voltage` cannot change state and no
    /// outage can begin: skipping the sequence is bit-identical.
    ///
    /// The relative `MARGIN` shrinks the band by ~1e-9 on each side,
    /// dominating the ~1e-15 relative rounding of the E↔V conversions
    /// (one sqrt + two multiplies); energies inside the margin zone
    /// conservatively take the exact legacy path.
    fn recompute_voltage_window(&mut self) {
        if self.vwin_forced_off || self.vwin_policy_exact {
            return;
        }
        const MARGIN: f64 = 1e-9;
        let cap_cfg = self.cap.config();
        let e = self.cap.energy_nj();
        let mut lo = 0.0f64;
        let mut hi = f64::INFINITY;
        let mut consider = |threshold_v: f64| {
            let et = cap_cfg.energy_at_nj(threshold_v);
            if e > et {
                lo = lo.max(et);
            } else {
                hi = hi.min(et);
            }
        };
        consider(cap_cfg.v_backup);
        for &t in self.ipath.throttle.thresholds() {
            consider(t);
        }
        for &t in self.dpath.throttle.thresholds() {
            consider(t);
        }
        self.vwin_lo_nj = lo * (1.0 + MARGIN);
        self.vwin_hi_nj = hi * (1.0 - MARGIN);
    }

    /// One demand access through a cache path; returns its total cycles
    /// (1-cycle hit plus any stall). Monomorphized per path (`INST` is a
    /// const) so the fetch fast path specializes away the data-side
    /// branches.
    fn mem_access<const INST: bool>(&mut self, pc: u32, addr: u32, is_write: bool) -> u64 {
        let now = self.cycle;
        // Split borrows: the chosen path, NVM, energy, stats and the
        // candidate buffer are all disjoint fields.
        let Machine {
            ipath,
            dpath,
            nvm,
            energy,
            stats,
            pending_draw_nj,
            cand,
            cfg,
            tracer,
            ..
        } = self;
        let (path, pid) = if INST {
            (ipath, PathId::Inst)
        } else {
            (dpath, PathId::Data)
        };

        // Cache probe.
        let access_nj = cfg.energy.cache_access_nj;
        energy.cache_nj += access_nj;
        *pending_draw_nj += access_nj;
        let hit = path.cache.access(addr, is_write);

        let mut latency = 1u64;
        let outcome = if hit {
            AccessOutcome::CacheHit
        } else if let Some(found) = path.buf.lookup(addr, now) {
            // Useful prefetch: promote into the cache; a late prefetch
            // stalls until the NVM read completes (§5.1 duplicate
            // suppression).
            let late_by = found.ready_at.saturating_sub(now);
            latency += late_by;
            tracer.emit_with(|| SimEvent::BufferHit {
                cycle: now,
                path: pid,
                block: block_of(addr),
                late_by,
            });
            if late_by > 0 {
                tracer.emit_with(|| SimEvent::LatePrefetch {
                    cycle: now,
                    path: pid,
                    block: block_of(addr),
                    stall_cycles: late_by,
                });
            }
            fill_cache(
                path,
                nvm,
                energy,
                pending_draw_nj,
                now,
                addr,
                is_write,
                access_nj,
                tracer,
                pid,
            );
            AccessOutcome::BufferHit
        } else {
            // Demand miss to NVM.
            let done = nvm.read(now, ReadReason::Demand);
            if INST {
                stats.i_demand_reads += 1;
            } else {
                stats.d_demand_reads += 1;
            }
            // Dynamic block transfer plus the gated array's active-window
            // leakage for the transfer duration.
            let read_nj = cfg.nvm.block_read_nj()
                + mw_to_nj_per_cycle(cfg.nvm.active_leak_mw()) * cfg.nvm.read_cycles as f64;
            energy.memory_nj += read_nj;
            *pending_draw_nj += read_nj;
            latency += done - now;
            fill_cache(
                path,
                nvm,
                energy,
                pending_draw_nj,
                now,
                addr,
                is_write,
                access_nj,
                tracer,
                pid,
            );
            AccessOutcome::Miss
        };

        // Prefetcher observation, IPEX filtering, and issue in priority
        // order.
        let event = if INST {
            AccessEvent::fetch(addr, outcome)
        } else {
            AccessEvent::data(pc, addr, outcome, is_write)
        };
        cand.clear();
        path.pf.observe(&event, cand);
        let proposed = cand.len();
        let kept = path.throttle.filter(cand);
        let dropped = (proposed - kept) as u64;
        if dropped > 0 {
            tracer.emit_with(|| SimEvent::PrefetchThrottled {
                cycle: now,
                path: pid,
                count: dropped,
            });
        }
        for &block in cand.iter() {
            issue_prefetch(
                path,
                nvm,
                energy,
                stats,
                pending_draw_nj,
                now,
                block,
                tracer,
                pid,
            );
        }

        let stall = latency - 1;
        if INST {
            stats.istall_cycles += stall;
        } else {
            stats.dstall_cycles += stall;
        }
        latency
    }

    /// Advances on-time by `n` cycles: leakage + pending dynamic draw
    /// leave the capacitor, harvested energy enters it.
    fn advance_on(&mut self, n: u64) {
        let (li, ld, lc, _ln) = self.leak_nj;
        let nf = n as f64;
        self.energy.cache_nj += (li + ld) * nf;
        self.energy.compute_nj += lc * nf;
        let draw = (li + ld + lc) * nf + self.pending_draw_nj;
        self.pending_draw_nj = 0.0;
        self.cap.consume_nj(draw);
        let harvested = self.harvest_span(self.cycle, n);
        self.cap.harvest_nj(harvested);
        self.cycle += n;
        self.stats.on_cycles += n;
        self.stats.total_cycles = self.cycle;
    }

    /// Harvested energy (nJ) over `[start, start + n)` cycles.
    fn harvest_span(&mut self, start: u64, n: u64) -> f64 {
        let end = start + n;
        // Fast path: the whole span lies inside the cached trace sample,
        // so the sum below collapses to one multiply with the identical
        // rate (`0.0 + r*n == r*n` bit-exactly for the nonnegative rates
        // a power trace yields).
        if start >= self.hspan_start && end <= self.hspan_end {
            return self.hspan_rate * n as f64;
        }
        let mut total = 0.0;
        let mut c = start;
        while c < end {
            let idx = c / CYCLES_PER_TRACE_SAMPLE;
            let boundary = (idx + 1) * CYCLES_PER_TRACE_SAMPLE;
            let take = end.min(boundary) - c;
            let rate = self.trace.harvest_nj_per_cycle(idx);
            total += rate * take as f64;
            c = end.min(boundary);
            // Cache the last sample touched: the next span starts here.
            self.hspan_start = boundary - CYCLES_PER_TRACE_SAMPLE;
            self.hspan_end = boundary;
            self.hspan_rate = rate;
        }
        total
    }

    /// Starts an outage: emits the trigger event and enters the backup
    /// phase (ideal backup skips straight to power loss + recharge).
    fn begin_outage(&mut self) {
        let trigger_cycle = self.cycle;
        let trigger_v = self.cap.voltage();
        self.tracer.emit_with(|| SimEvent::OutageBegin {
            cycle: trigger_cycle,
            voltage: trigger_v,
        });
        if self.cfg.ideal_backup {
            self.enter_power_loss();
            return;
        }
        let br_before = self.energy.backup_restore_nj;
        let dirty = (self.dpath.cache.dirty_count() + self.ipath.cache.dirty_count()) as u64;
        self.stats.checkpoint_blocks += dirty;
        self.phase = Phase::Backup {
            remaining: dirty,
            backup_cycles: self.cfg.backup_base_cycles,
            br_before,
            dirty_total: dirty,
        };
    }

    /// Completes a backup after the last dirty-block write: NVFF store,
    /// backup-window leakage, the `BackupDone` event, then power loss.
    fn finish_backup(&mut self, backup_cycles: u64, br_before: f64, dirty_total: u64) {
        let bits =
            CORE_NVFF_BITS + self.ipath.throttle.nvff_bits() + self.dpath.throttle.nvff_bits();
        let store = self.cfg.energy.nvff_store_nj(bits);
        self.energy.backup_restore_nj += store;
        self.cap.consume_nj(store);
        // Leakage during the backup window, drawn from the reserve
        // (the NVM is active then: its leakage rides on the writes).
        let (li, ld, lc, ln) = self.leak_nj;
        let leak = (li + ld + lc + ln) * backup_cycles as f64;
        self.energy.backup_restore_nj += leak;
        self.cap.consume_nj(leak);
        self.cycle += backup_cycles;
        self.stats.off_cycles += backup_cycles;
        let done_cycle = self.cycle;
        let energy_nj = self.energy.backup_restore_nj - br_before;
        self.tracer.emit_with(|| SimEvent::BackupDone {
            cycle: done_cycle,
            dirty_blocks: dirty_total,
            backup_cycles,
            energy_nj,
        });
        self.enter_power_loss();
    }

    /// Volatile state is lost; the machine goes dark and recharges.
    fn enter_power_loss(&mut self) {
        // Querying adaptation counters costs a few loads; only pay while
        // tracing. Failure-time adaptations (e.g. the predictive policy
        // recording the outage in its tables) surface as `PolicyAdapt`.
        let adapt_before = if self.tracer.is_enabled() {
            Some((
                self.ipath.throttle.adaptations(),
                self.dpath.throttle.adaptations(),
            ))
        } else {
            None
        };
        let lost_i = self.ipath.power_loss();
        let lost_d = self.dpath.power_loss();
        let loss_cycle = self.cycle;
        for (lost, pid) in [(lost_i, PathId::Inst), (lost_d, PathId::Data)] {
            if lost > 0 {
                self.tracer.emit_with(|| SimEvent::LostUnused {
                    cycle: loss_cycle,
                    path: pid,
                    count: lost,
                });
            }
        }
        if let Some((before_i, before_d)) = adapt_before {
            self.emit_policy_adapt(before_i, before_d);
        }
        self.phase = Phase::Recharge;
    }

    /// Emits a [`SimEvent::PolicyAdapt`] per path whose adaptation
    /// counter advanced past the given marks. Tracing-only helper.
    fn emit_policy_adapt(&mut self, before_i: u64, before_d: u64) {
        let now = self.cycle;
        for (before, after, pid) in [
            (before_i, self.ipath.throttle.adaptations(), PathId::Inst),
            (before_d, self.dpath.throttle.adaptations(), PathId::Data),
        ] {
            if after != before {
                self.tracer.emit_with(|| SimEvent::PolicyAdapt {
                    cycle: now,
                    path: pid,
                    adaptations: after,
                });
            }
        }
    }

    /// Reboot once the capacitor can boot: restore registers (cold
    /// caches), reset per-power-cycle state, and resume execution.
    fn reboot(&mut self) {
        if !self.cfg.ideal_backup {
            let bits =
                CORE_NVFF_BITS + self.ipath.throttle.nvff_bits() + self.dpath.throttle.nvff_bits();
            let restore = self.cfg.energy.nvff_restore_nj(bits);
            self.energy.backup_restore_nj += restore;
            self.cap.consume_nj(restore);
            self.cycle += self.cfg.restore_cycles;
            self.stats.off_cycles += self.cfg.restore_cycles;
            if let Some(r) = self.fault.skip_restore_reg {
                // Injected bug: this register's NVFF "failed", so it
                // comes back as zero instead of its checkpointed value.
                self.interp.set_reg(r, 0);
            }
        }
        self.nvm.power_cycle_reset(self.cycle);
        // Reboot-time adaptations (e.g. IPEX moving its threshold
        // ladder) surface as `PolicyAdapt` events, like the
        // failure-time ones in `enter_power_loss`.
        let adapt_before = if self.tracer.is_enabled() {
            Some((
                self.ipath.throttle.adaptations(),
                self.dpath.throttle.adaptations(),
            ))
        } else {
            None
        };
        self.ipath.throttle.on_reboot();
        self.dpath.throttle.on_reboot();
        if let Some((before_i, before_d)) = adapt_before {
            self.emit_policy_adapt(before_i, before_d);
        }
        // The threshold ladders may have adapted and the controllers'
        // levels were reset: invalidate the band so the first
        // instruction of the new power cycle observes for real.
        self.vwin_lo_nj = f64::INFINITY;
        self.vwin_hi_nj = f64::NEG_INFINITY;
        self.stats.total_cycles = self.cycle;
        // Roll up the power cycle that just ended (its off-time — backup,
        // recharge, restore — is attributed to it), then begin the next.
        self.emit_power_cycle_summary();
        self.stats.power_cycles += 1;
        let restore_cycle = self.cycle;
        let power_cycle = self.stats.power_cycles;
        self.tracer.emit_with(|| SimEvent::Restore {
            cycle: restore_cycle,
            power_cycle,
        });
        self.phase = Phase::Run;
    }

    /// Emits a [`SimEvent::PowerCycleSummary`] for the power cycle
    /// ending now and re-marks the statistics snapshot. No-op while
    /// tracing is disabled.
    fn emit_power_cycle_summary(&mut self) {
        if !self.tracer.is_enabled() {
            return;
        }
        let tally = |t: &AnyPolicy| {
            t.stats()
                .map_or((0, 0), |s| (s.issued + s.throttled, s.throttled))
        };
        let (seen_i, throttled_i) = tally(&self.ipath.throttle);
        let (seen_d, throttled_d) = tally(&self.dpath.throttle);
        let (seen, throttled) = (seen_i + seen_d, throttled_i + throttled_d);
        let mark = self.mark;
        let d_seen = seen.saturating_sub(mark.ipex_seen);
        let d_throttled = throttled.saturating_sub(mark.ipex_throttled);
        let throttle_rate = if d_seen > 0 {
            d_throttled as f64 / d_seen as f64
        } else {
            0.0
        };
        let ev = SimEvent::PowerCycleSummary {
            cycle: self.cycle,
            power_cycle: self.stats.power_cycles,
            on_cycles: self.stats.on_cycles - mark.on_cycles,
            off_cycles: self.stats.off_cycles - mark.off_cycles,
            cache_nj: self.energy.cache_nj - mark.cache_nj,
            memory_nj: self.energy.memory_nj - mark.memory_nj,
            compute_nj: self.energy.compute_nj - mark.compute_nj,
            backup_restore_nj: self.energy.backup_restore_nj - mark.backup_restore_nj,
            throttle_rate,
        };
        self.tracer.emit_with(move || ev);
        self.mark = CycleMark {
            on_cycles: self.stats.on_cycles,
            off_cycles: self.stats.off_cycles,
            cache_nj: self.energy.cache_nj,
            memory_nj: self.energy.memory_nj,
            compute_nj: self.energy.compute_nj,
            backup_restore_nj: self.energy.backup_restore_nj,
            ipex_seen: seen,
            ipex_throttled: throttled,
        };
    }
}

/// Installs a block in the cache, handling a dirty eviction (write-back
/// to NVM: port traffic + energy, no pipeline stall — write-buffer
/// semantics).
#[allow(clippy::too_many_arguments)]
fn fill_cache(
    path: &mut MemPath,
    nvm: &mut Nvm,
    energy: &mut EnergyBreakdown,
    pending: &mut f64,
    now: u64,
    addr: u32,
    is_write: bool,
    access_nj: f64,
    tracer: &mut Tracer,
    pid: PathId,
) {
    energy.cache_nj += access_nj;
    *pending += access_nj;
    tracer.emit_with(|| SimEvent::CacheFill {
        cycle: now,
        path: pid,
        block: block_of(addr),
    });
    if let Some(wb) = path.cache.fill(addr, is_write) {
        nvm.write(now);
        let cfg = nvm.config();
        let w = cfg.block_write_nj()
            + mw_to_nj_per_cycle(cfg.active_leak_mw()) * cfg.write_cycles as f64;
        energy.memory_nj += w;
        *pending += w;
        tracer.emit_with(|| SimEvent::Writeback {
            cycle: now,
            path: pid,
            block: wb.block,
        });
    }
}

/// Issues one prefetch: skipped if the block is already cached or
/// in-flight, otherwise an NVM read is scheduled and the buffer records
/// the completion time.
#[allow(clippy::too_many_arguments)]
fn issue_prefetch(
    path: &mut MemPath,
    nvm: &mut Nvm,
    energy: &mut EnergyBreakdown,
    stats: &mut SimStats,
    pending: &mut f64,
    now: u64,
    block: u32,
    tracer: &mut Tracer,
    pid: PathId,
) {
    if path.cache.contains(block) {
        stats.redundant_cache_skips += 1;
        return;
    }
    if path.buf.contains(block) {
        stats.redundant_cache_skips += 1;
        return;
    }
    let done = nvm.read(now, ReadReason::Prefetch);
    let cfg = nvm.config();
    let r = cfg.block_read_nj() + mw_to_nj_per_cycle(cfg.active_leak_mw()) * cfg.read_cycles as f64;
    energy.memory_nj += r;
    *pending += r;
    tracer.emit_with(|| SimEvent::PrefetchIssued {
        cycle: now,
        path: pid,
        block,
        done_at: done,
    });
    if let InsertOutcome::InsertedEvicting(victim) = path.buf.insert(block, done) {
        tracer.emit_with(|| SimEvent::EvictedUnused {
            cycle: now,
            path: pid,
            block: victim,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ipex;
    use ehs_energy::CapacitorConfig;
    use ehs_isa::asm;

    fn tiny_program() -> Program {
        // ~60k cycles of streaming loads/stores: long enough to span
        // several power cycles under weak harvested power.
        asm::assemble(
            r#"
            .text
            main:
                li   t0, 0
                li   t1, 6000
                la   a1, buf
            loop:
                andi t4, t0, 255
                slli t2, t4, 2
                add  t2, a1, t2
                sw   t0, 0(t2)
                lw   t3, 0(t2)
                add  a0, a0, t3
                addi t0, t0, 1
                blt  t0, t1, loop
                halt
            .data
            buf: .space 1024
            "#,
        )
        .unwrap()
    }

    fn steady_power(cfg: SimConfig) -> SimResult {
        // 50 mW >> draw: never an outage.
        let trace = PowerTrace::constant_mw(50.0, 16);
        Machine::with_trace(cfg, &tiny_program(), trace)
            .run()
            .unwrap()
    }

    #[test]
    fn completes_under_steady_power_without_outage() {
        let r = steady_power(SimConfig::default());
        assert_eq!(r.stats.power_cycles, 1);
        assert_eq!(r.stats.off_cycles, 0);
        assert!(r.stats.instructions > 1000);
        assert_eq!(r.stats.total_cycles, r.stats.on_cycles);
    }

    #[test]
    fn prefetching_reduces_cycles_on_streaming_code() {
        let no_pf = steady_power(SimConfig::builder().no_prefetch().build());
        let pf = steady_power(SimConfig::default());
        assert!(
            pf.stats.total_cycles < no_pf.stats.total_cycles,
            "prefetch {} >= none {}",
            pf.stats.total_cycles,
            no_pf.stats.total_cycles
        );
        assert!(pf.nvm.prefetch_reads > 0);
        assert_eq!(no_pf.nvm.prefetch_reads, 0);
    }

    #[test]
    fn weak_power_causes_outages_and_checkpoints() {
        // 2 mW << draw: frequent outages.
        let trace = PowerTrace::constant_mw(2.0, 16);
        let mut m = Machine::with_trace(SimConfig::default(), &tiny_program(), trace);
        let r = m.run().unwrap();
        assert!(r.stats.power_cycles > 1, "expected outages");
        assert!(r.stats.off_cycles > 0);
        assert!(r.energy.backup_restore_nj > 0.0);
        assert!(
            r.stats.checkpoint_blocks > 0,
            "dirty DCache lines must be flushed"
        );
    }

    #[test]
    fn ideal_backup_is_faster_and_cheaper() {
        let trace = PowerTrace::constant_mw(2.0, 16);
        let real = Machine::with_trace(SimConfig::default(), &tiny_program(), trace.clone())
            .run()
            .unwrap();
        let ideal = Machine::with_trace(
            SimConfig::default().with_ideal_backup(),
            &tiny_program(),
            trace,
        )
        .run()
        .unwrap();
        assert!(ideal.stats.total_cycles <= real.stats.total_cycles);
        assert_eq!(ideal.energy.backup_restore_nj, 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = PowerTrace::constant_mw(3.0, 16);
        let a = Machine::with_trace(
            SimConfig::builder().ipex(Ipex::Both).build(),
            &tiny_program(),
            trace.clone(),
        )
        .run()
        .unwrap();
        let b = Machine::with_trace(
            SimConfig::builder().ipex(Ipex::Both).build(),
            &tiny_program(),
            trace,
        )
        .run()
        .unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.nvm, b.nvm);
    }

    #[test]
    fn ipex_throttles_under_weak_power() {
        let trace = PowerTrace::constant_mw(2.0, 16);
        let r = Machine::with_trace(
            SimConfig::builder().ipex(Ipex::Both).build(),
            &tiny_program(),
            trace,
        )
        .run()
        .unwrap();
        let ipex_d = r.ipex_d.expect("IPEX enabled on DCache");
        assert!(
            ipex_d.throttled > 0,
            "weak power must throttle some prefetches"
        );
        assert!(r.stats.power_cycles > 1);
    }

    #[test]
    fn never_boots_hits_cycle_limit() {
        // 0.001 mW can never recharge the capacitor after the first
        // outage.
        let trace = PowerTrace::constant_mw(0.001, 16);
        let cfg = SimConfig {
            max_cycles: 5_000_000,
            ..SimConfig::default()
        };
        let err = Machine::with_trace(cfg, &tiny_program(), trace)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { .. }));
    }

    #[test]
    fn energy_buckets_are_populated() {
        let r = steady_power(SimConfig::default());
        assert!(r.energy.cache_nj > 0.0);
        assert!(r.energy.memory_nj > 0.0);
        assert!(r.energy.compute_nj > 0.0);
        assert!(r.total_energy_nj() > 0.0);
    }

    #[test]
    fn larger_capacitor_means_fewer_power_cycles() {
        let trace = PowerTrace::constant_mw(3.0, 16);
        let small = Machine::with_trace(SimConfig::default(), &tiny_program(), trace.clone())
            .run()
            .unwrap();
        let big_cfg = SimConfig {
            capacitor: CapacitorConfig::with_capacitance_uf(47.0),
            ..SimConfig::default()
        };
        let big = Machine::with_trace(big_cfg, &tiny_program(), trace)
            .run()
            .unwrap();
        assert!(big.stats.power_cycles < small.stats.power_cycles);
    }

    #[test]
    fn run_until_pauses_and_continuation_matches_whole_run() {
        let trace = PowerTrace::constant_mw(3.0, 16);
        let cfg = SimConfig::builder().ipex(Ipex::Both).build();
        let whole = Machine::with_trace(cfg.clone(), &tiny_program(), trace.clone())
            .run()
            .unwrap();
        let mut m = Machine::with_trace(cfg, &tiny_program(), trace);
        let mut pauses = 0;
        loop {
            match m.run_until(m.cycle() + 10_000).unwrap() {
                RunStatus::Paused => pauses += 1,
                RunStatus::Completed(split) => {
                    assert_eq!(split.stats, whole.stats);
                    assert_eq!(split.energy, whole.energy);
                    assert_eq!(split.nvm, whole.nvm);
                    break;
                }
            }
        }
        assert!(pauses > 3, "expected several pauses, got {pauses}");
    }

    #[test]
    fn snapshot_resume_is_bit_identical() {
        let program = tiny_program();
        let trace = PowerTrace::constant_mw(3.0, 16);
        let cfg = SimConfig::builder().ipex(Ipex::Both).build();
        let whole = Machine::with_trace(cfg.clone(), &program, trace.clone())
            .run()
            .unwrap();
        let mut m = Machine::with_trace(cfg, &program, trace.clone());
        assert!(matches!(m.run_until(40_000).unwrap(), RunStatus::Paused));
        // Round-trip the snapshot through its JSON wire format.
        let json = m.snapshot(&program).to_json();
        let snap = Snapshot::from_json(&json).unwrap();
        let mut r = Machine::resume(&snap, &program, trace).unwrap();
        // The resumed machine must be in the captured state exactly...
        assert_eq!(r.state_digest(&program), snap.digest());
        // ...and finishing it must match the uninterrupted run.
        let split = r.run().unwrap();
        assert_eq!(split.stats, whole.stats);
        assert_eq!(split.energy, whole.energy);
        assert_eq!(split.nvm, whole.nvm);
        assert_eq!(split.icache, whole.icache);
        assert_eq!(split.dcache, whole.dcache);
    }

    #[test]
    fn snapshot_can_land_mid_outage_and_still_resume_exactly() {
        let program = tiny_program();
        // Weak power: outages dominate, so tight pause targets land in
        // Backup/Recharge phases regularly. A small NVM keeps the many
        // per-pause memory-delta scans cheap in debug builds.
        let trace = PowerTrace::constant_mw(2.0, 16);
        let mut cfg = SimConfig::default();
        cfg.nvm.size_bytes = 1 << 21;
        let whole = Machine::with_trace(cfg.clone(), &program, trace.clone())
            .run()
            .unwrap();
        let mut m = Machine::with_trace(cfg, &program, trace.clone());
        let (mut saw_backup, mut saw_recharge) = (false, false);
        let final_stats = loop {
            match m.run_until(m.cycle() + 500).unwrap() {
                RunStatus::Completed(r) => break *r,
                RunStatus::Paused => match m.phase() {
                    Phase::Backup { .. } => saw_backup = true,
                    Phase::Recharge => saw_recharge = true,
                    Phase::Run => {}
                },
            }
            // Swap the machine for its snapshot-resumed double at every
            // pause: any missed state component breaks the final totals.
            let snap = Snapshot::from_json(&m.snapshot(&program).to_json()).unwrap();
            m = Machine::resume(&snap, &program, trace.clone()).unwrap();
        };
        assert!(saw_recharge, "pauses never landed mid-recharge");
        assert!(saw_backup || whole.stats.checkpoint_blocks == 0);
        assert_eq!(final_stats.stats, whole.stats);
        assert_eq!(final_stats.energy, whole.energy);
        assert_eq!(final_stats.nvm, whole.nvm);
    }

    #[test]
    fn resume_rejects_mismatched_inputs() {
        let program = tiny_program();
        let trace = PowerTrace::constant_mw(3.0, 16);
        let mut m = Machine::with_trace(SimConfig::default(), &program, trace.clone());
        let _ = m.run_until(10_000).unwrap();
        let snap = m.snapshot(&program);

        let other_trace = PowerTrace::constant_mw(4.0, 16);
        assert!(matches!(
            Machine::resume(&snap, &program, other_trace),
            Err(SnapshotError::TraceMismatch { .. })
        ));

        let other_program = asm::assemble(".text\nmain:\n li a0, 1\n halt\n").unwrap();
        assert!(matches!(
            Machine::resume(&snap, &other_program, trace.clone()),
            Err(SnapshotError::ProgramMismatch { .. })
        ));

        let mut stale = snap.clone();
        stale.version += 1;
        assert!(matches!(
            Machine::resume(&stale, &program, trace),
            Err(SnapshotError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn trace_counts_survive_snapshot_resume() {
        let program = tiny_program();
        let trace = PowerTrace::constant_mw(2.5, 16);
        let cfg = SimConfig::default().with_trace_mode(crate::TraceMode::Counting);
        let whole_counts = {
            let mut m = Machine::with_trace(cfg.clone(), &program, trace.clone());
            m.run().unwrap();
            *m.trace_counts()
        };
        let mut m = Machine::with_trace(cfg, &program, trace.clone());
        let _ = m.run_until(60_000).unwrap();
        let snap = m.snapshot(&program);
        let mut r = Machine::resume(&snap, &program, trace).unwrap();
        r.run().unwrap();
        assert_eq!(*r.trace_counts(), whole_counts);
        assert!(
            whole_counts.cache_fill > 0,
            "counting mode must tally events"
        );
    }

    /// Runs the tiny program under weak power (frequent outages, so
    /// plenty of threshold crossings) with IPEX and event counting on,
    /// after applying `tweak` to the fresh machine.
    fn weak_power_counted(tweak: impl FnOnce(&mut Machine)) -> (SimResult, EventCounts) {
        let cfg = SimConfig::builder()
            .ipex(Ipex::Both)
            .trace_mode(crate::TraceMode::Counting)
            .build();
        let trace = PowerTrace::constant_mw(2.0, 16);
        let mut m = Machine::with_trace(cfg, &tiny_program(), trace);
        tweak(&mut m);
        let r = m.run().unwrap();
        (r, *m.trace_counts())
    }

    /// The batched voltage window is an observation *schedule*, not a
    /// model change: forcing the exhaustive per-instruction check must
    /// reproduce the batched run bit-for-bit, including the number of
    /// `ThresholdCross` events — a window that skipped past a crossing
    /// would show up here as a lost event.
    #[test]
    fn exhaustive_voltage_checks_match_batched_including_threshold_crossings() {
        let (batched, batched_counts) = weak_power_counted(|_| {});
        let (exact, exact_counts) = weak_power_counted(|m| m.set_exhaustive_voltage_checks(true));
        assert_eq!(batched, exact);
        assert_eq!(batched_counts, exact_counts);
        assert!(
            batched_counts.threshold_cross > 0,
            "weak power must cross thresholds or the test proves nothing"
        );
        assert!(batched.stats.power_cycles > 1, "expected outages");
    }

    /// The decode cache is a pure execution-engine optimisation; with
    /// it disabled the machine must still produce the same results and
    /// the same event stream.
    #[test]
    fn decode_cache_off_matches_batched_run_exactly() {
        let (fast, fast_counts) = weak_power_counted(|_| {});
        let (slow, slow_counts) = weak_power_counted(|m| m.set_decode_cache_enabled(false));
        assert_eq!(fast, slow);
        assert_eq!(fast_counts, slow_counts);
    }

    /// Every alternative throttling policy must drive a machine to
    /// completion under weak power and actually gate prefetches: the
    /// policy API is load-bearing, not decorative.
    #[test]
    fn policy_machines_run_and_throttle_under_weak_power() {
        use ipex::{HysteresisConfig, PolicyConfig, PredictiveConfig, StaticDegreeConfig};
        let trace = PowerTrace::constant_mw(2.0, 16);
        // The predictive policy only throttles once a context gathers
        // enough outage-interval evidence, which this short program may
        // not provide — for it, seeing the outages (power cycles) and
        // issuing prefetches is the load-bearing part.
        for (pc, must_throttle) in [
            (
                PolicyConfig::Predictive(PredictiveConfig::paper_default()),
                false,
            ),
            (
                PolicyConfig::Hysteresis(HysteresisConfig::paper_default()),
                true,
            ),
            (
                PolicyConfig::StaticDegree(StaticDegreeConfig::conservative()),
                true,
            ),
        ] {
            let kind = pc.kind_name();
            let cfg = SimConfig::builder().throttle_policy(Ipex::Both, pc).build();
            let r = Machine::with_trace(cfg, &tiny_program(), trace.clone())
                .run()
                .unwrap();
            assert!(r.stats.power_cycles > 1, "{kind}: expected outages");
            let i = r
                .ipex_i
                .unwrap_or_else(|| panic!("{kind}: no ICache stats"));
            let d = r
                .ipex_d
                .unwrap_or_else(|| panic!("{kind}: no DCache stats"));
            assert!(i.issued + d.issued > 0, "{kind}: prefetching never ran");
            assert!(d.power_cycles > 1, "{kind}: policy missed the outages");
            if must_throttle {
                assert!(
                    i.throttled + d.throttled > 0,
                    "{kind}: weak power must suppress some prefetches"
                );
            }
        }
    }

    /// The batched voltage window must stay an observation *schedule*
    /// for policies that forbid it: machines driven by a
    /// non-threshold policy (EWMA state per observation) already run
    /// exact, so forcing exhaustive checks changes nothing.
    #[test]
    fn exhaustive_checks_are_identity_for_non_batchable_policies() {
        use ipex::{HysteresisConfig, PolicyConfig};
        let run = |exhaustive: bool| {
            let cfg = SimConfig::builder()
                .throttle_policy(
                    Ipex::Both,
                    PolicyConfig::Hysteresis(HysteresisConfig::paper_default()),
                )
                .build();
            let mut m = Machine::with_trace(cfg, &tiny_program(), PowerTrace::constant_mw(2.0, 16));
            m.set_exhaustive_voltage_checks(exhaustive);
            m.run().unwrap()
        };
        assert_eq!(run(false), run(true));
    }

    /// Snapshots taken by a policy-driven machine round-trip exactly,
    /// and resuming one against a configuration that builds a
    /// *different* policy fails with the structured mismatch error
    /// naming both kinds.
    #[test]
    fn resume_names_policy_kinds_on_mismatch() {
        use ipex::{PolicyConfig, PredictiveConfig, ThrottleState};
        let program = tiny_program();
        let trace = PowerTrace::constant_mw(3.0, 16);
        let cfg = SimConfig::builder()
            .throttle_policy(
                Ipex::Both,
                PolicyConfig::Predictive(PredictiveConfig::paper_default()),
            )
            .build();
        let whole = Machine::with_trace(cfg.clone(), &program, trace.clone())
            .run()
            .unwrap();
        let mut m = Machine::with_trace(cfg, &program, trace.clone());
        assert!(matches!(m.run_until(40_000).unwrap(), RunStatus::Paused));
        let snap = Snapshot::from_json(&m.snapshot(&program).to_json()).unwrap();

        // Clean resume completes identically to the whole run.
        let split = Machine::resume(&snap, &program, trace.clone())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(split.stats, whole.stats);
        assert_eq!(split.energy, whole.energy);

        // A doctored throttle state of the wrong kind is rejected with
        // the policy kinds spelled out, not a generic state error.
        let mut doctored = snap.clone();
        doctored.ithrottle = ThrottleState::Passthrough;
        let err = match Machine::resume(&doctored, &program, trace) {
            Ok(_) => panic!("doctored snapshot must be rejected"),
            Err(e) => e,
        };
        match err {
            SnapshotError::PolicyMismatch {
                which,
                found,
                expected,
            } => {
                assert_eq!(which, "instruction");
                assert_eq!(found, "passthrough");
                assert_eq!(expected, "predictive");
            }
            other => panic!("expected PolicyMismatch, got {other:?}"),
        }
    }

    /// Version-1 snapshots (pre policy API) still resume: the migration
    /// shim lifts them to the current version in memory.
    #[test]
    fn v1_snapshots_migrate_and_resume() {
        let program = tiny_program();
        let trace = PowerTrace::constant_mw(3.0, 16);
        let cfg = SimConfig::builder().ipex(Ipex::Both).build();
        let mut m = Machine::with_trace(cfg, &program, trace.clone());
        assert!(matches!(m.run_until(40_000).unwrap(), RunStatus::Paused));
        let whole = Machine::with_trace(
            SimConfig::builder().ipex(Ipex::Both).build(),
            &program,
            trace.clone(),
        )
        .run()
        .unwrap();
        let mut snap = m.snapshot(&program);
        snap.version = 1;
        let split = Machine::resume(&snap, &program, trace)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(split.stats, whole.stats);
        assert_eq!(split.energy, whole.energy);
    }

    /// Adapting policies announce their adaptation events through the
    /// tracer: IPEX moves thresholds at reboots, the predictive policy
    /// records outage intervals at power failures — both must surface
    /// as `policy-adapt` events under weak power.
    #[test]
    fn policy_adapt_events_are_counted() {
        use ipex::{PolicyConfig, PredictiveConfig};
        let trace = PowerTrace::constant_mw(2.0, 16);
        for cfg in [
            SimConfig::builder()
                .ipex(Ipex::Both)
                .trace_mode(crate::TraceMode::Counting)
                .build(),
            SimConfig::builder()
                .throttle_policy(
                    Ipex::Both,
                    PolicyConfig::Predictive(PredictiveConfig::paper_default()),
                )
                .trace_mode(crate::TraceMode::Counting)
                .build(),
        ] {
            let mut m = Machine::with_trace(cfg, &tiny_program(), trace.clone());
            let r = m.run().unwrap();
            assert!(r.stats.power_cycles > 1, "expected outages");
            assert!(
                m.trace_counts().policy_adapt > 0,
                "adaptations must be announced as policy-adapt events"
            );
        }
    }

    #[test]
    fn faulting_program_reports_exec_error() {
        let p = asm::assemble(
            ".text\nmain:\n li a1, 0x7ffffff\n slli a1, a1, 4\n lw a0, 0(a1)\n halt\n",
        )
        .unwrap();
        let err = Machine::with_trace(SimConfig::default(), &p, PowerTrace::constant_mw(50.0, 4))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Exec(_)));
    }
}
