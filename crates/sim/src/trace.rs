//! Cycle-stamped event tracing for the simulator.
//!
//! The aggregate counters in [`SimResult`](crate::SimResult) say *how
//! much* happened; this module records *when*. Every interesting action
//! of the core loop — outages, backups, prefetch issues/throttles,
//! buffer hits, late arrivals, cache fills, write-backs, IPEX threshold
//! crossings — is emitted as a [`SimEvent`] through a [`Tracer`] owned
//! by the machine.
//!
//! # Cost model
//!
//! Tracing is off by default and designed to vanish: every emission site
//! goes through [`Tracer::emit_with`], which takes a *closure* building
//! the event. When tracing is disabled the closure is never called, so
//! the disabled path is a single predictable branch — the
//! `trace/machine_run` micro-benchmark in `ehs-bench` pins this at <2%
//! of a full machine run.
//!
//! # Sinks
//!
//! Where events go is pluggable via [`TraceSink`]:
//!
//! * [`NullSink`] — discard (the tracer still counts events),
//! * [`CountingSink`] — shared per-kind counters, for tests,
//! * [`JsonlSink`] — one JSON object per line, for offline analysis
//!   (`diag --trace` writes one and prints the per-power-cycle table).
//!
//! Independent of the sink, an enabled [`Tracer`] maintains
//! [`EventCounts`], which reconcile exactly with the `SimResult`
//! aggregates (see `tests/trace.rs` for the invariants).

use std::io::{BufWriter, Write};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// Which memory path an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum PathId {
    /// Instruction side (ICache + its prefetch buffer).
    Inst,
    /// Data side (DCache + its prefetch buffer).
    Data,
}

impl PathId {
    /// Stable short label (`"I"` / `"D"`) for human-readable output.
    pub fn letter(self) -> &'static str {
        match self {
            PathId::Inst => "I",
            PathId::Data => "D",
        }
    }
}

/// One cycle-stamped simulator event.
///
/// Serialized externally tagged (`{"prefetch-issued": {...}}` after the
/// container's kebab-case rename), one JSON object per JSONL line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum SimEvent {
    /// The capacitor crossed `V_backup`: a JIT checkpoint begins.
    OutageBegin {
        /// Cycle at which the backup trigger fired.
        cycle: u64,
        /// Capacitor voltage at the trigger.
        voltage: f64,
    },
    /// The checkpoint finished and the machine powered off.
    BackupDone {
        /// Cycle at which the backup completed.
        cycle: u64,
        /// Dirty cache blocks flushed to NVM.
        dirty_blocks: u64,
        /// Cycles the backup took (base latency + serialized NVM writes).
        backup_cycles: u64,
        /// Energy charged to the backup, nanojoules.
        energy_nj: f64,
    },
    /// The capacitor recharged to `V_on` and state was restored.
    Restore {
        /// Cycle at which execution resumes.
        cycle: u64,
        /// Index of the power cycle now beginning (1-based).
        power_cycle: u64,
    },
    /// A prefetch was issued to the NVM.
    PrefetchIssued {
        cycle: u64,
        path: PathId,
        /// Block address being fetched.
        block: u32,
        /// Cycle at which the NVM read will complete.
        done_at: u64,
    },
    /// IPEX truncated a candidate list in energy-saving mode.
    PrefetchThrottled {
        cycle: u64,
        path: PathId,
        /// Candidates dropped by this filter call.
        count: u64,
    },
    /// A previously throttled prefetch was reissued after the controller
    /// returned to high-performance mode (§5.1 extension).
    PrefetchReissued {
        cycle: u64,
        path: PathId,
        block: u32,
    },
    /// A demand access found its block in the prefetch buffer.
    BufferHit {
        cycle: u64,
        path: PathId,
        block: u32,
        /// Extra stall cycles because the prefetch was still in flight
        /// (0 for a timely prefetch).
        late_by: u64,
    },
    /// A buffer hit on a prefetch still in flight: the demand access
    /// waited `stall_cycles` instead of issuing a duplicate NVM read.
    /// Always accompanied by a [`SimEvent::BufferHit`] at the same cycle.
    LatePrefetch {
        cycle: u64,
        path: PathId,
        block: u32,
        stall_cycles: u64,
    },
    /// A prefetched-but-unused entry was evicted by a newer prefetch.
    EvictedUnused {
        cycle: u64,
        path: PathId,
        block: u32,
    },
    /// Unused prefetch-buffer entries wiped by a power failure.
    LostUnused {
        cycle: u64,
        path: PathId,
        count: u64,
    },
    /// A block was installed in a cache (demand fill or buffer promote).
    CacheFill {
        cycle: u64,
        path: PathId,
        block: u32,
    },
    /// A dirty block was written back to NVM on eviction.
    Writeback {
        cycle: u64,
        path: PathId,
        block: u32,
    },
    /// The IPEX controller crossed a voltage threshold and changed the
    /// effective prefetch degree.
    ThresholdCross {
        cycle: u64,
        path: PathId,
        voltage: f64,
        old_degree: u32,
        new_degree: u32,
    },
    /// A throttling policy adapted its internal decision state — IPEX
    /// moving its threshold ladder at reboot, or the predictive policy
    /// recording an outage interval in its transition tables at power
    /// failure. `adaptations` is the policy's cumulative counter after
    /// the change, so consecutive events show the delta.
    PolicyAdapt {
        cycle: u64,
        path: PathId,
        /// Cumulative adaptation count after this event.
        adaptations: u64,
    },
    /// Rollup emitted when a power cycle ends (at restore, and once more
    /// at the end of the run for the final cycle).
    PowerCycleSummary {
        cycle: u64,
        /// The power cycle being summarized (1-based).
        power_cycle: u64,
        /// On-time this cycle contributed.
        on_cycles: u64,
        /// Off-time (backup + recharge + restore) this cycle contributed.
        off_cycles: u64,
        /// Energy by bucket over this cycle, nanojoules.
        cache_nj: f64,
        memory_nj: f64,
        compute_nj: f64,
        backup_restore_nj: f64,
        /// Candidates throttled / candidates seen by IPEX this cycle
        /// (0.0 when IPEX is off or saw no candidates).
        throttle_rate: f64,
    },
}

impl SimEvent {
    /// The cycle stamp common to every variant.
    pub fn cycle(&self) -> u64 {
        match *self {
            SimEvent::OutageBegin { cycle, .. }
            | SimEvent::BackupDone { cycle, .. }
            | SimEvent::Restore { cycle, .. }
            | SimEvent::PrefetchIssued { cycle, .. }
            | SimEvent::PrefetchThrottled { cycle, .. }
            | SimEvent::PrefetchReissued { cycle, .. }
            | SimEvent::BufferHit { cycle, .. }
            | SimEvent::LatePrefetch { cycle, .. }
            | SimEvent::EvictedUnused { cycle, .. }
            | SimEvent::LostUnused { cycle, .. }
            | SimEvent::CacheFill { cycle, .. }
            | SimEvent::Writeback { cycle, .. }
            | SimEvent::ThresholdCross { cycle, .. }
            | SimEvent::PolicyAdapt { cycle, .. }
            | SimEvent::PowerCycleSummary { cycle, .. } => cycle,
        }
    }

    /// Stable kebab-case name of the variant (the JSONL tag).
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::OutageBegin { .. } => "outage-begin",
            SimEvent::BackupDone { .. } => "backup-done",
            SimEvent::Restore { .. } => "restore",
            SimEvent::PrefetchIssued { .. } => "prefetch-issued",
            SimEvent::PrefetchThrottled { .. } => "prefetch-throttled",
            SimEvent::PrefetchReissued { .. } => "prefetch-reissued",
            SimEvent::BufferHit { .. } => "buffer-hit",
            SimEvent::LatePrefetch { .. } => "late-prefetch",
            SimEvent::EvictedUnused { .. } => "evicted-unused",
            SimEvent::LostUnused { .. } => "lost-unused",
            SimEvent::CacheFill { .. } => "cache-fill",
            SimEvent::Writeback { .. } => "writeback",
            SimEvent::ThresholdCross { .. } => "threshold-cross",
            SimEvent::PolicyAdapt { .. } => "policy-adapt",
            SimEvent::PowerCycleSummary { .. } => "power-cycle-summary",
        }
    }
}

/// Per-kind event tallies, maintained by every enabled [`Tracer`].
///
/// "Wide" events carrying a `count` field (`PrefetchThrottled`,
/// `LostUnused`) accumulate that count rather than the number of event
/// records, so each field reconciles directly with the corresponding
/// `SimResult` aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    pub outage_begin: u64,
    pub backup_done: u64,
    pub restore: u64,
    pub prefetch_issued: u64,
    /// Sum of `PrefetchThrottled::count`.
    pub prefetch_throttled: u64,
    pub prefetch_reissued: u64,
    pub buffer_hit: u64,
    pub late_prefetch: u64,
    pub evicted_unused: u64,
    /// Sum of `LostUnused::count`.
    pub lost_unused: u64,
    pub cache_fill: u64,
    pub writeback: u64,
    pub threshold_cross: u64,
    /// Absent from pre-v2 snapshots; defaults to 0 when deserializing.
    #[serde(default)]
    pub policy_adapt: u64,
    pub power_cycle_summary: u64,
}

impl EventCounts {
    /// Folds one event into the tallies.
    pub fn record(&mut self, ev: &SimEvent) {
        match ev {
            SimEvent::OutageBegin { .. } => self.outage_begin += 1,
            SimEvent::BackupDone { .. } => self.backup_done += 1,
            SimEvent::Restore { .. } => self.restore += 1,
            SimEvent::PrefetchIssued { .. } => self.prefetch_issued += 1,
            SimEvent::PrefetchThrottled { count, .. } => self.prefetch_throttled += count,
            SimEvent::PrefetchReissued { .. } => self.prefetch_reissued += 1,
            SimEvent::BufferHit { .. } => self.buffer_hit += 1,
            SimEvent::LatePrefetch { .. } => self.late_prefetch += 1,
            SimEvent::EvictedUnused { .. } => self.evicted_unused += 1,
            SimEvent::LostUnused { count, .. } => self.lost_unused += count,
            SimEvent::CacheFill { .. } => self.cache_fill += 1,
            SimEvent::Writeback { .. } => self.writeback += 1,
            SimEvent::ThresholdCross { .. } => self.threshold_cross += 1,
            SimEvent::PolicyAdapt { .. } => self.policy_adapt += 1,
            SimEvent::PowerCycleSummary { .. } => self.power_cycle_summary += 1,
        }
    }
}

/// Where emitted events go.
pub trait TraceSink {
    /// Receives one event, in emission order.
    fn emit(&mut self, ev: &SimEvent);

    /// Flushes any buffered output; called when the run ends.
    fn flush(&mut self) {}
}

/// Discards every event (the tracer still keeps [`EventCounts`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _ev: &SimEvent) {}
}

/// Tallies events into shared [`EventCounts`]. Clone the sink before
/// handing it to the machine and read the counts from the clone after
/// the run.
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    counts: Arc<Mutex<EventCounts>>,
}

impl CountingSink {
    /// A fresh sink with zeroed counters.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Snapshot of the counts so far.
    pub fn counts(&self) -> EventCounts {
        *self.counts.lock().expect("counting sink poisoned")
    }
}

impl TraceSink for CountingSink {
    fn emit(&mut self, ev: &SimEvent) {
        self.counts
            .lock()
            .expect("counting sink poisoned")
            .record(ev);
    }
}

/// Writes one JSON object per event, newline-delimited (JSONL).
pub struct JsonlSink<W: Write> {
    out: BufWriter<W>,
}

impl JsonlSink<std::fs::File> {
    /// Creates (truncating) `path` and writes the trace there.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink<std::fs::File>> {
        Ok(JsonlSink::new(std::fs::File::create(path)?))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer (buffered internally).
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            out: BufWriter::new(writer),
        }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, ev: &SimEvent) {
        let line = serde_json::to_string(ev).expect("SimEvent serializes");
        self.out.write_all(line.as_bytes()).expect("trace write");
        self.out.write_all(b"\n").expect("trace write");
    }

    fn flush(&mut self) {
        self.out.flush().expect("trace flush");
    }
}

/// How a [`SimConfig`](crate::SimConfig) asks for tracing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum TraceMode {
    /// No tracing (the default; near-zero cost).
    #[default]
    Off,
    /// Count events only — no sink, counts via
    /// [`Machine::trace_counts`](crate::Machine::trace_counts).
    Counting,
    /// Count events and write a JSONL trace to `path`.
    Jsonl { path: String },
}

/// The machine's tracing front end: a disabled flag check, the running
/// [`EventCounts`], and an optional sink.
pub struct Tracer {
    enabled: bool,
    counts: EventCounts,
    sink: Option<Box<dyn TraceSink>>,
}

impl Tracer {
    /// A disabled tracer: `emit_with` is a single branch.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            counts: EventCounts::default(),
            sink: None,
        }
    }

    /// An enabled tracer that only counts (no sink).
    pub fn counting() -> Tracer {
        Tracer {
            enabled: true,
            counts: EventCounts::default(),
            sink: None,
        }
    }

    /// An enabled tracer forwarding events to `sink` (counts are kept
    /// too).
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Tracer {
        Tracer {
            enabled: true,
            counts: EventCounts::default(),
            sink: Some(sink),
        }
    }

    /// Builds the tracer a [`TraceMode`] asks for.
    ///
    /// # Panics
    ///
    /// Panics if a JSONL trace file cannot be created.
    pub fn from_mode(mode: &TraceMode) -> Tracer {
        match mode {
            TraceMode::Off => Tracer::disabled(),
            TraceMode::Counting => Tracer::counting(),
            TraceMode::Jsonl { path } => Tracer::with_sink(Box::new(
                JsonlSink::create(std::path::Path::new(path)).expect("create trace file"),
            )),
        }
    }

    /// `true` when events are being recorded. Emission sites that need
    /// extra work to *build* an event (e.g. querying the IPEX degree
    /// before and after a voltage update) should gate on this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emits the event built by `build` — which is never called when
    /// tracing is disabled, keeping the disabled path to one branch.
    #[inline]
    pub fn emit_with(&mut self, build: impl FnOnce() -> SimEvent) {
        if !self.enabled {
            return;
        }
        let ev = build();
        self.counts.record(&ev);
        if let Some(sink) = &mut self.sink {
            sink.emit(&ev);
        }
    }

    /// The tallies recorded so far (all zero while disabled).
    pub fn counts(&self) -> &EventCounts {
        &self.counts
    }

    /// Overwrites the running tallies — used by snapshot resume so a
    /// split run's final counts match an uninterrupted run's.
    pub fn restore_counts(&mut self, counts: EventCounts) {
        self.counts = counts;
    }

    /// Flushes the sink, if any.
    pub fn flush(&mut self) {
        if let Some(sink) = &mut self.sink {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_builds_events() {
        let mut t = Tracer::disabled();
        t.emit_with(|| panic!("must not be called"));
        assert_eq!(*t.counts(), EventCounts::default());
    }

    #[test]
    fn counting_tracer_accumulates_wide_counts() {
        let mut t = Tracer::counting();
        t.emit_with(|| SimEvent::PrefetchThrottled {
            cycle: 1,
            path: PathId::Data,
            count: 3,
        });
        t.emit_with(|| SimEvent::PrefetchIssued {
            cycle: 2,
            path: PathId::Inst,
            block: 0x40,
            done_at: 22,
        });
        assert_eq!(t.counts().prefetch_throttled, 3);
        assert_eq!(t.counts().prefetch_issued, 1);
    }

    #[test]
    fn counting_sink_shares_counts_across_clones() {
        let sink = CountingSink::new();
        let mut t = Tracer::with_sink(Box::new(sink.clone()));
        t.emit_with(|| SimEvent::Restore {
            cycle: 9,
            power_cycle: 2,
        });
        assert_eq!(sink.counts().restore, 1);
    }

    #[test]
    fn jsonl_sink_emits_one_parsable_line_per_event() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buf);
            sink.emit(&SimEvent::OutageBegin {
                cycle: 100,
                voltage: 3.2,
            });
            sink.emit(&SimEvent::CacheFill {
                cycle: 101,
                path: PathId::Data,
                block: 0x120,
            });
            sink.flush();
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let ev: SimEvent = serde_json::from_str(line).expect("round-trips");
            assert_eq!(serde_json::to_string(&ev).unwrap(), line);
        }
    }

    #[test]
    fn event_kind_matches_jsonl_tag() {
        let ev = SimEvent::ThresholdCross {
            cycle: 5,
            path: PathId::Inst,
            voltage: 3.29,
            old_degree: 2,
            new_degree: 1,
        };
        let json = serde_json::to_string(&ev).unwrap();
        assert!(json.starts_with("{\"threshold-cross\""), "{json}");
        assert_eq!(ev.kind(), "threshold-cross");
        assert_eq!(ev.cycle(), 5);
    }
}
