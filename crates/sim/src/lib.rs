//! # ehs-sim — cycle-level nonvolatile-processor simulator
//!
//! Ties the workspace together into the evaluated system: a 200 MHz
//! in-order core (functional execution by `ehs-isa`'s interpreter) behind
//! a 2 kB ICache and 2 kB DCache with per-cache prefetch buffers
//! (`ehs-mem`), hardware prefetchers (`ehs-prefetch`) optionally
//! throttled by IPEX (`ipex`), a ReRAM main memory, and a harvested
//! energy supply with a 0.47 µF capacitor (`ehs-energy`).
//!
//! The crash-consistency model is NVSRAMCache: when the capacitor falls
//! to `V_backup`, the machine JIT-checkpoints all dirty cache blocks to
//! NVM and the register file to nonvolatile flip-flops, powers off, and
//! recharges until `V_on`; on reboot the registers are restored and the
//! caches come back cold. The *ideal* variant (Fig. 11) makes backup and
//! restore free.
//!
//! ```no_run
//! use ehs_sim::{Machine, SimConfig};
//!
//! let workload = ehs_workloads::by_name("fft").unwrap();
//! let mut machine = Machine::new(SimConfig::builder().build(), &workload.program());
//! let result = machine.run().expect("completes within the cycle budget");
//! println!("cycles: {}", result.stats.total_cycles);
//! ```

mod builder;
pub mod canon;
mod config;
mod machine;
mod result;
pub mod slice;
pub mod snapshot;
mod trace;

pub use builder::{ConfigError, Ipex, SimConfigBuilder};
pub use config::{PrefetchMode, SimConfig, CYCLES_PER_TRACE_SAMPLE};

/// Identifies the execution-engine generation for throughput trajectory
/// records (`BENCH_core.json`). Bump only when the *performance* of the
/// core loop changes materially; architectural results must stay
/// bit-identical across engine generations (the records carry a result
/// digest to prove it).
pub const ENGINE_ID: &str = "predecode-v1";
pub use machine::{CycleMark, FaultPlan, Machine, RunStatus, SimError};
pub use result::{SimResult, SimStats};
pub use slice::{ForwardPass, SliceError, SliceOutcome, SlicePlan, Stitched};
pub use snapshot::{MemRun, Phase, Snapshot, SnapshotError, SNAPSHOT_VERSION};
pub use trace::{
    CountingSink, EventCounts, JsonlSink, NullSink, PathId, SimEvent, TraceMode, TraceSink, Tracer,
};

/// The one-stop import for simulator users: machine, configuration
/// builder, results, errors and trace sinks, plus the power-trace types
/// from `ehs-energy` that every caller needs alongside them.
///
/// ```
/// use ehs_sim::prelude::*;
///
/// let cfg = SimConfig::builder().ipex(Ipex::Both).build();
/// let trace = TraceSpec::default_rfhome();
/// # let _ = (cfg, trace);
/// ```
pub mod prelude {
    pub use crate::builder::{ConfigError, Ipex, SimConfigBuilder};
    pub use crate::config::{PrefetchMode, SimConfig};
    pub use crate::machine::{FaultPlan, Machine, RunStatus, SimError};
    pub use crate::result::{SimResult, SimStats};
    pub use crate::snapshot::{Phase, Snapshot, SnapshotError};
    pub use crate::trace::{
        CountingSink, EventCounts, JsonlSink, NullSink, PathId, SimEvent, TraceMode, TraceSink,
        Tracer,
    };
    pub use ehs_energy::{PowerTrace, TraceKind, TraceSpec};
}
