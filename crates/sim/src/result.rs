//! Simulation statistics and results.

use ehs_energy::EnergyBreakdown;
use ehs_mem::{CacheStats, NvmStats, PrefetchBufferStats};
use ipex::IpexStats;
use serde::{Deserialize, Serialize};

/// Aggregate counters from one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total simulated cycles, including off/recharge time. Execution
    /// *time* is this divided by 200 MHz, and speedups compare it.
    pub total_cycles: u64,
    /// Cycles spent powered on and executing.
    pub on_cycles: u64,
    /// Cycles spent powered off (recharging), plus backup/restore time.
    pub off_cycles: u64,
    /// Pipeline stall cycles attributable to ICache misses.
    pub istall_cycles: u64,
    /// Pipeline stall cycles attributable to DCache misses.
    pub dstall_cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Number of power cycles (reboots).
    pub power_cycles: u64,
    /// Dirty blocks flushed by JIT checkpoints.
    pub checkpoint_blocks: u64,
    /// Demand misses serviced by NVM for the ICache.
    pub i_demand_reads: u64,
    /// Demand misses serviced by NVM for the DCache.
    pub d_demand_reads: u64,
    /// Prefetch candidates skipped because the block was already cached.
    pub redundant_cache_skips: u64,
}

impl SimStats {
    /// Fraction of on-time spent stalled on ICache misses.
    pub fn istall_fraction(&self) -> f64 {
        if self.on_cycles == 0 {
            0.0
        } else {
            self.istall_cycles as f64 / self.on_cycles as f64
        }
    }

    /// Fraction of on-time spent stalled on DCache misses.
    pub fn dstall_fraction(&self) -> f64 {
        if self.on_cycles == 0 {
            0.0
        } else {
            self.dstall_cycles as f64 / self.on_cycles as f64
        }
    }
}

/// Everything measured by one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Aggregate machine counters.
    pub stats: SimStats,
    /// Energy by subsystem (Fig. 14 buckets).
    pub energy: EnergyBreakdown,
    /// ICache counters.
    pub icache: CacheStats,
    /// DCache counters.
    pub dcache: CacheStats,
    /// ICache prefetch-buffer counters.
    pub ibuf: PrefetchBufferStats,
    /// DCache prefetch-buffer counters.
    pub dbuf: PrefetchBufferStats,
    /// NVM traffic counters.
    pub nvm: NvmStats,
    /// IPEX controller stats for the ICache, when enabled.
    pub ipex_i: Option<IpexStats>,
    /// IPEX controller stats for the DCache, when enabled.
    pub ipex_d: Option<IpexStats>,
}

impl SimResult {
    /// Speedup of this run relative to `baseline` (ratio of total
    /// execution times; > 1 means faster).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        baseline.stats.total_cycles as f64 / self.stats.total_cycles as f64
    }

    /// Total energy consumed, nanojoules.
    pub fn total_energy_nj(&self) -> f64 {
        self.energy.total_nj()
    }

    /// Prefetch accuracy for the instruction stream, `[0, 1]`.
    pub fn inst_prefetch_accuracy(&self) -> f64 {
        self.ibuf.accuracy()
    }

    /// Prefetch accuracy for the data stream, `[0, 1]`.
    pub fn data_prefetch_accuracy(&self) -> f64 {
        self.dbuf.accuracy()
    }

    /// Prefetch coverage for the instruction stream: useful prefetches
    /// over useful prefetches plus demand NVM reads.
    pub fn inst_prefetch_coverage(&self) -> f64 {
        coverage(self.ibuf.useful, self.stats.i_demand_reads)
    }

    /// Prefetch coverage for the data stream.
    pub fn data_prefetch_coverage(&self) -> f64 {
        coverage(self.dbuf.useful, self.stats.d_demand_reads)
    }

    /// Total prefetch operations issued (NVM prefetch reads).
    pub fn prefetch_operations(&self) -> u64 {
        self.nvm.prefetch_reads
    }
}

fn coverage(useful: u64, demand: u64) -> f64 {
    if useful + demand == 0 {
        0.0
    } else {
        useful as f64 / (useful + demand) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_fractions() {
        let s = SimStats {
            on_cycles: 100,
            istall_cycles: 25,
            dstall_cycles: 10,
            ..SimStats::default()
        };
        assert!((s.istall_fraction() - 0.25).abs() < 1e-12);
        assert!((s.dstall_fraction() - 0.10).abs() < 1e-12);
        assert_eq!(SimStats::default().istall_fraction(), 0.0);
    }

    #[test]
    fn coverage_limits() {
        assert_eq!(super::coverage(0, 0), 0.0);
        assert_eq!(super::coverage(10, 0), 1.0);
        assert!((super::coverage(10, 30) - 0.25).abs() < 1e-12);
    }
}
