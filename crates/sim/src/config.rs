//! Simulator configuration and the paper's standard presets.

use ehs_energy::{CapacitorConfig, EnergyModel, PowerTrace, TraceSpec};
use ehs_mem::{CacheConfig, NvmConfig};
use ehs_prefetch::{DataPrefetcherKind, InstPrefetcherKind};
use ipex::{IpexConfig, PolicyConfig};
use serde::{Deserialize, Serialize};

use crate::builder::SimConfigBuilder;
use crate::trace::TraceMode;

/// Core cycles per 10 µs power-trace sample (200 MHz × 10 µs).
pub const CYCLES_PER_TRACE_SAMPLE: u64 = 2000;

/// How a cache's prefetcher is controlled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PrefetchMode {
    /// No prefetcher at all ("NVSRAMCache (No Prefetcher)").
    Off,
    /// Conventional, unthrottled prefetching (the paper's baseline).
    Conventional,
    /// Prefetching throttled by IPEX with the given configuration.
    Ipex(IpexConfig),
    /// Prefetching throttled by an alternative [`PolicyConfig`]
    /// controller (predictive, hysteresis, static-degree). IPEX itself
    /// keeps the dedicated `Ipex` variant so existing configurations —
    /// and the cache keys derived from their canonical JSON — are
    /// unchanged.
    Policy(PolicyConfig),
}

impl PrefetchMode {
    /// `true` unless the prefetcher is disabled.
    pub fn enabled(&self) -> bool {
        !matches!(self, PrefetchMode::Off)
    }
}

/// Full configuration of a simulated EHS.
///
/// [`SimConfig::default`] reproduces Table 1; [`SimConfig::builder`]
/// derives the comparison points used throughout §6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// ICache geometry (Table 1: 2 kB, 4-way).
    pub icache: CacheConfig,
    /// DCache geometry (Table 1: 2 kB, 4-way).
    pub dcache: CacheConfig,
    /// Prefetch-buffer entries per cache (Table 1: 4 × 16 B).
    pub prefetch_buffer_entries: usize,
    /// Instruction prefetcher (Table 1 default: sequential).
    pub inst_prefetcher: InstPrefetcherKind,
    /// Data prefetcher (Table 1 default: stride).
    pub data_prefetcher: DataPrefetcherKind,
    /// Natural prefetch degree (Table 1: 2 initially).
    pub prefetch_degree: u32,
    /// ICache prefetch control.
    pub inst_mode: PrefetchMode,
    /// DCache prefetch control.
    pub data_mode: PrefetchMode,
    /// Main memory parameters (Table 1: 16 MB ReRAM).
    pub nvm: NvmConfig,
    /// Capacitor parameters (Table 1: 0.47 µF).
    pub capacitor: CapacitorConfig,
    /// Energy model constants.
    pub energy: EnergyModel,
    /// Zero-cost backup/restore — "NVSRAMCache (ideal)" of Fig. 11.
    pub ideal_backup: bool,
    /// Fixed restore latency after reboot, cycles (ignored when ideal).
    pub restore_cycles: u64,
    /// Fixed backup latency on power failure, cycles, in addition to the
    /// per-dirty-block NVM writes (ignored when ideal).
    pub backup_base_cycles: u64,
    /// Safety limit on total simulated cycles (on + off time).
    pub max_cycles: u64,
    /// Instruction latencies in cycles: `[alu, mul, div, branch, jump]`.
    pub latencies: [u64; 5],
    /// Event tracing (off by default; see [`crate::Tracer`]).
    pub trace: TraceMode,
}

/// The paper's Table-1 system with conventional (unthrottled)
/// prefetching — identical to `SimConfig::builder().build()`.
impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            icache: CacheConfig::paper_default(),
            dcache: CacheConfig::paper_default(),
            prefetch_buffer_entries: 4,
            inst_prefetcher: InstPrefetcherKind::Sequential,
            data_prefetcher: DataPrefetcherKind::Stride,
            prefetch_degree: 2,
            inst_mode: PrefetchMode::Conventional,
            data_mode: PrefetchMode::Conventional,
            nvm: NvmConfig::paper_default(),
            capacitor: CapacitorConfig::paper_default(),
            energy: EnergyModel::paper_default(),
            ideal_backup: false,
            restore_cycles: 200,
            backup_base_cycles: 100,
            max_cycles: 40_000_000_000,
            latencies: [1, 3, 12, 1, 1],
            trace: TraceMode::Off,
        }
    }
}

impl SimConfig {
    /// Starts a validating, chainable [`SimConfigBuilder`] from the
    /// Table-1 defaults — the one way to construct configurations:
    /// `SimConfig::builder().ipex(Ipex::Both).cache_kb(1).build()`.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// This configuration with the ideal (zero-cost) backup/restore.
    pub fn with_ideal_backup(mut self) -> SimConfig {
        self.ideal_backup = true;
        self
    }

    /// This configuration with both caches set to `size_bytes`.
    pub fn with_cache_size(mut self, size_bytes: u32) -> SimConfig {
        self.icache.size_bytes = size_bytes;
        self.dcache.size_bytes = size_bytes;
        self
    }

    /// This configuration with the given trace mode.
    pub fn with_trace_mode(mut self, trace: TraceMode) -> SimConfig {
        self.trace = trace;
        self
    }

    /// The default power trace used throughout §6: synthetic RFHome.
    pub fn default_trace() -> PowerTrace {
        SimConfig::default_trace_spec().synthesize()
    }

    /// The identity of [`SimConfig::default_trace`] as a cacheable
    /// [`TraceSpec`] — what sweep points should carry instead of the
    /// samples themselves.
    pub fn default_trace_spec() -> TraceSpec {
        TraceSpec::default_rfhome()
    }

    /// Canonical JSON rendering of this configuration (compact, map
    /// keys sorted recursively): the form that content-addressed cache
    /// keys are derived from. See [`crate::canon`].
    pub fn canonical_json(&self) -> String {
        crate::canon::canonical_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let c = SimConfig::default();
        assert_eq!(c.icache.size_bytes, 2048);
        assert_eq!(c.icache.assoc, 4);
        assert_eq!(c.prefetch_buffer_entries, 4);
        assert_eq!(c.prefetch_degree, 2);
        assert!(!c.ideal_backup);
        assert!(matches!(c.inst_mode, PrefetchMode::Conventional));
    }

    #[test]
    fn cache_size_builder() {
        let c = SimConfig::default().with_cache_size(512);
        assert_eq!(c.icache.size_bytes, 512);
        assert_eq!(c.dcache.size_bytes, 512);
    }

    #[test]
    fn default_trace_spec_matches_default_trace() {
        // Spot-check only the first samples: synthesizing twice is cheap
        // but comparing 400k f64s is not necessary.
        let spec = SimConfig::default_trace_spec().synthesize();
        let direct = SimConfig::default_trace();
        assert_eq!(spec.len(), direct.len());
        for i in 0..64 {
            assert_eq!(spec.power_mw_at(i), direct.power_mw_at(i));
        }
    }
}
