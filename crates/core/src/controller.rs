//! The IPEX controller: voltage-driven prefetch-degree throttling.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::{IpexConfig, IpexRegisters};

/// The controller's bi-modal operating state (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Capacitor voltage above all thresholds: the underlying prefetcher
    /// runs unthrottled.
    HighPerformance,
    /// Voltage below at least one threshold: the prefetch degree is
    /// reduced to save energy ahead of the expected outage.
    EnergySaving,
}

/// Counters summarising a controller's activity, for the evaluation
/// figures (prefetch-operation reduction, threshold adaptation, …).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpexStats {
    /// Prefetch candidates issued (after throttling).
    pub issued: u64,
    /// Prefetch candidates suppressed by throttling.
    pub throttled: u64,
    /// Throttled candidates that were later reissued by the §5.1
    /// extension.
    pub reissued: u64,
    /// Transitions into energy-saving mode.
    pub saving_mode_entries: u64,
    /// Reboots where the thresholds were lowered (throttling was eager).
    pub threshold_lowers: u64,
    /// Reboots where the thresholds were raised (throttling was lazy).
    pub threshold_raises: u64,
    /// Power cycles observed.
    pub power_cycles: u64,
}

impl IpexStats {
    /// Lifetime throttling rate: throttled / (issued + throttled).
    pub fn overall_throttle_rate(&self) -> f64 {
        let total = self.issued + self.throttled;
        if total == 0 {
            0.0
        } else {
            self.throttled as f64 / total as f64
        }
    }
}

/// Complete serializable state of an [`IpexController`] — configuration,
/// adapted threshold ladder, registers, mode and the reissue queue.
/// Produced by [`IpexController::export_state`], consumed by
/// [`IpexController::import_state`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpexControllerState {
    /// Configuration the controller was built with.
    pub cfg: IpexConfig,
    /// Current (possibly adapted) threshold ladder, highest first.
    pub thresholds: Vec<f64>,
    /// Register file.
    pub regs: IpexRegisters,
    /// Current prefetch degree (`Rcpd`).
    pub r_cpd: u32,
    /// Number of thresholds at or above the current voltage.
    pub level: u32,
    /// Operating mode.
    pub mode: Mode,
    /// Reissue queue, oldest first.
    pub reissue_queue: Vec<u32>,
    /// Counters at the time of the export.
    pub stats: IpexStats,
}

/// The per-cache IPEX controller.
///
/// Drive it with [`IpexController::observe_voltage`] (every cycle or on
/// every meaningful voltage change), pass each prefetcher candidate list
/// through [`IpexController::filter`], and notify it of outages via
/// [`IpexController::on_power_failure`] / [`IpexController::on_reboot`].
#[derive(Debug, Clone)]
pub struct IpexController {
    cfg: IpexConfig,
    /// Current threshold ladder, highest first. Adapted at reboot.
    thresholds: Vec<f64>,
    regs: IpexRegisters,
    /// Current prefetch degree (the prefetcher's `Rcpd`).
    r_cpd: u32,
    /// Number of thresholds at or above the current voltage.
    level: u32,
    mode: Mode,
    /// Recently throttled candidates for the §5.1 reissue extension.
    reissue_queue: VecDeque<u32>,
    stats: IpexStats,
}

impl IpexController {
    /// Creates a controller in high-performance mode at the initial
    /// degree.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see [`IpexConfig`]).
    pub fn new(cfg: IpexConfig) -> IpexController {
        cfg.validate();
        IpexController {
            thresholds: cfg.initial_thresholds(),
            regs: IpexRegisters::new(cfg.initial_degree),
            r_cpd: cfg.initial_degree,
            level: 0,
            mode: Mode::HighPerformance,
            reissue_queue: VecDeque::new(),
            stats: IpexStats::default(),
            cfg,
        }
    }

    /// The configuration the controller was built with.
    pub fn config(&self) -> &IpexConfig {
        &self.cfg
    }

    /// The current threshold ladder, highest first.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// The current prefetch degree (`Rcpd`).
    pub fn current_degree(&self) -> u32 {
        self.r_cpd
    }

    /// The current operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The register file (for checkpoint accounting and inspection).
    pub fn registers(&self) -> IpexRegisters {
        self.regs
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> IpexStats {
        self.stats
    }

    /// Degree implied by a throttle level: halved once per crossed
    /// threshold (`§4.2`: "halves the prefetch degree each time the
    /// capacitor voltage falls below a threshold").
    fn degree_for_level(&self, level: u32) -> u32 {
        self.regs.r_ipd as u32 >> level.min(31)
    }

    /// Updates the controller with the current capacitor voltage,
    /// adjusting the degree on threshold crossings. Returns candidates to
    /// reissue if the §5.1 extension is enabled and the controller just
    /// returned to high-performance mode.
    pub fn observe_voltage(&mut self, voltage: f64) -> Option<Vec<u32>> {
        let new_level = self.thresholds.iter().filter(|&&t| voltage <= t).count() as u32;
        if new_level == self.level {
            return None;
        }
        self.level = new_level;
        self.r_cpd = self.degree_for_level(new_level);
        let new_mode = if new_level == 0 {
            Mode::HighPerformance
        } else {
            Mode::EnergySaving
        };
        let mut reissue = None;
        if new_mode != self.mode {
            if new_mode == Mode::EnergySaving {
                self.stats.saving_mode_entries += 1;
            } else if self.cfg.reissue_throttled && !self.reissue_queue.is_empty() {
                let drained: Vec<u32> = self.reissue_queue.drain(..).collect();
                self.stats.reissued += drained.len() as u64;
                reissue = Some(drained);
            }
            self.mode = new_mode;
        }
        reissue
    }

    /// Filters a prefetcher's candidate list down to the current degree,
    /// counting issued and throttled candidates in the registers.
    /// Returns the number of candidates kept (the list is truncated in
    /// place, preserving the prefetcher's priority order).
    ///
    /// In high-performance mode the underlying prefetcher "operates as
    /// usual, without being throttled" (§4.2, Fig. 9): the whole list
    /// passes through, including any degree the prefetcher's own
    /// confidence ramp chose above `Ripd`.
    pub fn filter(&mut self, candidates: &mut Vec<u32>) -> usize {
        let total = candidates.len();
        // Most accesses propose nothing (the prefetcher only triggers on
        // new blocks); every update below is a no-op then.
        if total == 0 {
            return 0;
        }
        let keep = if self.mode == Mode::HighPerformance {
            total
        } else {
            total.min(self.r_cpd as usize)
        };
        if self.cfg.reissue_throttled {
            for &c in &candidates[keep..] {
                if self.reissue_queue.len() == self.cfg.reissue_queue_len {
                    self.reissue_queue.pop_front();
                }
                self.reissue_queue.push_back(c);
            }
        }
        candidates.truncate(keep);
        let throttled = (total - keep) as u32;
        self.regs.r_total = self.regs.r_total.saturating_add(total as u32);
        self.regs.r_throttled = self.regs.r_throttled.saturating_add(throttled);
        self.stats.issued += keep as u64;
        self.stats.throttled += throttled as u64;
        keep
    }

    /// Notifies the controller of an imminent power failure. `Rthrottled`
    /// and `Rtotal` are JIT-checkpointed (their bits are charged by the
    /// simulator); the volatile mode/level state will be rebuilt at
    /// reboot.
    pub fn on_power_failure(&mut self) {
        // Registers persist (checkpointed); nothing else survives.
        self.reissue_queue.clear();
    }

    /// Reboot processing (§4.1.1): computes the throttling rate `Rtr`,
    /// adapts the voltage thresholds, resets `Rcpd` to `Ripd`, and starts
    /// the new power cycle in high-performance mode.
    pub fn on_reboot(&mut self) {
        self.stats.power_cycles += 1;
        let had_candidates = self.regs.r_total > 0;
        self.regs.on_reboot();
        if self.cfg.adaptive_thresholds && had_candidates {
            let step = if self.regs.r_tr as f64 >= self.cfg.throttle_rate_threshold {
                // Over-throttling: lower thresholds (lazier throttling).
                self.stats.threshold_lowers += 1;
                -self.cfg.voltage_step_v
            } else {
                // Under-throttling: raise thresholds (more energy saving).
                self.stats.threshold_raises += 1;
                self.cfg.voltage_step_v
            };
            let top = (self.thresholds[0] + step)
                .clamp(self.cfg.min_top_threshold_v, self.cfg.max_top_threshold_v);
            for (i, t) in self.thresholds.iter_mut().enumerate() {
                *t = top - i as f64 * self.cfg.threshold_spacing_v;
            }
        }
        self.r_cpd = self.regs.r_ipd as u32;
        self.level = 0;
        self.mode = Mode::HighPerformance;
    }

    /// The complete internal state as a serializable value, for
    /// snapshot/resume.
    pub fn export_state(&self) -> IpexControllerState {
        IpexControllerState {
            cfg: self.cfg,
            thresholds: self.thresholds.clone(),
            regs: self.regs,
            r_cpd: self.r_cpd,
            level: self.level,
            mode: self.mode,
            reissue_queue: self.reissue_queue.iter().copied().collect(),
            stats: self.stats,
        }
    }

    /// Rebuilds a controller from state previously produced by
    /// [`IpexController::export_state`].
    ///
    /// # Errors
    ///
    /// Rejects a state whose threshold ladder length disagrees with its
    /// own configuration (a corrupted snapshot).
    pub fn from_state(state: &IpexControllerState) -> Result<IpexController, String> {
        state.cfg.validate();
        if state.thresholds.len() != state.cfg.threshold_count as usize {
            return Err(format!(
                "controller state has {} thresholds, config wants {}",
                state.thresholds.len(),
                state.cfg.threshold_count
            ));
        }
        Ok(IpexController {
            cfg: state.cfg,
            thresholds: state.thresholds.clone(),
            regs: state.regs,
            r_cpd: state.r_cpd,
            level: state.level,
            mode: state.mode,
            reissue_queue: state.reissue_queue.iter().copied().collect(),
            stats: state.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> IpexController {
        IpexController::new(IpexConfig::paper_default())
    }

    #[test]
    fn degree_ladder_matches_figure9() {
        let mut c = ctl();
        // Fig. 9: V=3.35 -> 2; 3.28 -> 1; 3.35 -> 2; 3.28 -> 1; 3.22 -> 0.
        c.observe_voltage(3.35);
        assert_eq!(c.current_degree(), 2);
        assert_eq!(c.mode(), Mode::HighPerformance);
        c.observe_voltage(3.28);
        assert_eq!(c.current_degree(), 1);
        assert_eq!(c.mode(), Mode::EnergySaving);
        c.observe_voltage(3.35);
        assert_eq!(c.current_degree(), 2);
        assert_eq!(c.mode(), Mode::HighPerformance);
        c.observe_voltage(3.28);
        assert_eq!(c.current_degree(), 1);
        c.observe_voltage(3.22);
        assert_eq!(c.current_degree(), 0);
        assert_eq!(c.stats().saving_mode_entries, 2);
    }

    #[test]
    fn filter_truncates_and_counts() {
        let mut c = ctl();
        c.observe_voltage(3.28); // degree 1
        let mut cand = vec![0xa0, 0xb0, 0xc0];
        let kept = c.filter(&mut cand);
        assert_eq!(kept, 1);
        assert_eq!(cand, vec![0xa0]);
        let regs = c.registers();
        assert_eq!(regs.r_total, 3);
        assert_eq!(regs.r_throttled, 2);
        assert_eq!(c.stats().issued, 1);
        assert_eq!(c.stats().throttled, 2);
    }

    #[test]
    fn degree_zero_blocks_everything() {
        let mut c = ctl();
        c.observe_voltage(3.2); // below both thresholds
        let mut cand = vec![0xa0, 0xb0];
        assert_eq!(c.filter(&mut cand), 0);
        assert!(cand.is_empty());
        assert_eq!(c.registers().r_throttled, 2);
    }

    #[test]
    fn figure7_walkthrough() {
        // Reproduces the register timeline of Fig. 7.
        let mut c = ctl();
        c.observe_voltage(3.4); // T0
        assert_eq!(c.current_degree(), 2);
        c.observe_voltage(3.28); // T1: below V1=3.3
        assert_eq!(c.current_degree(), 1);
        let mut cand = vec![0x100, 0x110]; // blocks A and B
        c.filter(&mut cand);
        assert_eq!(cand, vec![0x100]); // only A prefetched
        let r = c.registers();
        assert_eq!((r.r_total, r.r_throttled), (2, 1));
        c.observe_voltage(3.22); // T2 region
        c.on_power_failure(); // T3
        c.on_reboot(); // T4
        let r = c.registers();
        assert!((r.r_tr - 0.5).abs() < 1e-6, "Rtr = 50%");
        assert_eq!(c.current_degree(), 2, "Rcpd reset to Ripd");
        // Rtr = 50% >= 5%: thresholds lowered by 0.05.
        assert!((c.thresholds()[0] - 3.25).abs() < 1e-9);
        assert!((c.thresholds()[1] - 3.20).abs() < 1e-9);
        assert_eq!(c.stats().threshold_lowers, 1);
    }

    #[test]
    fn low_throttle_rate_raises_thresholds() {
        let mut c = ctl();
        c.observe_voltage(3.5);
        let mut cand: Vec<u32> = (0..100).map(|i| i * 16).collect();
        // Degree 2 < 100 candidates... keep full: feed in pairs.
        for chunk in cand.chunks(2) {
            let mut v = chunk.to_vec();
            c.filter(&mut v);
        }
        cand.clear();
        c.on_power_failure();
        c.on_reboot();
        assert_eq!(c.stats().threshold_raises, 1);
        assert!((c.thresholds()[0] - 3.35).abs() < 1e-9);
    }

    #[test]
    fn idle_cycle_does_not_adapt() {
        let mut c = ctl();
        c.on_power_failure();
        c.on_reboot();
        assert_eq!(c.stats().threshold_raises, 0);
        assert_eq!(c.stats().threshold_lowers, 0);
        assert!((c.thresholds()[0] - 3.3).abs() < 1e-9);
    }

    #[test]
    fn threshold_adaptation_clamped() {
        let mut c = ctl();
        // Repeatedly raise: never exceeds max_top_threshold_v.
        for _ in 0..50 {
            let mut v = vec![0x10];
            c.filter(&mut v); // no throttling -> raise
            c.on_power_failure();
            c.on_reboot();
        }
        assert!(c.thresholds()[0] <= c.config().max_top_threshold_v + 1e-9);
        // And lowering clamps at the floor.
        for _ in 0..50 {
            c.observe_voltage(3.0); // degree 0 at any plausible thresholds
            let mut v = vec![0x10, 0x20];
            c.filter(&mut v);
            c.on_power_failure();
            c.on_reboot();
            c.observe_voltage(3.6);
        }
        assert!(c.thresholds()[0] >= c.config().min_top_threshold_v - 1e-9);
    }

    #[test]
    fn fixed_thresholds_ablation() {
        let mut c = IpexController::new(IpexConfig {
            adaptive_thresholds: false,
            ..IpexConfig::paper_default()
        });
        let mut v = vec![0x10, 0x20];
        c.observe_voltage(3.0);
        c.filter(&mut v);
        c.on_power_failure();
        c.on_reboot();
        assert!((c.thresholds()[0] - 3.3).abs() < 1e-9);
    }

    #[test]
    fn reissue_extension_returns_throttled_blocks() {
        let mut c = IpexController::new(IpexConfig {
            reissue_throttled: true,
            ..IpexConfig::paper_default()
        });
        c.observe_voltage(3.28); // degree 1
        let mut cand = vec![0xa0, 0xb0, 0xc0];
        c.filter(&mut cand);
        // Recover: the two throttled blocks come back.
        let reissue = c.observe_voltage(3.5).expect("reissue on recovery");
        assert_eq!(reissue, vec![0xb0, 0xc0]);
        assert_eq!(c.stats().reissued, 2);
        // Queue drained: a second recovery yields nothing.
        c.observe_voltage(3.28);
        assert!(c.observe_voltage(3.5).is_none());
    }

    #[test]
    fn reissue_queue_bounded() {
        let mut c = IpexController::new(IpexConfig {
            reissue_throttled: true,
            reissue_queue_len: 2,
            ..IpexConfig::paper_default()
        });
        c.observe_voltage(3.2); // degree 0
        let mut cand = vec![0xa0, 0xb0, 0xc0];
        c.filter(&mut cand);
        let reissue = c.observe_voltage(3.5).expect("reissue");
        assert_eq!(reissue, vec![0xb0, 0xc0], "oldest dropped");
    }

    #[test]
    fn power_failure_clears_reissue_queue() {
        let mut c = IpexController::new(IpexConfig {
            reissue_throttled: true,
            ..IpexConfig::paper_default()
        });
        c.observe_voltage(3.28);
        let mut cand = vec![0xa0, 0xb0];
        c.filter(&mut cand);
        c.on_power_failure();
        c.on_reboot();
        assert!(
            c.observe_voltage(3.5).is_none(),
            "queue did not survive the outage"
        );
    }

    #[test]
    fn initial_degree_four_halves_twice() {
        let mut c = IpexController::new(IpexConfig {
            initial_degree: 4,
            ..IpexConfig::paper_default()
        });
        c.observe_voltage(3.28);
        assert_eq!(c.current_degree(), 2);
        c.observe_voltage(3.22);
        assert_eq!(c.current_degree(), 1);
    }

    #[test]
    fn overall_throttle_rate() {
        let mut c = ctl();
        c.observe_voltage(3.28);
        let mut cand = vec![1, 2, 3, 4];
        c.filter(&mut cand);
        assert!((c.stats().overall_throttle_rate() - 0.75).abs() < 1e-12);
        assert_eq!(IpexStats::default().overall_throttle_rate(), 0.0);
    }
}
