//! The four per-cache IPEX registers (§4.1).

use serde::{Deserialize, Serialize};

/// The register file IPEX adds to each cache's prefetcher: `Rthrottled`,
/// `Rtotal`, `Rtr` (32 bits each) and the 3-bit `Ripd`.
///
/// `Rthrottled`/`Rtotal` are JIT-checkpointed across outages (the
/// simulator charges their bits to the backup cost); `Rtr` is recomputed
/// at reboot; `Ripd` holds the initial prefetch degree consulted when the
/// prefetcher resets `Rcpd` after a power failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IpexRegisters {
    /// Prefetch candidates suppressed by throttling this power cycle.
    pub r_throttled: u32,
    /// Total candidates (issued + throttled) this power cycle.
    pub r_total: u32,
    /// Throttling rate computed at the last reboot (`Rthrottled/Rtotal`).
    pub r_tr: f32,
    /// Initial prefetch degree (3-bit).
    pub r_ipd: u8,
}

/// Bit width of the register file, per cache (§6.1: 32 + 32 + 32 + 3).
pub const BITS_PER_CACHE: u32 = 32 + 32 + 32 + 3;

impl IpexRegisters {
    /// Fresh registers with the given initial degree.
    pub fn new(initial_degree: u32) -> IpexRegisters {
        IpexRegisters {
            r_throttled: 0,
            r_total: 0,
            r_tr: 0.0,
            r_ipd: initial_degree as u8,
        }
    }

    /// The throttling rate implied by the current counters, in `[0, 1]`
    /// (zero when no candidates were seen).
    pub fn throttling_rate(&self) -> f64 {
        if self.r_total == 0 {
            0.0
        } else {
            self.r_throttled as f64 / self.r_total as f64
        }
    }

    /// Reboot bookkeeping: latches `Rtr` from the checkpointed counters
    /// and clears them for the new power cycle.
    pub fn on_reboot(&mut self) {
        self.r_tr = self.throttling_rate() as f32;
        self.r_throttled = 0;
        self.r_total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_count_matches_paper() {
        assert_eq!(BITS_PER_CACHE, 99);
    }

    #[test]
    fn throttling_rate_zero_when_idle() {
        let r = IpexRegisters::new(2);
        assert_eq!(r.throttling_rate(), 0.0);
    }

    #[test]
    fn reboot_latches_and_clears() {
        let mut r = IpexRegisters::new(2);
        r.r_throttled = 1;
        r.r_total = 2;
        r.on_reboot();
        assert!((r.r_tr - 0.5).abs() < 1e-6);
        assert_eq!(r.r_throttled, 0);
        assert_eq!(r.r_total, 0);
        assert_eq!(r.r_ipd, 2);
    }
}
