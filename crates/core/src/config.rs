//! IPEX configuration.

use serde::{Deserialize, Serialize};

/// Tunable parameters of an [`IpexController`](crate::IpexController).
///
/// Defaults reproduce the paper's configuration (Table 1 and §4):
/// two thresholds starting at 3.3 V spaced 0.05 V apart, initial degree
/// 2, maximum degree 4, adaptive 0.05 V steps gated on a 5 % throttling
/// rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IpexConfig {
    /// Number of voltage thresholds `k` (§6.7.1 varies 1–3).
    pub threshold_count: u32,
    /// Initial value of the highest threshold `V1`, volts.
    pub top_threshold_v: f64,
    /// Spacing between consecutive thresholds, volts.
    pub threshold_spacing_v: f64,
    /// Initial prefetch degree `Ripd` (3-bit register; Table 1: 2).
    pub initial_degree: u32,
    /// Hardware cap on the degree (Table 1: 4).
    pub max_degree: u32,
    /// Adaptive threshold step, volts (§6.7.10 varies 0.05–0.15).
    pub voltage_step_v: f64,
    /// Throttling-rate threshold gating adaptation (§6.7.11 varies
    /// 1–20 %; default 5 %).
    pub throttle_rate_threshold: f64,
    /// Enables the §4.1.1 adaptive threshold adjustment. Disabling it
    /// gives the fixed-threshold ablation.
    pub adaptive_thresholds: bool,
    /// Lowest value the *top* threshold may adapt down to, volts. Keeps
    /// thresholds inside the operating band above `V_backup`.
    pub min_top_threshold_v: f64,
    /// Highest value the top threshold may adapt up to, volts.
    pub max_top_threshold_v: f64,
    /// §5.1 extension (the paper's future work, implemented here as an
    /// option): when returning to high-performance mode, reissue the
    /// most recently throttled prefetches.
    pub reissue_throttled: bool,
    /// Capacity of the reissue queue when `reissue_throttled` is set.
    pub reissue_queue_len: usize,
}

impl IpexConfig {
    /// The paper's default configuration.
    pub fn paper_default() -> IpexConfig {
        IpexConfig {
            threshold_count: 2,
            top_threshold_v: 3.3,
            threshold_spacing_v: 0.05,
            initial_degree: 2,
            max_degree: 4,
            voltage_step_v: 0.05,
            throttle_rate_threshold: 0.05,
            adaptive_thresholds: true,
            min_top_threshold_v: 3.24,
            max_top_threshold_v: 3.38,
            reissue_throttled: false,
            reissue_queue_len: 8,
        }
    }

    /// The paper default with a different threshold count (Fig. 16).
    pub fn with_threshold_count(k: u32) -> IpexConfig {
        IpexConfig {
            threshold_count: k,
            ..IpexConfig::paper_default()
        }
    }

    pub(crate) fn validate(&self) {
        assert!(self.threshold_count >= 1, "need at least one threshold");
        assert!(
            self.initial_degree >= 1,
            "initial degree must be at least 1"
        );
        assert!(
            self.initial_degree <= self.max_degree,
            "initial degree exceeds the hardware maximum"
        );
        assert!(self.max_degree <= 7, "Ripd is a 3-bit register");
        assert!(self.threshold_spacing_v > 0.0, "spacing must be positive");
        assert!(self.voltage_step_v > 0.0, "voltage step must be positive");
        assert!(
            (0.0..=1.0).contains(&self.throttle_rate_threshold),
            "throttle rate threshold is a proportion"
        );
        assert!(
            self.min_top_threshold_v < self.max_top_threshold_v,
            "threshold bounds are inverted"
        );
        assert!(
            self.top_threshold_v >= self.min_top_threshold_v
                && self.top_threshold_v <= self.max_top_threshold_v,
            "initial top threshold outside its adaptation bounds"
        );
    }

    /// The initial threshold ladder `V1 > V2 > … > Vk`.
    pub fn initial_thresholds(&self) -> Vec<f64> {
        (0..self.threshold_count)
            .map(|i| self.top_threshold_v - i as f64 * self.threshold_spacing_v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = IpexConfig::paper_default();
        assert_eq!(c.threshold_count, 2);
        assert_eq!(c.initial_thresholds(), vec![3.3, 3.25]);
        assert_eq!(c.initial_degree, 2);
        assert_eq!(c.max_degree, 4);
        c.validate();
    }

    #[test]
    fn threshold_ladder_for_k3() {
        let c = IpexConfig::with_threshold_count(3);
        let t = c.initial_thresholds();
        assert_eq!(t.len(), 3);
        assert!((t[2] - 3.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "3-bit")]
    fn oversized_degree_rejected() {
        let c = IpexConfig {
            max_degree: 9,
            initial_degree: 9,
            ..IpexConfig::paper_default()
        };
        c.validate();
    }
}
