//! The pluggable throttling-policy layer.
//!
//! The paper's contribution (IPEX) is *one* answer to a more general
//! question: given the capacitor voltage, how aggressively should the
//! prefetcher run right now? This module names that question as a
//! contract — [`ThrottlePolicy`] — and ships four answers behind the
//! closed [`AnyPolicy`] enum the simulator embeds:
//!
//! * [`IpexController`] — the paper's voltage-threshold ladder (§4).
//! * [`PredictiveController`] — a confidence-weighted outage predictor:
//!   per-context transition tables over quantized recent-voltage
//!   history predict the length of the current power cycle and throttle
//!   only as the predicted outage approaches.
//! * [`HysteresisController`] — an EWMA-smoothed two-point hysteresis
//!   baseline (filtered voltage, not instantaneous, drives a single
//!   low/high band).
//! * [`StaticController`] — a fixed-degree family standing in for the
//!   related-work static points (conservative always-degree-1 à la
//!   Zeng et al.'s cautious volatile-cache management; aggressive
//!   full-degree à la Choi et al.'s compiler-chosen speculation depth).
//!
//! `AnyPolicy` is an enum, not a `Box<dyn ThrottlePolicy>`, for the same
//! reason `ehs-prefetch`'s `AnyPrefetcher` is: the simulator's hot loop
//! calls [`AnyPolicy::filter`] on every demand access, and a direct
//! match inlines and branch-predicts where a vtable call cannot (the
//! variant never changes within a run).
//!
//! ## State rules
//!
//! Every policy distinguishes three kinds of state, and the contract
//! makes each explicit:
//!
//! 1. **Nonvolatile state** ([`ThrottlePolicy::nvff_bits`]) — survives
//!    power failure via nonvolatile flip-flops; the simulator charges
//!    its bits to every JIT checkpoint. IPEX checkpoints
//!    `Rthrottled`/`Rtotal` (64 bits); the predictive policy its
//!    transition tables (4096 bits); hysteresis and static nothing.
//! 2. **Volatile state** — wiped by [`ThrottlePolicy::on_power_failure`]
//!    (reissue queues, EWMA accumulators, sampled voltage history).
//! 3. **Measurement state** ([`PolicyStats`]) — simulator-side counters
//!    for the evaluation figures; free, like `SimResult` itself.
//!
//! Snapshot/resume (a *simulator* checkpoint, orthogonal to power
//! failure) captures all three via [`ehs_mem::Persist`].

use serde::{Deserialize, Serialize};

use crate::controller::{IpexController, IpexControllerState, IpexStats, Mode};
use crate::IpexConfig;
use ehs_mem::Persist;

/// Counters every throttling policy maintains for the evaluation
/// figures. This is the same shape the IPEX controller always exported —
/// the alias records that the counters are policy-generic, while keeping
/// the serialized name (`IpexStats`) and every downstream field access
/// unchanged.
pub type PolicyStats = IpexStats;

/// NVFF bits the IPEX controller JIT-checkpoints per cache:
/// `Rthrottled` + `Rtotal` (§6.1). `Rtr` is recomputed at reboot and
/// `Ripd` is configuration, so neither is charged to the backup.
pub const IPEX_NVFF_BITS: u32 = 64;

/// The contract a throttling policy implements: observe the capacitor
/// voltage, decide a prefetch degree, filter candidate lists, react to
/// power failure/reboot, and expose its state and costs.
///
/// The simulator never takes a `dyn ThrottlePolicy`; the contract is
/// realized by the closed [`AnyPolicy`] enum (see the module docs for
/// why). The trait exists so each controller states the full contract in
/// one place and so tests can be written generically.
pub trait ThrottlePolicy {
    /// Stable kebab-case policy name, used in snapshot-mismatch errors
    /// and diagnostics (`"ipex"`, `"predictive"`, …).
    fn kind_name(&self) -> &'static str;

    /// Updates the policy with the current capacitor voltage. Returns
    /// blocks to reissue, if the policy supports reissue and just
    /// re-entered its unthrottled mode (only IPEX's §5.1 extension does).
    fn observe_voltage(&mut self, voltage: f64) -> Option<Vec<u32>>;

    /// Filters a prefetcher's candidate list in place down to the
    /// policy's current degree decision, preserving priority order.
    /// Returns the number of candidates kept.
    fn filter(&mut self, candidates: &mut Vec<u32>) -> usize;

    /// Imminent power failure: volatile state is about to be lost.
    /// Anything covered by [`ThrottlePolicy::nvff_bits`] survives.
    fn on_power_failure(&mut self);

    /// Reboot after an outage: start the new power cycle.
    fn on_reboot(&mut self);

    /// Counters accumulated so far.
    fn stats(&self) -> PolicyStats;

    /// The current effective prefetch degree.
    fn current_degree(&self) -> u32;

    /// Voltage thresholds at which [`ThrottlePolicy::observe_voltage`]
    /// can change its decision, highest first. Only meaningful together
    /// with [`ThrottlePolicy::batched_observation_safe`]; policies whose
    /// decisions do not reduce to fixed voltage thresholds return `&[]`.
    fn thresholds(&self) -> &[f64] {
        &[]
    }

    /// Nonvolatile flip-flop bits the policy checkpoints across outages.
    /// The simulator charges these bits to every backup and restore.
    fn nvff_bits(&self) -> u32 {
        0
    }

    /// `true` when `observe_voltage` is provably a no-op while the
    /// voltage stays strictly inside one band between consecutive
    /// [`ThrottlePolicy::thresholds`]. The simulator may then skip
    /// per-instruction observations inside a safe energy window.
    /// Policies that accumulate per-observation state (EWMA, sampled
    /// history) must return `false` to force exact per-instruction
    /// observation.
    fn batched_observation_safe(&self) -> bool {
        false
    }

    /// Monotone count of self-adaptation events (threshold moves, table
    /// updates). Lets the simulator's tracer emit a `policy-adapt` event
    /// when the count advances across a reboot.
    fn adaptations(&self) -> u64 {
        0
    }
}

impl ThrottlePolicy for IpexController {
    fn kind_name(&self) -> &'static str {
        "ipex"
    }

    fn observe_voltage(&mut self, voltage: f64) -> Option<Vec<u32>> {
        IpexController::observe_voltage(self, voltage)
    }

    fn filter(&mut self, candidates: &mut Vec<u32>) -> usize {
        IpexController::filter(self, candidates)
    }

    fn on_power_failure(&mut self) {
        IpexController::on_power_failure(self)
    }

    fn on_reboot(&mut self) {
        IpexController::on_reboot(self)
    }

    fn stats(&self) -> PolicyStats {
        IpexController::stats(self)
    }

    fn current_degree(&self) -> u32 {
        IpexController::current_degree(self)
    }

    fn thresholds(&self) -> &[f64] {
        IpexController::thresholds(self)
    }

    fn nvff_bits(&self) -> u32 {
        IPEX_NVFF_BITS
    }

    fn batched_observation_safe(&self) -> bool {
        // `observe_voltage` only acts when the threshold-count level
        // changes, which cannot happen while the voltage stays strictly
        // between two adjacent thresholds.
        true
    }

    fn adaptations(&self) -> u64 {
        let s = IpexController::stats(self);
        s.threshold_lowers + s.threshold_raises
    }
}

impl Persist for IpexController {
    type State = IpexControllerState;

    fn export_state(&self) -> IpexControllerState {
        IpexController::export_state(self)
    }

    fn from_state(state: &IpexControllerState) -> Result<IpexController, String> {
        IpexController::from_state(state)
    }
}

// ---------------------------------------------------------------------
// Static-degree family (related-work stand-ins)
// ---------------------------------------------------------------------

/// Configuration of a [`StaticController`]: one fixed degree, applied
/// unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticDegreeConfig {
    /// The fixed prefetch degree every candidate list is truncated to
    /// (1–7; the same 3-bit budget as IPEX's `Ripd`).
    pub degree: u32,
}

impl StaticDegreeConfig {
    /// Conservative point: always degree 1, in the spirit of Zeng et
    /// al.'s cautious volatile-cache management for energy harvesting.
    pub fn conservative() -> StaticDegreeConfig {
        StaticDegreeConfig { degree: 1 }
    }

    /// Aggressive point: a fixed compile-time speculation depth equal to
    /// the paper's default degree, in the spirit of Choi et al.'s
    /// compiler-directed speculation (no runtime voltage feedback).
    pub fn aggressive() -> StaticDegreeConfig {
        StaticDegreeConfig { degree: 2 }
    }

    /// Checks the configuration for consistency.
    ///
    /// # Errors
    ///
    /// Describes the first inconsistent field.
    pub fn validate(&self) -> Result<(), String> {
        if !(1..=7).contains(&self.degree) {
            return Err(format!(
                "static policy degree {} outside the 3-bit range 1-7",
                self.degree
            ));
        }
        Ok(())
    }
}

/// Complete serializable state of a [`StaticController`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticControllerState {
    /// Configuration the controller was built with.
    pub cfg: StaticDegreeConfig,
    /// Counters at the time of the export.
    pub stats: PolicyStats,
}

/// Fixed-degree throttling: every candidate list is truncated to the
/// configured degree, regardless of voltage. No nonvolatile state, no
/// adaptation — the related-work baseline the adaptive policies are
/// measured against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticController {
    cfg: StaticDegreeConfig,
    stats: PolicyStats,
}

impl StaticController {
    /// Creates a controller with the given fixed degree.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`StaticDegreeConfig::validate`]).
    pub fn new(cfg: StaticDegreeConfig) -> StaticController {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        StaticController {
            cfg,
            stats: PolicyStats::default(),
        }
    }

    /// The configuration the controller was built with.
    pub fn config(&self) -> &StaticDegreeConfig {
        &self.cfg
    }
}

impl ThrottlePolicy for StaticController {
    fn kind_name(&self) -> &'static str {
        "static-degree"
    }

    fn observe_voltage(&mut self, _voltage: f64) -> Option<Vec<u32>> {
        None
    }

    fn filter(&mut self, candidates: &mut Vec<u32>) -> usize {
        let total = candidates.len();
        if total == 0 {
            return 0;
        }
        let keep = total.min(self.cfg.degree as usize);
        candidates.truncate(keep);
        self.stats.issued += keep as u64;
        self.stats.throttled += (total - keep) as u64;
        keep
    }

    fn on_power_failure(&mut self) {}

    fn on_reboot(&mut self) {
        self.stats.power_cycles += 1;
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn current_degree(&self) -> u32 {
        self.cfg.degree
    }

    fn batched_observation_safe(&self) -> bool {
        // `observe_voltage` is a no-op everywhere, not just in a band.
        true
    }
}

impl Persist for StaticController {
    type State = StaticControllerState;

    fn export_state(&self) -> StaticControllerState {
        StaticControllerState {
            cfg: self.cfg,
            stats: self.stats,
        }
    }

    fn from_state(state: &StaticControllerState) -> Result<StaticController, String> {
        state.cfg.validate()?;
        Ok(StaticController {
            cfg: state.cfg,
            stats: state.stats,
        })
    }
}

// ---------------------------------------------------------------------
// Hysteresis / EWMA baseline
// ---------------------------------------------------------------------

/// Configuration of a [`HysteresisController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HysteresisConfig {
    /// EWMA smoothing factor in `(0, 1]` (1 = unfiltered voltage).
    pub alpha: f64,
    /// Enter energy-saving mode when the filtered voltage falls to or
    /// below this, volts.
    pub low_v: f64,
    /// Return to high-performance mode when the filtered voltage rises
    /// to or above this, volts (must exceed `low_v`; the gap is the
    /// hysteresis band that prevents mode flapping).
    pub high_v: f64,
    /// Degree cap while in energy-saving mode.
    pub low_degree: u32,
    /// Nominal degree in high-performance mode (candidates pass
    /// unthrottled then, exactly like IPEX's high-performance mode).
    pub initial_degree: u32,
}

impl HysteresisConfig {
    /// Defaults matched to the paper's operating point: 1/8 smoothing,
    /// a 3.26–3.32 V band inside IPEX's threshold range, degree 2→0 —
    /// the classic two-point controller gates prefetching *off* below
    /// the band rather than merely reducing its depth.
    pub fn paper_default() -> HysteresisConfig {
        HysteresisConfig {
            alpha: 0.125,
            low_v: 3.26,
            high_v: 3.32,
            low_degree: 0,
            initial_degree: 2,
        }
    }

    /// Checks the configuration for consistency.
    ///
    /// # Errors
    ///
    /// Describes the first inconsistent field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(format!("EWMA alpha {} outside (0, 1]", self.alpha));
        }
        // `partial_cmp`, not `<`: a NaN bound must be rejected too.
        if self.low_v.partial_cmp(&self.high_v) != Some(std::cmp::Ordering::Less) {
            return Err(format!(
                "hysteresis band is inverted ({} >= {})",
                self.low_v, self.high_v
            ));
        }
        if !(1..=7).contains(&self.initial_degree) {
            return Err(format!(
                "initial degree {} outside the 3-bit range 1-7",
                self.initial_degree
            ));
        }
        if self.low_degree >= self.initial_degree {
            return Err(format!(
                "low degree {} must be below the initial degree {}",
                self.low_degree, self.initial_degree
            ));
        }
        Ok(())
    }
}

/// Complete serializable state of a [`HysteresisController`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HysteresisControllerState {
    /// Configuration the controller was built with.
    pub cfg: HysteresisConfig,
    /// Filtered voltage, `None` until the first observation of the
    /// current power cycle.
    pub ewma: Option<f64>,
    /// Operating mode.
    pub mode: Mode,
    /// Counters at the time of the export.
    pub stats: PolicyStats,
}

/// EWMA-smoothed two-point hysteresis throttling: a single low/high
/// voltage band on the *filtered* capacitor voltage switches between an
/// unthrottled high-performance mode and a fixed low degree.
///
/// The EWMA accumulator is volatile (an analog sample-and-filter chain
/// loses its charge), so every power cycle starts unfiltered. Because
/// the decision depends on the running average, *every* voltage
/// observation matters: [`ThrottlePolicy::batched_observation_safe`] is
/// `false` and the simulator takes the exact per-instruction path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HysteresisController {
    cfg: HysteresisConfig,
    ewma: Option<f64>,
    mode: Mode,
    stats: PolicyStats,
}

impl HysteresisController {
    /// Creates a controller in high-performance mode with an empty
    /// filter.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`HysteresisConfig::validate`]).
    pub fn new(cfg: HysteresisConfig) -> HysteresisController {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        HysteresisController {
            cfg,
            ewma: None,
            mode: Mode::HighPerformance,
            stats: PolicyStats::default(),
        }
    }

    /// The configuration the controller was built with.
    pub fn config(&self) -> &HysteresisConfig {
        &self.cfg
    }

    /// The filtered voltage, `None` before the first observation of the
    /// current power cycle.
    pub fn filtered_voltage(&self) -> Option<f64> {
        self.ewma
    }

    /// The current operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }
}

impl ThrottlePolicy for HysteresisController {
    fn kind_name(&self) -> &'static str {
        "hysteresis"
    }

    fn observe_voltage(&mut self, voltage: f64) -> Option<Vec<u32>> {
        let e = match self.ewma {
            None => voltage,
            Some(e) => e + self.cfg.alpha * (voltage - e),
        };
        self.ewma = Some(e);
        match self.mode {
            Mode::HighPerformance if e <= self.cfg.low_v => {
                self.mode = Mode::EnergySaving;
                self.stats.saving_mode_entries += 1;
            }
            Mode::EnergySaving if e >= self.cfg.high_v => {
                self.mode = Mode::HighPerformance;
            }
            _ => {}
        }
        None
    }

    fn filter(&mut self, candidates: &mut Vec<u32>) -> usize {
        let total = candidates.len();
        if total == 0 {
            return 0;
        }
        let keep = match self.mode {
            Mode::HighPerformance => total,
            Mode::EnergySaving => total.min(self.cfg.low_degree as usize),
        };
        candidates.truncate(keep);
        self.stats.issued += keep as u64;
        self.stats.throttled += (total - keep) as u64;
        keep
    }

    fn on_power_failure(&mut self) {
        // The filter chain is analog/volatile: nothing survives.
        self.ewma = None;
    }

    fn on_reboot(&mut self) {
        self.stats.power_cycles += 1;
        self.ewma = None;
        self.mode = Mode::HighPerformance;
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn current_degree(&self) -> u32 {
        match self.mode {
            Mode::HighPerformance => self.cfg.initial_degree,
            Mode::EnergySaving => self.cfg.low_degree,
        }
    }
}

impl Persist for HysteresisController {
    type State = HysteresisControllerState;

    fn export_state(&self) -> HysteresisControllerState {
        HysteresisControllerState {
            cfg: self.cfg,
            ewma: self.ewma,
            mode: self.mode,
            stats: self.stats,
        }
    }

    fn from_state(state: &HysteresisControllerState) -> Result<HysteresisController, String> {
        state.cfg.validate()?;
        Ok(HysteresisController {
            cfg: state.cfg,
            ewma: state.ewma,
            mode: state.mode,
            stats: state.stats,
        })
    }
}

// ---------------------------------------------------------------------
// Confidence-weighted predictive policy
// ---------------------------------------------------------------------

/// Voltage-quantization bins for the predictive policy's context.
pub const PREDICTIVE_VOLTAGE_BINS: usize = 8;
/// Outage-interval classes (logarithmic) the predictive policy learns.
pub const PREDICTIVE_INTERVAL_CLASSES: usize = 8;
/// Contexts = ordered pairs of consecutive sampled voltage bins.
pub const PREDICTIVE_CONTEXTS: usize = PREDICTIVE_VOLTAGE_BINS * PREDICTIVE_VOLTAGE_BINS;
/// NVFF bits of a [`PredictiveController`]: the full transition table at
/// 8 saturating bits per counter. An honest order of magnitude above
/// IPEX's 64 bits — the cost of carrying learned history across outages.
pub const PREDICTIVE_NVFF_BITS: u32 =
    (PREDICTIVE_CONTEXTS * PREDICTIVE_INTERVAL_CLASSES * 8) as u32;

/// Configuration of a [`PredictiveController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictiveConfig {
    /// Bottom of the quantized voltage range, volts (lower readings
    /// saturate into bin 0).
    pub v_floor: f64,
    /// Top of the quantized voltage range, volts (higher readings
    /// saturate into the last bin).
    pub v_ceil: f64,
    /// Observations between voltage samples / degree decisions. The
    /// policy is deliberately coarse: it reacts on the scale of outage
    /// intervals, not instructions.
    pub sample_period: u32,
    /// Minimum fraction of a context's evidence the winning interval
    /// class must hold before the prediction is trusted. Below the
    /// floor the policy runs unthrottled — a wrong confident guess
    /// costs more than no guess.
    pub confidence_floor: f64,
    /// Minimum observations in a context before any prediction is made.
    pub min_evidence: u32,
    /// Nominal (unthrottled) prefetch degree, the analog of IPEX's
    /// `Ripd`.
    pub initial_degree: u32,
    /// When a context's evidence total reaches this cap, all its
    /// counters halve before the new outage is recorded — exponential
    /// temporal weighting that lets the tables track regime changes in
    /// the harvested supply. At most 255 so each counter is honestly
    /// 8 bits of NVFF.
    pub count_cap: u32,
}

impl PredictiveConfig {
    /// Defaults matched to the paper's operating point: the 3.0–3.4 V
    /// band IPEX operates in, a 64-observation sample period, a 50 %
    /// confidence floor over at least 6 recorded outages.
    pub fn paper_default() -> PredictiveConfig {
        PredictiveConfig {
            v_floor: 3.0,
            v_ceil: 3.4,
            sample_period: 64,
            confidence_floor: 0.5,
            min_evidence: 6,
            initial_degree: 2,
            count_cap: 240,
        }
    }

    /// Checks the configuration for consistency.
    ///
    /// # Errors
    ///
    /// Describes the first inconsistent field.
    pub fn validate(&self) -> Result<(), String> {
        // `partial_cmp`, not `<`: a NaN bound must be rejected too.
        if self.v_floor.partial_cmp(&self.v_ceil) != Some(std::cmp::Ordering::Less) {
            return Err(format!(
                "voltage range is inverted ({} >= {})",
                self.v_floor, self.v_ceil
            ));
        }
        if self.sample_period == 0 {
            return Err("sample period must be at least 1".to_string());
        }
        if !(self.confidence_floor > 0.0 && self.confidence_floor <= 1.0) {
            return Err(format!(
                "confidence floor {} outside (0, 1]",
                self.confidence_floor
            ));
        }
        if self.min_evidence == 0 {
            return Err("min evidence must be at least 1".to_string());
        }
        if !(1..=7).contains(&self.initial_degree) {
            return Err(format!(
                "initial degree {} outside the 3-bit range 1-7",
                self.initial_degree
            ));
        }
        if !(2..=255).contains(&self.count_cap) {
            return Err(format!(
                "count cap {} outside 2-255 (counters are 8-bit NVFF)",
                self.count_cap
            ));
        }
        Ok(())
    }
}

/// Complete serializable state of a [`PredictiveController`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictiveControllerState {
    /// Configuration the controller was built with.
    pub cfg: PredictiveConfig,
    /// Flattened transition table, `context * classes + class`.
    pub table: Vec<u32>,
    /// Voltage bin of the previous sample, if any this power cycle.
    pub prev_level: Option<u8>,
    /// Active context (`prev_bin * bins + cur_bin`), if two samples have
    /// been taken this power cycle.
    pub context: Option<u8>,
    /// Observations since the last sample point.
    pub obs_count: u32,
    /// Observations since the current power cycle began.
    pub obs_since_reboot: u64,
    /// Current degree decision.
    pub degree: u32,
    /// Operating mode implied by the degree.
    pub mode: Mode,
    /// Counters at the time of the export.
    pub stats: PolicyStats,
    /// Transition-table updates so far (see
    /// [`ThrottlePolicy::adaptations`]).
    pub adaptations: u64,
}

/// Confidence-weighted predictive throttling.
///
/// Instead of reacting to the instantaneous voltage (IPEX) or a filtered
/// one (hysteresis), this policy *predicts how long the current power
/// cycle will last* and throttles only once the predicted outage is
/// near:
///
/// * Every `sample_period` observations the voltage is quantized into
///   one of [`PREDICTIVE_VOLTAGE_BINS`] bins; the ordered pair of the
///   last two samples is the current **context** (falling fast, hovering
///   low, …).
/// * At each power failure the elapsed power-cycle length (in
///   observations, log-bucketed into [`PREDICTIVE_INTERVAL_CLASSES`]
///   classes) is recorded in the active context's row of a transition
///   table. Rows halve when full (**temporal weighting**), so recent
///   supply behaviour dominates.
/// * At each sample point the active context's row predicts the likely
///   interval class. If the winning class holds at least
///   `confidence_floor` of the row's evidence (and the row has
///   `min_evidence` at all), the degree decays as the elapsed interval
///   approaches the prediction: full until one class away, halved one
///   class away, quartered at or past it. Below the floor the policy
///   runs unthrottled — a **confidence floor** keeps a cold or
///   uncertain table from costing performance.
///
/// The table is NVFF-resident ([`PREDICTIVE_NVFF_BITS`] charged to every
/// backup); the sampled history and interval counter are volatile.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictiveController {
    cfg: PredictiveConfig,
    /// Flattened `PREDICTIVE_CONTEXTS x PREDICTIVE_INTERVAL_CLASSES`
    /// counter table (NVFF).
    table: Vec<u32>,
    prev_level: Option<u8>,
    context: Option<u8>,
    obs_count: u32,
    obs_since_reboot: u64,
    degree: u32,
    mode: Mode,
    stats: PolicyStats,
    adaptations: u64,
}

impl PredictiveController {
    /// Creates a controller with an empty (all-zero) transition table.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`PredictiveConfig::validate`]).
    pub fn new(cfg: PredictiveConfig) -> PredictiveController {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        PredictiveController {
            table: vec![0; PREDICTIVE_CONTEXTS * PREDICTIVE_INTERVAL_CLASSES],
            prev_level: None,
            context: None,
            obs_count: 0,
            obs_since_reboot: 0,
            degree: cfg.initial_degree,
            mode: Mode::HighPerformance,
            stats: PolicyStats::default(),
            adaptations: 0,
            cfg,
        }
    }

    /// The configuration the controller was built with.
    pub fn config(&self) -> &PredictiveConfig {
        &self.cfg
    }

    /// The current operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Read-only view of the flattened transition table
    /// (`context * classes + class`).
    pub fn table(&self) -> &[u32] {
        &self.table
    }

    /// Quantizes a voltage into its bin, saturating at the range ends.
    fn quantize(&self, voltage: f64) -> u8 {
        let span = self.cfg.v_ceil - self.cfg.v_floor;
        let frac = (voltage - self.cfg.v_floor) / span;
        let bin = (frac * PREDICTIVE_VOLTAGE_BINS as f64).floor();
        bin.clamp(0.0, (PREDICTIVE_VOLTAGE_BINS - 1) as f64) as u8
    }

    /// Log-buckets an observation count into its interval class.
    fn class_of(n: u64) -> usize {
        (((n / 256) + 1).ilog2() as usize).min(PREDICTIVE_INTERVAL_CLASSES - 1)
    }

    /// Applies a new degree decision, tracking mode transitions.
    fn set_degree(&mut self, degree: u32) {
        let new_mode = if degree >= self.cfg.initial_degree {
            Mode::HighPerformance
        } else {
            Mode::EnergySaving
        };
        if new_mode == Mode::EnergySaving && self.mode == Mode::HighPerformance {
            self.stats.saving_mode_entries += 1;
        }
        self.degree = degree;
        self.mode = new_mode;
    }

    /// Re-evaluates the degree from the active context's prediction.
    fn decide(&mut self) {
        let full = self.cfg.initial_degree;
        let Some(ctx) = self.context else {
            self.set_degree(full);
            return;
        };
        let row = &self.table[ctx as usize * PREDICTIVE_INTERVAL_CLASSES..]
            [..PREDICTIVE_INTERVAL_CLASSES];
        let total: u32 = row.iter().sum();
        if total < self.cfg.min_evidence {
            self.set_degree(full);
            return;
        }
        // Ties break toward the shorter interval: when in doubt, assume
        // the outage is sooner.
        let (best_class, best) = row
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("row is non-empty");
        if (best as f64) < self.cfg.confidence_floor * total as f64 {
            self.set_degree(full);
            return;
        }
        let elapsed = Self::class_of(self.obs_since_reboot);
        let shift = if elapsed >= best_class {
            2
        } else if elapsed + 1 == best_class {
            1
        } else {
            0
        };
        self.set_degree(full >> shift);
    }
}

impl ThrottlePolicy for PredictiveController {
    fn kind_name(&self) -> &'static str {
        "predictive"
    }

    fn observe_voltage(&mut self, voltage: f64) -> Option<Vec<u32>> {
        self.obs_since_reboot += 1;
        self.obs_count += 1;
        if self.obs_count >= self.cfg.sample_period {
            self.obs_count = 0;
            let level = self.quantize(voltage);
            if let Some(prev) = self.prev_level {
                self.context = Some(prev * PREDICTIVE_VOLTAGE_BINS as u8 + level);
            }
            self.prev_level = Some(level);
            self.decide();
        }
        None
    }

    fn filter(&mut self, candidates: &mut Vec<u32>) -> usize {
        let total = candidates.len();
        if total == 0 {
            return 0;
        }
        let keep = match self.mode {
            Mode::HighPerformance => total,
            Mode::EnergySaving => total.min(self.degree as usize),
        };
        candidates.truncate(keep);
        self.stats.issued += keep as u64;
        self.stats.throttled += (total - keep) as u64;
        keep
    }

    fn on_power_failure(&mut self) {
        // Record the outage in the active context's row (the table is
        // NVFF; this write happens while still powered, like IPEX's
        // JIT checkpoint of Rthrottled/Rtotal).
        if let Some(ctx) = self.context {
            let class = Self::class_of(self.obs_since_reboot);
            let row = &mut self.table[ctx as usize * PREDICTIVE_INTERVAL_CLASSES..]
                [..PREDICTIVE_INTERVAL_CLASSES];
            let total: u32 = row.iter().sum();
            if total >= self.cfg.count_cap {
                for c in row.iter_mut() {
                    *c /= 2;
                }
            }
            row[class] += 1;
            self.adaptations += 1;
        }
        // Sampled history and the interval counter are volatile.
        self.prev_level = None;
        self.context = None;
        self.obs_count = 0;
    }

    fn on_reboot(&mut self) {
        self.stats.power_cycles += 1;
        self.obs_since_reboot = 0;
        self.degree = self.cfg.initial_degree;
        self.mode = Mode::HighPerformance;
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn current_degree(&self) -> u32 {
        self.degree
    }

    fn nvff_bits(&self) -> u32 {
        PREDICTIVE_NVFF_BITS
    }

    fn adaptations(&self) -> u64 {
        self.adaptations
    }
}

impl Persist for PredictiveController {
    type State = PredictiveControllerState;

    fn export_state(&self) -> PredictiveControllerState {
        PredictiveControllerState {
            cfg: self.cfg,
            table: self.table.clone(),
            prev_level: self.prev_level,
            context: self.context,
            obs_count: self.obs_count,
            obs_since_reboot: self.obs_since_reboot,
            degree: self.degree,
            mode: self.mode,
            stats: self.stats,
            adaptations: self.adaptations,
        }
    }

    fn from_state(state: &PredictiveControllerState) -> Result<PredictiveController, String> {
        state.cfg.validate()?;
        let want = PREDICTIVE_CONTEXTS * PREDICTIVE_INTERVAL_CLASSES;
        if state.table.len() != want {
            return Err(format!(
                "predictive table has {} entries, expected {}",
                state.table.len(),
                want
            ));
        }
        Ok(PredictiveController {
            cfg: state.cfg,
            table: state.table.clone(),
            prev_level: state.prev_level,
            context: state.context,
            obs_count: state.obs_count,
            obs_since_reboot: state.obs_since_reboot,
            degree: state.degree,
            mode: state.mode,
            stats: state.stats,
            adaptations: state.adaptations,
        })
    }
}

// ---------------------------------------------------------------------
// PolicyConfig — the serializable choice of policy
// ---------------------------------------------------------------------

/// The serializable choice of a non-IPEX throttling policy and its
/// parameters, embedded in `ehs-sim`'s `PrefetchMode::Policy`. (IPEX
/// keeps its own long-standing `PrefetchMode::Ipex` variant so existing
/// configurations serialize byte-identically.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum PolicyConfig {
    /// Confidence-weighted outage prediction.
    Predictive(PredictiveConfig),
    /// EWMA-smoothed two-point hysteresis.
    Hysteresis(HysteresisConfig),
    /// Fixed degree, no voltage feedback.
    StaticDegree(StaticDegreeConfig),
}

impl PolicyConfig {
    /// Stable kebab-case name of the configured policy.
    pub fn kind_name(&self) -> &'static str {
        match self {
            PolicyConfig::Predictive(_) => "predictive",
            PolicyConfig::Hysteresis(_) => "hysteresis",
            PolicyConfig::StaticDegree(_) => "static-degree",
        }
    }

    /// The policy's nominal (unthrottled) prefetch degree — what IPEX
    /// calls `Ripd`. Invariant checkers use this as the cap that
    /// throttled issue bursts must respect.
    pub fn initial_degree(&self) -> u32 {
        match self {
            PolicyConfig::Predictive(c) => c.initial_degree,
            PolicyConfig::Hysteresis(c) => c.initial_degree,
            PolicyConfig::StaticDegree(c) => c.degree,
        }
    }

    /// Checks the configuration for consistency.
    ///
    /// # Errors
    ///
    /// Describes the first inconsistent field.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            PolicyConfig::Predictive(c) => c.validate(),
            PolicyConfig::Hysteresis(c) => c.validate(),
            PolicyConfig::StaticDegree(c) => c.validate(),
        }
    }

    /// Builds the configured policy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (validate first when
    /// handling untrusted input).
    pub fn build(&self) -> AnyPolicy {
        match self {
            PolicyConfig::Predictive(c) => {
                AnyPolicy::Predictive(Box::new(PredictiveController::new(*c)))
            }
            PolicyConfig::Hysteresis(c) => {
                AnyPolicy::Hysteresis(Box::new(HysteresisController::new(*c)))
            }
            PolicyConfig::StaticDegree(c) => AnyPolicy::StaticDegree(StaticController::new(*c)),
        }
    }
}

// ---------------------------------------------------------------------
// AnyPolicy — the closed enum the simulator embeds
// ---------------------------------------------------------------------

/// Serializable state of an [`AnyPolicy`], for snapshot/resume.
///
/// The `passthrough` and `ipex` variants keep the exact wire names the
/// old two-variant `ThrottleState` used, so pre-existing snapshots parse
/// unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum PolicyState {
    /// Stateless passthrough.
    Passthrough,
    /// Full IPEX controller state (boxed: it dwarfs the small variants).
    Ipex(Box<IpexControllerState>),
    /// Full predictive-controller state (boxed: it carries the table).
    Predictive(Box<PredictiveControllerState>),
    /// Full hysteresis-controller state.
    Hysteresis(Box<HysteresisControllerState>),
    /// Full static-controller state.
    StaticDegree(StaticControllerState),
}

impl PolicyState {
    /// Stable kebab-case name of the policy this state belongs to
    /// (matches [`AnyPolicy::kind_name`]).
    pub fn kind_name(&self) -> &'static str {
        match self {
            PolicyState::Passthrough => "passthrough",
            PolicyState::Ipex(_) => "ipex",
            PolicyState::Predictive(_) => "predictive",
            PolicyState::Hysteresis(_) => "hysteresis",
            PolicyState::StaticDegree(_) => "static-degree",
        }
    }
}

/// Any throttling policy (or none), dispatched by direct match — the
/// value the simulator embeds per memory path. See the module docs for
/// the policy roster and the enum-over-dyn rationale.
#[derive(Debug, Clone)]
pub enum AnyPolicy {
    /// Conventional prefetching: candidates pass through untouched.
    Passthrough,
    /// IPEX-controlled prefetching (the paper's policy).
    Ipex(Box<IpexController>),
    /// Confidence-weighted outage prediction.
    Predictive(Box<PredictiveController>),
    /// EWMA-smoothed two-point hysteresis.
    Hysteresis(Box<HysteresisController>),
    /// Fixed degree, no voltage feedback.
    StaticDegree(StaticController),
}

/// The simulator's historical name for the policy slot. The redesign
/// kept the old two-variant enum's API surface on [`AnyPolicy`], so the
/// alias is exact.
pub type Throttle = AnyPolicy;

/// Historical name of [`PolicyState`], kept for the same reason as
/// [`Throttle`].
pub type ThrottleState = PolicyState;

macro_rules! delegate {
    ($self:expr, $p:ident => $body:expr, $passthrough:expr) => {
        match $self {
            AnyPolicy::Passthrough => $passthrough,
            AnyPolicy::Ipex($p) => $body,
            AnyPolicy::Predictive($p) => $body,
            AnyPolicy::Hysteresis($p) => $body,
            AnyPolicy::StaticDegree($p) => $body,
        }
    };
}

impl AnyPolicy {
    /// Builds an IPEX policy from its configuration.
    pub fn ipex(cfg: IpexConfig) -> AnyPolicy {
        AnyPolicy::Ipex(Box::new(IpexController::new(cfg)))
    }

    /// `true` if this is the IPEX controller.
    pub fn is_ipex(&self) -> bool {
        matches!(self, AnyPolicy::Ipex(_))
    }

    /// Stable kebab-case policy name (`"passthrough"`, `"ipex"`,
    /// `"predictive"`, `"hysteresis"`, `"static-degree"`).
    pub fn kind_name(&self) -> &'static str {
        delegate!(self, p => p.kind_name(), "passthrough")
    }

    /// Voltage update; passthrough ignores it. See
    /// [`ThrottlePolicy::observe_voltage`].
    pub fn observe_voltage(&mut self, voltage: f64) -> Option<Vec<u32>> {
        delegate!(self, p => p.observe_voltage(voltage), None)
    }

    /// Candidate filtering; passthrough keeps everything. See
    /// [`ThrottlePolicy::filter`].
    #[inline]
    pub fn filter(&mut self, candidates: &mut Vec<u32>) -> usize {
        delegate!(self, p => p.filter(candidates), candidates.len())
    }

    /// Power-failure notification.
    pub fn on_power_failure(&mut self) {
        delegate!(self, p => p.on_power_failure(), ())
    }

    /// Reboot notification.
    pub fn on_reboot(&mut self) {
        delegate!(self, p => p.on_reboot(), ())
    }

    /// Policy statistics, `None` for passthrough.
    pub fn stats(&self) -> Option<PolicyStats> {
        delegate!(self, p => Some(p.stats()), None)
    }

    /// Current effective prefetch degree, `None` for passthrough (no
    /// cap). Lets an observer (e.g. the simulator's tracer) detect
    /// degree changes around [`AnyPolicy::observe_voltage`].
    pub fn current_degree(&self) -> Option<u32> {
        delegate!(self, p => Some(p.current_degree()), None)
    }

    /// The voltage thresholds the policy reacts to, highest first
    /// (empty for policies without fixed thresholds). Only meaningful
    /// together with [`AnyPolicy::batched_observation_safe`].
    pub fn thresholds(&self) -> &[f64] {
        delegate!(self, p => p.thresholds(), &[])
    }

    /// NVFF bits this policy JIT-checkpoints per cache; the simulator
    /// charges them to every backup and restore.
    pub fn nvff_bits(&self) -> u32 {
        delegate!(self, p => p.nvff_bits(), 0)
    }

    /// `true` when `observe_voltage` is a no-op while the voltage stays
    /// strictly inside one inter-threshold band, allowing the simulator
    /// to batch observations over a safe energy window. See
    /// [`ThrottlePolicy::batched_observation_safe`].
    pub fn batched_observation_safe(&self) -> bool {
        delegate!(self, p => p.batched_observation_safe(), true)
    }

    /// Monotone count of self-adaptation events. See
    /// [`ThrottlePolicy::adaptations`].
    pub fn adaptations(&self) -> u64 {
        delegate!(self, p => p.adaptations(), 0)
    }

    /// The complete state as a serializable value, for snapshot/resume
    /// (inherent convenience for [`Persist::export_state`]).
    pub fn export_state(&self) -> PolicyState {
        match self {
            AnyPolicy::Passthrough => PolicyState::Passthrough,
            AnyPolicy::Ipex(c) => PolicyState::Ipex(Box::new(Persist::export_state(&**c))),
            AnyPolicy::Predictive(c) => {
                PolicyState::Predictive(Box::new(Persist::export_state(&**c)))
            }
            AnyPolicy::Hysteresis(c) => {
                PolicyState::Hysteresis(Box::new(Persist::export_state(&**c)))
            }
            AnyPolicy::StaticDegree(c) => PolicyState::StaticDegree(Persist::export_state(c)),
        }
    }

    /// Rebuilds a policy from state previously produced by
    /// [`AnyPolicy::export_state`] (inherent convenience for
    /// [`Persist::from_state`]).
    ///
    /// # Errors
    ///
    /// Propagates the underlying controller's validation error.
    pub fn from_state(state: &PolicyState) -> Result<AnyPolicy, String> {
        Ok(match state {
            PolicyState::Passthrough => AnyPolicy::Passthrough,
            PolicyState::Ipex(s) => AnyPolicy::Ipex(Box::new(Persist::from_state(&**s)?)),
            PolicyState::Predictive(s) => {
                AnyPolicy::Predictive(Box::new(Persist::from_state(&**s)?))
            }
            PolicyState::Hysteresis(s) => {
                AnyPolicy::Hysteresis(Box::new(Persist::from_state(&**s)?))
            }
            PolicyState::StaticDegree(s) => AnyPolicy::StaticDegree(Persist::from_state(s)?),
        })
    }
}

impl Persist for AnyPolicy {
    type State = PolicyState;

    fn export_state(&self) -> PolicyState {
        AnyPolicy::export_state(self)
    }

    fn from_state(state: &PolicyState) -> Result<AnyPolicy, String> {
        AnyPolicy::from_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // -------------------- AnyPolicy dispatch --------------------

    #[test]
    fn passthrough_keeps_everything() {
        let mut t = AnyPolicy::Passthrough;
        assert!(!t.is_ipex());
        assert_eq!(t.kind_name(), "passthrough");
        let mut cand = vec![1, 2, 3, 4, 5];
        assert_eq!(t.filter(&mut cand), 5);
        assert_eq!(cand.len(), 5);
        assert!(t.observe_voltage(3.0).is_none());
        assert!(t.stats().is_none());
        assert_eq!(t.nvff_bits(), 0);
        assert!(t.batched_observation_safe());
        t.on_power_failure();
        t.on_reboot();
    }

    #[test]
    fn ipex_policy_delegates() {
        let mut t = AnyPolicy::ipex(IpexConfig::paper_default());
        assert!(t.is_ipex());
        assert_eq!(t.kind_name(), "ipex");
        assert_eq!(t.nvff_bits(), IPEX_NVFF_BITS);
        assert!(t.batched_observation_safe());
        t.observe_voltage(3.2);
        let mut cand = vec![1, 2];
        assert_eq!(t.filter(&mut cand), 0);
        assert_eq!(t.stats().unwrap().throttled, 2);
    }

    #[test]
    fn policy_state_round_trips_every_kind() {
        let policies = [
            AnyPolicy::Passthrough,
            AnyPolicy::ipex(IpexConfig::paper_default()),
            PolicyConfig::Predictive(PredictiveConfig::paper_default()).build(),
            PolicyConfig::Hysteresis(HysteresisConfig::paper_default()).build(),
            PolicyConfig::StaticDegree(StaticDegreeConfig::conservative()).build(),
        ];
        for mut p in policies {
            // Exercise it a little so the state is non-trivial.
            p.observe_voltage(3.21);
            let mut cand = vec![0x10, 0x20, 0x30];
            p.filter(&mut cand);
            let state = p.export_state();
            assert_eq!(state.kind_name(), p.kind_name());
            let json = serde_json::to_string(&state).unwrap();
            let back: PolicyState = serde_json::from_str(&json).unwrap();
            let restored = AnyPolicy::from_state(&back).unwrap();
            assert_eq!(restored.export_state(), state, "{}", p.kind_name());
        }
    }

    #[test]
    fn legacy_wire_names_preserved() {
        // Pre-redesign snapshots carry exactly these two forms.
        assert_eq!(
            serde_json::to_string(&PolicyState::Passthrough).unwrap(),
            "\"passthrough\""
        );
        let ipex = AnyPolicy::ipex(IpexConfig::paper_default()).export_state();
        assert!(serde_json::to_string(&ipex)
            .unwrap()
            .starts_with("{\"ipex\""));
    }

    // -------------------- static --------------------

    #[test]
    fn static_policy_always_truncates() {
        let mut c = StaticController::new(StaticDegreeConfig::conservative());
        assert_eq!(c.current_degree(), 1);
        assert!(c.observe_voltage(3.4).is_none());
        let mut cand = vec![0xa0, 0xb0, 0xc0];
        assert_eq!(c.filter(&mut cand), 1);
        assert_eq!(cand, vec![0xa0]);
        // Voltage never matters.
        c.observe_voltage(0.1);
        let mut cand = vec![0xa0, 0xb0];
        assert_eq!(c.filter(&mut cand), 1);
        assert_eq!(c.stats().issued, 2);
        assert_eq!(c.stats().throttled, 3);
        c.on_power_failure();
        c.on_reboot();
        assert_eq!(c.stats().power_cycles, 1);
        assert_eq!(c.adaptations(), 0);
    }

    #[test]
    fn static_config_validated() {
        assert!(StaticDegreeConfig { degree: 0 }.validate().is_err());
        assert!(StaticDegreeConfig { degree: 8 }.validate().is_err());
        assert!(StaticDegreeConfig::aggressive().validate().is_ok());
    }

    // -------------------- hysteresis --------------------

    #[test]
    fn hysteresis_band_prevents_flapping() {
        let mut c = HysteresisController::new(HysteresisConfig {
            alpha: 1.0, // unfiltered, to test the band alone
            ..HysteresisConfig::paper_default()
        });
        assert_eq!(c.current_degree(), 2);
        c.observe_voltage(3.25); // <= low_v: enter saving
        assert_eq!(c.mode(), Mode::EnergySaving);
        assert_eq!(c.current_degree(), 0);
        c.observe_voltage(3.29); // inside the band: stays saving
        assert_eq!(c.mode(), Mode::EnergySaving);
        c.observe_voltage(3.33); // >= high_v: back to HP
        assert_eq!(c.mode(), Mode::HighPerformance);
        assert_eq!(c.current_degree(), 2);
        assert_eq!(c.stats().saving_mode_entries, 1);
    }

    #[test]
    fn ewma_smooths_single_sample_brownout() {
        let mut c = HysteresisController::new(HysteresisConfig::paper_default());
        for _ in 0..50 {
            c.observe_voltage(3.35);
        }
        // One 0.45 V dip: alpha = 1/8 moves the filter only ~0.06 V,
        // while an unfiltered controller would have switched instantly.
        c.observe_voltage(2.9);
        assert_eq!(c.mode(), Mode::HighPerformance, "filter absorbed the dip");
        // A sustained sag does switch.
        for _ in 0..50 {
            c.observe_voltage(3.1);
        }
        assert_eq!(c.mode(), Mode::EnergySaving);
    }

    #[test]
    fn hysteresis_filter_state_is_volatile() {
        let mut c = HysteresisController::new(HysteresisConfig::paper_default());
        for _ in 0..50 {
            c.observe_voltage(3.1);
        }
        assert_eq!(c.mode(), Mode::EnergySaving);
        c.on_power_failure();
        assert!(c.filtered_voltage().is_none());
        c.on_reboot();
        assert_eq!(c.mode(), Mode::HighPerformance);
        assert_eq!(c.stats().power_cycles, 1);
        // Fresh cycle reseeds the filter from the first sample.
        c.observe_voltage(3.4);
        assert_eq!(c.filtered_voltage(), Some(3.4));
    }

    #[test]
    fn hysteresis_filter_truncates_only_in_saving_mode() {
        let mut c = HysteresisController::new(HysteresisConfig {
            alpha: 1.0,
            low_degree: 1,
            ..HysteresisConfig::paper_default()
        });
        let mut cand = vec![1, 2, 3, 4];
        assert_eq!(c.filter(&mut cand), 4, "HP passes everything");
        c.observe_voltage(3.2);
        let mut cand = vec![1, 2, 3, 4];
        assert_eq!(c.filter(&mut cand), 1);
        assert_eq!(cand, vec![1]);
        // The paper default gates prefetching off entirely in saving
        // mode.
        let mut d = HysteresisController::new(HysteresisConfig {
            alpha: 1.0,
            ..HysteresisConfig::paper_default()
        });
        d.observe_voltage(3.2);
        let mut cand = vec![1, 2];
        assert_eq!(d.filter(&mut cand), 0);
        assert!(cand.is_empty());
        assert_eq!(d.stats().throttled, 2);
    }

    #[test]
    fn hysteresis_config_validated() {
        let ok = HysteresisConfig::paper_default();
        assert!(ok.validate().is_ok());
        assert!(HysteresisConfig { alpha: 0.0, ..ok }.validate().is_err());
        assert!(HysteresisConfig {
            low_v: 3.4,
            high_v: 3.3,
            ..ok
        }
        .validate()
        .is_err());
        assert!(HysteresisConfig {
            low_degree: 2,
            initial_degree: 2,
            ..ok
        }
        .validate()
        .is_err());
    }

    // -------------------- predictive --------------------

    /// Drives the controller through one power cycle of `obs`
    /// observations at voltage `v`, then fails and reboots.
    fn predictive_cycle(c: &mut PredictiveController, obs: u32, v: f64) {
        for _ in 0..obs {
            c.observe_voltage(v);
        }
        c.on_power_failure();
        c.on_reboot();
    }

    #[test]
    fn predictive_stays_unthrottled_below_confidence_floor() {
        let mut c = PredictiveController::new(PredictiveConfig::paper_default());
        // Cold table: whole first cycle runs at full degree.
        for _ in 0..10_000 {
            c.observe_voltage(3.2);
            assert_eq!(c.current_degree(), 2);
        }
        assert_eq!(c.mode(), Mode::HighPerformance);
    }

    #[test]
    fn predictive_learns_and_throttles_before_the_outage() {
        let cfg = PredictiveConfig::paper_default();
        let mut c = PredictiveController::new(cfg);
        // Train: constant-voltage cycles of ~4096 observations, so the
        // (same-bin, same-bin) context confidently predicts class
        // class_of(4096) = 4.
        for _ in 0..10 {
            predictive_cycle(&mut c, 4096, 3.2);
        }
        assert!(c.adaptations() >= cfg.min_evidence as u64);
        // Next cycle: early on the prediction is far away -> full
        // degree; late in the cycle the degree decays.
        let mut saw_half = false;
        let mut saw_quarter = false;
        for i in 0..4096u32 {
            c.observe_voltage(3.2);
            match c.current_degree() {
                1 => saw_half = true,
                0 => saw_quarter = true,
                2 => assert!(i < 3000, "still full degree at obs {i}"),
                d => panic!("unexpected degree {d}"),
            }
        }
        assert!(saw_half, "degree halved approaching the predicted outage");
        assert!(saw_quarter, "degree floored at the predicted outage");
    }

    #[test]
    fn predictive_tables_survive_outages_but_history_does_not() {
        let mut c = PredictiveController::new(PredictiveConfig::paper_default());
        for _ in 0..5 {
            predictive_cycle(&mut c, 1000, 3.2);
        }
        let table_after: u32 = c.table().iter().sum();
        assert!(table_after > 0, "outages were recorded");
        // Volatile history gone after the last failure/reboot.
        let st = Persist::export_state(&c);
        assert_eq!(st.prev_level, None);
        assert_eq!(st.context, None);
        assert_eq!(st.obs_since_reboot, 0);
        assert_eq!(st.stats.power_cycles, 5);
    }

    #[test]
    fn predictive_count_cap_ages_the_table() {
        let cfg = PredictiveConfig {
            count_cap: 4,
            ..PredictiveConfig::paper_default()
        };
        let mut c = PredictiveController::new(cfg);
        for _ in 0..100 {
            predictive_cycle(&mut c, 1000, 3.2);
        }
        // Aging keeps every row total at or below the cap.
        for ctx in 0..PREDICTIVE_CONTEXTS {
            let row =
                &c.table()[ctx * PREDICTIVE_INTERVAL_CLASSES..][..PREDICTIVE_INTERVAL_CLASSES];
            let total: u32 = row.iter().sum();
            assert!(total <= cfg.count_cap, "context {ctx} total {total}");
        }
        assert_eq!(c.adaptations(), 100);
    }

    #[test]
    fn predictive_quantization_saturates() {
        let c = PredictiveController::new(PredictiveConfig::paper_default());
        assert_eq!(c.quantize(-5.0), 0);
        assert_eq!(c.quantize(3.0), 0);
        assert_eq!(c.quantize(3.39), 7);
        assert_eq!(c.quantize(99.0), 7);
    }

    #[test]
    fn predictive_interval_classes_are_log_buckets() {
        assert_eq!(PredictiveController::class_of(0), 0);
        assert_eq!(PredictiveController::class_of(255), 0);
        assert_eq!(PredictiveController::class_of(512), 1);
        assert_eq!(PredictiveController::class_of(4096), 4);
        assert_eq!(PredictiveController::class_of(u64::MAX / 2), 7);
    }

    #[test]
    fn predictive_config_validated() {
        let ok = PredictiveConfig::paper_default();
        assert!(ok.validate().is_ok());
        assert!(PredictiveConfig {
            v_floor: 3.4,
            v_ceil: 3.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(PredictiveConfig {
            sample_period: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(PredictiveConfig {
            count_cap: 256,
            ..ok
        }
        .validate()
        .is_err());
    }

    // -------------------- PolicyConfig --------------------

    #[test]
    fn policy_config_builds_matching_kind() {
        let cases = [
            (
                PolicyConfig::Predictive(PredictiveConfig::paper_default()),
                "predictive",
                2,
            ),
            (
                PolicyConfig::Hysteresis(HysteresisConfig::paper_default()),
                "hysteresis",
                2,
            ),
            (
                PolicyConfig::StaticDegree(StaticDegreeConfig::conservative()),
                "static-degree",
                1,
            ),
        ];
        for (pc, kind, init) in cases {
            assert!(pc.validate().is_ok());
            assert_eq!(pc.kind_name(), kind);
            assert_eq!(pc.initial_degree(), init);
            let built = pc.build();
            assert_eq!(built.kind_name(), kind);
            assert_eq!(built.current_degree(), Some(init));
        }
    }

    #[test]
    fn policy_config_serializes_kebab_case() {
        let pc = PolicyConfig::StaticDegree(StaticDegreeConfig::conservative());
        let json = serde_json::to_string(&pc).unwrap();
        assert_eq!(json, "{\"static-degree\":{\"degree\":1}}");
        let back: PolicyConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, pc);
    }

    #[test]
    fn non_batchable_policies_say_so() {
        let pred = PolicyConfig::Predictive(PredictiveConfig::paper_default()).build();
        let hyst = PolicyConfig::Hysteresis(HysteresisConfig::paper_default()).build();
        let stat = PolicyConfig::StaticDegree(StaticDegreeConfig::conservative()).build();
        assert!(!pred.batched_observation_safe());
        assert!(!hyst.batched_observation_safe());
        assert!(stat.batched_observation_safe());
        assert_eq!(pred.nvff_bits(), PREDICTIVE_NVFF_BITS);
        assert_eq!(hyst.nvff_bits(), 0);
        assert_eq!(stat.nvff_bits(), 0);
    }
}
