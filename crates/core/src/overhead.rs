//! Hardware-overhead accounting (§6.1).
//!
//! IPEX adds four registers per cache (99 bits) and reuses the existing
//! prefetcher datapath, so its area cost is a handful of flip-flops. The
//! paper estimates the addition at 0.0018 % of a 0.54 mm² core (CACTI,
//! 45 nm); this module reproduces that accounting.

use serde::{Deserialize, Serialize};

pub use crate::registers::BITS_PER_CACHE;

/// Core area including ICache and DCache, mm² (paper §6.1, CACTI 45 nm).
pub const CORE_AREA_MM2: f64 = 0.54;

/// Register-bit area at 45 nm used by the paper's CACTI estimate, µm².
/// Derived so the published 0.0018 % core-area figure is reproduced:
/// `0.0018 % × 0.54 mm² / 198 bits ≈ 0.049 µm²/bit`.
pub const BIT_AREA_UM2: f64 = 0.049;

/// The hardware-overhead report of §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// IPEX register bits per cache (99).
    pub bits_per_cache: u32,
    /// Number of caches extended (ICache + DCache).
    pub caches: u32,
    /// Total additional bits (198).
    pub total_bits: u32,
    /// Added area in µm².
    pub added_area_um2: f64,
    /// Core area in mm².
    pub core_area_mm2: f64,
    /// Added area as a percentage of the core area.
    pub core_area_percent: f64,
}

/// Computes the §6.1 overhead report for a two-cache (I+D) system.
///
/// ```
/// let r = ipex::overhead::report();
/// assert_eq!(r.total_bits, 198);
/// assert!(r.core_area_percent < 0.002);
/// ```
pub fn report() -> OverheadReport {
    report_for_caches(2)
}

/// Overhead report for a system extending `caches` caches.
///
/// # Panics
///
/// Panics if `caches` is zero.
pub fn report_for_caches(caches: u32) -> OverheadReport {
    assert!(caches > 0, "at least one cache required");
    let total_bits = BITS_PER_CACHE * caches;
    let added_area_um2 = total_bits as f64 * BIT_AREA_UM2;
    let core_area_percent = added_area_um2 / (CORE_AREA_MM2 * 1.0e6) * 100.0;
    OverheadReport {
        bits_per_cache: BITS_PER_CACHE,
        caches,
        total_bits,
        added_area_um2,
        core_area_mm2: CORE_AREA_MM2,
        core_area_percent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_totals() {
        let r = report();
        assert_eq!(r.bits_per_cache, 99);
        assert_eq!(r.total_bits, 198);
        // Paper: ~0.0018 % of core area.
        assert!(
            (r.core_area_percent - 0.0018).abs() < 0.0002,
            "{}",
            r.core_area_percent
        );
    }

    #[test]
    fn scales_with_cache_count() {
        let r = report_for_caches(4);
        assert_eq!(r.total_bits, 396);
        assert!(r.core_area_percent > report().core_area_percent);
    }

    #[test]
    #[should_panic(expected = "at least one cache")]
    fn zero_caches_rejected() {
        report_for_caches(0);
    }
}
