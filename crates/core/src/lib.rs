//! # ipex — Intermittence-aware Prefetching EXtension
//!
//! This crate is the paper's contribution: a lightweight control layer
//! that sits between the capacitor's voltage monitor and any hardware
//! prefetcher, throttling the prefetch degree as power failure approaches
//! so that energy is not wasted fetching blocks that will be wiped before
//! use ("Rethinking Prefetching for Intermittent Computing", ISCA '25).
//!
//! ## How it works (paper §3–§4)
//!
//! * **Multiple voltage thresholds** `V1 > V2 > … > Vk` (default k = 2 at
//!   3.3 V / 3.25 V) partition the operating voltage range. Each
//!   downward crossing *halves* the current prefetch degree `Rcpd`; each
//!   upward crossing *doubles* it back, switching between *high
//!   performance* and *energy saving* modes ([`Mode`]).
//! * **Four registers per cache** ([`IpexRegisters`]): `Rthrottled`,
//!   `Rtotal`, `Rtr` and `Ripd`. The first two count suppressed and total
//!   prefetch candidates and survive outages via JIT checkpointing; at
//!   reboot `Rtr = Rthrottled / Rtotal` (the *throttling rate*) drives
//!   the adaptive threshold update: a rate ≥ 5 % means throttling was too
//!   eager, so all thresholds drop by one 0.05 V step (lazier); otherwise
//!   they rise by one step (more eager).
//! * **Per-cache controllers.** ICache and DCache each get their own
//!   [`IpexController`]; the simulator feeds each one its prefetcher's
//!   candidate list through [`IpexController::filter`].
//!
//! ## Example
//!
//! ```
//! use ipex::{IpexConfig, IpexController, Mode};
//!
//! let mut ctl = IpexController::new(IpexConfig::paper_default());
//! // Plenty of charge: full degree.
//! ctl.observe_voltage(3.5);
//! assert_eq!(ctl.current_degree(), 2);
//! assert_eq!(ctl.mode(), Mode::HighPerformance);
//!
//! // Voltage sags below the first threshold: degree halves.
//! ctl.observe_voltage(3.28);
//! assert_eq!(ctl.current_degree(), 1);
//! assert_eq!(ctl.mode(), Mode::EnergySaving);
//!
//! // A 2-candidate prefetch burst now issues only one block.
//! let mut candidates = vec![0x1000, 0x1010];
//! let issued = ctl.filter(&mut candidates);
//! assert_eq!(issued, 1);
//! assert_eq!(candidates, vec![0x1000]);
//! ```
//!
//! ## Beyond IPEX: the policy layer
//!
//! The controller answers one instance of a general question — how
//! aggressively to prefetch given the capacitor voltage. The [`policy`]
//! module names that question as the [`ThrottlePolicy`] contract and
//! ships alternative answers ([`PredictiveController`],
//! [`HysteresisController`], [`StaticController`]) behind the closed
//! [`AnyPolicy`] enum the simulator embeds; `IpexController` is one
//! implementation among them. See the module docs for the state rules.

#![warn(missing_docs)]

mod config;
mod controller;
pub mod overhead;
pub mod policy;
mod registers;

pub use config::IpexConfig;
pub use controller::{IpexController, IpexControllerState, IpexStats, Mode};
pub use policy::{
    AnyPolicy, HysteresisConfig, HysteresisController, HysteresisControllerState, PolicyConfig,
    PolicyState, PolicyStats, PredictiveConfig, PredictiveController, PredictiveControllerState,
    StaticController, StaticControllerState, StaticDegreeConfig, Throttle, ThrottlePolicy,
    ThrottleState, IPEX_NVFF_BITS, PREDICTIVE_NVFF_BITS,
};
pub use registers::IpexRegisters;
