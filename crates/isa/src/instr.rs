//! Decoded instructions and their binary encoding.
//!
//! Every instruction occupies one 32-bit word. The encoding uses a 6-bit
//! opcode in bits `[31:26]` and one of four layouts below it:
//!
//! | format | fields |
//! |--------|--------|
//! | R      | `rd [25:22]`, `rs1 [21:18]`, `rs2 [17:14]` |
//! | I / S  | `rd/rs2 [25:22]`, `rs1 [21:18]`, `imm18 [17:0]` (signed) |
//! | B      | `rs1 [25:22]`, `rs2 [21:18]`, `imm18 [17:0]` (signed, bytes, PC-relative) |
//! | J / U  | `rd [25:22]`, `imm22 [21:0]` (signed; `lui` shifts it left by 14) |
//!
//! A full-zero word decodes to [`Instr::Halt`], so execution that strays
//! into zero-initialised memory stops deterministically.

use std::fmt;

use crate::Reg;

/// Width of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    Byte,
    /// 2 bytes.
    Half,
    /// 4 bytes.
    Word,
}

impl MemWidth {
    /// Size of the access in bytes.
    #[inline]
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }
}

/// Broad execution class of an instruction; the timing simulator assigns
/// latency and dynamic energy per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ExecClass {
    /// Single-cycle integer ALU operation.
    Alu,
    /// Multi-cycle multiply.
    Mul,
    /// Multi-cycle divide/remainder.
    Div,
    /// Memory load (goes through the DCache).
    Load,
    /// Memory store (goes through the DCache).
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump (`jal`/`jalr`).
    Jump,
    /// Program termination.
    Halt,
}

impl ExecClass {
    /// Number of execution classes (for per-class lookup tables).
    pub const COUNT: usize = 8;

    /// Dense index of this class, `0..Self::COUNT` — the timing
    /// simulator's pre-computed latency/energy tables are indexed by it.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A decoded EHS-RV instruction.
///
/// See the [module documentation](self) for the binary layout. Arithmetic
/// is two's-complement and wrapping; shifts use the low 5 bits of the
/// shift amount; `div`/`rem` follow the RISC-V convention for division by
/// zero (quotient −1, remainder = dividend) instead of trapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `rd = rs1 + rs2` (wrapping).
    Add { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 - rs2` (wrapping).
    Sub { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 & rs2`.
    And { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 | rs2`.
    Or { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 ^ rs2`.
    Xor { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 << (rs2 & 31)`.
    Sll { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 >> (rs2 & 31)` (logical).
    Srl { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 >> (rs2 & 31)` (arithmetic).
    Sra { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = (rs1 as i32) < (rs2 as i32)`.
    Slt { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 < rs2` (unsigned).
    Sltu { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 * rs2` (wrapping, low 32 bits).
    Mul { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 / rs2` (signed; x/0 = −1).
    Div { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 % rs2` (signed; x%0 = x).
    Rem { rd: Reg, rs1: Reg, rs2: Reg },

    /// `rd = rs1 + imm` (wrapping).
    Addi { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 & imm`.
    Andi { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 | imm`.
    Ori { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 ^ imm`.
    Xori { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = (rs1 as i32) < imm`.
    Slti { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 << (imm & 31)`.
    Slli { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 >> (imm & 31)` (logical).
    Srli { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 >> (imm & 31)` (arithmetic).
    Srai { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = imm << 14` (load upper immediate).
    Lui { rd: Reg, imm: i32 },

    /// `rd = mem[rs1 + offset]`, optionally sign-extended for sub-word widths.
    Load {
        rd: Reg,
        base: Reg,
        offset: i32,
        width: MemWidth,
        signed: bool,
    },
    /// `mem[rs1 + offset] = src` (low `width` bytes).
    Store {
        src: Reg,
        base: Reg,
        offset: i32,
        width: MemWidth,
    },

    /// Branch to `pc + offset` if `rs1 == rs2`.
    Beq { rs1: Reg, rs2: Reg, offset: i32 },
    /// Branch to `pc + offset` if `rs1 != rs2`.
    Bne { rs1: Reg, rs2: Reg, offset: i32 },
    /// Branch to `pc + offset` if `rs1 < rs2` (signed).
    Blt { rs1: Reg, rs2: Reg, offset: i32 },
    /// Branch to `pc + offset` if `rs1 >= rs2` (signed).
    Bge { rs1: Reg, rs2: Reg, offset: i32 },
    /// Branch to `pc + offset` if `rs1 < rs2` (unsigned).
    Bltu { rs1: Reg, rs2: Reg, offset: i32 },
    /// Branch to `pc + offset` if `rs1 >= rs2` (unsigned).
    Bgeu { rs1: Reg, rs2: Reg, offset: i32 },

    /// `rd = pc + 4; pc += offset`.
    Jal { rd: Reg, offset: i32 },
    /// `rd = pc + 4; pc = rs1 + offset`.
    Jalr { rd: Reg, base: Reg, offset: i32 },

    /// Stop the program.
    Halt,
}

/// Error produced when a word does not decode to a valid instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

const IMM18_MIN: i32 = -(1 << 17);
const IMM18_MAX: i32 = (1 << 17) - 1;
const IMM22_MIN: i32 = -(1 << 21);
const IMM22_MAX: i32 = (1 << 21) - 1;

/// Range of the 18-bit signed immediate used by I/S/B formats.
pub const fn imm18_range() -> (i32, i32) {
    (IMM18_MIN, IMM18_MAX)
}

/// Range of the 22-bit signed immediate used by J/U formats.
pub const fn imm22_range() -> (i32, i32) {
    (IMM22_MIN, IMM22_MAX)
}

// Opcode numbers. Kept dense so decode is a simple match.
mod op {
    pub const HALT: u32 = 0;
    pub const ADD: u32 = 1;
    pub const SUB: u32 = 2;
    pub const AND: u32 = 3;
    pub const OR: u32 = 4;
    pub const XOR: u32 = 5;
    pub const SLL: u32 = 6;
    pub const SRL: u32 = 7;
    pub const SRA: u32 = 8;
    pub const SLT: u32 = 9;
    pub const SLTU: u32 = 10;
    pub const MUL: u32 = 11;
    pub const DIV: u32 = 12;
    pub const REM: u32 = 13;
    pub const ADDI: u32 = 14;
    pub const ANDI: u32 = 15;
    pub const ORI: u32 = 16;
    pub const XORI: u32 = 17;
    pub const SLTI: u32 = 18;
    pub const SLLI: u32 = 19;
    pub const SRLI: u32 = 20;
    pub const SRAI: u32 = 21;
    pub const LUI: u32 = 22;
    pub const LW: u32 = 23;
    pub const LH: u32 = 24;
    pub const LHU: u32 = 25;
    pub const LB: u32 = 26;
    pub const LBU: u32 = 27;
    pub const SW: u32 = 28;
    pub const SH: u32 = 29;
    pub const SB: u32 = 30;
    pub const BEQ: u32 = 31;
    pub const BNE: u32 = 32;
    pub const BLT: u32 = 33;
    pub const BGE: u32 = 34;
    pub const BLTU: u32 = 35;
    pub const BGEU: u32 = 36;
    pub const JAL: u32 = 37;
    pub const JALR: u32 = 38;
}

#[inline]
fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

#[inline]
fn field_reg(word: u32, lo: u32) -> Reg {
    // A 4-bit field always names a valid register.
    Reg::from_index(((word >> lo) & 0xf) as usize).expect("4-bit register field")
}

fn enc_r(opcode: u32, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    (opcode << 26)
        | ((rd.index() as u32) << 22)
        | ((rs1.index() as u32) << 18)
        | ((rs2.index() as u32) << 14)
}

fn enc_i(opcode: u32, rd: Reg, rs1: Reg, imm: i32) -> u32 {
    debug_assert!(
        (IMM18_MIN..=IMM18_MAX).contains(&imm),
        "imm18 out of range: {imm}"
    );
    (opcode << 26)
        | ((rd.index() as u32) << 22)
        | ((rs1.index() as u32) << 18)
        | ((imm as u32) & 0x3ffff)
}

fn enc_j(opcode: u32, rd: Reg, imm: i32) -> u32 {
    debug_assert!(
        (IMM22_MIN..=IMM22_MAX).contains(&imm),
        "imm22 out of range: {imm}"
    );
    (opcode << 26) | ((rd.index() as u32) << 22) | ((imm as u32) & 0x3f_ffff)
}

impl Instr {
    /// A canonical no-op (`addi zero, zero, 0`).
    pub const NOP: Instr = Instr::Addi {
        rd: Reg::Zero,
        rs1: Reg::Zero,
        imm: 0,
    };

    /// Encodes the instruction into its 32-bit word.
    ///
    /// # Panics
    ///
    /// Debug builds assert that immediates fit their field; the assembler
    /// validates ranges before constructing instructions.
    pub fn encode(self) -> u32 {
        use Instr::*;
        match self {
            Add { rd, rs1, rs2 } => enc_r(op::ADD, rd, rs1, rs2),
            Sub { rd, rs1, rs2 } => enc_r(op::SUB, rd, rs1, rs2),
            And { rd, rs1, rs2 } => enc_r(op::AND, rd, rs1, rs2),
            Or { rd, rs1, rs2 } => enc_r(op::OR, rd, rs1, rs2),
            Xor { rd, rs1, rs2 } => enc_r(op::XOR, rd, rs1, rs2),
            Sll { rd, rs1, rs2 } => enc_r(op::SLL, rd, rs1, rs2),
            Srl { rd, rs1, rs2 } => enc_r(op::SRL, rd, rs1, rs2),
            Sra { rd, rs1, rs2 } => enc_r(op::SRA, rd, rs1, rs2),
            Slt { rd, rs1, rs2 } => enc_r(op::SLT, rd, rs1, rs2),
            Sltu { rd, rs1, rs2 } => enc_r(op::SLTU, rd, rs1, rs2),
            Mul { rd, rs1, rs2 } => enc_r(op::MUL, rd, rs1, rs2),
            Div { rd, rs1, rs2 } => enc_r(op::DIV, rd, rs1, rs2),
            Rem { rd, rs1, rs2 } => enc_r(op::REM, rd, rs1, rs2),
            Addi { rd, rs1, imm } => enc_i(op::ADDI, rd, rs1, imm),
            Andi { rd, rs1, imm } => enc_i(op::ANDI, rd, rs1, imm),
            Ori { rd, rs1, imm } => enc_i(op::ORI, rd, rs1, imm),
            Xori { rd, rs1, imm } => enc_i(op::XORI, rd, rs1, imm),
            Slti { rd, rs1, imm } => enc_i(op::SLTI, rd, rs1, imm),
            Slli { rd, rs1, imm } => enc_i(op::SLLI, rd, rs1, imm),
            Srli { rd, rs1, imm } => enc_i(op::SRLI, rd, rs1, imm),
            Srai { rd, rs1, imm } => enc_i(op::SRAI, rd, rs1, imm),
            Lui { rd, imm } => enc_j(op::LUI, rd, imm),
            Load {
                rd,
                base,
                offset,
                width,
                signed,
            } => {
                let opcode = match (width, signed) {
                    (MemWidth::Word, _) => op::LW,
                    (MemWidth::Half, true) => op::LH,
                    (MemWidth::Half, false) => op::LHU,
                    (MemWidth::Byte, true) => op::LB,
                    (MemWidth::Byte, false) => op::LBU,
                };
                enc_i(opcode, rd, base, offset)
            }
            Store {
                src,
                base,
                offset,
                width,
            } => {
                let opcode = match width {
                    MemWidth::Word => op::SW,
                    MemWidth::Half => op::SH,
                    MemWidth::Byte => op::SB,
                };
                enc_i(opcode, src, base, offset)
            }
            Beq { rs1, rs2, offset } => enc_i(op::BEQ, rs1, rs2, offset),
            Bne { rs1, rs2, offset } => enc_i(op::BNE, rs1, rs2, offset),
            Blt { rs1, rs2, offset } => enc_i(op::BLT, rs1, rs2, offset),
            Bge { rs1, rs2, offset } => enc_i(op::BGE, rs1, rs2, offset),
            Bltu { rs1, rs2, offset } => enc_i(op::BLTU, rs1, rs2, offset),
            Bgeu { rs1, rs2, offset } => enc_i(op::BGEU, rs1, rs2, offset),
            Jal { rd, offset } => enc_j(op::JAL, rd, offset),
            Jalr { rd, base, offset } => enc_i(op::JALR, rd, base, offset),
            Halt => 0,
        }
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the opcode field is not a defined opcode.
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        use Instr::*;
        let opcode = word >> 26;
        let rd = field_reg(word, 22);
        let rs1 = field_reg(word, 18);
        let rs2 = field_reg(word, 14);
        let imm18 = sext(word & 0x3ffff, 18);
        let imm22 = sext(word & 0x3f_ffff, 22);
        let instr = match opcode {
            op::HALT => Halt,
            op::ADD => Add { rd, rs1, rs2 },
            op::SUB => Sub { rd, rs1, rs2 },
            op::AND => And { rd, rs1, rs2 },
            op::OR => Or { rd, rs1, rs2 },
            op::XOR => Xor { rd, rs1, rs2 },
            op::SLL => Sll { rd, rs1, rs2 },
            op::SRL => Srl { rd, rs1, rs2 },
            op::SRA => Sra { rd, rs1, rs2 },
            op::SLT => Slt { rd, rs1, rs2 },
            op::SLTU => Sltu { rd, rs1, rs2 },
            op::MUL => Mul { rd, rs1, rs2 },
            op::DIV => Div { rd, rs1, rs2 },
            op::REM => Rem { rd, rs1, rs2 },
            op::ADDI => Addi {
                rd,
                rs1,
                imm: imm18,
            },
            op::ANDI => Andi {
                rd,
                rs1,
                imm: imm18,
            },
            op::ORI => Ori {
                rd,
                rs1,
                imm: imm18,
            },
            op::XORI => Xori {
                rd,
                rs1,
                imm: imm18,
            },
            op::SLTI => Slti {
                rd,
                rs1,
                imm: imm18,
            },
            op::SLLI => Slli {
                rd,
                rs1,
                imm: imm18,
            },
            op::SRLI => Srli {
                rd,
                rs1,
                imm: imm18,
            },
            op::SRAI => Srai {
                rd,
                rs1,
                imm: imm18,
            },
            op::LUI => Lui { rd, imm: imm22 },
            op::LW => Load {
                rd,
                base: rs1,
                offset: imm18,
                width: MemWidth::Word,
                signed: false,
            },
            op::LH => Load {
                rd,
                base: rs1,
                offset: imm18,
                width: MemWidth::Half,
                signed: true,
            },
            op::LHU => Load {
                rd,
                base: rs1,
                offset: imm18,
                width: MemWidth::Half,
                signed: false,
            },
            op::LB => Load {
                rd,
                base: rs1,
                offset: imm18,
                width: MemWidth::Byte,
                signed: true,
            },
            op::LBU => Load {
                rd,
                base: rs1,
                offset: imm18,
                width: MemWidth::Byte,
                signed: false,
            },
            op::SW => Store {
                src: rd,
                base: rs1,
                offset: imm18,
                width: MemWidth::Word,
            },
            op::SH => Store {
                src: rd,
                base: rs1,
                offset: imm18,
                width: MemWidth::Half,
            },
            op::SB => Store {
                src: rd,
                base: rs1,
                offset: imm18,
                width: MemWidth::Byte,
            },
            op::BEQ => Beq {
                rs1: rd,
                rs2: rs1,
                offset: imm18,
            },
            op::BNE => Bne {
                rs1: rd,
                rs2: rs1,
                offset: imm18,
            },
            op::BLT => Blt {
                rs1: rd,
                rs2: rs1,
                offset: imm18,
            },
            op::BGE => Bge {
                rs1: rd,
                rs2: rs1,
                offset: imm18,
            },
            op::BLTU => Bltu {
                rs1: rd,
                rs2: rs1,
                offset: imm18,
            },
            op::BGEU => Bgeu {
                rs1: rd,
                rs2: rs1,
                offset: imm18,
            },
            op::JAL => Jal { rd, offset: imm22 },
            op::JALR => Jalr {
                rd,
                base: rs1,
                offset: imm18,
            },
            _ => return Err(DecodeError { word }),
        };
        Ok(instr)
    }

    /// The instruction's execution class, used for latency/energy tables.
    pub fn class(self) -> ExecClass {
        use Instr::*;
        match self {
            Mul { .. } => ExecClass::Mul,
            Div { .. } | Rem { .. } => ExecClass::Div,
            Load { .. } => ExecClass::Load,
            Store { .. } => ExecClass::Store,
            Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. } | Bltu { .. } | Bgeu { .. } => {
                ExecClass::Branch
            }
            Jal { .. } | Jalr { .. } => ExecClass::Jump,
            Halt => ExecClass::Halt,
            _ => ExecClass::Alu,
        }
    }

    /// `true` for loads.
    pub fn is_load(self) -> bool {
        matches!(self, Instr::Load { .. })
    }

    /// `true` for stores.
    pub fn is_store(self) -> bool {
        matches!(self, Instr::Store { .. })
    }

    /// `true` for any instruction that accesses data memory.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Add { rd, rs1, rs2 } => write!(f, "add {rd}, {rs1}, {rs2}"),
            Sub { rd, rs1, rs2 } => write!(f, "sub {rd}, {rs1}, {rs2}"),
            And { rd, rs1, rs2 } => write!(f, "and {rd}, {rs1}, {rs2}"),
            Or { rd, rs1, rs2 } => write!(f, "or {rd}, {rs1}, {rs2}"),
            Xor { rd, rs1, rs2 } => write!(f, "xor {rd}, {rs1}, {rs2}"),
            Sll { rd, rs1, rs2 } => write!(f, "sll {rd}, {rs1}, {rs2}"),
            Srl { rd, rs1, rs2 } => write!(f, "srl {rd}, {rs1}, {rs2}"),
            Sra { rd, rs1, rs2 } => write!(f, "sra {rd}, {rs1}, {rs2}"),
            Slt { rd, rs1, rs2 } => write!(f, "slt {rd}, {rs1}, {rs2}"),
            Sltu { rd, rs1, rs2 } => write!(f, "sltu {rd}, {rs1}, {rs2}"),
            Mul { rd, rs1, rs2 } => write!(f, "mul {rd}, {rs1}, {rs2}"),
            Div { rd, rs1, rs2 } => write!(f, "div {rd}, {rs1}, {rs2}"),
            Rem { rd, rs1, rs2 } => write!(f, "rem {rd}, {rs1}, {rs2}"),
            Addi { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Andi { rd, rs1, imm } => write!(f, "andi {rd}, {rs1}, {imm}"),
            Ori { rd, rs1, imm } => write!(f, "ori {rd}, {rs1}, {imm}"),
            Xori { rd, rs1, imm } => write!(f, "xori {rd}, {rs1}, {imm}"),
            Slti { rd, rs1, imm } => write!(f, "slti {rd}, {rs1}, {imm}"),
            Slli { rd, rs1, imm } => write!(f, "slli {rd}, {rs1}, {imm}"),
            Srli { rd, rs1, imm } => write!(f, "srli {rd}, {rs1}, {imm}"),
            Srai { rd, rs1, imm } => write!(f, "srai {rd}, {rs1}, {imm}"),
            Lui { rd, imm } => write!(f, "lui {rd}, {imm}"),
            Load {
                rd,
                base,
                offset,
                width,
                signed,
            } => {
                let mnem = match (width, signed) {
                    (MemWidth::Word, _) => "lw",
                    (MemWidth::Half, true) => "lh",
                    (MemWidth::Half, false) => "lhu",
                    (MemWidth::Byte, true) => "lb",
                    (MemWidth::Byte, false) => "lbu",
                };
                write!(f, "{mnem} {rd}, {offset}({base})")
            }
            Store {
                src,
                base,
                offset,
                width,
            } => {
                let mnem = match width {
                    MemWidth::Word => "sw",
                    MemWidth::Half => "sh",
                    MemWidth::Byte => "sb",
                };
                write!(f, "{mnem} {src}, {offset}({base})")
            }
            Beq { rs1, rs2, offset } => write!(f, "beq {rs1}, {rs2}, {offset}"),
            Bne { rs1, rs2, offset } => write!(f, "bne {rs1}, {rs2}, {offset}"),
            Blt { rs1, rs2, offset } => write!(f, "blt {rs1}, {rs2}, {offset}"),
            Bge { rs1, rs2, offset } => write!(f, "bge {rs1}, {rs2}, {offset}"),
            Bltu { rs1, rs2, offset } => write!(f, "bltu {rs1}, {rs2}, {offset}"),
            Bgeu { rs1, rs2, offset } => write!(f, "bgeu {rs1}, {rs2}, {offset}"),
            Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Jalr { rd, base, offset } => write!(f, "jalr {rd}, {offset}({base})"),
            Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_word_is_halt() {
        assert_eq!(Instr::decode(0), Ok(Instr::Halt));
        assert_eq!(Instr::Halt.encode(), 0);
    }

    #[test]
    fn encode_decode_r_type() {
        let i = Instr::Add {
            rd: Reg::A0,
            rs1: Reg::T1,
            rs2: Reg::S3,
        };
        assert_eq!(Instr::decode(i.encode()), Ok(i));
    }

    #[test]
    fn encode_decode_negative_imm() {
        let i = Instr::Addi {
            rd: Reg::T0,
            rs1: Reg::Sp,
            imm: -1234,
        };
        assert_eq!(Instr::decode(i.encode()), Ok(i));
        let (lo, hi) = imm18_range();
        for imm in [lo, hi, 0, -1, 1] {
            let i = Instr::Addi {
                rd: Reg::T0,
                rs1: Reg::Sp,
                imm,
            };
            assert_eq!(Instr::decode(i.encode()), Ok(i));
        }
    }

    #[test]
    fn encode_decode_loads_stores() {
        for (width, signed) in [
            (MemWidth::Word, false),
            (MemWidth::Half, true),
            (MemWidth::Half, false),
            (MemWidth::Byte, true),
            (MemWidth::Byte, false),
        ] {
            let i = Instr::Load {
                rd: Reg::A1,
                base: Reg::S0,
                offset: -40,
                width,
                signed,
            };
            // `lw` canonicalises `signed` to false on decode.
            let rt = Instr::decode(i.encode()).unwrap();
            match rt {
                Instr::Load {
                    rd,
                    base,
                    offset,
                    width: w,
                    ..
                } => {
                    assert_eq!((rd, base, offset, w), (Reg::A1, Reg::S0, -40, width));
                }
                other => panic!("expected load, got {other}"),
            }
        }
        let s = Instr::Store {
            src: Reg::A2,
            base: Reg::Sp,
            offset: 8,
            width: MemWidth::Half,
        };
        assert_eq!(Instr::decode(s.encode()), Ok(s));
    }

    #[test]
    fn encode_decode_branches_and_jumps() {
        let b = Instr::Blt {
            rs1: Reg::T0,
            rs2: Reg::T1,
            offset: -64,
        };
        assert_eq!(Instr::decode(b.encode()), Ok(b));
        let j = Instr::Jal {
            rd: Reg::Ra,
            offset: 2048,
        };
        assert_eq!(Instr::decode(j.encode()), Ok(j));
        let jr = Instr::Jalr {
            rd: Reg::Zero,
            base: Reg::Ra,
            offset: 0,
        };
        assert_eq!(Instr::decode(jr.encode()), Ok(jr));
    }

    #[test]
    fn invalid_opcode_errors() {
        let word = 63 << 26;
        assert_eq!(Instr::decode(word), Err(DecodeError { word }));
    }

    #[test]
    fn classes() {
        assert_eq!(Instr::NOP.class(), ExecClass::Alu);
        assert_eq!(Instr::Halt.class(), ExecClass::Halt);
        let l = Instr::Load {
            rd: Reg::A0,
            base: Reg::Sp,
            offset: 0,
            width: MemWidth::Word,
            signed: false,
        };
        assert_eq!(l.class(), ExecClass::Load);
        assert!(l.is_load() && l.is_mem() && !l.is_store());
    }

    #[test]
    fn display_is_parseable_mnemonics() {
        let i = Instr::Load {
            rd: Reg::A0,
            base: Reg::Sp,
            offset: -4,
            width: MemWidth::Byte,
            signed: false,
        };
        assert_eq!(i.to_string(), "lbu a0, -4(sp)");
    }
}
