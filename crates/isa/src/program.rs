//! Linked program images and the simulated memory map.

use std::collections::BTreeMap;
use std::fmt;

use crate::{DecodeError, Instr};

/// Base address of the text (code) segment.
pub const TEXT_BASE: u32 = 0x0000_0000;

/// Base address of the default data segment.
pub const DATA_BASE: u32 = 0x0010_0000;

/// Initial stack pointer (grows downward). Chosen to sit near the top of
/// the default 16 MB NVM of the evaluated system.
pub const STACK_TOP: u32 = 0x00FF_FFF0;

/// A contiguous initialised region of memory in a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// First byte address of the segment.
    pub base: u32,
    /// Raw contents.
    pub bytes: Vec<u8>,
}

impl Segment {
    /// Address one past the last byte of the segment.
    pub fn end(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }
}

/// A fully linked program: encoded text, initialised data and symbols.
///
/// Produced by [`asm::assemble`](crate::asm::assemble); consumed by the
/// functional [`Interpreter`](crate::Interpreter) and by the cycle-level
/// simulator, both of which copy the image into their memory model via
/// [`Program::segments`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Encoded instructions, placed consecutively from [`TEXT_BASE`].
    pub text: Vec<u32>,
    /// Initialised data segments (non-overlapping, sorted by base).
    pub data: Vec<Segment>,
    /// Label table: symbol name → byte address.
    pub symbols: BTreeMap<String, u32>,
    /// Entry point (defaults to [`TEXT_BASE`]).
    pub entry: u32,
}

impl Program {
    /// Creates an empty program with entry at [`TEXT_BASE`].
    pub fn new() -> Program {
        Program::default()
    }

    /// Number of instructions in the text segment.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Address one past the last text byte.
    pub fn text_end(&self) -> u32 {
        TEXT_BASE + (self.text.len() as u32) * 4
    }

    /// Looks up a symbol's address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Decodes the instruction at byte address `pc`, if it lies in text.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the word at `pc` is not a valid
    /// instruction. Out-of-text addresses return `Ok(Instr::Halt)` so the
    /// callers treat falling off the end as termination.
    pub fn fetch(&self, pc: u32) -> Result<Instr, DecodeError> {
        if pc >= self.text_end() || !pc.is_multiple_of(4) {
            return Ok(Instr::Halt);
        }
        let idx = ((pc - TEXT_BASE) / 4) as usize;
        Instr::decode(self.text[idx])
    }

    /// All initialised segments, text first, as `(base, bytes)` pairs.
    ///
    /// The text words are serialised little-endian so that the stored
    /// program is bit-faithful to what [`Program::fetch`] decodes.
    pub fn segments(&self) -> Vec<Segment> {
        let mut out = Vec::with_capacity(1 + self.data.len());
        let mut text_bytes = Vec::with_capacity(self.text.len() * 4);
        for w in &self.text {
            text_bytes.extend_from_slice(&w.to_le_bytes());
        }
        out.push(Segment {
            base: TEXT_BASE,
            bytes: text_bytes,
        });
        out.extend(self.data.iter().cloned());
        out
    }

    /// Total initialised footprint in bytes (text + data).
    pub fn footprint(&self) -> usize {
        self.text.len() * 4 + self.data.iter().map(|s| s.bytes.len()).sum::<usize>()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; entry {:#010x}", self.entry)?;
        for (i, word) in self.text.iter().enumerate() {
            let addr = TEXT_BASE + (i as u32) * 4;
            for (name, a) in &self.symbols {
                if *a == addr {
                    writeln!(f, "{name}:")?;
                }
            }
            match Instr::decode(*word) {
                Ok(instr) => writeln!(f, "  {addr:#010x}: {instr}")?,
                Err(_) => writeln!(f, "  {addr:#010x}: .word {word:#010x}")?,
            }
        }
        for seg in &self.data {
            writeln!(
                f,
                "; data segment {:#010x} ({} bytes)",
                seg.base,
                seg.bytes.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    fn sample() -> Program {
        let mut p = Program::new();
        p.text = vec![
            Instr::Addi {
                rd: Reg::A0,
                rs1: Reg::Zero,
                imm: 5,
            }
            .encode(),
            Instr::Halt.encode(),
        ];
        p.data.push(Segment {
            base: DATA_BASE,
            bytes: vec![1, 2, 3, 4],
        });
        p.symbols.insert("main".into(), TEXT_BASE);
        p
    }

    #[test]
    fn fetch_in_and_out_of_text() {
        let p = sample();
        assert_eq!(
            p.fetch(TEXT_BASE).unwrap(),
            Instr::Addi {
                rd: Reg::A0,
                rs1: Reg::Zero,
                imm: 5
            }
        );
        assert_eq!(p.fetch(TEXT_BASE + 4).unwrap(), Instr::Halt);
        // Off the end and misaligned fetches halt.
        assert_eq!(p.fetch(p.text_end()).unwrap(), Instr::Halt);
        assert_eq!(p.fetch(TEXT_BASE + 2).unwrap(), Instr::Halt);
    }

    #[test]
    fn segments_round_trip_text() {
        let p = sample();
        let segs = p.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].base, TEXT_BASE);
        let w = u32::from_le_bytes(segs[0].bytes[0..4].try_into().unwrap());
        assert_eq!(w, p.text[0]);
        assert_eq!(segs[1].end(), DATA_BASE + 4);
    }

    #[test]
    fn footprint_counts_text_and_data() {
        assert_eq!(sample().footprint(), 8 + 4);
    }

    #[test]
    fn symbol_lookup() {
        assert_eq!(sample().symbol("main"), Some(TEXT_BASE));
        assert_eq!(sample().symbol("nope"), None);
    }
}
