//! Pre-decoded text segment: decode once, execute many.
//!
//! [`DecodeCache`] holds one pre-decoded slot per word of the text
//! segment, built eagerly when the interpreter is constructed. The hot
//! execute loop then resolves the current instruction with two compares
//! and one indexed load instead of re-running [`Instr::decode`] every
//! step. Each slot also carries the resolved [`ExecClass`], so the
//! timing simulator indexes its latency/energy tables directly.
//!
//! The cache is *derived* state: it never appears in snapshots, and it
//! is kept coherent with memory by re-decoding exactly the words a
//! store or a snapshot restore touches (stores are aligned and at most
//! four bytes wide, so a store never straddles two words). Words that
//! do not decode keep a `None` slot and fault exactly like the
//! decode-from-memory path; program counters outside the covered range
//! (or with the cache disabled) fall back to that path unchanged.

use crate::{ExecClass, Instr};

/// One pre-decoded instruction slot: the resolved operands plus the
/// execution class the timing tables are indexed by.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PreDecoded {
    pub instr: Instr,
    pub class: ExecClass,
}

/// A dense decode cache over the text segment `[0, limit)`.
#[derive(Debug, Clone)]
pub(crate) struct DecodeCache {
    /// One slot per text word; `None` marks a word that does not decode.
    slots: Vec<Option<PreDecoded>>,
    /// Byte addresses below this are covered. Always a multiple of 4
    /// and at most the memory size.
    limit: u32,
    /// Testing hook: a disabled cache forces every fetch down the
    /// decode-from-memory reference path.
    enabled: bool,
}

impl DecodeCache {
    /// Pre-decodes every word of `mem[0..limit)`.
    pub fn build(mem: &[u8], limit: u32) -> DecodeCache {
        let limit = limit.min(mem.len() as u32) & !3;
        let slots = (0..limit / 4).map(|w| decode_at(mem, w * 4)).collect();
        DecodeCache {
            slots,
            limit,
            enabled: true,
        }
    }

    /// The covered slot for `pc`, or `None` when `pc` is uncovered
    /// (outside the range, misaligned, or the cache is disabled) and the
    /// caller must take the decode-from-memory path.
    #[inline]
    pub fn lookup(&self, pc: u32) -> Option<Option<PreDecoded>> {
        if self.enabled && pc < self.limit && pc & 3 == 0 {
            Some(self.slots[(pc >> 2) as usize])
        } else {
            None
        }
    }

    /// Re-decodes the word containing `addr` after a store to it.
    /// Stores are aligned and at most 4 bytes, so exactly one slot can
    /// change. Runs even while disabled, so re-enabling is always sound.
    #[inline]
    pub fn refresh_word(&mut self, mem: &[u8], addr: u32) {
        if addr < self.limit {
            let w = addr & !3;
            self.slots[(w >> 2) as usize] = decode_at(mem, w);
        }
    }

    /// Re-decodes every covered word overlapping `[addr, addr + len)`
    /// (snapshot restore writes arbitrary byte ranges).
    pub fn refresh_range(&mut self, mem: &[u8], addr: u32, len: usize) {
        if addr >= self.limit || len == 0 {
            return;
        }
        let end = (addr as u64 + len as u64).min(self.limit as u64) as u32;
        let mut w = addr & !3;
        while w < end {
            self.slots[(w >> 2) as usize] = decode_at(mem, w);
            w += 4;
        }
    }

    /// Enables or disables the cache (testing hook; see module docs).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether lookups are currently served from the cache.
    pub fn enabled(&self) -> bool {
        self.enabled
    }
}

fn decode_at(mem: &[u8], addr: u32) -> Option<PreDecoded> {
    let a = addr as usize;
    let word = u32::from_le_bytes(mem[a..a + 4].try_into().expect("4 bytes"));
    Instr::decode(word).ok().map(|instr| PreDecoded {
        instr,
        class: instr.class(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_with(words: &[u32]) -> Vec<u8> {
        let mut mem = vec![0u8; 64];
        for (i, w) in words.iter().enumerate() {
            mem[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        mem
    }

    #[test]
    fn covers_and_classifies_the_text_range() {
        let halt = 0u32; // opcode 0 decodes to halt
        let invalid = 0xffff_ffffu32;
        let mem = mem_with(&[halt, invalid, halt]);
        let c = DecodeCache::build(&mem, 12);
        let s = c.lookup(0).unwrap().unwrap();
        assert_eq!(s.instr, Instr::Halt);
        assert_eq!(s.class, ExecClass::Halt);
        assert!(c.lookup(4).unwrap().is_none(), "invalid word keeps None");
        assert!(c.lookup(12).is_none(), "past the limit is uncovered");
        assert!(c.lookup(2).is_none(), "misaligned is uncovered");
    }

    #[test]
    fn refresh_tracks_stores_and_restores() {
        let mut mem = mem_with(&[0, 0]);
        let mut c = DecodeCache::build(&mem, 8);
        assert!(c.lookup(4).unwrap().is_some());
        mem[4..8].copy_from_slice(&0xffff_ffffu32.to_le_bytes());
        c.refresh_word(&mem, 5);
        assert!(c.lookup(4).unwrap().is_none(), "store re-decodes the word");
        mem[4..8].copy_from_slice(&0u32.to_le_bytes());
        c.refresh_range(&mem, 2, 6);
        assert!(c.lookup(4).unwrap().is_some(), "restore re-decodes range");
        c.refresh_word(&mem, 4096); // out of range: no-op, no panic
    }

    #[test]
    fn disabled_cache_serves_nothing_but_stays_coherent() {
        let mem = mem_with(&[0]);
        let mut c = DecodeCache::build(&mem, 4);
        c.set_enabled(false);
        assert!(!c.enabled());
        assert!(c.lookup(0).is_none());
        c.set_enabled(true);
        assert!(c.lookup(0).unwrap().is_some());
    }
}
