//! # ehs-isa — the EHS-RV instruction set
//!
//! A compact 32-bit RISC instruction set used by the intermittent-computing
//! simulator in this workspace. The paper evaluates IPEX on an in-order
//! ARMv7-M nonvolatile processor; since no ARM toolchain is assumed here,
//! the workloads are written for this custom ISA instead. It preserves the
//! properties that matter for the study: fixed 4-byte instructions fetched
//! through an instruction cache, loads/stores through a data cache, and a
//! simple in-order execution model.
//!
//! The crate provides:
//!
//! * [`Instr`] — the decoded instruction set with a binary
//!   [`Instr::encode`]/[`Instr::decode`] round trip (programs are stored as
//!   real words in simulated NVM, so instruction fetch exercises real cache
//!   contents),
//! * [`Reg`] — the 16 general-purpose registers,
//! * [`asm`] — a small two-pass assembler with labels, `.data` directives
//!   and the usual pseudo-instructions (`li`, `la`, `call`, …),
//! * [`Program`] — a linked program image (text + data + symbols),
//! * [`Interpreter`] — a functional (untimed) reference interpreter used to
//!   validate workloads and as a differential-testing oracle for the
//!   cycle-level simulator.
//!
//! ```
//! use ehs_isa::{asm, Interpreter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = asm::assemble(
//!     r#"
//!     .text
//!     li   a0, 6
//!     li   a1, 7
//!     mul  a0, a0, a1
//!     halt
//!     "#,
//! )?;
//! let mut vm = Interpreter::new(&program);
//! vm.run(10_000)?;
//! assert_eq!(vm.reg(ehs_isa::Reg::A0), 42);
//! # Ok(())
//! # }
//! ```

pub mod asm;
mod error;
mod instr;
mod interp;
mod predecode;
mod program;
mod reg;

pub use error::{AsmError, ExecError};
pub use instr::{imm18_range, imm22_range, DecodeError, ExecClass, Instr, MemWidth};
pub use interp::{mem_digest_of, AccessKind, Interpreter, MemAccess, Step, DEFAULT_MEM_BYTES};
pub use program::{Program, Segment, DATA_BASE, STACK_TOP, TEXT_BASE};
pub use reg::{ParseRegError, Reg, NUM_REGS};
