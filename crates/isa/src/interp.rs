//! Functional (untimed) reference interpreter.
//!
//! [`Interpreter`] executes a [`Program`] sequentially with a flat byte
//! memory. It serves two roles in the workspace:
//!
//! 1. a test oracle for the workloads — each benchmark's checksum is
//!    validated against a plain-Rust reference implementation, and
//! 2. the *functional* half of the cycle-level simulator. The timing
//!    simulator in `ehs-sim` replays the interpreter's instruction and
//!    memory-access stream through its cache/NVM/energy models. This
//!    timing/functional split is sound for this study because the modelled
//!    crash-consistency scheme (NVSRAMCache JIT checkpointing) always
//!    flushes dirty state before an outage, so architectural state is
//!    exactly sequential execution; outages only change *timing* and
//!    *energy*.

use crate::predecode::DecodeCache;
use crate::{ExecClass, ExecError, Instr, MemWidth, Program, Reg, STACK_TOP};

/// Direction of a data-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// A single data-memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address of the access.
    pub addr: u32,
    /// Load or store.
    pub kind: AccessKind,
    /// Access width.
    pub width: MemWidth,
}

/// The architectural effects of one executed instruction, as reported by
/// [`Interpreter::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Program counter the instruction was fetched from.
    pub pc: u32,
    /// The decoded instruction.
    pub instr: Instr,
    /// The instruction's execution class (pre-resolved, so timing
    /// callers index their latency/energy tables without re-classifying).
    pub class: ExecClass,
    /// The data access it performed, if it was a load or store.
    pub access: Option<MemAccess>,
    /// `true` if this instruction halted the program.
    pub halted: bool,
}

/// A sequential executor for EHS-RV programs over a flat memory.
///
/// See the [module documentation](self) for how this integrates with the
/// timing simulator.
#[derive(Debug, Clone)]
pub struct Interpreter {
    regs: [u32; 16],
    pc: u32,
    mem: Vec<u8>,
    halted: bool,
    executed: u64,
    /// Pre-decoded text segment (derived state, never serialized; kept
    /// coherent on every store/restore that touches covered words).
    predec: DecodeCache,
}

/// Default memory size: 16 MB, matching the paper's default NVM capacity.
pub const DEFAULT_MEM_BYTES: usize = 16 << 20;

impl Interpreter {
    /// Creates an interpreter with the default 16 MB memory and loads
    /// `program` into it.
    pub fn new(program: &Program) -> Interpreter {
        Interpreter::with_mem_size(program, DEFAULT_MEM_BYTES)
    }

    /// Creates an interpreter with a custom memory size (in bytes).
    ///
    /// # Panics
    ///
    /// Panics if the program image does not fit in `mem_bytes`.
    pub fn with_mem_size(program: &Program, mem_bytes: usize) -> Interpreter {
        let mut mem = vec![0u8; mem_bytes];
        for seg in program.segments() {
            let base = seg.base as usize;
            assert!(
                base + seg.bytes.len() <= mem.len(),
                "program segment at {:#x} exceeds memory size {:#x}",
                seg.base,
                mem_bytes
            );
            mem[base..base + seg.bytes.len()].copy_from_slice(&seg.bytes);
        }
        let mut regs = [0u32; 16];
        regs[Reg::Sp.index()] = STACK_TOP.min(mem_bytes as u32 - 16);
        let predec = DecodeCache::build(&mem, program.text_end());
        Interpreter {
            regs,
            pc: program.entry,
            mem,
            halted: false,
            executed: 0,
            predec,
        }
    }

    /// Enables or disables the pre-decoded fast path (enabled by
    /// default). Disabling forces every fetch through the
    /// decode-from-memory reference path; the two must be step-for-step
    /// equivalent, which the verification suite proves.
    pub fn set_decode_cache_enabled(&mut self, on: bool) {
        self.predec.set_enabled(on);
    }

    /// Whether fetches are currently served from the pre-decoded form.
    pub fn decode_cache_enabled(&self) -> bool {
        self.predec.enabled()
    }

    /// Current program counter.
    #[inline]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// `true` once a `halt` has executed.
    #[inline]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far.
    #[inline]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Reads a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `zero` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::Zero {
            self.regs[r.index()] = value;
        }
    }

    /// Memory size in bytes.
    pub fn mem_len(&self) -> usize {
        self.mem.len()
    }

    /// A snapshot of the full architectural register file.
    #[inline]
    pub fn registers(&self) -> [u32; 16] {
        self.regs
    }

    /// FNV-1a digest of the entire memory image.
    ///
    /// Used by the differential oracle in `ehs-verify` to compare the
    /// final memory state of the golden interpreter against the
    /// cycle-level machine without copying 16 MB around. Chunked over
    /// 8-byte words so it stays cheap even in debug builds.
    pub fn mem_digest(&self) -> u64 {
        mem_digest_of(&self.mem)
    }

    /// Reads a little-endian word from memory (for assertions in tests).
    ///
    /// # Panics
    ///
    /// Panics if `addr+4` exceeds the memory size.
    pub fn read_u32(&self, addr: u32) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes(self.mem[a..a + 4].try_into().expect("4 bytes"))
    }

    /// A view of `len` bytes of memory starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn read_bytes(&self, addr: u32, len: usize) -> &[u8] {
        &self.mem[addr as usize..addr as usize + len]
    }

    /// A view of the entire memory image.
    ///
    /// Used by the snapshot subsystem in `ehs-sim` to diff the live
    /// image against a freshly loaded program without copying 16 MB.
    pub fn mem(&self) -> &[u8] {
        &self.mem
    }

    /// Overwrites memory at `addr` with `bytes` (snapshot restore).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        let a = addr as usize;
        self.mem[a..a + bytes.len()].copy_from_slice(bytes);
        self.predec.refresh_range(&self.mem, addr, bytes.len());
    }

    /// Restores the non-memory architectural state (snapshot resume).
    ///
    /// Memory is restored separately via [`Interpreter::write_bytes`];
    /// the register file is taken verbatim (including `zero`, which is
    /// always 0 in a well-formed snapshot).
    pub fn restore_state(&mut self, regs: [u32; 16], pc: u32, halted: bool, executed: u64) {
        self.regs = regs;
        self.pc = pc;
        self.halted = halted;
        self.executed = executed;
    }

    fn load(&self, pc: u32, addr: u32, width: MemWidth, signed: bool) -> Result<u32, ExecError> {
        let n = width.bytes();
        if addr as usize + n as usize > self.mem.len() {
            return Err(ExecError::OutOfBounds { pc, addr });
        }
        if !addr.is_multiple_of(n) {
            return Err(ExecError::Misaligned { pc, addr });
        }
        let a = addr as usize;
        Ok(match width {
            MemWidth::Byte => {
                let b = self.mem[a] as u32;
                if signed {
                    b as u8 as i8 as i32 as u32
                } else {
                    b
                }
            }
            MemWidth::Half => {
                let h = u16::from_le_bytes([self.mem[a], self.mem[a + 1]]) as u32;
                if signed {
                    h as u16 as i16 as i32 as u32
                } else {
                    h
                }
            }
            MemWidth::Word => u32::from_le_bytes(self.mem[a..a + 4].try_into().expect("4 bytes")),
        })
    }

    fn store(&mut self, pc: u32, addr: u32, value: u32, width: MemWidth) -> Result<(), ExecError> {
        let n = width.bytes();
        if addr as usize + n as usize > self.mem.len() {
            return Err(ExecError::OutOfBounds { pc, addr });
        }
        if !addr.is_multiple_of(n) {
            return Err(ExecError::Misaligned { pc, addr });
        }
        let a = addr as usize;
        match width {
            MemWidth::Byte => self.mem[a] = value as u8,
            MemWidth::Half => self.mem[a..a + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            MemWidth::Word => self.mem[a..a + 4].copy_from_slice(&value.to_le_bytes()),
        }
        // Self-modifying code: the access is aligned and at most one
        // word wide, so at most one pre-decoded slot can change.
        self.predec.refresh_word(&self.mem, addr);
        Ok(())
    }

    /// Fetches, decodes and executes one instruction.
    ///
    /// Once halted, further calls return the `halt` step again without
    /// advancing.
    ///
    /// # Errors
    ///
    /// Propagates decode failures and memory faults as [`ExecError`].
    #[inline]
    pub fn step(&mut self) -> Result<Step, ExecError> {
        use Instr::*;
        let pc = self.pc;
        if self.halted {
            return Ok(Step {
                pc,
                instr: Halt,
                class: ExecClass::Halt,
                access: None,
                halted: true,
            });
        }
        // Fast path: a covered, aligned pc resolves from the pre-decoded
        // form; everything else (out of range, misaligned, cache
        // disabled) takes the decode-from-memory reference path with
        // the original fault semantics.
        let (instr, class) = match self.predec.lookup(pc) {
            Some(Some(p)) => (p.instr, p.class),
            Some(None) => {
                // Covered but undecodable: report the raw word, exactly
                // as the reference path would.
                let word = u32::from_le_bytes(
                    self.mem[pc as usize..pc as usize + 4]
                        .try_into()
                        .expect("4 bytes"),
                );
                return Err(ExecError::InvalidInstruction { pc, word });
            }
            None => {
                if pc as usize + 4 > self.mem.len() || !pc.is_multiple_of(4) {
                    return Err(ExecError::OutOfBounds { pc, addr: pc });
                }
                let word = u32::from_le_bytes(
                    self.mem[pc as usize..pc as usize + 4]
                        .try_into()
                        .expect("4 bytes"),
                );
                let instr =
                    Instr::decode(word).map_err(|_| ExecError::InvalidInstruction { pc, word })?;
                (instr, instr.class())
            }
        };

        let mut next_pc = pc.wrapping_add(4);
        let mut access = None;
        match instr {
            Add { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1).wrapping_add(self.reg(rs2))),
            Sub { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1).wrapping_sub(self.reg(rs2))),
            And { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) & self.reg(rs2)),
            Or { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) | self.reg(rs2)),
            Xor { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) ^ self.reg(rs2)),
            Sll { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) << (self.reg(rs2) & 31)),
            Srl { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) >> (self.reg(rs2) & 31)),
            Sra { rd, rs1, rs2 } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) >> (self.reg(rs2) & 31)) as u32)
            }
            Slt { rd, rs1, rs2 } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) < (self.reg(rs2) as i32)) as u32)
            }
            Sltu { rd, rs1, rs2 } => self.set_reg(rd, (self.reg(rs1) < self.reg(rs2)) as u32),
            Mul { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1).wrapping_mul(self.reg(rs2))),
            Div { rd, rs1, rs2 } => {
                let a = self.reg(rs1) as i32;
                let b = self.reg(rs2) as i32;
                let q = if b == 0 { -1 } else { a.wrapping_div(b) };
                self.set_reg(rd, q as u32);
            }
            Rem { rd, rs1, rs2 } => {
                let a = self.reg(rs1) as i32;
                let b = self.reg(rs2) as i32;
                let r = if b == 0 { a } else { a.wrapping_rem(b) };
                self.set_reg(rd, r as u32);
            }
            Addi { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1).wrapping_add(imm as u32)),
            Andi { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) & imm as u32),
            Ori { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) | imm as u32),
            Xori { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) ^ imm as u32),
            Slti { rd, rs1, imm } => self.set_reg(rd, ((self.reg(rs1) as i32) < imm) as u32),
            Slli { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) << (imm as u32 & 31)),
            Srli { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) >> (imm as u32 & 31)),
            Srai { rd, rs1, imm } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) >> (imm as u32 & 31)) as u32)
            }
            Lui { rd, imm } => self.set_reg(rd, (imm as u32) << 14),
            Load {
                rd,
                base,
                offset,
                width,
                signed,
            } => {
                let addr = self.reg(base).wrapping_add(offset as u32);
                let v = self.load(pc, addr, width, signed)?;
                self.set_reg(rd, v);
                access = Some(MemAccess {
                    addr,
                    kind: AccessKind::Read,
                    width,
                });
            }
            Store {
                src,
                base,
                offset,
                width,
            } => {
                let addr = self.reg(base).wrapping_add(offset as u32);
                self.store(pc, addr, self.reg(src), width)?;
                access = Some(MemAccess {
                    addr,
                    kind: AccessKind::Write,
                    width,
                });
            }
            Beq { rs1, rs2, offset } => {
                if self.reg(rs1) == self.reg(rs2) {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Bne { rs1, rs2, offset } => {
                if self.reg(rs1) != self.reg(rs2) {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Blt { rs1, rs2, offset } => {
                if (self.reg(rs1) as i32) < (self.reg(rs2) as i32) {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Bge { rs1, rs2, offset } => {
                if (self.reg(rs1) as i32) >= (self.reg(rs2) as i32) {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Bltu { rs1, rs2, offset } => {
                if self.reg(rs1) < self.reg(rs2) {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Bgeu { rs1, rs2, offset } => {
                if self.reg(rs1) >= self.reg(rs2) {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Jal { rd, offset } => {
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(offset as u32);
            }
            Jalr { rd, base, offset } => {
                let target = self.reg(base).wrapping_add(offset as u32) & !3;
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
            }
            Halt => {
                self.halted = true;
                next_pc = pc;
            }
        }
        self.pc = next_pc;
        self.executed += 1;
        Ok(Step {
            pc,
            instr,
            class,
            access,
            halted: self.halted,
        })
    }

    /// Runs until `halt` or until `max_steps` instructions have executed.
    ///
    /// Returns the number of instructions executed.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StepLimit`] if the program has not halted
    /// within the budget, or any fault from [`Interpreter::step`].
    pub fn run(&mut self, max_steps: u64) -> Result<u64, ExecError> {
        let start = self.executed;
        while !self.halted {
            if self.executed - start >= max_steps {
                return Err(ExecError::StepLimit {
                    executed: self.executed,
                });
            }
            self.step()?;
        }
        Ok(self.executed - start)
    }
}

/// FNV-1a over 8-byte little-endian chunks (plus a length-tagged tail).
///
/// Shared by [`Interpreter::mem_digest`] and the simulator's equivalent
/// accessor so both sides hash identically.
pub fn mem_digest_of(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8 bytes"));
        h ^= w;
        h = h.wrapping_mul(FNV_PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(FNV_PRIME);
        h ^= rem.len() as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_asm(src: &str) -> Interpreter {
        let p = assemble(src).expect("assembles");
        let mut vm = Interpreter::new(&p);
        vm.run(1_000_000).expect("halts");
        vm
    }

    #[test]
    fn arithmetic_loop_sums() {
        let vm = run_asm(
            r#"
            .text
            main:
                li t0, 0        ; i
                li a0, 0        ; sum
                li t1, 10
            loop:
                add a0, a0, t0
                addi t0, t0, 1
                blt t0, t1, loop
                halt
            "#,
        );
        assert_eq!(vm.reg(Reg::A0), 45);
    }

    #[test]
    fn memory_round_trip_all_widths() {
        let vm = run_asm(
            r#"
            .text
            main:
                la  a1, buf
                li  t0, 0x12345678
                sw  t0, 0(a1)
                lw  a0, 0(a1)
                lbu a2, 0(a1)
                lb  a3, 3(a1)
                lhu t1, 0(a1)
                sh  t0, 8(a1)
                lhu t2, 8(a1)
                halt
            .data
            buf: .space 16
            "#,
        );
        assert_eq!(vm.reg(Reg::A0), 0x12345678);
        assert_eq!(vm.reg(Reg::A2), 0x78);
        assert_eq!(vm.reg(Reg::A3), 0x12);
        assert_eq!(vm.reg(Reg::T1), 0x5678);
        assert_eq!(vm.reg(Reg::T2), 0x5678);
    }

    #[test]
    fn signed_loads_sign_extend() {
        let vm = run_asm(
            r#"
            .text
            main:
                la a1, buf
                li t0, -1
                sb t0, 0(a1)
                lb a0, 0(a1)
                lbu a2, 0(a1)
                halt
            .data
            buf: .space 4
            "#,
        );
        assert_eq!(vm.reg(Reg::A0), 0xffff_ffff);
        assert_eq!(vm.reg(Reg::A2), 0xff);
    }

    #[test]
    fn call_and_return() {
        let vm = run_asm(
            r#"
            .text
            main:
                li a0, 5
                call double
                call double
                halt
            double:
                add a0, a0, a0
                ret
            "#,
        );
        assert_eq!(vm.reg(Reg::A0), 20);
    }

    #[test]
    fn stack_push_pop() {
        let vm = run_asm(
            r#"
            .text
            main:
                li t0, 42
                subi sp, sp, 8
                sw t0, 0(sp)
                sw t0, 4(sp)
                lw a0, 4(sp)
                addi sp, sp, 8
                halt
            "#,
        );
        assert_eq!(vm.reg(Reg::A0), 42);
    }

    #[test]
    fn division_semantics() {
        let vm = run_asm(
            r#"
            .text
            main:
                li t0, 7
                li t1, -2
                div a0, t0, t1   ; -3
                rem a1, t0, t1   ; 1
                li t2, 0
                div a2, t0, t2   ; -1 (div by zero)
                rem a3, t0, t2   ; 7
                halt
            "#,
        );
        assert_eq!(vm.reg(Reg::A0) as i32, -3);
        assert_eq!(vm.reg(Reg::A1) as i32, 1);
        assert_eq!(vm.reg(Reg::A2) as i32, -1);
        assert_eq!(vm.reg(Reg::A3) as i32, 7);
    }

    #[test]
    fn zero_register_is_immutable() {
        let vm = run_asm(".text\nmain:\n li a0, 3\n add zero, a0, a0\n mv a1, zero\n halt\n");
        assert_eq!(vm.reg(Reg::Zero), 0);
        assert_eq!(vm.reg(Reg::A1), 0);
    }

    #[test]
    fn halt_is_sticky() {
        let p = assemble(".text\n halt\n").unwrap();
        let mut vm = Interpreter::new(&p);
        let s1 = vm.step().unwrap();
        assert!(s1.halted);
        let pc = vm.pc();
        let s2 = vm.step().unwrap();
        assert!(s2.halted);
        assert_eq!(vm.pc(), pc);
        assert_eq!(vm.executed(), 1);
    }

    #[test]
    fn out_of_bounds_faults() {
        let p =
            assemble(".text\nmain:\n li a1, 0x7ffffff\n slli a1, a1, 4\n lw a0, 0(a1)\n halt\n")
                .unwrap();
        let mut vm = Interpreter::new(&p);
        let err = vm.run(100).unwrap_err();
        assert!(matches!(err, ExecError::OutOfBounds { .. }), "{err}");
    }

    #[test]
    fn misaligned_faults() {
        let p = assemble(".text\nmain:\n la a1, b\n lw a0, 1(a1)\n halt\n.data\nb: .word 1, 2\n")
            .unwrap();
        let mut vm = Interpreter::new(&p);
        let err = vm.run(100).unwrap_err();
        assert!(matches!(err, ExecError::Misaligned { .. }), "{err}");
    }

    #[test]
    fn step_limit_reported() {
        let p = assemble(".text\nmain:\n j main\n").unwrap();
        let mut vm = Interpreter::new(&p);
        let err = vm.run(10).unwrap_err();
        assert_eq!(err, ExecError::StepLimit { executed: 10 });
    }

    #[test]
    fn steps_report_accesses() {
        let p =
            assemble(".text\nmain:\n la a1, w\n lw a0, 0(a1)\n halt\n.data\nw: .word 9\n").unwrap();
        let mut vm = Interpreter::new(&p);
        let mut reads = 0;
        while !vm.halted() {
            let s = vm.step().unwrap();
            if let Some(a) = s.access {
                assert_eq!(a.kind, AccessKind::Read);
                assert_eq!(a.addr, crate::DATA_BASE);
                reads += 1;
            }
        }
        assert_eq!(reads, 1);
        assert_eq!(vm.reg(Reg::A0), 9);
    }
}
