//! General-purpose register file names.

use std::fmt;
use std::str::FromStr;

/// Number of general-purpose registers in the EHS-RV register file.
pub const NUM_REGS: usize = 16;

/// One of the 16 general-purpose registers.
///
/// `Zero` is hard-wired to zero (writes are discarded), matching the RISC
/// convention; `Ra` receives return addresses from `call`/`jal`, and `Sp`
/// is the conventional stack pointer initialised by the loader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    /// r0 — hard-wired zero.
    Zero = 0,
    /// r1 — return address.
    Ra = 1,
    /// r2 — stack pointer.
    Sp = 2,
    /// r3 — argument / return value 0.
    A0 = 3,
    /// r4 — argument 1.
    A1 = 4,
    /// r5 — argument 2.
    A2 = 5,
    /// r6 — argument 3.
    A3 = 6,
    /// r7 — temporary 0.
    T0 = 7,
    /// r8 — temporary 1.
    T1 = 8,
    /// r9 — temporary 2.
    T2 = 9,
    /// r10 — temporary 3.
    T3 = 10,
    /// r11 — temporary 4.
    T4 = 11,
    /// r12 — saved 0.
    S0 = 12,
    /// r13 — saved 1.
    S1 = 13,
    /// r14 — saved 2.
    S2 = 14,
    /// r15 — saved 3.
    S3 = 15,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; NUM_REGS] = [
        Reg::Zero,
        Reg::Ra,
        Reg::Sp,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::T3,
        Reg::T4,
        Reg::S0,
        Reg::S1,
        Reg::S2,
        Reg::S3,
    ];

    /// The register's index in the register file (0..16).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from a file index.
    ///
    /// Returns `None` if `idx >= 16`.
    pub fn from_index(idx: usize) -> Option<Reg> {
        Reg::ALL.get(idx).copied()
    }

    /// Canonical (ABI) name, e.g. `"a0"`.
    pub fn name(self) -> &'static str {
        match self {
            Reg::Zero => "zero",
            Reg::Ra => "ra",
            Reg::Sp => "sp",
            Reg::A0 => "a0",
            Reg::A1 => "a1",
            Reg::A2 => "a2",
            Reg::A3 => "a3",
            Reg::T0 => "t0",
            Reg::T1 => "t1",
            Reg::T2 => "t2",
            Reg::T3 => "t3",
            Reg::T4 => "t4",
            Reg::S0 => "s0",
            Reg::S1 => "s1",
            Reg::S2 => "s2",
            Reg::S3 => "s3",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a register name does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError(pub String);

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.0)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    /// Parses either an ABI name (`a0`, `sp`, …) or a raw index (`r0`..`r15`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        for r in Reg::ALL {
            if r.name() == s {
                return Ok(r);
            }
        }
        if let Some(num) = s.strip_prefix('r') {
            if let Ok(idx) = num.parse::<usize>() {
                if let Some(r) = Reg::from_index(idx) {
                    return Ok(r);
                }
            }
        }
        Err(ParseRegError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), Some(*r));
        }
        assert_eq!(Reg::from_index(16), None);
    }

    #[test]
    fn parse_abi_names() {
        assert_eq!("a0".parse::<Reg>(), Ok(Reg::A0));
        assert_eq!("zero".parse::<Reg>(), Ok(Reg::Zero));
        assert_eq!("sp".parse::<Reg>(), Ok(Reg::Sp));
    }

    #[test]
    fn parse_raw_names() {
        assert_eq!("r0".parse::<Reg>(), Ok(Reg::Zero));
        assert_eq!("r15".parse::<Reg>(), Ok(Reg::S3));
        assert!("r16".parse::<Reg>().is_err());
        assert!("x3".parse::<Reg>().is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Reg::T2.to_string(), "t2");
    }
}
