//! A small two-pass assembler for EHS-RV.
//!
//! The workloads in [`ehs-workloads`](https://docs.rs/ehs-workloads) are
//! written in this textual form. The syntax is deliberately close to
//! RISC-V assembly:
//!
//! ```text
//! ; comments start with `;` or `#`
//! .text
//! main:
//!     la   a1, table        ; pseudo: lui+ori
//!     li   t0, 0
//!     li   t1, 4
//! loop:
//!     slli t2, t0, 2
//!     add  t2, a1, t2
//!     lw   t3, 0(t2)
//!     add  a0, a0, t3
//!     addi t0, t0, 1
//!     blt  t0, t1, loop
//!     halt
//!
//! .data
//! table: .word 1, 2, 3, 4
//! buf:   .space 64
//! msg:   .asciz "hello"
//! ```
//!
//! Supported directives: `.text`, `.data`, `.org <addr>`, `.word`,
//! `.half`, `.byte`, `.space <n> [fill]`, `.align <n>`, `.ascii`,
//! `.asciz`. Labels may be used with a constant offset (`table+8`) in
//! `la`, `.word` and memory operands.
//!
//! Pseudo-instructions: `nop`, `mv`, `li`, `la`, `j`, `jr`, `ret`,
//! `call`, `beqz`, `bnez`, `ble`, `bgt`, `bleu`, `bgtu`, `neg`, `not`,
//! `snez`, `halt` (real instruction), `subi`.

use std::collections::BTreeMap;

use crate::instr::{imm18_range, imm22_range};
use crate::{AsmError, Instr, MemWidth, Program, Reg, Segment, DATA_BASE, TEXT_BASE};

/// Assembles EHS-RV source text into a linked [`Program`].
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered: unknown mnemonics or
/// registers, malformed operands, duplicate or undefined labels,
/// immediates that do not fit their encoding field, and overlapping data
/// segments all fail with the offending line number.
///
/// ```
/// # fn main() -> Result<(), ehs_isa::AsmError> {
/// let p = ehs_isa::asm::assemble(".text\n li a0, 1\n halt\n")?;
/// assert_eq!(p.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let lines = parse_lines(source)?;
    let symbols = layout(&lines)?;
    emit(&lines, symbols)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// One meaningful source line after lexing.
#[derive(Debug, Clone)]
struct Line {
    number: usize,
    labels: Vec<String>,
    stmt: Option<Stmt>,
}

#[derive(Debug, Clone)]
enum Stmt {
    Section(Section),
    Org(u32),
    Word(Vec<Value>),
    Half(Vec<i64>),
    Byte(Vec<i64>),
    Space {
        size: u32,
        fill: u8,
    },
    Align(u32),
    Ascii {
        bytes: Vec<u8>,
    },
    Instr {
        mnemonic: String,
        operands: Vec<String>,
    },
}

/// A literal or `label±offset` reference resolved during emission.
#[derive(Debug, Clone)]
enum Value {
    Literal(i64),
    Symbol { name: String, offset: i64 },
}

fn parse_lines(source: &str) -> Result<Vec<Line>, AsmError> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let mut text = raw;
        // Strip comments, but not inside string literals.
        let mut in_str = false;
        let mut cut = text.len();
        for (i, c) in text.char_indices() {
            match c {
                '"' => in_str = !in_str,
                ';' | '#' if !in_str => {
                    cut = i;
                    break;
                }
                _ => {}
            }
        }
        text = text[..cut].trim();
        if text.is_empty() {
            continue;
        }
        let mut labels = Vec::new();
        // Leading `name:` labels (there may be several on one line).
        while let Some(colon) = text.find(':') {
            let candidate = text[..colon].trim();
            if !is_ident(candidate) || text[..colon].contains('"') {
                break;
            }
            labels.push(candidate.to_owned());
            text = text[colon + 1..].trim();
        }
        let stmt = if text.is_empty() {
            None
        } else {
            Some(parse_stmt(number, text)?)
        };
        out.push(Line {
            number,
            labels,
            stmt,
        });
    }
    Ok(out)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_stmt(line: usize, text: &str) -> Result<Stmt, AsmError> {
    let (head, rest) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let head_lc = head.to_ascii_lowercase();
    match head_lc.as_str() {
        ".text" => Ok(Stmt::Section(Section::Text)),
        ".data" => Ok(Stmt::Section(Section::Data)),
        ".org" => {
            let v = parse_int(line, rest)?;
            Ok(Stmt::Org(v as u32))
        }
        ".word" => {
            let vals = split_operands(rest)
                .iter()
                .map(|s| parse_value(line, s))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Stmt::Word(vals))
        }
        ".half" => Ok(Stmt::Half(parse_int_list(line, rest)?)),
        ".byte" => Ok(Stmt::Byte(parse_int_list(line, rest)?)),
        ".space" => {
            let parts = split_operands(rest);
            if parts.is_empty() || parts.len() > 2 {
                return Err(AsmError::new(line, ".space takes 1 or 2 operands"));
            }
            let size = parse_int(line, &parts[0])? as u32;
            let fill = if parts.len() == 2 {
                parse_int(line, &parts[1])? as u8
            } else {
                0
            };
            Ok(Stmt::Space { size, fill })
        }
        ".align" => {
            let n = parse_int(line, rest)? as u32;
            if !n.is_power_of_two() {
                return Err(AsmError::new(line, ".align requires a power of two"));
            }
            Ok(Stmt::Align(n))
        }
        ".ascii" | ".asciz" => {
            let s = rest.trim();
            if !(s.starts_with('"') && s.ends_with('"') && s.len() >= 2) {
                return Err(AsmError::new(line, "expected a quoted string"));
            }
            let mut bytes = unescape(line, &s[1..s.len() - 1])?;
            if head_lc == ".asciz" {
                bytes.push(0);
            }
            Ok(Stmt::Ascii { bytes })
        }
        _ if head_lc.starts_with('.') => {
            Err(AsmError::new(line, format!("unknown directive `{head}`")))
        }
        _ => Ok(Stmt::Instr {
            mnemonic: head_lc,
            operands: split_operands(rest),
        }),
    }
}

fn unescape(line: usize, s: &str) -> Result<Vec<u8>, AsmError> {
    let mut out = Vec::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        match chars.next() {
            Some('n') => out.push(b'\n'),
            Some('t') => out.push(b'\t'),
            Some('0') => out.push(0),
            Some('\\') => out.push(b'\\'),
            Some('"') => out.push(b'"'),
            other => {
                return Err(AsmError::new(
                    line,
                    format!("bad escape `\\{}`", other.unwrap_or(' ')),
                ));
            }
        }
    }
    Ok(out)
}

fn split_operands(rest: &str) -> Vec<String> {
    if rest.trim().is_empty() {
        return Vec::new();
    }
    rest.split(',').map(|s| s.trim().to_owned()).collect()
}

fn parse_int_list(line: usize, rest: &str) -> Result<Vec<i64>, AsmError> {
    split_operands(rest)
        .iter()
        .map(|s| parse_int(line, s))
        .collect()
}

fn parse_int(line: usize, s: &str) -> Result<i64, AsmError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v: i64 = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
            .map_err(|_| AsmError::new(line, format!("bad integer `{s}`")))?
    } else if body.len() == 3 && body.starts_with('\'') && body.ends_with('\'') {
        body.as_bytes()[1] as i64
    } else {
        body.parse()
            .map_err(|_| AsmError::new(line, format!("bad integer `{s}`")))?
    };
    Ok(if neg { -v } else { v })
}

fn parse_value(line: usize, s: &str) -> Result<Value, AsmError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(AsmError::new(line, "empty operand"));
    }
    let first = s.chars().next().expect("non-empty");
    if first.is_ascii_digit() || first == '-' || first == '\'' {
        return Ok(Value::Literal(parse_int(line, s)?));
    }
    // label, label+imm, label-imm
    for (i, c) in s.char_indices().skip(1) {
        if c == '+' || c == '-' {
            let name = s[..i].trim();
            if !is_ident(name) {
                return Err(AsmError::new(line, format!("bad symbol `{name}`")));
            }
            let off = parse_int(line, &s[i..].replace('+', ""))?;
            let off = if c == '-' && off > 0 { -off } else { off };
            return Ok(Value::Symbol {
                name: name.to_owned(),
                offset: off,
            });
        }
    }
    if !is_ident(s) {
        return Err(AsmError::new(line, format!("bad operand `{s}`")));
    }
    Ok(Value::Symbol {
        name: s.to_owned(),
        offset: 0,
    })
}

/// Number of real instructions a mnemonic expands to (pass 1).
fn instr_size(line: usize, mnemonic: &str, operands: &[String]) -> Result<u32, AsmError> {
    Ok(match mnemonic {
        "la" => 2,
        "li" => {
            let imm = match operands.get(1) {
                Some(s) => parse_int(line, s)?,
                None => return Err(AsmError::new(line, "li needs 2 operands")),
            };
            let (lo, hi) = imm18_range();
            if imm >= lo as i64 && imm <= hi as i64 {
                1
            } else {
                2
            }
        }
        _ => 1,
    })
}

fn layout(lines: &[Line]) -> Result<BTreeMap<String, u32>, AsmError> {
    let mut symbols = BTreeMap::new();
    let mut section = Section::Text;
    let mut text_pc = TEXT_BASE;
    let mut data_pc = DATA_BASE;
    for line in lines {
        let here = match section {
            Section::Text => text_pc,
            Section::Data => data_pc,
        };
        for label in &line.labels {
            if symbols.insert(label.clone(), here).is_some() {
                return Err(AsmError::new(
                    line.number,
                    format!("duplicate label `{label}`"),
                ));
            }
        }
        let Some(stmt) = &line.stmt else { continue };
        match stmt {
            Stmt::Section(s) => section = *s,
            Stmt::Org(addr) => {
                if section == Section::Text {
                    return Err(AsmError::new(line.number, ".org is only valid in .data"));
                }
                data_pc = *addr;
                // Re-bind labels on this line to the new origin.
                for label in &line.labels {
                    symbols.insert(label.clone(), data_pc);
                }
            }
            Stmt::Word(v) => advance_data(line, section, &mut data_pc, 4 * v.len() as u32, 4)?,
            Stmt::Half(v) => advance_data(line, section, &mut data_pc, 2 * v.len() as u32, 2)?,
            Stmt::Byte(v) => advance_data(line, section, &mut data_pc, v.len() as u32, 1)?,
            Stmt::Space { size, .. } => advance_data(line, section, &mut data_pc, *size, 1)?,
            Stmt::Ascii { bytes } => {
                advance_data(line, section, &mut data_pc, bytes.len() as u32, 1)?
            }
            Stmt::Align(n) => {
                if section == Section::Text {
                    return Err(AsmError::new(line.number, ".align is only valid in .data"));
                }
                let aligned = data_pc.next_multiple_of(*n);
                data_pc = aligned;
                for label in &line.labels {
                    symbols.insert(label.clone(), data_pc);
                }
            }
            Stmt::Instr { mnemonic, operands } => {
                if section != Section::Text {
                    return Err(AsmError::new(line.number, "instruction outside .text"));
                }
                text_pc += 4 * instr_size(line.number, mnemonic, operands)?;
            }
        }
    }
    Ok(symbols)
}

fn advance_data(
    line: &Line,
    section: Section,
    data_pc: &mut u32,
    size: u32,
    align: u32,
) -> Result<(), AsmError> {
    if section != Section::Data {
        return Err(AsmError::new(line.number, "data directive outside .data"));
    }
    if !(*data_pc).is_multiple_of(align) {
        return Err(AsmError::new(
            line.number,
            format!("data at {data_pc:#x} is not {align}-byte aligned (use .align)"),
        ));
    }
    *data_pc += size;
    Ok(())
}

struct Emitter {
    symbols: BTreeMap<String, u32>,
    text: Vec<u32>,
    data: Vec<Segment>,
    data_pc: u32,
}

impl Emitter {
    fn text_pc(&self) -> u32 {
        TEXT_BASE + 4 * self.text.len() as u32
    }

    fn push(&mut self, i: Instr) {
        self.text.push(i.encode());
    }

    fn data_bytes(&mut self, line: usize, bytes: &[u8]) -> Result<(), AsmError> {
        // Extend the last segment if contiguous, otherwise open a new one.
        match self.data.last_mut() {
            Some(seg) if seg.end() == self.data_pc => seg.bytes.extend_from_slice(bytes),
            _ => {
                for seg in &self.data {
                    let new_end = self.data_pc + bytes.len() as u32;
                    if self.data_pc < seg.end() && seg.base < new_end {
                        return Err(AsmError::new(
                            line,
                            format!("data at {:#x} overlaps earlier segment", self.data_pc),
                        ));
                    }
                }
                self.data.push(Segment {
                    base: self.data_pc,
                    bytes: bytes.to_vec(),
                });
            }
        }
        self.data_pc += bytes.len() as u32;
        Ok(())
    }

    fn resolve(&self, line: usize, v: &Value) -> Result<i64, AsmError> {
        match v {
            Value::Literal(x) => Ok(*x),
            Value::Symbol { name, offset } => {
                let base = self
                    .symbols
                    .get(name)
                    .copied()
                    .ok_or_else(|| AsmError::new(line, format!("undefined label `{name}`")))?;
                Ok(base as i64 + offset)
            }
        }
    }

    fn reg(&self, line: usize, s: &str) -> Result<Reg, AsmError> {
        s.parse::<Reg>()
            .map_err(|e| AsmError::new(line, e.to_string()))
    }

    /// Parses `off(base)` or `(base)` or `label` / `label+off` memory operands.
    fn mem_operand(&self, line: usize, s: &str) -> Result<(Reg, i32), AsmError> {
        let s = s.trim();
        if let Some(open) = s.find('(') {
            let close = s
                .rfind(')')
                .ok_or_else(|| AsmError::new(line, "missing `)`"))?;
            let base = self.reg(line, s[open + 1..close].trim())?;
            let off_str = s[..open].trim();
            let off = if off_str.is_empty() {
                0
            } else {
                self.resolve(line, &parse_value(line, off_str)?)?
            };
            let off = check_imm18(line, off)?;
            Ok((base, off))
        } else {
            Err(AsmError::new(
                line,
                format!("expected `offset(base)` operand, got `{s}`"),
            ))
        }
    }

    fn branch_target(&self, line: usize, s: &str) -> Result<i32, AsmError> {
        let v = parse_value(line, s)?;
        let target = self.resolve(line, &v)?;
        let offset = match v {
            Value::Literal(x) => x,
            Value::Symbol { .. } => target - self.text_pc() as i64,
        };
        check_imm18(line, offset)
    }

    fn jump_target(&self, line: usize, s: &str) -> Result<i32, AsmError> {
        let v = parse_value(line, s)?;
        let target = self.resolve(line, &v)?;
        let offset = match v {
            Value::Literal(x) => x,
            Value::Symbol { .. } => target - self.text_pc() as i64,
        };
        let (lo, hi) = imm22_range();
        if offset < lo as i64 || offset > hi as i64 {
            return Err(AsmError::new(
                line,
                format!("jump offset {offset} does not fit 22 bits"),
            ));
        }
        Ok(offset as i32)
    }

    /// Emits `li rd, value` as 1 or 2 instructions (size fixed by pass 1 rules).
    fn emit_li(&mut self, rd: Reg, value: i64) {
        let v = value as u32;
        let (lo, hi) = imm18_range();
        if value >= lo as i64 && value <= hi as i64 {
            self.push(Instr::Addi {
                rd,
                rs1: Reg::Zero,
                imm: value as i32,
            });
        } else {
            self.emit_lui_ori(rd, v);
        }
    }

    fn emit_lui_ori(&mut self, rd: Reg, v: u32) {
        // lui loads bits [31:14]; ori fills bits [13:0].
        let upper = (v >> 14) as i32; // 18 bits, fits the 22-bit field
        let lower = (v & 0x3fff) as i32; // 14 bits, positive, fits imm18
        self.push(Instr::Lui { rd, imm: upper });
        self.push(Instr::Ori {
            rd,
            rs1: rd,
            imm: lower,
        });
    }
}

fn check_imm18(line: usize, v: i64) -> Result<i32, AsmError> {
    let (lo, hi) = imm18_range();
    if v < lo as i64 || v > hi as i64 {
        return Err(AsmError::new(
            line,
            format!("immediate {v} does not fit 18 bits"),
        ));
    }
    Ok(v as i32)
}

fn emit(lines: &[Line], symbols: BTreeMap<String, u32>) -> Result<Program, AsmError> {
    let mut e = Emitter {
        symbols,
        text: Vec::new(),
        data: Vec::new(),
        data_pc: DATA_BASE,
    };
    let mut section = Section::Text;
    for line in lines {
        let Some(stmt) = &line.stmt else { continue };
        let n = line.number;
        match stmt {
            Stmt::Section(s) => section = *s,
            Stmt::Org(addr) => e.data_pc = *addr,
            Stmt::Align(a) => e.data_pc = e.data_pc.next_multiple_of(*a),
            Stmt::Word(vals) => {
                for v in vals {
                    let x = e.resolve(n, v)? as u32;
                    e.data_bytes(n, &x.to_le_bytes())?;
                }
            }
            Stmt::Half(vals) => {
                for v in vals {
                    e.data_bytes(n, &(*v as u16).to_le_bytes())?;
                }
            }
            Stmt::Byte(vals) => {
                for v in vals {
                    e.data_bytes(n, &[*v as u8])?;
                }
            }
            Stmt::Space { size, fill } => {
                let bytes = vec![*fill; *size as usize];
                e.data_bytes(n, &bytes)?;
            }
            Stmt::Ascii { bytes } => e.data_bytes(n, bytes)?,
            Stmt::Instr { mnemonic, operands } => {
                if section != Section::Text {
                    return Err(AsmError::new(n, "instruction outside .text"));
                }
                emit_instr(&mut e, n, mnemonic, operands)?;
            }
        }
    }
    e.data.sort_by_key(|s| s.base);
    for pair in e.data.windows(2) {
        if pair[0].end() > pair[1].base {
            return Err(AsmError::new(
                0,
                format!("data segments overlap at {:#x}", pair[1].base),
            ));
        }
    }
    let entry = e.symbols.get("main").copied().unwrap_or(TEXT_BASE);
    Ok(Program {
        text: e.text,
        data: e.data,
        symbols: e.symbols,
        entry,
    })
}

fn emit_instr(e: &mut Emitter, n: usize, mnemonic: &str, ops: &[String]) -> Result<(), AsmError> {
    let want = |count: usize| -> Result<(), AsmError> {
        if ops.len() != count {
            Err(AsmError::new(
                n,
                format!("`{mnemonic}` expects {count} operands, got {}", ops.len()),
            ))
        } else {
            Ok(())
        }
    };

    macro_rules! r3 {
        ($variant:ident) => {{
            want(3)?;
            let rd = e.reg(n, &ops[0])?;
            let rs1 = e.reg(n, &ops[1])?;
            let rs2 = e.reg(n, &ops[2])?;
            e.push(Instr::$variant { rd, rs1, rs2 });
        }};
    }
    macro_rules! i3 {
        ($variant:ident) => {{
            want(3)?;
            let rd = e.reg(n, &ops[0])?;
            let rs1 = e.reg(n, &ops[1])?;
            let imm = check_imm18(n, e.resolve(n, &parse_value(n, &ops[2])?)?)?;
            e.push(Instr::$variant { rd, rs1, imm });
        }};
    }
    macro_rules! branch {
        ($variant:ident, $a:expr, $b:expr, $target:expr) => {{
            let rs1 = e.reg(n, $a)?;
            let rs2 = e.reg(n, $b)?;
            let offset = e.branch_target(n, $target)?;
            e.push(Instr::$variant { rs1, rs2, offset });
        }};
    }
    macro_rules! load {
        ($width:expr, $signed:expr) => {{
            want(2)?;
            let rd = e.reg(n, &ops[0])?;
            let (base, offset) = e.mem_operand(n, &ops[1])?;
            e.push(Instr::Load {
                rd,
                base,
                offset,
                width: $width,
                signed: $signed,
            });
        }};
    }

    match mnemonic {
        "add" => r3!(Add),
        "sub" => r3!(Sub),
        "and" => r3!(And),
        "or" => r3!(Or),
        "xor" => r3!(Xor),
        "sll" => r3!(Sll),
        "srl" => r3!(Srl),
        "sra" => r3!(Sra),
        "slt" => r3!(Slt),
        "sltu" => r3!(Sltu),
        "mul" => r3!(Mul),
        "div" => r3!(Div),
        "rem" => r3!(Rem),
        "addi" => i3!(Addi),
        "andi" => i3!(Andi),
        "ori" => i3!(Ori),
        "xori" => i3!(Xori),
        "slti" => i3!(Slti),
        "slli" => i3!(Slli),
        "srli" => i3!(Srli),
        "srai" => i3!(Srai),
        "subi" => {
            // pseudo: addi with negated immediate
            want(3)?;
            let rd = e.reg(n, &ops[0])?;
            let rs1 = e.reg(n, &ops[1])?;
            let imm = check_imm18(n, -e.resolve(n, &parse_value(n, &ops[2])?)?)?;
            e.push(Instr::Addi { rd, rs1, imm });
        }
        "lui" => {
            want(2)?;
            let rd = e.reg(n, &ops[0])?;
            let imm = e.resolve(n, &parse_value(n, &ops[1])?)?;
            let (lo, hi) = imm22_range();
            if imm < lo as i64 || imm > hi as i64 {
                return Err(AsmError::new(
                    n,
                    format!("lui immediate {imm} does not fit 22 bits"),
                ));
            }
            e.push(Instr::Lui {
                rd,
                imm: imm as i32,
            });
        }
        "lw" => load!(MemWidth::Word, false),
        "lh" => load!(MemWidth::Half, true),
        "lhu" => load!(MemWidth::Half, false),
        "lb" => load!(MemWidth::Byte, true),
        "lbu" => load!(MemWidth::Byte, false),
        "sw" | "sh" | "sb" => {
            want(2)?;
            let src = e.reg(n, &ops[0])?;
            let (base, offset) = e.mem_operand(n, &ops[1])?;
            let width = match mnemonic {
                "sw" => MemWidth::Word,
                "sh" => MemWidth::Half,
                _ => MemWidth::Byte,
            };
            e.push(Instr::Store {
                src,
                base,
                offset,
                width,
            });
        }
        "beq" => {
            want(3)?;
            branch!(Beq, &ops[0], &ops[1], &ops[2]);
        }
        "bne" => {
            want(3)?;
            branch!(Bne, &ops[0], &ops[1], &ops[2]);
        }
        "blt" => {
            want(3)?;
            branch!(Blt, &ops[0], &ops[1], &ops[2]);
        }
        "bge" => {
            want(3)?;
            branch!(Bge, &ops[0], &ops[1], &ops[2]);
        }
        "bltu" => {
            want(3)?;
            branch!(Bltu, &ops[0], &ops[1], &ops[2]);
        }
        "bgeu" => {
            want(3)?;
            branch!(Bgeu, &ops[0], &ops[1], &ops[2]);
        }
        "ble" => {
            want(3)?;
            branch!(Bge, &ops[1], &ops[0], &ops[2]);
        }
        "bgt" => {
            want(3)?;
            branch!(Blt, &ops[1], &ops[0], &ops[2]);
        }
        "bleu" => {
            want(3)?;
            branch!(Bgeu, &ops[1], &ops[0], &ops[2]);
        }
        "bgtu" => {
            want(3)?;
            branch!(Bltu, &ops[1], &ops[0], &ops[2]);
        }
        "beqz" => {
            want(2)?;
            branch!(Beq, &ops[0], "zero", &ops[1]);
        }
        "bnez" => {
            want(2)?;
            branch!(Bne, &ops[0], "zero", &ops[1]);
        }
        "bltz" => {
            want(2)?;
            branch!(Blt, &ops[0], "zero", &ops[1]);
        }
        "bgez" => {
            want(2)?;
            branch!(Bge, &ops[0], "zero", &ops[1]);
        }
        "jal" => match ops.len() {
            1 => {
                let offset = e.jump_target(n, &ops[0])?;
                e.push(Instr::Jal {
                    rd: Reg::Ra,
                    offset,
                });
            }
            2 => {
                let rd = e.reg(n, &ops[0])?;
                let offset = e.jump_target(n, &ops[1])?;
                e.push(Instr::Jal { rd, offset });
            }
            _ => return Err(AsmError::new(n, "jal expects 1 or 2 operands")),
        },
        "jalr" => match ops.len() {
            1 => {
                let base = e.reg(n, &ops[0])?;
                e.push(Instr::Jalr {
                    rd: Reg::Ra,
                    base,
                    offset: 0,
                });
            }
            2 => {
                let rd = e.reg(n, &ops[0])?;
                let (base, offset) = e.mem_operand(n, &ops[1])?;
                e.push(Instr::Jalr { rd, base, offset });
            }
            _ => return Err(AsmError::new(n, "jalr expects 1 or 2 operands")),
        },
        "j" => {
            want(1)?;
            let offset = e.jump_target(n, &ops[0])?;
            e.push(Instr::Jal {
                rd: Reg::Zero,
                offset,
            });
        }
        "jr" => {
            want(1)?;
            let base = e.reg(n, &ops[0])?;
            e.push(Instr::Jalr {
                rd: Reg::Zero,
                base,
                offset: 0,
            });
        }
        "ret" => {
            want(0)?;
            e.push(Instr::Jalr {
                rd: Reg::Zero,
                base: Reg::Ra,
                offset: 0,
            });
        }
        "call" => {
            want(1)?;
            let offset = e.jump_target(n, &ops[0])?;
            e.push(Instr::Jal {
                rd: Reg::Ra,
                offset,
            });
        }
        "li" => {
            want(2)?;
            let rd = e.reg(n, &ops[0])?;
            let value = parse_int(n, &ops[1])?;
            if value < i32::MIN as i64 || value > u32::MAX as i64 {
                return Err(AsmError::new(
                    n,
                    format!("li value {value} does not fit 32 bits"),
                ));
            }
            e.emit_li(rd, value);
        }
        "la" => {
            want(2)?;
            let rd = e.reg(n, &ops[0])?;
            let addr = e.resolve(n, &parse_value(n, &ops[1])?)? as u32;
            e.emit_lui_ori(rd, addr);
        }
        "mv" => {
            want(2)?;
            let rd = e.reg(n, &ops[0])?;
            let rs1 = e.reg(n, &ops[1])?;
            e.push(Instr::Addi { rd, rs1, imm: 0 });
        }
        "neg" => {
            want(2)?;
            let rd = e.reg(n, &ops[0])?;
            let rs2 = e.reg(n, &ops[1])?;
            e.push(Instr::Sub {
                rd,
                rs1: Reg::Zero,
                rs2,
            });
        }
        "not" => {
            want(2)?;
            let rd = e.reg(n, &ops[0])?;
            let rs1 = e.reg(n, &ops[1])?;
            e.push(Instr::Xori { rd, rs1, imm: -1 });
        }
        "snez" => {
            want(2)?;
            let rd = e.reg(n, &ops[0])?;
            let rs2 = e.reg(n, &ops[1])?;
            e.push(Instr::Sltu {
                rd,
                rs1: Reg::Zero,
                rs2,
            });
        }
        "nop" => {
            want(0)?;
            e.push(Instr::NOP);
        }
        "halt" => {
            want(0)?;
            e.push(Instr::Halt);
        }
        _ => return Err(AsmError::new(n, format!("unknown mnemonic `{mnemonic}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_minimal_program() {
        let p = assemble(".text\nmain:\n  li a0, 7\n  halt\n").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.entry, TEXT_BASE);
        assert_eq!(p.symbol("main"), Some(TEXT_BASE));
    }

    #[test]
    fn li_expands_by_size() {
        let small = assemble(" li a0, 100\n halt").unwrap();
        assert_eq!(small.len(), 2);
        let big = assemble(" li a0, 0x123456\n halt").unwrap();
        assert_eq!(big.len(), 3);
        // Verify the lui/ori pair reconstructs the value.
        let lui = Instr::decode(big.text[0]).unwrap();
        let ori = Instr::decode(big.text[1]).unwrap();
        match (lui, ori) {
            (Instr::Lui { imm: hi, .. }, Instr::Ori { imm: lo, .. }) => {
                assert_eq!(((hi as u32) << 14) | lo as u32, 0x123456);
            }
            other => panic!("unexpected expansion {other:?}"),
        }
    }

    #[test]
    fn li_negative_value() {
        let p = assemble(" li a0, -2000000\n halt").unwrap();
        assert_eq!(p.len(), 3);
        let lui = Instr::decode(p.text[0]).unwrap();
        let ori = Instr::decode(p.text[1]).unwrap();
        match (lui, ori) {
            (Instr::Lui { imm: hi, .. }, Instr::Ori { imm: lo, .. }) => {
                let v = (((hi as u32) << 14) | lo as u32) as i32;
                assert_eq!(v, -2000000);
            }
            other => panic!("unexpected expansion {other:?}"),
        }
    }

    #[test]
    fn labels_and_branches_resolve() {
        let p = assemble(
            r#"
            .text
            main:
                li t0, 0
            loop:
                addi t0, t0, 1
                blt  t0, a0, loop
                halt
            "#,
        )
        .unwrap();
        // blt is at pc 8; loop is at 4; offset must be -4.
        match p.fetch(8).unwrap() {
            Instr::Blt { offset, .. } => assert_eq!(offset, -4),
            other => panic!("expected blt, got {other}"),
        }
    }

    #[test]
    fn data_directives_and_la() {
        let p = assemble(
            r#"
            .text
                la a0, tab
                lw a1, 4(a0)
                halt
            .data
            tab: .word 10, 20, 30
            str: .asciz "hi"
            buf: .space 8, 0xff
            "#,
        )
        .unwrap();
        assert_eq!(p.symbol("tab"), Some(DATA_BASE));
        assert_eq!(p.symbol("str"), Some(DATA_BASE + 12));
        assert_eq!(p.symbol("buf"), Some(DATA_BASE + 15));
        let seg = &p.data[0];
        assert_eq!(&seg.bytes[..4], &10u32.to_le_bytes());
        assert_eq!(&seg.bytes[12..15], b"hi\0");
        assert_eq!(seg.bytes[15], 0xff);
    }

    #[test]
    fn word_accepts_labels() {
        let p = assemble(
            r#"
            .text
                halt
            .data
            a: .word 1
            ptrs: .word a, a+4
            "#,
        )
        .unwrap();
        let seg = &p.data[0];
        let w1 = u32::from_le_bytes(seg.bytes[4..8].try_into().unwrap());
        let w2 = u32::from_le_bytes(seg.bytes[8..12].try_into().unwrap());
        assert_eq!(w1, DATA_BASE);
        assert_eq!(w2, DATA_BASE + 4);
    }

    #[test]
    fn org_and_align() {
        let p = assemble(
            r#"
            .text
                halt
            .data
            x: .byte 1
               .align 4
            y: .word 2
               .org 0x200000
            z: .word 3
            "#,
        )
        .unwrap();
        assert_eq!(p.symbol("x"), Some(DATA_BASE));
        assert_eq!(p.symbol("y"), Some(DATA_BASE + 4));
        assert_eq!(p.symbol("z"), Some(0x200000));
        assert_eq!(p.data.len(), 3); // byte, aligned word, org'd word
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let err = assemble(".text\n bad a0, a1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bad"));

        let err = assemble(".text\n addi a0, a1\n").unwrap_err();
        assert!(err.message.contains("expects 3"));

        let err = assemble(".text\n lw a0, 4(q9)\n").unwrap_err();
        assert!(err.message.contains("q9"));

        let err = assemble(".text\n j nowhere\n").unwrap_err();
        assert!(err.message.contains("undefined label"));

        let err = assemble(".text\nx:\nx:\n halt\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn immediate_range_checked() {
        let err = assemble(".text\n addi a0, a0, 200000\n halt\n").unwrap_err();
        assert!(err.message.contains("18 bits"));
    }

    #[test]
    fn duplicate_data_overlap_detected() {
        let err = assemble(
            r#"
            .text
                halt
            .data
            a: .word 1, 2
               .org 0x100004
            b: .word 3
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("overlap"), "{err}");
    }

    #[test]
    fn pseudo_instructions() {
        let p = assemble(
            r#"
            .text
            main:
                mv  a0, a1
                neg a2, a0
                not a3, a0
                snez t0, a0
                nop
                call f
                j end
            f:  ret
            end: halt
            "#,
        )
        .unwrap();
        assert_eq!(p.len(), 9);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; top\n.text\n# hash comment\n\n halt ; trailing\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn entry_defaults_to_main() {
        let p = assemble(".text\n nop\nmain:\n halt\n").unwrap();
        assert_eq!(p.entry, 4);
    }
}
