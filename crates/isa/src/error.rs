//! Error types shared across the crate.

use std::fmt;

/// An assembly-time error with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// A runtime error raised by the functional interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The word at `pc` did not decode.
    InvalidInstruction {
        /// Program counter of the bad word.
        pc: u32,
        /// The undecodable word.
        word: u32,
    },
    /// A data access touched an address outside the memory.
    OutOfBounds {
        /// Program counter of the access.
        pc: u32,
        /// The faulting byte address.
        addr: u32,
    },
    /// A multi-byte access was not naturally aligned.
    Misaligned {
        /// Program counter of the access.
        pc: u32,
        /// The faulting byte address.
        addr: u32,
    },
    /// The step budget given to `run` was exhausted before `halt`.
    StepLimit {
        /// Number of instructions executed.
        executed: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InvalidInstruction { pc, word } => {
                write!(f, "invalid instruction {word:#010x} at pc {pc:#010x}")
            }
            ExecError::OutOfBounds { pc, addr } => {
                write!(f, "out-of-bounds access to {addr:#010x} at pc {pc:#010x}")
            }
            ExecError::Misaligned { pc, addr } => {
                write!(f, "misaligned access to {addr:#010x} at pc {pc:#010x}")
            }
            ExecError::StepLimit { executed } => {
                write!(f, "step limit reached after {executed} instructions")
            }
        }
    }
}

impl std::error::Error for ExecError {}
