//! Access Map Pattern Matching prefetcher (Ishii, Inaba & Hiraki) —
//! described in the paper's §8.1 as a compact alternative to
//! history-table prefetchers.
//!
//! Memory is partitioned into fixed-size zones; each zone keeps a bitmap
//! of the blocks accessed recently. On a miss-like access to block `b`
//! of a zone, the prefetcher checks, for each candidate offset `d`,
//! whether the pattern "both `b−d` and `b−2d` were accessed" holds — if
//! so, `b+d` is likely next and is emitted, up to the degree.

use ehs_mem::{block_of, BLOCK_SIZE};
use serde::{Deserialize, Serialize};

use crate::{AccessEvent, Prefetcher, PrefetcherState, MAX_DEGREE};

/// Blocks per zone (zone size = 64 × 16 B = 1 kB).
const ZONE_BLOCKS: u32 = 64;

/// Offsets (in blocks) tested for pattern matches, nearest first.
const OFFSETS: [i32; 6] = [1, -1, 2, -2, 3, -3];

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Zone {
    tag: u32,
    map: u64,
    valid: bool,
}

/// Bitmap-based pattern-matching prefetcher.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmpmPrefetcher {
    degree: u32,
    zones: Vec<Zone>,
    index_mask: u32,
}

impl AmpmPrefetcher {
    /// Default number of tracked zones.
    pub const DEFAULT_ZONES: usize = 16;

    /// Creates an AMPM prefetcher with the default 16-zone table.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or exceeds [`MAX_DEGREE`].
    pub fn new(degree: u32) -> AmpmPrefetcher {
        AmpmPrefetcher::with_zones(degree, Self::DEFAULT_ZONES)
    }

    /// Creates an AMPM prefetcher with a custom power-of-two zone count.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is out of range or `zones` is not a positive
    /// power of two.
    pub fn with_zones(degree: u32, zones: usize) -> AmpmPrefetcher {
        assert!(
            (1..=MAX_DEGREE).contains(&degree),
            "degree must be 1..={MAX_DEGREE}"
        );
        assert!(zones.is_power_of_two(), "zone count must be a power of two");
        AmpmPrefetcher {
            degree,
            zones: vec![Zone::default(); zones],
            index_mask: zones as u32 - 1,
        }
    }

    /// Splits an address into `(zone_tag, block_index_within_zone)`.
    fn locate(addr: u32) -> (u32, u32) {
        let block_no = block_of(addr) / BLOCK_SIZE;
        (block_no / ZONE_BLOCKS, block_no % ZONE_BLOCKS)
    }

    fn zone_mut(&mut self, tag: u32) -> &mut Zone {
        let slot = (tag & self.index_mask) as usize;
        let z = &mut self.zones[slot];
        if !z.valid || z.tag != tag {
            *z = Zone {
                tag,
                map: 0,
                valid: true,
            };
        }
        z
    }

    fn bit(map: u64, idx: i64) -> bool {
        (0..ZONE_BLOCKS as i64).contains(&idx) && map & (1u64 << idx) != 0
    }
}

impl Prefetcher for AmpmPrefetcher {
    fn name(&self) -> &'static str {
        "ampm"
    }

    fn max_degree(&self) -> u32 {
        self.degree
    }

    fn observe(&mut self, event: &AccessEvent, out: &mut Vec<u32>) {
        let (tag, idx) = Self::locate(event.addr);
        let degree = self.degree;
        let zone = self.zone_mut(tag);
        zone.map |= 1u64 << idx;
        if !event.outcome.is_miss_like() {
            return;
        }
        let map = zone.map;
        let base_block = block_of(event.addr);
        let mut emitted = 0;
        for &d in &OFFSETS {
            if emitted == degree {
                break;
            }
            let i = idx as i64;
            // Pattern: b-d and b-2d accessed => b+d likely next.
            if Self::bit(map, i - d as i64)
                && Self::bit(map, i - 2 * d as i64)
                && !Self::bit(map, i + d as i64)
            {
                let target = i + d as i64;
                if (0..ZONE_BLOCKS as i64).contains(&target) {
                    out.push(base_block.wrapping_add((d * BLOCK_SIZE as i32) as u32));
                    emitted += 1;
                }
            }
        }
    }

    fn power_loss(&mut self) {
        self.zones.iter_mut().for_each(|z| *z = Zone::default());
    }

    fn export_state(&self) -> PrefetcherState {
        PrefetcherState::Ampm(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessOutcome;

    fn miss(addr: u32) -> AccessEvent {
        AccessEvent::data(0x40, addr, AccessOutcome::Miss, false)
    }

    #[test]
    fn detects_ascending_unit_pattern() {
        let mut p = AmpmPrefetcher::new(2);
        let mut out = Vec::new();
        // Zone-local blocks 0,1,2: at block 2 the (+1) pattern holds.
        p.observe(&miss(0x8000), &mut out);
        p.observe(&miss(0x8010), &mut out);
        assert!(out.is_empty());
        p.observe(&miss(0x8020), &mut out);
        assert!(out.contains(&0x8030), "{out:?}");
    }

    #[test]
    fn detects_descending_pattern() {
        let mut p = AmpmPrefetcher::new(1);
        let mut out = Vec::new();
        p.observe(&miss(0x8050), &mut out);
        p.observe(&miss(0x8040), &mut out);
        p.observe(&miss(0x8030), &mut out);
        assert_eq!(out, vec![0x8020]);
    }

    #[test]
    fn detects_stride2_pattern() {
        let mut p = AmpmPrefetcher::new(1);
        let mut out = Vec::new();
        p.observe(&miss(0x8000), &mut out);
        p.observe(&miss(0x8020), &mut out);
        p.observe(&miss(0x8040), &mut out);
        assert_eq!(out, vec![0x8060]);
    }

    #[test]
    fn no_prediction_without_history() {
        let mut p = AmpmPrefetcher::new(2);
        let mut out = Vec::new();
        p.observe(&miss(0x8000), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn already_accessed_targets_not_emitted() {
        let mut p = AmpmPrefetcher::new(2);
        let mut out = Vec::new();
        // Access 0,1,2,3 then revisit 2: target 3 is already mapped.
        for a in [0x8000u32, 0x8010, 0x8020, 0x8030] {
            p.observe(&miss(a), &mut out);
        }
        out.clear();
        p.observe(&miss(0x8020), &mut out);
        assert!(!out.contains(&0x8030));
    }

    #[test]
    fn zone_boundaries_respected() {
        let mut p = AmpmPrefetcher::new(1);
        let mut out = Vec::new();
        // Zone is 1 kB: blocks 61,62,63 of zone 0; target 64 crosses out.
        p.observe(&miss(61 * 16), &mut out);
        p.observe(&miss(62 * 16), &mut out);
        p.observe(&miss(63 * 16), &mut out);
        assert!(
            out.is_empty(),
            "must not prefetch across the zone edge: {out:?}"
        );
    }

    #[test]
    fn power_loss_clears_maps() {
        let mut p = AmpmPrefetcher::new(1);
        let mut out = Vec::new();
        for a in [0x8000u32, 0x8010, 0x8020] {
            p.observe(&miss(a), &mut out);
        }
        p.power_loss();
        out.clear();
        p.observe(&miss(0x8030), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn hits_update_map_but_do_not_trigger() {
        let mut p = AmpmPrefetcher::new(1);
        let mut out = Vec::new();
        p.observe(
            &AccessEvent::data(0x40, 0x8000, AccessOutcome::CacheHit, false),
            &mut out,
        );
        p.observe(
            &AccessEvent::data(0x40, 0x8010, AccessOutcome::CacheHit, false),
            &mut out,
        );
        assert!(out.is_empty());
        // But the map they built enables a later miss to match.
        p.observe(&miss(0x8020), &mut out);
        assert_eq!(out, vec![0x8030]);
    }
}
