//! # ehs-prefetch — hardware prefetchers for the EHS simulator
//!
//! Implementations of the instruction and data prefetchers evaluated in
//! the IPEX paper (Table 1 defaults plus the §6.7.2 sensitivity set):
//!
//! | kind | paper role | module |
//! |------|-----------|--------|
//! | [`SequentialPrefetcher`] | default instruction prefetcher | `sequential` |
//! | [`MarkovPrefetcher`]     | Table 3 alternative            | `markov` |
//! | [`TifsPrefetcher`]       | Table 3 alternative            | `tifs` |
//! | [`StridePrefetcher`]     | default data prefetcher        | `stride` |
//! | [`GhbPrefetcher`]        | Table 4 alternative (G/DC)     | `ghb` |
//! | [`BestOffsetPrefetcher`] | Table 4 alternative            | `best_offset` |
//! | [`AmpmPrefetcher`]       | §8.1 extra (access-map pattern matching) | `ampm` |
//!
//! Every prefetcher implements [`Prefetcher`]: it observes the demand
//! access stream and emits up to [`Prefetcher::max_degree`] candidate
//! block addresses per event. Crucially for IPEX, the prefetcher always
//! produces its *full* candidate list; the degree throttling (the paper's
//! `Rcpd` register) is applied by the controller in the `ipex` crate,
//! which counts the suppressed candidates toward the throttling rate.
//!
//! All prefetcher state is volatile: [`Prefetcher::power_loss`] models the
//! SRAM tables being wiped by an outage.

mod ampm;
mod any;
mod best_offset;
mod event;
mod ghb;
mod kinds;
mod markov;
mod null;
mod sequential;
mod state;
mod stride;
mod tifs;

pub use ampm::AmpmPrefetcher;
pub use any::AnyPrefetcher;
pub use best_offset::BestOffsetPrefetcher;
pub use event::{AccessEvent, AccessOutcome};
pub use ghb::GhbPrefetcher;
pub use kinds::{DataPrefetcherKind, InstPrefetcherKind};
pub use markov::MarkovPrefetcher;
pub use null::NullPrefetcher;
pub use sequential::SequentialPrefetcher;
pub use state::PrefetcherState;
pub use stride::StridePrefetcher;
pub use tifs::TifsPrefetcher;

/// Maximum prefetch degree supported by the modelled hardware (the
/// paper's `R_ipd` register is 3 bits and the degree is capped at 4).
pub const MAX_DEGREE: u32 = 4;

/// A hardware prefetcher observing one cache's demand access stream.
///
/// Implementations append up to [`Prefetcher::max_degree`] candidate
/// *block base addresses* to `out`, highest priority first. The caller
/// (the IPEX controller or an unthrottled passthrough) decides how many
/// to issue.
pub trait Prefetcher {
    /// Short name used in reports (e.g. `"stride"`).
    fn name(&self) -> &'static str;

    /// The prefetcher's natural (unthrottled) degree.
    fn max_degree(&self) -> u32;

    /// Observes a demand access and appends candidate blocks to `out`.
    ///
    /// `out` is not cleared; the caller owns the buffer and may reuse it
    /// across calls after draining.
    fn observe(&mut self, event: &AccessEvent, out: &mut Vec<u32>);

    /// Wipes all volatile predictor state (tables, histories) — the
    /// effect of a power failure.
    fn power_loss(&mut self);

    /// The complete internal state as a serializable value, for
    /// snapshot/resume. [`PrefetcherState::into_prefetcher`] rebuilds a
    /// behaviourally identical prefetcher from it.
    fn export_state(&self) -> PrefetcherState;
}

impl<P: Prefetcher + ?Sized> Prefetcher for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn max_degree(&self) -> u32 {
        (**self).max_degree()
    }

    fn observe(&mut self, event: &AccessEvent, out: &mut Vec<u32>) {
        (**self).observe(event, out)
    }

    fn power_loss(&mut self) {
        (**self).power_loss()
    }

    fn export_state(&self) -> PrefetcherState {
        (**self).export_state()
    }
}
