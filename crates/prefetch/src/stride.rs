//! PC-indexed stride prefetcher (Chen & Baer) — the paper's default data
//! prefetcher (Table 1).
//!
//! A small reference-prediction table, indexed by the low bits of the
//! load/store PC, tracks the last address and observed stride per static
//! instruction with the classic init → transient → steady state machine.
//! Once an entry is steady, accesses prefetch `addr + k*stride` for
//! `k = 1..=degree`. Per the paper's Table 1 ("2 initially and up to
//! 4"), a long steady streak doubles the degree up to [`MAX_DEGREE`] —
//! the conventional aggressiveness that IPEX throttles.

use ehs_mem::block_of;
use serde::{Deserialize, Serialize};

use crate::{AccessEvent, Prefetcher, PrefetcherState, MAX_DEGREE};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum State {
    Init,
    Transient,
    Steady,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Entry {
    tag: u32,
    last_addr: u32,
    stride: i32,
    state: State,
    /// Consecutive steady confirmations (drives the degree ramp).
    steady_count: u32,
}

/// Reference-prediction-table stride prefetcher.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StridePrefetcher {
    degree: u32,
    table: Vec<Option<Entry>>,
    index_mask: u32,
}

impl StridePrefetcher {
    /// Default number of reference-prediction-table entries.
    pub const DEFAULT_TABLE_SIZE: usize = 16;

    /// Creates a stride prefetcher with the default 16-entry table.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or exceeds [`MAX_DEGREE`].
    pub fn new(degree: u32) -> StridePrefetcher {
        StridePrefetcher::with_table_size(degree, Self::DEFAULT_TABLE_SIZE)
    }

    /// Creates a stride prefetcher with a custom power-of-two table size.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is out of range or `table_size` is not a
    /// positive power of two.
    pub fn with_table_size(degree: u32, table_size: usize) -> StridePrefetcher {
        assert!(
            (1..=MAX_DEGREE).contains(&degree),
            "degree must be 1..={MAX_DEGREE}"
        );
        assert!(
            table_size.is_power_of_two(),
            "table size must be a power of two"
        );
        StridePrefetcher {
            degree,
            table: vec![None; table_size],
            index_mask: table_size as u32 - 1,
        }
    }

    #[inline]
    fn slot(&self, pc: u32) -> usize {
        // PCs are 4-byte aligned; drop the low bits before indexing.
        ((pc >> 2) & self.index_mask) as usize
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &'static str {
        "stride"
    }

    fn max_degree(&self) -> u32 {
        (self.degree * 2).min(MAX_DEGREE).min(3)
    }

    fn observe(&mut self, event: &AccessEvent, out: &mut Vec<u32>) {
        let slot = self.slot(event.pc);
        let entry = &mut self.table[slot];
        match entry {
            Some(e) if e.tag == event.pc => {
                let new_stride = event.addr.wrapping_sub(e.last_addr) as i32;
                match e.state {
                    State::Init => {
                        e.stride = new_stride;
                        e.state = State::Transient;
                    }
                    State::Transient | State::Steady => {
                        if new_stride == e.stride && new_stride != 0 {
                            e.state = State::Steady;
                            e.steady_count = e.steady_count.saturating_add(1);
                        } else {
                            e.stride = new_stride;
                            e.state = State::Transient;
                            e.steady_count = 0;
                        }
                    }
                }
                e.last_addr = event.addr;
                if e.state == State::Steady {
                    // Conventional confidence ramp: raise the degree on a
                    // long steady streak, but stay below the 4-entry
                    // prefetch-buffer capacity so a single burst cannot
                    // evict its own pending prefetches.
                    let degree = if e.steady_count >= 4 {
                        (self.degree * 2).min(MAX_DEGREE).min(3)
                    } else {
                        self.degree
                    };
                    let stride = e.stride;
                    let mut prev = block_of(event.addr);
                    let mut addr = event.addr;
                    for _ in 0..degree {
                        addr = addr.wrapping_add(stride as u32);
                        let blk = block_of(addr);
                        // Small strides land in the same block repeatedly;
                        // only emit distinct blocks.
                        if blk != prev {
                            out.push(blk);
                            prev = blk;
                        }
                    }
                }
            }
            _ => {
                // Allocate (replacing any alias).
                *entry = Some(Entry {
                    tag: event.pc,
                    last_addr: event.addr,
                    stride: 0,
                    state: State::Init,
                    steady_count: 0,
                });
            }
        }
    }

    fn power_loss(&mut self) {
        self.table.iter_mut().for_each(|e| *e = None);
    }

    fn export_state(&self) -> PrefetcherState {
        PrefetcherState::Stride(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessOutcome;

    fn ev(pc: u32, addr: u32) -> AccessEvent {
        AccessEvent::data(pc, addr, AccessOutcome::Miss, false)
    }

    #[test]
    fn learns_constant_stride() {
        let mut p = StridePrefetcher::new(2);
        let mut out = Vec::new();
        // Stride of 16 from PC 0x40: A, A+16, A+32 -> steady on 3rd access.
        p.observe(&ev(0x40, 0x1000), &mut out);
        p.observe(&ev(0x40, 0x1010), &mut out);
        assert!(out.is_empty(), "not steady yet");
        p.observe(&ev(0x40, 0x1020), &mut out);
        assert_eq!(out, vec![0x1030, 0x1040]);
    }

    #[test]
    fn sub_block_strides_dedupe_blocks() {
        let mut p = StridePrefetcher::new(4);
        let mut out = Vec::new();
        // Stride 4: degree 4 covers addr+4..addr+16 — only one new block.
        p.observe(&ev(0x40, 0x1000), &mut out);
        p.observe(&ev(0x40, 0x1004), &mut out);
        p.observe(&ev(0x40, 0x1008), &mut out);
        assert_eq!(out, vec![0x1010]);
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = StridePrefetcher::new(1);
        let mut out = Vec::new();
        p.observe(&ev(0x40, 0x2000), &mut out);
        p.observe(&ev(0x40, 0x1ff0), &mut out);
        p.observe(&ev(0x40, 0x1fe0), &mut out);
        assert_eq!(out, vec![0x1fd0]);
    }

    #[test]
    fn stride_change_resets_to_transient() {
        let mut p = StridePrefetcher::new(1);
        let mut out = Vec::new();
        p.observe(&ev(0x40, 0x1000), &mut out);
        p.observe(&ev(0x40, 0x1010), &mut out);
        p.observe(&ev(0x40, 0x1020), &mut out); // steady
        out.clear();
        p.observe(&ev(0x40, 0x5000), &mut out); // wild jump
        assert!(out.is_empty());
        p.observe(&ev(0x40, 0x5010), &mut out); // new stride observed once
        assert!(out.is_empty(), "one observation is not enough");
        p.observe(&ev(0x40, 0x5020), &mut out); // stride confirmed
        assert_eq!(out, vec![0x5030]);
    }

    #[test]
    fn different_pcs_use_different_entries() {
        let mut p = StridePrefetcher::new(1);
        let mut out = Vec::new();
        for i in 0..3 {
            p.observe(&ev(0x40, 0x1000 + i * 0x10), &mut out);
            p.observe(&ev(0x44, 0x8000 + i * 0x20), &mut out);
        }
        assert_eq!(out, vec![0x1030, 0x8060]);
    }

    #[test]
    fn power_loss_forgets_streams() {
        let mut p = StridePrefetcher::new(1);
        let mut out = Vec::new();
        p.observe(&ev(0x40, 0x1000), &mut out);
        p.observe(&ev(0x40, 0x1010), &mut out);
        p.observe(&ev(0x40, 0x1020), &mut out);
        assert_eq!(out.len(), 1);
        p.power_loss();
        out.clear();
        p.observe(&ev(0x40, 0x1030), &mut out);
        assert!(out.is_empty(), "table wiped; must relearn");
    }

    #[test]
    fn zero_stride_never_steady() {
        let mut p = StridePrefetcher::new(2);
        let mut out = Vec::new();
        for _ in 0..5 {
            p.observe(&ev(0x40, 0x1000), &mut out);
        }
        assert!(out.is_empty());
    }
}
