//! Closed-set enum over every concrete prefetcher.
//!
//! The simulator's hot loop calls [`Prefetcher::observe`] on every
//! demand access. Through a `Box<dyn Prefetcher>` that is an indirect
//! call the compiler cannot inline; [`AnyPrefetcher`] replaces it with
//! a direct match over the eight concrete kinds, which inlines and
//! branch-predicts (the kind never changes within a run). The
//! `dispatch` micro-benchmark in `ehs-bench` measures the difference —
//! see DESIGN.md §8.
//!
//! Behaviour is delegated verbatim, so an `AnyPrefetcher` is
//! observationally identical to the boxed prefetcher of the same kind.

use crate::{
    AccessEvent, AmpmPrefetcher, BestOffsetPrefetcher, GhbPrefetcher, MarkovPrefetcher,
    NullPrefetcher, Prefetcher, PrefetcherState, SequentialPrefetcher, StridePrefetcher,
    TifsPrefetcher,
};

/// Any of the eight concrete prefetchers, dispatched by direct match
/// instead of vtable (see the module docs).
#[derive(Debug, Clone)]
pub enum AnyPrefetcher {
    /// The stateless null prefetcher.
    Null(NullPrefetcher),
    /// Next-N-line sequential instruction prefetcher.
    Sequential(SequentialPrefetcher),
    /// Markov correlation instruction prefetcher.
    Markov(MarkovPrefetcher),
    /// Temporal instruction fetch streaming.
    Tifs(TifsPrefetcher),
    /// PC-indexed stride data prefetcher.
    Stride(StridePrefetcher),
    /// Global-history-buffer (G/DC) data prefetcher.
    Ghb(GhbPrefetcher),
    /// Best-offset data prefetcher.
    BestOffset(BestOffsetPrefetcher),
    /// Access-map pattern-matching data prefetcher.
    Ampm(AmpmPrefetcher),
}

macro_rules! delegate {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            AnyPrefetcher::Null($p) => $body,
            AnyPrefetcher::Sequential($p) => $body,
            AnyPrefetcher::Markov($p) => $body,
            AnyPrefetcher::Tifs($p) => $body,
            AnyPrefetcher::Stride($p) => $body,
            AnyPrefetcher::Ghb($p) => $body,
            AnyPrefetcher::BestOffset($p) => $body,
            AnyPrefetcher::Ampm($p) => $body,
        }
    };
}

impl Prefetcher for AnyPrefetcher {
    fn name(&self) -> &'static str {
        delegate!(self, p => p.name())
    }

    fn max_degree(&self) -> u32 {
        delegate!(self, p => p.max_degree())
    }

    #[inline]
    fn observe(&mut self, event: &AccessEvent, out: &mut Vec<u32>) {
        delegate!(self, p => p.observe(event, out))
    }

    fn power_loss(&mut self) {
        delegate!(self, p => p.power_loss())
    }

    fn export_state(&self) -> PrefetcherState {
        delegate!(self, p => p.export_state())
    }
}

impl ehs_mem::Persist for AnyPrefetcher {
    type State = PrefetcherState;

    fn export_state(&self) -> PrefetcherState {
        Prefetcher::export_state(self)
    }

    fn from_state(state: &PrefetcherState) -> Result<AnyPrefetcher, String> {
        Ok(state.into_any())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessOutcome;

    /// Both dispatch shapes over the same access stream must do the
    /// same thing — the enum is a transparent wrapper.
    #[test]
    fn enum_dispatch_matches_boxed_dispatch() {
        let kinds: [(AnyPrefetcher, Box<dyn Prefetcher>); 3] = [
            (
                AnyPrefetcher::Sequential(SequentialPrefetcher::new(2)),
                Box::new(SequentialPrefetcher::new(2)),
            ),
            (
                AnyPrefetcher::Stride(StridePrefetcher::new(2)),
                Box::new(StridePrefetcher::new(2)),
            ),
            (
                AnyPrefetcher::Ghb(GhbPrefetcher::new(2)),
                Box::new(GhbPrefetcher::new(2)),
            ),
        ];
        for (mut any, mut boxed) in kinds {
            assert_eq!(any.name(), boxed.name());
            assert_eq!(any.max_degree(), boxed.max_degree());
            let (mut a_out, mut b_out) = (Vec::new(), Vec::new());
            let mut x = 0x1234_5678u32;
            for i in 0u32..500 {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                let addr = (x >> 8) & 0x000f_ffc0;
                let outcome = if x & 1 == 0 {
                    AccessOutcome::Miss
                } else {
                    AccessOutcome::CacheHit
                };
                let ev = AccessEvent::data(i * 4, addr, outcome, x & 2 == 0);
                a_out.clear();
                b_out.clear();
                any.observe(&ev, &mut a_out);
                boxed.observe(&ev, &mut b_out);
                assert_eq!(a_out, b_out, "divergence at access {i}");
            }
            assert_eq!(
                serde_json::to_string(&any.export_state()).unwrap(),
                serde_json::to_string(&boxed.export_state()).unwrap()
            );
        }
    }
}
