//! Best-Offset prefetcher (Michaud, simplified) — Table 4 alternative
//! data prefetcher.
//!
//! The prefetcher learns the block offset `O` that best predicts the miss
//! stream: for each training access to block `X` it checks whether
//! `X - O_candidate` was recently accessed (Recent-Requests table); the
//! candidate scores a point if so. When a learning round completes, the
//! highest-scoring offset becomes the active prefetch offset and demand
//! accesses prefetch `X + O`, `X + 2O`, … up to the degree.

use ehs_mem::{block_of, BLOCK_SIZE};
use serde::{Deserialize, Serialize};

use crate::{AccessEvent, Prefetcher, PrefetcherState, MAX_DEGREE};

/// Candidate offsets tested during learning, in blocks.
const OFFSETS: [i32; 8] = [1, 2, 3, 4, 6, 8, -1, -2];

/// Accesses per candidate per learning round.
const TESTS_PER_ROUND: u32 = 16;

/// Minimum score for an offset to be adopted (filters noise).
const MIN_SCORE: u32 = 4;

/// Size of the recent-requests table.
const RR_SIZE: usize = 32;

/// Offset-learning data prefetcher.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BestOffsetPrefetcher {
    degree: u32,
    /// Recent demand blocks (small direct-mapped table).
    recent: [u32; RR_SIZE],
    scores: [u32; OFFSETS.len()],
    tests_done: u32,
    /// Currently active offset in blocks, if one has been learned.
    active: Option<i32>,
}

impl BestOffsetPrefetcher {
    /// Creates a best-offset prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or exceeds [`MAX_DEGREE`].
    pub fn new(degree: u32) -> BestOffsetPrefetcher {
        assert!(
            (1..=MAX_DEGREE).contains(&degree),
            "degree must be 1..={MAX_DEGREE}"
        );
        BestOffsetPrefetcher {
            degree,
            recent: [u32::MAX; RR_SIZE],
            scores: [0; OFFSETS.len()],
            tests_done: 0,
            active: None,
        }
    }

    /// The offset currently used for prefetching, in blocks.
    pub fn active_offset(&self) -> Option<i32> {
        self.active
    }

    #[inline]
    fn rr_slot(block: u32) -> usize {
        ((block >> 4) as usize) & (RR_SIZE - 1)
    }

    fn rr_insert(&mut self, block: u32) {
        self.recent[Self::rr_slot(block)] = block;
    }

    fn rr_contains(&self, block: u32) -> bool {
        self.recent[Self::rr_slot(block)] == block
    }

    fn train(&mut self, block: u32) {
        for (i, &off) in OFFSETS.iter().enumerate() {
            let candidate = block.wrapping_sub((off * BLOCK_SIZE as i32) as u32);
            if self.rr_contains(candidate) {
                self.scores[i] += 1;
            }
        }
        self.tests_done += 1;
        if self.tests_done >= TESTS_PER_ROUND * OFFSETS.len() as u32 {
            self.finish_round();
        }
    }

    fn finish_round(&mut self) {
        // Ties go to the earliest (smallest-magnitude) offset, which is
        // both more timely and what the round-based hardware search finds
        // first.
        let (best_idx, best_score) = self
            .scores
            .iter()
            .copied()
            .enumerate()
            .rev()
            .max_by_key(|&(_, s)| s)
            .expect("non-empty offsets");
        self.active = (best_score >= MIN_SCORE).then(|| OFFSETS[best_idx]);
        self.scores = [0; OFFSETS.len()];
        self.tests_done = 0;
    }
}

impl Prefetcher for BestOffsetPrefetcher {
    fn name(&self) -> &'static str {
        "best-offset"
    }

    fn max_degree(&self) -> u32 {
        self.degree
    }

    fn observe(&mut self, event: &AccessEvent, out: &mut Vec<u32>) {
        if !event.outcome.is_miss_like() {
            return;
        }
        let block = block_of(event.addr);
        self.train(block);
        self.rr_insert(block);
        if let Some(off) = self.active {
            let step = (off * BLOCK_SIZE as i32) as u32;
            let mut addr = block;
            for _ in 0..self.degree {
                addr = addr.wrapping_add(step);
                out.push(addr);
            }
        }
    }

    fn power_loss(&mut self) {
        *self = BestOffsetPrefetcher::new(self.degree);
    }

    fn export_state(&self) -> PrefetcherState {
        PrefetcherState::BestOffset(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessOutcome;

    fn miss(addr: u32) -> AccessEvent {
        AccessEvent::data(0x40, addr, AccessOutcome::Miss, false)
    }

    #[test]
    fn learns_unit_offset_stream() {
        let mut p = BestOffsetPrefetcher::new(2);
        let mut out = Vec::new();
        // A long +1-block stream: offset 1 should win a learning round.
        for i in 0..200u32 {
            p.observe(&miss(0x1000 + i * BLOCK_SIZE), &mut out);
        }
        assert_eq!(p.active_offset(), Some(1));
        out.clear();
        p.observe(&miss(0x9000), &mut out);
        assert_eq!(out, vec![0x9010, 0x9020]);
    }

    #[test]
    fn learns_strided_offset() {
        let mut p = BestOffsetPrefetcher::new(1);
        let mut out = Vec::new();
        // Stride of 3 blocks.
        for i in 0..400u32 {
            p.observe(&miss(0x1000 + i * 3 * BLOCK_SIZE), &mut out);
        }
        assert_eq!(p.active_offset(), Some(3));
    }

    #[test]
    fn random_stream_learns_nothing() {
        let mut p = BestOffsetPrefetcher::new(1);
        let mut out = Vec::new();
        // A pseudo-random walk with no consistent offset.
        let mut x: u32 = 0x9e3779b9;
        for _ in 0..300 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            p.observe(&miss(x & 0xfff_fff0), &mut out);
        }
        assert_eq!(p.active_offset(), None);
        assert!(out.is_empty());
    }

    #[test]
    fn power_loss_resets_learning() {
        let mut p = BestOffsetPrefetcher::new(1);
        let mut out = Vec::new();
        for i in 0..200u32 {
            p.observe(&miss(0x1000 + i * BLOCK_SIZE), &mut out);
        }
        assert!(p.active_offset().is_some());
        p.power_loss();
        assert_eq!(p.active_offset(), None);
    }
}
