//! Global History Buffer prefetcher, G/DC flavour (Nesbit & Smith) —
//! Table 4 alternative data prefetcher.
//!
//! A circular Global History Buffer records the miss-address stream. The
//! G/DC (global, delta-correlating) variant computes the last two address
//! deltas, searches the history for the most recent earlier occurrence of
//! that delta pair, and prefetches the deltas that followed it.

use ehs_mem::block_of;
use serde::{Deserialize, Serialize};

use crate::{AccessEvent, Prefetcher, PrefetcherState, MAX_DEGREE};

/// Global-history-buffer delta-correlation prefetcher.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GhbPrefetcher {
    degree: u32,
    /// Circular buffer of miss block addresses, oldest overwritten first.
    history: Vec<u32>,
    capacity: usize,
    head: u64,
}

impl GhbPrefetcher {
    /// Default history capacity, in entries.
    pub const DEFAULT_HISTORY_SIZE: usize = 256;

    /// Creates a G/DC prefetcher with the default 256-entry history.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or exceeds [`MAX_DEGREE`].
    pub fn new(degree: u32) -> GhbPrefetcher {
        GhbPrefetcher::with_history_size(degree, Self::DEFAULT_HISTORY_SIZE)
    }

    /// Creates a G/DC prefetcher with a custom history capacity.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is out of range or `history_size < 4`.
    pub fn with_history_size(degree: u32, history_size: usize) -> GhbPrefetcher {
        assert!(
            (1..=MAX_DEGREE).contains(&degree),
            "degree must be 1..={MAX_DEGREE}"
        );
        assert!(history_size >= 4, "history must hold at least 4 entries");
        GhbPrefetcher {
            degree,
            history: vec![0; history_size],
            capacity: history_size,
            head: 0,
        }
    }

    #[inline]
    fn at(&self, pos: u64) -> u32 {
        self.history[(pos % self.capacity as u64) as usize]
    }

    fn len_in_window(&self) -> u64 {
        self.head.min(self.capacity as u64)
    }

    fn correlate(&self, out: &mut Vec<u32>) {
        let n = self.len_in_window();
        if n < 3 {
            return;
        }
        let newest = self.head - 1;
        let oldest = self.head - n;
        let d1 = self.at(newest).wrapping_sub(self.at(newest - 1)) as i64;
        let d2 = self.at(newest - 1).wrapping_sub(self.at(newest - 2)) as i64;
        // Scan backwards for the most recent earlier occurrence of the
        // (d2, d1) delta pair; `p` is the position playing `newest`'s role,
        // so it needs two predecessors inside the window: p >= oldest + 2.
        let mut p = newest;
        while p > oldest + 2 {
            p -= 1;
            let e1 = self.at(p).wrapping_sub(self.at(p - 1)) as i64;
            let e2 = self.at(p - 1).wrapping_sub(self.at(p - 2)) as i64;
            if e1 == d1 && e2 == d2 {
                // Replay the deltas that followed the match.
                let mut addr = self.at(newest);
                let mut prev_pos = p;
                for _ in 0..self.degree {
                    let next_pos = prev_pos + 1;
                    if next_pos > newest - 1 {
                        break;
                    }
                    let delta = self.at(next_pos).wrapping_sub(self.at(prev_pos));
                    addr = addr.wrapping_add(delta);
                    out.push(block_of(addr));
                    prev_pos = next_pos;
                }
                return;
            }
        }
    }
}

impl Prefetcher for GhbPrefetcher {
    fn name(&self) -> &'static str {
        "ghb"
    }

    fn max_degree(&self) -> u32 {
        self.degree
    }

    fn observe(&mut self, event: &AccessEvent, out: &mut Vec<u32>) {
        if !event.outcome.is_miss_like() {
            return;
        }
        let block = block_of(event.addr);
        // Skip consecutive duplicates; they carry no delta information.
        if self.head > 0 && self.at(self.head - 1) == block {
            return;
        }
        self.history[(self.head % self.capacity as u64) as usize] = block;
        self.head += 1;
        self.correlate(out);
    }

    fn power_loss(&mut self) {
        self.head = 0;
        self.history.iter_mut().for_each(|b| *b = 0);
    }

    fn export_state(&self) -> PrefetcherState {
        PrefetcherState::Ghb(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessOutcome;

    fn miss(addr: u32) -> AccessEvent {
        AccessEvent::data(0x40, addr, AccessOutcome::Miss, false)
    }

    #[test]
    fn replays_delta_pattern() {
        let mut p = GhbPrefetcher::new(2);
        let mut out = Vec::new();
        // Pattern with repeating deltas +0x10, +0x20:
        // 0x1000, 0x1010, 0x1030, 0x1040, 0x1060, ...
        for a in [0x1000u32, 0x1010, 0x1030, 0x1040] {
            p.observe(&miss(a), &mut out);
        }
        out.clear();
        // Now deltas (d2, d1) = (+0x10, +0x20) matched at the earlier
        // occurrence; the following deltas were +0x10, +0x20.
        p.observe(&miss(0x1060), &mut out);
        assert!(!out.is_empty());
        assert_eq!(out[0], 0x1070, "next delta (+0x10) replayed");
    }

    #[test]
    fn no_prediction_without_match() {
        let mut p = GhbPrefetcher::new(2);
        let mut out = Vec::new();
        for a in [0x1000u32, 0x9990, 0x4420, 0x7730] {
            p.observe(&miss(a), &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn consecutive_duplicates_skipped() {
        let mut p = GhbPrefetcher::new(1);
        let mut out = Vec::new();
        p.observe(&miss(0x1000), &mut out);
        p.observe(&miss(0x1004), &mut out); // same block
        p.observe(&miss(0x1008), &mut out); // same block
        assert_eq!(p.head, 1);
    }

    #[test]
    fn cache_hits_not_recorded() {
        let mut p = GhbPrefetcher::new(1);
        let mut out = Vec::new();
        p.observe(
            &AccessEvent::data(0x40, 0x1000, AccessOutcome::CacheHit, false),
            &mut out,
        );
        assert_eq!(p.head, 0);
    }

    #[test]
    fn power_loss_clears_history() {
        let mut p = GhbPrefetcher::new(2);
        let mut out = Vec::new();
        for a in [0x1000u32, 0x1010, 0x1030, 0x1040, 0x1060] {
            p.observe(&miss(a), &mut out);
        }
        p.power_loss();
        assert_eq!(p.head, 0);
        out.clear();
        p.observe(&miss(0x2000), &mut out);
        assert!(out.is_empty());
    }
}
