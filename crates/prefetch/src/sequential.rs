//! Next-N-line sequential prefetcher — the paper's default instruction
//! prefetcher (Table 1), in the lineage of the IBM System/360 Model 91
//! next-line scheme discussed in §8.1.

use ehs_mem::{block_of, BLOCK_SIZE};
use serde::{Deserialize, Serialize};

use crate::{AccessEvent, Prefetcher, PrefetcherState, MAX_DEGREE};

/// Prefetches the next sequential blocks after a miss-like access, and
/// keeps the stream warm by re-triggering whenever the demand stream
/// enters a block it has not triggered on before.
///
/// Like commercial next-line prefetchers — and per the paper's Table 1
/// ("Prefetch Degree: 2 initially and up to 4") — the degree *ramps*
/// with confidence: a sustained sequential streak doubles the base
/// degree up to [`MAX_DEGREE`]; a broken streak resets it. This is the
/// conventional aggressiveness IPEX exists to tame: the controller caps
/// the emitted candidate list via its `Rcpd` register.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequentialPrefetcher {
    degree: u32,
    last_trigger_block: Option<u32>,
    /// Consecutive sequential-block triggers.
    streak: u32,
}

/// Streak length at which the degree ramps up.
const RAMP_STREAK: u32 = 4;

impl SequentialPrefetcher {
    /// Creates a sequential prefetcher with the given base degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or exceeds [`MAX_DEGREE`].
    pub fn new(degree: u32) -> SequentialPrefetcher {
        assert!(
            (1..=MAX_DEGREE).contains(&degree),
            "degree must be 1..={MAX_DEGREE}"
        );
        SequentialPrefetcher {
            degree,
            last_trigger_block: None,
            streak: 0,
        }
    }

    /// The degree currently in effect (base, ramped up on a confident
    /// streak).
    pub fn effective_degree(&self) -> u32 {
        if self.streak >= RAMP_STREAK {
            // Stay below the 4-entry prefetch-buffer capacity so a burst
            // cannot evict its own pending prefetches.
            (self.degree * 2).min(MAX_DEGREE).min(3)
        } else {
            self.degree
        }
    }
}

impl Prefetcher for SequentialPrefetcher {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn max_degree(&self) -> u32 {
        (self.degree * 2).min(MAX_DEGREE).min(3)
    }

    #[inline]
    fn observe(&mut self, event: &AccessEvent, out: &mut Vec<u32>) {
        let block = block_of(event.addr);
        // Trigger once per block entered: sequential streams advance one
        // block at a time, so this fires on every new line the fetch
        // stream reaches, hit or miss, keeping the prefetcher ahead of
        // the demand stream.
        if self.last_trigger_block == Some(block) {
            return;
        }
        // Confidence: consecutive-block advances grow the streak; any
        // discontinuity (taken branch) resets it.
        match self.last_trigger_block {
            Some(prev) if block == prev.wrapping_add(BLOCK_SIZE) => self.streak += 1,
            _ => self.streak = 0,
        }
        self.last_trigger_block = Some(block);
        for k in 1..=self.effective_degree() {
            out.push(block.wrapping_add(k * BLOCK_SIZE));
        }
    }

    fn power_loss(&mut self) {
        self.last_trigger_block = None;
        self.streak = 0;
    }

    fn export_state(&self) -> PrefetcherState {
        PrefetcherState::Sequential(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessOutcome;

    fn ev(addr: u32) -> AccessEvent {
        AccessEvent::fetch(addr, AccessOutcome::Miss)
    }

    #[test]
    fn emits_next_lines_in_order() {
        let mut p = SequentialPrefetcher::new(2);
        let mut out = Vec::new();
        p.observe(&ev(0x100), &mut out);
        assert_eq!(out, vec![0x110, 0x120]);
    }

    #[test]
    fn does_not_retrigger_within_a_block() {
        let mut p = SequentialPrefetcher::new(2);
        let mut out = Vec::new();
        p.observe(&ev(0x100), &mut out);
        out.clear();
        p.observe(&ev(0x104), &mut out);
        p.observe(&ev(0x108), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn retriggers_on_new_block() {
        let mut p = SequentialPrefetcher::new(1);
        let mut out = Vec::new();
        p.observe(&ev(0x100), &mut out);
        p.observe(&ev(0x110), &mut out);
        assert_eq!(out, vec![0x110, 0x120]);
    }

    #[test]
    fn power_loss_resets_trigger() {
        let mut p = SequentialPrefetcher::new(1);
        let mut out = Vec::new();
        p.observe(&ev(0x100), &mut out);
        p.power_loss();
        p.observe(&ev(0x100), &mut out);
        assert_eq!(out, vec![0x110, 0x110]);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn rejects_zero_degree() {
        SequentialPrefetcher::new(0);
    }
}
