//! Serializable prefetcher state for snapshot/resume.
//!
//! Every concrete prefetcher can export its complete internal state as a
//! [`PrefetcherState`] (via [`Prefetcher::export_state`]) and be rebuilt
//! bit-identically from it (via [`PrefetcherState::into_prefetcher`]).
//! The enum is externally tagged, so a snapshot records *which* of the 9
//! kinds was running as well as its tables.

use serde::{Deserialize, Serialize};

use crate::{
    AmpmPrefetcher, AnyPrefetcher, BestOffsetPrefetcher, GhbPrefetcher, MarkovPrefetcher,
    NullPrefetcher, Prefetcher, SequentialPrefetcher, StridePrefetcher, TifsPrefetcher,
};

/// Complete serializable state of any concrete [`Prefetcher`].
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum PrefetcherState {
    /// The stateless null prefetcher.
    None,
    /// Next-N-line sequential instruction prefetcher.
    Sequential(SequentialPrefetcher),
    /// Markov correlation instruction prefetcher.
    Markov(MarkovPrefetcher),
    /// Temporal instruction fetch streaming.
    Tifs(TifsPrefetcher),
    /// PC-indexed stride data prefetcher.
    Stride(StridePrefetcher),
    /// Global-history-buffer (G/DC) data prefetcher.
    Ghb(GhbPrefetcher),
    /// Best-offset data prefetcher.
    BestOffset(BestOffsetPrefetcher),
    /// Access-map pattern-matching data prefetcher.
    Ampm(AmpmPrefetcher),
}

impl PrefetcherState {
    /// Rebuilds a live prefetcher holding exactly this state.
    pub fn into_prefetcher(&self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherState::None => Box::new(NullPrefetcher::new()),
            PrefetcherState::Sequential(p) => Box::new(p.clone()),
            PrefetcherState::Markov(p) => Box::new(p.clone()),
            PrefetcherState::Tifs(p) => Box::new(p.clone()),
            PrefetcherState::Stride(p) => Box::new(p.clone()),
            PrefetcherState::Ghb(p) => Box::new(p.clone()),
            PrefetcherState::BestOffset(p) => Box::new(p.clone()),
            PrefetcherState::Ampm(p) => Box::new(p.clone()),
        }
    }

    /// [`PrefetcherState::into_prefetcher`] as the enum-dispatched
    /// [`AnyPrefetcher`] the simulator's hot loop uses.
    pub fn into_any(&self) -> AnyPrefetcher {
        match self {
            PrefetcherState::None => AnyPrefetcher::Null(NullPrefetcher::new()),
            PrefetcherState::Sequential(p) => AnyPrefetcher::Sequential(p.clone()),
            PrefetcherState::Markov(p) => AnyPrefetcher::Markov(p.clone()),
            PrefetcherState::Tifs(p) => AnyPrefetcher::Tifs(p.clone()),
            PrefetcherState::Stride(p) => AnyPrefetcher::Stride(p.clone()),
            PrefetcherState::Ghb(p) => AnyPrefetcher::Ghb(p.clone()),
            PrefetcherState::BestOffset(p) => AnyPrefetcher::BestOffset(p.clone()),
            PrefetcherState::Ampm(p) => AnyPrefetcher::Ampm(p.clone()),
        }
    }

    /// The kind tag as reported by [`Prefetcher::name`], for mismatch
    /// diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            PrefetcherState::None => "none",
            PrefetcherState::Sequential(_) => "sequential",
            PrefetcherState::Markov(_) => "markov",
            PrefetcherState::Tifs(_) => "tifs",
            PrefetcherState::Stride(_) => "stride",
            PrefetcherState::Ghb(_) => "ghb",
            PrefetcherState::BestOffset(_) => "best-offset",
            PrefetcherState::Ampm(_) => "ampm",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessEvent, AccessOutcome};

    fn exercise(p: &mut dyn Prefetcher) {
        let mut out = Vec::new();
        for i in 0..64u32 {
            p.observe(
                &AccessEvent::data(
                    0x40 + (i % 4) * 4,
                    0x1000 + i * 0x10,
                    AccessOutcome::Miss,
                    false,
                ),
                &mut out,
            );
        }
    }

    #[test]
    fn round_trip_preserves_behaviour() {
        let originals: Vec<Box<dyn Prefetcher>> = vec![
            Box::new(NullPrefetcher::new()),
            Box::new(SequentialPrefetcher::new(2)),
            Box::new(MarkovPrefetcher::new(2)),
            Box::new(TifsPrefetcher::new(2)),
            Box::new(StridePrefetcher::new(2)),
            Box::new(GhbPrefetcher::new(2)),
            Box::new(BestOffsetPrefetcher::new(2)),
            Box::new(AmpmPrefetcher::new(2)),
        ];
        for mut p in originals {
            exercise(&mut *p);
            let state = p.export_state();
            let json = serde_json::to_string(&state).unwrap();
            let back: PrefetcherState = serde_json::from_str(&json).unwrap();
            let mut q = back.into_prefetcher();
            assert_eq!(q.name(), p.name());
            // Re-serializing the rebuilt state is byte-identical.
            assert_eq!(serde_json::to_string(&q.export_state()).unwrap(), json);
            // Identical state must produce identical future candidates.
            let ev = AccessEvent::data(0x44, 0x2000, AccessOutcome::Miss, false);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            p.observe(&ev, &mut a);
            q.observe(&ev, &mut b);
            assert_eq!(a, b, "{} diverged after round trip", p.name());
        }
    }
}
