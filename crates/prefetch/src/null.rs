//! The no-op prefetcher used by the prefetch-free baselines
//! (e.g. "NVSRAMCache (No Prefetcher)" in Figs. 10/11).

use crate::{AccessEvent, Prefetcher, PrefetcherState};

/// A prefetcher that never prefetches.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullPrefetcher;

impl NullPrefetcher {
    /// Creates the null prefetcher.
    pub fn new() -> NullPrefetcher {
        NullPrefetcher
    }
}

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &'static str {
        "none"
    }

    fn max_degree(&self) -> u32 {
        0
    }

    fn observe(&mut self, _event: &AccessEvent, _out: &mut Vec<u32>) {}

    fn power_loss(&mut self) {}

    fn export_state(&self) -> PrefetcherState {
        PrefetcherState::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessOutcome;

    #[test]
    fn never_emits() {
        let mut p = NullPrefetcher::new();
        let mut out = Vec::new();
        p.observe(&AccessEvent::fetch(0x100, AccessOutcome::Miss), &mut out);
        assert!(out.is_empty());
        assert_eq!(p.max_degree(), 0);
        p.power_loss();
    }
}
