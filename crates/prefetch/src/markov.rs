//! Markov prefetcher (Joseph & Grunwald) — Table 3 alternative
//! instruction prefetcher.
//!
//! A correlation table maps a miss block to the blocks that followed it
//! in the miss stream, most-probable first (approximated by an LRU/MFU
//! hybrid: successors are kept most-recent-first, which tracks the
//! empirical transition probabilities well for looping code). On each
//! miss the predicted successors of the current block are prefetched, up
//! to the degree.

use ehs_mem::block_of;
use serde::{Deserialize, Serialize};

use crate::{AccessEvent, Prefetcher, PrefetcherState, MAX_DEGREE};

const SUCCESSORS_PER_ENTRY: usize = 4;

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Entry {
    tag: u32,
    /// Successor blocks, most recently observed first.
    successors: Vec<u32>,
}

/// Correlation-table Markov prefetcher.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarkovPrefetcher {
    degree: u32,
    table: Vec<Option<Entry>>,
    index_mask: u32,
    last_miss_block: Option<u32>,
}

impl MarkovPrefetcher {
    /// Default number of correlation-table entries.
    pub const DEFAULT_TABLE_SIZE: usize = 64;

    /// Creates a Markov prefetcher with the default 64-entry table.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or exceeds [`MAX_DEGREE`].
    pub fn new(degree: u32) -> MarkovPrefetcher {
        MarkovPrefetcher::with_table_size(degree, Self::DEFAULT_TABLE_SIZE)
    }

    /// Creates a Markov prefetcher with a custom power-of-two table size.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is out of range or `table_size` is not a
    /// positive power of two.
    pub fn with_table_size(degree: u32, table_size: usize) -> MarkovPrefetcher {
        assert!(
            (1..=MAX_DEGREE).contains(&degree),
            "degree must be 1..={MAX_DEGREE}"
        );
        assert!(
            table_size.is_power_of_two(),
            "table size must be a power of two"
        );
        MarkovPrefetcher {
            degree,
            table: vec![None; table_size],
            index_mask: table_size as u32 - 1,
            last_miss_block: None,
        }
    }

    #[inline]
    fn slot(&self, block: u32) -> usize {
        ((block >> 4) & self.index_mask) as usize
    }

    fn record_transition(&mut self, from: u32, to: u32) {
        let slot = self.slot(from);
        match &mut self.table[slot] {
            Some(e) if e.tag == from => {
                if let Some(pos) = e.successors.iter().position(|&s| s == to) {
                    // Move to front (most recent = most probable).
                    e.successors.remove(pos);
                } else if e.successors.len() == SUCCESSORS_PER_ENTRY {
                    e.successors.pop();
                }
                e.successors.insert(0, to);
            }
            _ => {
                self.table[slot] = Some(Entry {
                    tag: from,
                    successors: vec![to],
                });
            }
        }
    }

    fn predict(&self, block: u32, out: &mut Vec<u32>) {
        let slot = self.slot(block);
        if let Some(e) = &self.table[slot] {
            if e.tag == block {
                for &s in e.successors.iter().take(self.degree as usize) {
                    out.push(s);
                }
            }
        }
    }
}

impl Prefetcher for MarkovPrefetcher {
    fn name(&self) -> &'static str {
        "markov"
    }

    fn max_degree(&self) -> u32 {
        self.degree
    }

    fn observe(&mut self, event: &AccessEvent, out: &mut Vec<u32>) {
        // The Markov chain is trained on the miss stream only.
        if !event.outcome.is_miss_like() {
            return;
        }
        let block = block_of(event.addr);
        if let Some(prev) = self.last_miss_block {
            if prev != block {
                self.record_transition(prev, block);
            }
        }
        self.last_miss_block = Some(block);
        self.predict(block, out);
    }

    fn power_loss(&mut self) {
        self.table.iter_mut().for_each(|e| *e = None);
        self.last_miss_block = None;
    }

    fn export_state(&self) -> PrefetcherState {
        PrefetcherState::Markov(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessOutcome;

    fn miss(addr: u32) -> AccessEvent {
        AccessEvent::fetch(addr, AccessOutcome::Miss)
    }

    fn hit(addr: u32) -> AccessEvent {
        AccessEvent::fetch(addr, AccessOutcome::CacheHit)
    }

    #[test]
    fn learns_repeating_miss_sequence() {
        let mut p = MarkovPrefetcher::new(2);
        let mut out = Vec::new();
        // Train: A -> B -> C, twice.
        for _ in 0..2 {
            p.observe(&miss(0x100), &mut out);
            p.observe(&miss(0x210), &mut out);
            p.observe(&miss(0x320), &mut out);
        }
        out.clear();
        p.observe(&miss(0x100), &mut out);
        assert_eq!(out, vec![0x210]);
        out.clear();
        p.observe(&miss(0x210), &mut out);
        assert_eq!(out, vec![0x320]);
    }

    #[test]
    fn multiple_successors_most_recent_first() {
        let mut p = MarkovPrefetcher::new(2);
        let mut out = Vec::new();
        // A -> B then A -> C: C is now the more recent successor.
        p.observe(&miss(0x100), &mut out);
        p.observe(&miss(0x200), &mut out);
        p.observe(&miss(0x100), &mut out);
        p.observe(&miss(0x300), &mut out);
        out.clear();
        p.observe(&miss(0x100), &mut out);
        assert_eq!(out, vec![0x300, 0x200]);
    }

    #[test]
    fn hits_do_not_train() {
        let mut p = MarkovPrefetcher::new(1);
        let mut out = Vec::new();
        p.observe(&miss(0x100), &mut out);
        p.observe(&hit(0x200), &mut out);
        p.observe(&miss(0x300), &mut out);
        out.clear();
        p.observe(&miss(0x100), &mut out);
        // Transition recorded is A -> 0x300, skipping the hit.
        assert_eq!(out, vec![0x300]);
    }

    #[test]
    fn degree_limits_predictions() {
        let mut p = MarkovPrefetcher::new(1);
        let mut out = Vec::new();
        p.observe(&miss(0x100), &mut out);
        p.observe(&miss(0x200), &mut out);
        p.observe(&miss(0x100), &mut out);
        p.observe(&miss(0x300), &mut out);
        out.clear();
        p.observe(&miss(0x100), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn successor_list_capped() {
        let mut p = MarkovPrefetcher::new(4);
        let mut out = Vec::new();
        for i in 1..=6u32 {
            p.observe(&miss(0x100), &mut out);
            p.observe(&miss(0x1000 * i), &mut out);
        }
        out.clear();
        p.observe(&miss(0x100), &mut out);
        assert_eq!(out.len(), 4, "successor list is bounded");
        assert_eq!(out[0], 0x6000, "most recent first");
    }

    #[test]
    fn power_loss_forgets_chain() {
        let mut p = MarkovPrefetcher::new(1);
        let mut out = Vec::new();
        p.observe(&miss(0x100), &mut out);
        p.observe(&miss(0x200), &mut out);
        p.power_loss();
        out.clear();
        p.observe(&miss(0x100), &mut out);
        assert!(out.is_empty());
    }
}
