//! The demand-access events a prefetcher observes.

/// Where a demand access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// Hit in the cache proper.
    CacheHit,
    /// Hit in the prefetch buffer (a useful prefetch; the block is
    /// promoted into the cache).
    BufferHit,
    /// Missed everywhere; serviced by NVM.
    Miss,
}

impl AccessOutcome {
    /// `true` if the access was *not* satisfied by the cache proper —
    /// the classic trigger condition for most prefetchers.
    #[inline]
    pub fn is_miss_like(self) -> bool {
        matches!(self, AccessOutcome::BufferHit | AccessOutcome::Miss)
    }

    /// Stable kebab-case label, used by trace/diagnostic output.
    pub fn name(self) -> &'static str {
        match self {
            AccessOutcome::CacheHit => "cache-hit",
            AccessOutcome::BufferHit => "buffer-hit",
            AccessOutcome::Miss => "miss",
        }
    }
}

/// One demand access as seen by a [`Prefetcher`](crate::Prefetcher).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Program counter of the instruction performing the access. For
    /// instruction prefetchers this equals `addr`.
    pub pc: u32,
    /// Byte address accessed.
    pub addr: u32,
    /// Where the access was satisfied.
    pub outcome: AccessOutcome,
    /// `true` for stores.
    pub is_write: bool,
}

impl AccessEvent {
    /// Convenience constructor for an instruction-fetch event.
    pub fn fetch(pc: u32, outcome: AccessOutcome) -> AccessEvent {
        AccessEvent {
            pc,
            addr: pc,
            outcome,
            is_write: false,
        }
    }

    /// Convenience constructor for a data access.
    pub fn data(pc: u32, addr: u32, outcome: AccessOutcome, is_write: bool) -> AccessEvent {
        AccessEvent {
            pc,
            addr,
            outcome,
            is_write,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_like_classification() {
        assert!(AccessOutcome::Miss.is_miss_like());
        assert!(AccessOutcome::BufferHit.is_miss_like());
        assert!(!AccessOutcome::CacheHit.is_miss_like());
    }

    #[test]
    fn fetch_event_pc_equals_addr() {
        let e = AccessEvent::fetch(0x40, AccessOutcome::Miss);
        assert_eq!(e.pc, e.addr);
        assert!(!e.is_write);
    }
}
