//! Named prefetcher kinds used by experiment configurations
//! (Tables 3 and 4 of the paper).

use serde::{Deserialize, Serialize};

use crate::{
    AmpmPrefetcher, AnyPrefetcher, BestOffsetPrefetcher, GhbPrefetcher, MarkovPrefetcher,
    NullPrefetcher, Prefetcher, SequentialPrefetcher, StridePrefetcher, TifsPrefetcher,
};

/// Instruction-prefetcher selection (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum InstPrefetcherKind {
    /// No instruction prefetching.
    None,
    /// Next-N-line sequential — the paper's default.
    Sequential,
    /// Markov correlation prefetcher.
    Markov,
    /// Temporal instruction fetch streaming.
    Tifs,
}

impl InstPrefetcherKind {
    /// The kinds evaluated in Table 3.
    pub const TABLE3: [InstPrefetcherKind; 3] = [
        InstPrefetcherKind::Sequential,
        InstPrefetcherKind::Markov,
        InstPrefetcherKind::Tifs,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            InstPrefetcherKind::None => "none",
            InstPrefetcherKind::Sequential => "Sequential",
            InstPrefetcherKind::Markov => "Markov",
            InstPrefetcherKind::Tifs => "TIFS",
        }
    }

    /// Instantiates the prefetcher with the given natural degree.
    pub fn build(self, degree: u32) -> Box<dyn Prefetcher> {
        match self {
            InstPrefetcherKind::None => Box::new(NullPrefetcher::new()),
            InstPrefetcherKind::Sequential => Box::new(SequentialPrefetcher::new(degree)),
            InstPrefetcherKind::Markov => Box::new(MarkovPrefetcher::new(degree)),
            InstPrefetcherKind::Tifs => Box::new(TifsPrefetcher::new(degree)),
        }
    }

    /// [`InstPrefetcherKind::build`] as the enum-dispatched
    /// [`AnyPrefetcher`] the simulator's hot loop uses.
    pub fn build_any(self, degree: u32) -> AnyPrefetcher {
        match self {
            InstPrefetcherKind::None => AnyPrefetcher::Null(NullPrefetcher::new()),
            InstPrefetcherKind::Sequential => {
                AnyPrefetcher::Sequential(SequentialPrefetcher::new(degree))
            }
            InstPrefetcherKind::Markov => AnyPrefetcher::Markov(MarkovPrefetcher::new(degree)),
            InstPrefetcherKind::Tifs => AnyPrefetcher::Tifs(TifsPrefetcher::new(degree)),
        }
    }
}

/// Data-prefetcher selection (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum DataPrefetcherKind {
    /// No data prefetching.
    None,
    /// PC-indexed stride — the paper's default.
    Stride,
    /// Global history buffer (G/DC).
    Ghb,
    /// Best-offset.
    BestOffset,
    /// Access-map pattern matching (§8.1 extra, beyond Table 4).
    Ampm,
}

impl DataPrefetcherKind {
    /// The kinds evaluated in Table 4.
    pub const TABLE4: [DataPrefetcherKind; 3] = [
        DataPrefetcherKind::Stride,
        DataPrefetcherKind::Ghb,
        DataPrefetcherKind::BestOffset,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            DataPrefetcherKind::None => "none",
            DataPrefetcherKind::Stride => "Stride",
            DataPrefetcherKind::Ghb => "GHB",
            DataPrefetcherKind::BestOffset => "BO",
            DataPrefetcherKind::Ampm => "AMPM",
        }
    }

    /// Instantiates the prefetcher with the given natural degree.
    pub fn build(self, degree: u32) -> Box<dyn Prefetcher> {
        match self {
            DataPrefetcherKind::None => Box::new(NullPrefetcher::new()),
            DataPrefetcherKind::Stride => Box::new(StridePrefetcher::new(degree)),
            DataPrefetcherKind::Ghb => Box::new(GhbPrefetcher::new(degree)),
            DataPrefetcherKind::BestOffset => Box::new(BestOffsetPrefetcher::new(degree)),
            DataPrefetcherKind::Ampm => Box::new(AmpmPrefetcher::new(degree)),
        }
    }

    /// [`DataPrefetcherKind::build`] as the enum-dispatched
    /// [`AnyPrefetcher`] the simulator's hot loop uses.
    pub fn build_any(self, degree: u32) -> AnyPrefetcher {
        match self {
            DataPrefetcherKind::None => AnyPrefetcher::Null(NullPrefetcher::new()),
            DataPrefetcherKind::Stride => AnyPrefetcher::Stride(StridePrefetcher::new(degree)),
            DataPrefetcherKind::Ghb => AnyPrefetcher::Ghb(GhbPrefetcher::new(degree)),
            DataPrefetcherKind::BestOffset => {
                AnyPrefetcher::BestOffset(BestOffsetPrefetcher::new(degree))
            }
            DataPrefetcherKind::Ampm => AnyPrefetcher::Ampm(AmpmPrefetcher::new(degree)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_matches_names() {
        assert_eq!(InstPrefetcherKind::Sequential.build(2).name(), "sequential");
        assert_eq!(InstPrefetcherKind::Markov.build(2).name(), "markov");
        assert_eq!(InstPrefetcherKind::Tifs.build(2).name(), "tifs");
        assert_eq!(InstPrefetcherKind::None.build(2).name(), "none");
        assert_eq!(DataPrefetcherKind::Stride.build(2).name(), "stride");
        assert_eq!(DataPrefetcherKind::Ghb.build(2).name(), "ghb");
        assert_eq!(
            DataPrefetcherKind::BestOffset.build(2).name(),
            "best-offset"
        );
        assert_eq!(DataPrefetcherKind::Ampm.build(2).name(), "ampm");
    }

    #[test]
    fn serde_round_trip() {
        let k = InstPrefetcherKind::Tifs;
        let s = serde_json::to_string(&k).unwrap();
        assert_eq!(s, "\"tifs\"");
        let back: InstPrefetcherKind = serde_json::from_str(&s).unwrap();
        assert_eq!(back, k);
        let d = DataPrefetcherKind::BestOffset;
        assert_eq!(serde_json::to_string(&d).unwrap(), "\"best-offset\"");
    }
}
