//! Temporal Instruction Fetch Streaming (Ferdman et al.) — Table 3
//! alternative instruction prefetcher.
//!
//! TIFS logs the instruction-miss stream in an Instruction Miss Log (IML)
//! and indexes the most recent log position of every block. On a miss it
//! locates the previous occurrence of the missing block and replays the
//! blocks that followed it last time, up to the degree. This recaptures
//! arbitrary (non-sequential) recurring fetch streams.

use std::collections::HashMap;

use ehs_mem::block_of;

use crate::{AccessEvent, Prefetcher, PrefetcherState, MAX_DEGREE};

/// Temporal-streaming instruction prefetcher.
#[derive(Debug, Clone)]
pub struct TifsPrefetcher {
    degree: u32,
    /// Circular instruction miss log.
    log: Vec<u32>,
    capacity: usize,
    /// Next insertion position (monotonic; wraps modulo capacity).
    head: u64,
    /// Block -> most recent monotonic log position.
    index: HashMap<u32, u64>,
}

impl TifsPrefetcher {
    /// Default miss-log capacity, in entries.
    pub const DEFAULT_LOG_SIZE: usize = 512;

    /// Creates a TIFS prefetcher with the default 512-entry miss log.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or exceeds [`MAX_DEGREE`].
    pub fn new(degree: u32) -> TifsPrefetcher {
        TifsPrefetcher::with_log_size(degree, Self::DEFAULT_LOG_SIZE)
    }

    /// Creates a TIFS prefetcher with a custom log capacity.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is out of range or `log_size` is zero.
    pub fn with_log_size(degree: u32, log_size: usize) -> TifsPrefetcher {
        assert!(
            (1..=MAX_DEGREE).contains(&degree),
            "degree must be 1..={MAX_DEGREE}"
        );
        assert!(log_size > 0, "log size must be positive");
        TifsPrefetcher {
            degree,
            log: vec![0; log_size],
            capacity: log_size,
            head: 0,
            index: HashMap::new(),
        }
    }

    fn replay_from(&self, pos: u64, out: &mut Vec<u32>) {
        // Entries after `pos` that are still in the log window.
        for k in 1..=self.degree as u64 {
            let p = pos + k;
            if p >= self.head {
                break;
            }
            out.push(self.log[(p % self.capacity as u64) as usize]);
        }
    }

    fn append(&mut self, block: u32) {
        self.log[(self.head % self.capacity as u64) as usize] = block;
        self.index.insert(block, self.head);
        self.head += 1;
        // Bound the index: drop entries that have aged out of the log to
        // keep the model's state comparable to the bounded hardware table.
        if self.index.len() > 2 * self.capacity {
            let oldest_valid = self.head.saturating_sub(self.capacity as u64);
            self.index.retain(|_, &mut pos| pos >= oldest_valid);
        }
    }
}

// Hand-written (de)serialization: the vendored serde has no HashMap
// support, and a HashMap would serialize in nondeterministic order
// anyway. The index is flattened to a block-sorted sequence of
// `{ "block": .., "pos": .. }` maps so equal prefetcher states always
// produce byte-identical canonical JSON.
impl serde::Serialize for TifsPrefetcher {
    fn to_content(&self) -> serde::Content {
        let mut index: Vec<(u32, u64)> = self.index.iter().map(|(&b, &p)| (b, p)).collect();
        index.sort_unstable();
        serde::Content::Map(vec![
            ("degree".to_string(), self.degree.to_content()),
            ("log".to_string(), self.log.to_content()),
            ("capacity".to_string(), self.capacity.to_content()),
            ("head".to_string(), self.head.to_content()),
            (
                "index".to_string(),
                serde::Content::Seq(
                    index
                        .iter()
                        .map(|&(block, pos)| {
                            serde::Content::Map(vec![
                                ("block".to_string(), block.to_content()),
                                ("pos".to_string(), pos.to_content()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl serde::Deserialize for TifsPrefetcher {
    fn from_content(c: &serde::Content) -> Result<Self, serde::Error> {
        let m = c.as_map().ok_or_else(|| serde::Error::expected("map"))?;
        let mut index = HashMap::new();
        for entry in serde::map_field(m, "index")?
            .as_seq()
            .ok_or_else(|| serde::Error::expected("sequence"))?
        {
            let em = entry
                .as_map()
                .ok_or_else(|| serde::Error::expected("map"))?;
            index.insert(
                u32::from_content(serde::map_field(em, "block")?)?,
                u64::from_content(serde::map_field(em, "pos")?)?,
            );
        }
        Ok(TifsPrefetcher {
            degree: u32::from_content(serde::map_field(m, "degree")?)?,
            log: Vec::from_content(serde::map_field(m, "log")?)?,
            capacity: usize::from_content(serde::map_field(m, "capacity")?)?,
            head: u64::from_content(serde::map_field(m, "head")?)?,
            index,
        })
    }
}

impl Prefetcher for TifsPrefetcher {
    fn name(&self) -> &'static str {
        "tifs"
    }

    fn max_degree(&self) -> u32 {
        self.degree
    }

    fn observe(&mut self, event: &AccessEvent, out: &mut Vec<u32>) {
        if !event.outcome.is_miss_like() {
            return;
        }
        let block = block_of(event.addr);
        let oldest_valid = self.head.saturating_sub(self.capacity as u64);
        if let Some(&pos) = self.index.get(&block) {
            if pos >= oldest_valid {
                self.replay_from(pos, out);
            }
        }
        self.append(block);
    }

    fn power_loss(&mut self) {
        self.head = 0;
        self.index.clear();
        self.log.iter_mut().for_each(|b| *b = 0);
    }

    fn export_state(&self) -> PrefetcherState {
        PrefetcherState::Tifs(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessOutcome;

    fn miss(addr: u32) -> AccessEvent {
        AccessEvent::fetch(addr, AccessOutcome::Miss)
    }

    #[test]
    fn replays_recorded_stream() {
        let mut p = TifsPrefetcher::new(3);
        let mut out = Vec::new();
        for a in [0x100u32, 0x480, 0x220, 0x900] {
            p.observe(&miss(a), &mut out);
        }
        assert!(out.is_empty(), "first pass has no history");
        p.observe(&miss(0x100), &mut out);
        assert_eq!(out, vec![0x480, 0x220, 0x900]);
    }

    #[test]
    fn replay_limited_by_degree() {
        let mut p = TifsPrefetcher::new(1);
        let mut out = Vec::new();
        for a in [0x100u32, 0x480, 0x220] {
            p.observe(&miss(a), &mut out);
        }
        p.observe(&miss(0x100), &mut out);
        assert_eq!(out, vec![0x480]);
    }

    #[test]
    fn replay_stops_at_log_head() {
        let mut p = TifsPrefetcher::new(4);
        let mut out = Vec::new();
        p.observe(&miss(0x100), &mut out);
        p.observe(&miss(0x480), &mut out);
        // Only one successor exists so far.
        p.observe(&miss(0x100), &mut out);
        assert_eq!(out, vec![0x480]);
    }

    #[test]
    fn aged_out_positions_ignored() {
        let mut p = TifsPrefetcher::with_log_size(2, 4);
        let mut out = Vec::new();
        p.observe(&miss(0x100), &mut out);
        // Push the log far past 0x100's position.
        for i in 1..=6u32 {
            p.observe(&miss(0x1000 + i * 0x10), &mut out);
        }
        out.clear();
        p.observe(&miss(0x100), &mut out);
        assert!(out.is_empty(), "position fell out of the 4-entry window");
    }

    #[test]
    fn power_loss_clears_log() {
        let mut p = TifsPrefetcher::new(2);
        let mut out = Vec::new();
        p.observe(&miss(0x100), &mut out);
        p.observe(&miss(0x480), &mut out);
        p.power_loss();
        p.observe(&miss(0x100), &mut out);
        assert!(out.is_empty());
    }
}
