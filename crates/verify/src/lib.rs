//! # ehs-verify — correctness tooling for the EHS simulator
//!
//! Every number the experiment harness reproduces rests on one
//! assumption: the cycle-level [`Machine`](ehs_sim::Machine) computes the
//! same architectural result as the functional
//! [`Interpreter`](ehs_isa::Interpreter), for every workload, under
//! every outage pattern. This crate turns that assumption into a checked
//! property, in three layers:
//!
//! 1. **Differential oracle** ([`oracle`]) — runs a workload on the
//!    golden interpreter and on the machine, then compares the *full*
//!    final architectural state: all 16 registers plus an FNV-1a digest
//!    of the entire memory image (not just the `a0` checksum). The
//!    [`oracle::run_matrix`] driver sweeps the whole 20-workload ×
//!    7-configuration × 4-trace-kind grid in parallel.
//! 2. **Adversarial outage fuzzer** ([`fuzz`]) — synthesizes
//!    pathological power traces from a seeded PRNG (single-sample
//!    brownouts, supplies hovering exactly at the IPEX thresholds,
//!    outage storms, random walks), cross-checks every run against the
//!    oracle and the invariant sink, and hands any failing trace to the
//!    **shrinker** ([`shrink`]), which minimizes it to the shortest
//!    sample vector that still reproduces the failure. The
//!    checkpoint-accelerated variant ([`checkpoint`]) resumes each ddmin
//!    candidate from the nearest pre-failure machine snapshot
//!    (`ehs_sim::snapshot`) instead of re-simulating from cycle 0, with
//!    bit-identical verdicts.
//! 3. **Invariant checkers** ([`invariants`]) — a
//!    [`TraceSink`](ehs_sim::TraceSink) that audits the event stream
//!    while a run is in flight: per-power-cycle energy conservation,
//!    issued-prefetch degree never exceeding the throttled `Rcpd` cap,
//!    every `PrefetchIssued` resolving to exactly one of
//!    hit/evicted/lost/still-resident, and backup/restore pairing.
//!
//! Failures found by the fuzzer are committed as JSON cases under
//! `tests/corpus/` ([`corpus`]) and replayed by a tier-1 test, so every
//! past counterexample stays fixed forever. A second corpus
//! ([`snapcorpus`]) pins complete golden machine snapshots under
//! `tests/corpus/snapshots/`, turning any unintended change to timing,
//! energy or controller state into a field-level diff. The `verify` binary in
//! `ehs-bench` exposes all of this on the command line
//! (`verify matrix | fuzz | shrink | slices`).
//!
//! A fourth layer, the **slice-equivalence oracle** ([`slices`]),
//! guards the time-sliced executor (`ehs_sim::slice`): for every
//! (workload, configuration) cell it proves that a pausing forward
//! pass and a slice-by-slice replay of the captured plan both land on
//! the monolithic run's exact result and state digest.

pub mod checkpoint;
pub mod corpus;
pub mod fuzz;
pub mod invariants;
pub mod oracle;
pub mod shrink;
pub mod slices;
pub mod snapcorpus;

pub use checkpoint::{shrink_trace_checkpointed, CheckpointShrinkStats};
pub use corpus::CorpusCase;
pub use fuzz::{FuzzFailure, FuzzOptions, FuzzReport};
pub use invariants::InvariantSink;
pub use oracle::{ArchState, CheckOutcome, ConfigId, Divergence, MatrixReport};
pub use shrink::shrink_trace;
pub use slices::{run_slice_matrix, SliceCell, SliceReport};

/// Parses a seed that may be decimal, `0x`-prefixed hex, or an arbitrary
/// tag (e.g. `0xEHS`, which is *not* valid hex): anything unparsable is
/// hashed (FNV-1a) to a deterministic `u64` so every string names a
/// reproducible stream.
pub fn parse_seed(s: &str) -> u64 {
    if let Ok(v) = s.parse::<u64>() {
        return v;
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            return v;
        }
    }
    ehs_isa::mem_digest_of(s.as_bytes())
}

/// Runs `f` over `items` on a bounded worker pool (at most
/// [`std::thread::available_parallelism`] threads), returning results in
/// item order. The same queue-pull pattern as `ehs-bench`'s suite
/// runner, generalized over the task type.
pub fn run_parallel<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    if items.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len())
        .max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, slots, f) = (&next, &slots, &f);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else {
                        break;
                    };
                    *slots[i].lock().expect("slot poisoned") = Some(f(item));
                })
            })
            .collect();
        for h in handles {
            h.join().expect("verify worker panicked");
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_parsing_accepts_decimal_hex_and_tags() {
        assert_eq!(parse_seed("42"), 42);
        assert_eq!(parse_seed("0xff"), 255);
        assert_eq!(parse_seed("0XFF"), 255);
        // Not valid hex: falls back to a deterministic string hash.
        let tag = parse_seed("0xEHS");
        assert_eq!(tag, parse_seed("0xEHS"));
        assert_ne!(tag, parse_seed("0xEHT"));
    }

    #[test]
    fn run_parallel_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_parallel(&items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }
}
