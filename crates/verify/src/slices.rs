//! The slice-equivalence oracle: monolithic run vs time-sliced replay.
//!
//! `ehs_sim::slice` claims two guarantees, and this oracle checks both
//! end to end across the workload × configuration grid:
//!
//! 1. **Pause neutrality** — a forward pass that pauses every grain
//!    cycles ([`ehs_sim::slice::plan_auto`]) must produce the same
//!    [`SimResult`] and final state digest as one uninterrupted
//!    [`Machine::run`].
//! 2. **Resume exactness** — re-executing every slice of the captured
//!    plan from its entry snapshot ([`run_sliced_serial`]) must stitch
//!    back into that same result and digest, with every intermediate
//!    slice landing digest-exact on the next entry.
//!
//! Each cell therefore simulates its workload three times: once
//! monolithically (the truth), once as the pausing forward pass, and
//! once slice-by-slice from the plan. A cell fails on any result or
//! digest difference, which `verify slices` reports like the
//! differential matrix does.

use ehs_energy::TraceKind;
use ehs_sim::slice::{plan_auto, run_sliced_serial};
use ehs_sim::Machine;

use crate::oracle::ConfigId;
use crate::run_parallel;

/// Snapshot spacing of the forward pass — matches the bench layer's
/// cut grain so the oracle exercises the plans production runs use.
pub const SLICE_GRAIN_CYCLES: u64 = 50_000;

/// One cell of the slice-equivalence sweep.
#[derive(Debug, Clone)]
pub struct SliceCell {
    /// Workload name.
    pub workload: &'static str,
    /// Controller configuration.
    pub config: ConfigId,
    /// `Ok(slices)` when sliced execution matched the monolith
    /// (reporting the plan's slice count), `Err(why)` otherwise.
    pub outcome: Result<usize, String>,
}

/// The full slice-equivalence sweep result.
#[derive(Debug, Clone, Default)]
pub struct SliceReport {
    /// One entry per (workload, config) cell.
    pub entries: Vec<SliceCell>,
}

impl SliceReport {
    /// `true` when every cell matched.
    pub fn all_match(&self) -> bool {
        self.entries.iter().all(|e| e.outcome.is_ok())
    }

    /// The cells that did not match.
    pub fn failures(&self) -> Vec<&SliceCell> {
        self.entries.iter().filter(|e| e.outcome.is_err()).collect()
    }
}

/// Checks one (workload, config) cell; see the module docs for the
/// three runs it performs.
pub fn check_cell(
    workload: &ehs_workloads::Workload,
    config: ConfigId,
    seed: u64,
    samples: usize,
    max_slices: usize,
) -> Result<usize, String> {
    let cfg = config.build();
    let program = workload.program();
    let trace = TraceKind::RfHome.synthesize(seed, samples);

    let mut mono = Machine::with_trace(cfg.clone(), &program, trace.clone());
    let truth = mono
        .run()
        .map_err(|e| format!("monolithic run failed: {e}"))?;
    let truth_digest = mono.state_digest(&program);

    let fwd = plan_auto(&cfg, &program, &trace, max_slices, SLICE_GRAIN_CYCLES)
        .map_err(|e| format!("forward pass failed: {e}"))?;
    if fwd.result != truth {
        return Err("pausing forward pass diverged from the monolithic result".into());
    }
    if fwd.final_digest != truth_digest {
        return Err(format!(
            "pausing forward pass ended in digest {:016x}, monolith in {truth_digest:016x}",
            fwd.final_digest
        ));
    }

    let stitched = run_sliced_serial(&fwd.plan, &program, &trace)
        .map_err(|e| format!("sliced replay: {e}"))?;
    if stitched.result != truth {
        return Err("stitched sliced result diverged from the monolithic result".into());
    }
    if stitched.state_digest != truth_digest {
        return Err(format!(
            "stitched run ended in digest {:016x}, monolith in {truth_digest:016x}",
            stitched.state_digest
        ));
    }
    Ok(fwd.plan.len())
}

/// Sweeps `workloads` × all seven controller configurations in
/// parallel. `seed`/`samples` parameterize the synthesized RFHome
/// trace; `max_slices` bounds each cell's plan.
pub fn run_slice_matrix(
    workloads: &[&'static ehs_workloads::Workload],
    seed: u64,
    samples: usize,
    max_slices: usize,
) -> SliceReport {
    let tasks: Vec<(&'static ehs_workloads::Workload, ConfigId)> = workloads
        .iter()
        .flat_map(|w| ConfigId::ALL.into_iter().map(move |c| (*w, c)))
        .collect();
    let entries = run_parallel(&tasks, |&(w, config)| SliceCell {
        workload: w.name(),
        config,
        outcome: check_cell(w, config, seed, samples, max_slices),
    });
    SliceReport { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_cell_matches_under_every_config() {
        let w = ehs_workloads::by_name("gsmd").unwrap();
        for config in ConfigId::ALL {
            let outcome = check_cell(w, config, 42, 50_000, 4);
            let slices = outcome.unwrap_or_else(|e| panic!("{}: {e}", config.name()));
            assert!(slices >= 1);
        }
    }

    #[test]
    fn the_matrix_reports_per_cell_outcomes() {
        let w = ehs_workloads::by_name("gsmd").unwrap();
        let report = run_slice_matrix(&[w], 42, 50_000, 3);
        assert_eq!(report.entries.len(), ConfigId::ALL.len());
        assert!(report.all_match(), "{:?}", report.failures());
        assert!(report.failures().is_empty());
    }
}
