//! The differential oracle: golden interpreter vs cycle-level machine.
//!
//! The timing/functional split (`ehs_isa::interp` module docs) promises
//! that outages change only *timing* and *energy*, never architectural
//! state. The oracle checks exactly that promise: after both models run
//! a workload to completion, the full register file, the program counter
//! and an FNV-1a digest of the entire memory image must agree.

use ehs_energy::{PowerTrace, TraceKind};
use ehs_isa::{ExecError, Interpreter, Program, Reg};
use ehs_sim::{FaultPlan, Ipex, Machine, SimConfig, SimError};
use ehs_workloads::Workload;
use ipex::{HysteresisConfig, IpexConfig, PolicyConfig, PredictiveConfig, StaticDegreeConfig};

use crate::invariants::InvariantSink;
use crate::run_parallel;

/// Step budget for golden (functional) runs: far above any workload in
/// the suite, small enough that a runaway program fails fast.
pub const GOLDEN_MAX_STEPS: u64 = 200_000_000;

/// Final architectural state of one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchState {
    /// Program counter at halt.
    pub pc: u32,
    /// All 16 registers.
    pub regs: [u32; 16],
    /// FNV-1a digest of the whole memory image.
    pub mem_digest: u64,
}

impl ArchState {
    /// Captures the state of a (halted) golden interpreter.
    pub fn of_interpreter(vm: &Interpreter) -> ArchState {
        ArchState {
            pc: vm.pc(),
            regs: vm.registers(),
            mem_digest: vm.mem_digest(),
        }
    }

    /// Captures the state of a (finished) machine.
    pub fn of_machine(m: &Machine) -> ArchState {
        ArchState {
            pc: m.pc(),
            regs: m.registers(),
            mem_digest: m.mem_digest(),
        }
    }
}

/// How the golden and machine states disagree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Divergence {
    /// Registers that differ: `(reg, golden, machine)`.
    pub regs: Vec<(Reg, u32, u32)>,
    /// `(golden, machine)` program counters, when they differ.
    pub pc: Option<(u32, u32)>,
    /// `(golden, machine)` memory digests, when they differ.
    pub mem_digest: Option<(u64, u64)>,
    /// Non-state mismatch (e.g. one side faulted), when applicable.
    pub note: Option<String>,
}

impl Divergence {
    /// Compares two states, returning `None` when they agree.
    pub fn between(golden: &ArchState, machine: &ArchState) -> Option<Divergence> {
        let mut d = Divergence::default();
        for r in Reg::ALL {
            let (g, m) = (golden.regs[r.index()], machine.regs[r.index()]);
            if g != m {
                d.regs.push((r, g, m));
            }
        }
        if golden.pc != machine.pc {
            d.pc = Some((golden.pc, machine.pc));
        }
        if golden.mem_digest != machine.mem_digest {
            d.mem_digest = Some((golden.mem_digest, machine.mem_digest));
        }
        if d == Divergence::default() {
            None
        } else {
            Some(d)
        }
    }

    /// A divergence consisting only of an explanatory note.
    pub fn note(msg: impl Into<String>) -> Divergence {
        Divergence {
            note: Some(msg.into()),
            ..Divergence::default()
        }
    }
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut std::fmt::Formatter<'_>| -> std::fmt::Result {
            if !first {
                write!(f, "; ")?;
            }
            first = false;
            Ok(())
        };
        for (r, g, m) in &self.regs {
            sep(f)?;
            write!(f, "{}: golden {g:#x} != machine {m:#x}", r.name())?;
        }
        if let Some((g, m)) = self.pc {
            sep(f)?;
            write!(f, "pc: golden {g:#x} != machine {m:#x}")?;
        }
        if let Some((g, m)) = self.mem_digest {
            sep(f)?;
            write!(f, "mem digest: golden {g:#018x} != machine {m:#018x}")?;
        }
        if let Some(note) = &self.note {
            sep(f)?;
            f.write_str(note)?;
        }
        Ok(())
    }
}

/// Result of one differential check.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckOutcome {
    /// Full architectural agreement (and no invariant violations).
    Match,
    /// The two models disagree, or an invariant was violated.
    Diverged(Divergence),
    /// The machine could not finish (e.g. the power trace can never
    /// recharge the capacitor): no verdict either way.
    Inconclusive(String),
}

impl CheckOutcome {
    /// `true` for [`CheckOutcome::Match`].
    pub fn is_match(&self) -> bool {
        matches!(self, CheckOutcome::Match)
    }

    /// `true` for [`CheckOutcome::Diverged`].
    pub fn is_divergence(&self) -> bool {
        matches!(self, CheckOutcome::Diverged(_))
    }
}

/// Runs `program` on the golden interpreter with the machine's memory
/// size, returning the final state (or the golden-side fault).
pub fn golden_state(program: &Program, mem_bytes: usize) -> Result<ArchState, ExecError> {
    let mut vm = Interpreter::with_mem_size(program, mem_bytes);
    vm.run(GOLDEN_MAX_STEPS)?;
    Ok(ArchState::of_interpreter(&vm))
}

/// Runs one workload program on the machine and compares against a
/// precomputed golden state.
///
/// `fault` installs a deliberate consistency bug (verification of the
/// verifier); `check_invariants` additionally attaches an
/// [`InvariantSink`] and folds any violation into the outcome.
pub fn check_program(
    program: &Program,
    golden: &Result<ArchState, ExecError>,
    cfg: &SimConfig,
    trace: &PowerTrace,
    fault: Option<FaultPlan>,
    check_invariants: bool,
) -> CheckOutcome {
    let mut m = Machine::with_trace(cfg.clone(), program, trace.clone());
    if let Some(plan) = fault {
        m.set_fault_plan(plan);
    }
    let sink = if check_invariants {
        let s = InvariantSink::for_config(cfg);
        m.set_trace_sink(Box::new(s.clone()));
        Some(s)
    } else {
        None
    };
    let run = m.run();
    let machine = ArchState::of_machine(&m);
    let outcome = judge(golden, &run, &machine);
    if !outcome.is_match() {
        return outcome;
    }
    if let (Some(sink), Ok(result)) = (sink, &run) {
        let violations = sink.finish(Some(result));
        if !violations.is_empty() {
            return CheckOutcome::Diverged(Divergence::note(format!(
                "invariant violations: {}",
                violations.join(" | ")
            )));
        }
    }
    CheckOutcome::Match
}

/// The differential verdict table: compares a finished machine run (its
/// outcome plus final architectural state) against the golden state.
///
/// This is the state-only core of [`check_program`], shared with callers
/// that drive the machine themselves — e.g. the checkpointed shrinker
/// ([`crate::checkpoint`]), which runs in snapshot/resume legs. Invariant
/// violations are *not* judged here; they need a sink attached for the
/// whole run.
pub fn judge(
    golden: &Result<ArchState, ExecError>,
    run: &Result<ehs_sim::SimResult, SimError>,
    machine: &ArchState,
) -> CheckOutcome {
    match (golden, run) {
        (Ok(g), Ok(_)) => match Divergence::between(g, machine) {
            Some(d) => CheckOutcome::Diverged(d),
            None => CheckOutcome::Match,
        },
        (Ok(_), Err(SimError::CycleLimit { max_cycles })) => CheckOutcome::Inconclusive(format!(
            "machine hit the {max_cycles}-cycle limit (trace cannot sustain the run)"
        )),
        (Ok(_), Err(SimError::Exec(e))) => CheckOutcome::Diverged(Divergence::note(format!(
            "machine faulted ({e}) where the golden model halted"
        ))),
        (Err(ge), Ok(_)) => CheckOutcome::Diverged(Divergence::note(format!(
            "golden model faulted ({ge}) where the machine halted"
        ))),
        (Err(ge), Err(SimError::Exec(me))) => {
            if ge == me {
                CheckOutcome::Match
            } else {
                CheckOutcome::Diverged(Divergence::note(format!(
                    "fault mismatch: golden {ge} vs machine {me}"
                )))
            }
        }
        (Err(_), Err(SimError::CycleLimit { max_cycles })) => CheckOutcome::Inconclusive(format!(
            "machine hit the {max_cycles}-cycle limit before reaching the golden fault"
        )),
    }
}

/// Convenience wrapper: golden run + machine run + comparison for a
/// suite workload.
pub fn check_workload(
    w: &Workload,
    cfg: &SimConfig,
    trace: &PowerTrace,
    fault: Option<FaultPlan>,
    check_invariants: bool,
) -> CheckOutcome {
    let program = w.program();
    let golden = golden_state(&program, cfg.nvm.size_bytes as usize);
    check_program(&program, &golden, cfg, trace, fault, check_invariants)
}

/// The controller configurations the matrix sweeps — the paper's
/// baseline, every IPEX placement, and one of each alternative
/// throttling policy (on both caches, their hardest placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigId {
    /// Conventional prefetching on both caches.
    Baseline,
    /// IPEX on the instruction prefetcher only.
    IpexI,
    /// IPEX on the data prefetcher only.
    IpexD,
    /// IPEX on both prefetchers (the headline configuration).
    IpexBoth,
    /// Predictive (outage-interval learning) policy on both prefetchers.
    Predictive,
    /// Hysteresis/EWMA policy on both prefetchers.
    Hysteresis,
    /// Static degree-1 policy on both prefetchers.
    StaticDeg,
}

impl ConfigId {
    /// All seven configurations, in matrix order.
    pub const ALL: [ConfigId; 7] = [
        ConfigId::Baseline,
        ConfigId::IpexI,
        ConfigId::IpexD,
        ConfigId::IpexBoth,
        ConfigId::Predictive,
        ConfigId::Hysteresis,
        ConfigId::StaticDeg,
    ];

    /// Stable name, used in reports and corpus files.
    pub fn name(self) -> &'static str {
        match self {
            ConfigId::Baseline => "baseline",
            ConfigId::IpexI => "ipex_i",
            ConfigId::IpexD => "ipex_d",
            ConfigId::IpexBoth => "ipex_both",
            ConfigId::Predictive => "predictive",
            ConfigId::Hysteresis => "hysteresis",
            ConfigId::StaticDeg => "static_deg",
        }
    }

    /// Parses a [`ConfigId::name`].
    pub fn from_name(s: &str) -> Option<ConfigId> {
        ConfigId::ALL.into_iter().find(|c| c.name() == s)
    }

    /// Builds the corresponding simulator configuration.
    pub fn build(self) -> SimConfig {
        match self {
            ConfigId::Baseline => SimConfig::builder().build(),
            // There is no inst-only builder shorthand; construct it
            // from the default.
            ConfigId::IpexI => SimConfig {
                inst_mode: ehs_sim::PrefetchMode::Ipex(IpexConfig::paper_default()),
                ..SimConfig::builder().build()
            },
            ConfigId::IpexD => SimConfig::builder().ipex(Ipex::Data).build(),
            ConfigId::IpexBoth => SimConfig::builder().ipex(Ipex::Both).build(),
            ConfigId::Predictive => SimConfig::builder()
                .throttle_policy(
                    Ipex::Both,
                    PolicyConfig::Predictive(PredictiveConfig::paper_default()),
                )
                .build(),
            ConfigId::Hysteresis => SimConfig::builder()
                .throttle_policy(
                    Ipex::Both,
                    PolicyConfig::Hysteresis(HysteresisConfig::paper_default()),
                )
                .build(),
            ConfigId::StaticDeg => SimConfig::builder()
                .throttle_policy(
                    Ipex::Both,
                    PolicyConfig::StaticDegree(StaticDegreeConfig::conservative()),
                )
                .build(),
        }
    }
}

/// One cell of the verification matrix.
#[derive(Debug, Clone)]
pub struct MatrixEntry {
    /// Workload name.
    pub workload: &'static str,
    /// Controller configuration.
    pub config: ConfigId,
    /// Power-trace kind driving the run.
    pub kind: TraceKind,
    /// Differential verdict for this cell.
    pub outcome: CheckOutcome,
}

/// The full matrix sweep result.
#[derive(Debug, Clone, Default)]
pub struct MatrixReport {
    /// One entry per (workload, config, trace-kind) cell.
    pub entries: Vec<MatrixEntry>,
}

impl MatrixReport {
    /// `true` when every cell matched (inconclusive cells fail too: the
    /// matrix traces are chosen to be survivable).
    pub fn all_match(&self) -> bool {
        self.entries.iter().all(|e| e.outcome.is_match())
    }

    /// The cells that did not match.
    pub fn failures(&self) -> Vec<&MatrixEntry> {
        self.entries
            .iter()
            .filter(|e| !e.outcome.is_match())
            .collect()
    }
}

/// Sweeps the full 20-workload × 7-configuration × 4-trace-kind grid in
/// parallel (560 machine runs; golden states are computed once per
/// workload). `seed`/`samples` parameterize the synthesized traces.
pub fn run_matrix(seed: u64, samples: usize, check_invariants: bool) -> MatrixReport {
    let suite = &ehs_workloads::SUITE;
    // Golden pass: one functional run per workload, in parallel.
    let mem_bytes = SimConfig::default().nvm.size_bytes as usize;
    let golden: Vec<(Program, Result<ArchState, ExecError>)> = run_parallel(suite, |w| {
        let program = w.program();
        let state = golden_state(&program, mem_bytes);
        (program, state)
    });
    // Machine pass: every (workload, config, kind) cell.
    let tasks: Vec<(usize, ConfigId, TraceKind)> = (0..suite.len())
        .flat_map(|wi| {
            ConfigId::ALL
                .into_iter()
                .flat_map(move |c| TraceKind::ALL.into_iter().map(move |k| (wi, c, k)))
        })
        .collect();
    let entries = run_parallel(&tasks, |&(wi, config, kind)| {
        let (program, gold) = &golden[wi];
        let trace = kind.synthesize(seed, samples);
        let outcome = check_program(
            program,
            gold,
            &config.build(),
            &trace,
            None,
            check_invariants,
        );
        MatrixEntry {
            workload: suite[wi].name(),
            config,
            kind,
            outcome,
        }
    });
    MatrixReport { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_ids_round_trip_names() {
        for c in ConfigId::ALL {
            assert_eq!(ConfigId::from_name(c.name()), Some(c));
        }
        assert_eq!(ConfigId::from_name("nope"), None);
    }

    #[test]
    fn ipex_i_enables_inst_side_only() {
        let cfg = ConfigId::IpexI.build();
        assert!(matches!(cfg.inst_mode, ehs_sim::PrefetchMode::Ipex(_)));
        assert!(matches!(cfg.data_mode, ehs_sim::PrefetchMode::Conventional));
    }

    #[test]
    fn oracle_matches_on_a_small_workload() {
        let w = ehs_workloads::by_name("strings").unwrap();
        let trace = TraceKind::RfHome.synthesize(5, 50_000);
        let out = check_workload(w, &SimConfig::default(), &trace, None, true);
        assert!(out.is_match(), "{out:?}");
    }

    #[test]
    fn oracle_catches_a_skipped_restore_register() {
        let w = ehs_workloads::by_name("strings").unwrap();
        // Weak supply: plenty of outages, so the fault has many chances
        // to kill a live register.
        let trace = PowerTrace::constant_mw(5.0, 16);
        let fault = FaultPlan {
            skip_restore_reg: Some(Reg::Sp),
        };
        let out = check_workload(w, &SimConfig::default(), &trace, Some(fault), false);
        assert!(out.is_divergence(), "{out:?}");
    }
}
