//! The golden-state snapshot corpus.
//!
//! Fifteen committed machine snapshots — five suite workloads × three
//! controller configurations, each run under the same fixed weak supply
//! to the same fixed cycle count — pin the simulator's *complete*
//! mid-run state bit-for-bit: registers, memory delta, cache and
//! prefetch-buffer contents, prefetcher and throttle state, capacitor
//! energy, statistics and event counts (every field of
//! [`ehs_sim::Snapshot`]). Any change to instruction timing, energy
//! accounting, replacement policy or outage handling shifts at least one
//! field and fails the drift test (`tests/snapshot_corpus.rs`) with a
//! field-level diff, which makes *intentional* behaviour changes
//! explicit too: regenerate with
//! `cargo run --release -p ehs-bench --bin regen_snapshots` and commit
//! the diff.
//!
//! The supply is weak enough (3 mW) that every entry has lived through
//! outages by the capture cycle, so backup/restore and recharge state is
//! covered, not just steady-state execution.

use std::path::{Path, PathBuf};

use ehs_energy::PowerTrace;
use ehs_sim::{Machine, Snapshot};

use crate::oracle::ConfigId;

/// Cycle count every corpus snapshot is captured at.
pub const SNAP_CYCLE: u64 = 400_000;

/// The fixed supply: weak enough to force outages, strong enough that
/// every workload keeps making progress.
pub const TRACE_MW: f64 = 3.0;

/// Samples in the (cyclically repeated) supply trace.
pub const TRACE_SAMPLES: usize = 16;

/// The five suite workloads in the corpus — small, fast-starting
/// programs with distinct access patterns (string scans, GSM decode,
/// quicksort, scalar math, adaptive-predictor codec).
pub const WORKLOADS: [&str; 5] = ["strings", "gsmd", "qsort", "basicm", "g721e"];

/// The three controller configurations each workload is captured under:
/// unthrottled, the headline IPEX placement, and the predictive policy
/// (the non-IPEX controller with the most internal state).
pub const CONFIGS: [ConfigId; 3] = [ConfigId::Baseline, ConfigId::IpexBoth, ConfigId::Predictive];

/// One corpus entry: a (workload, configuration) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapSpec {
    /// Suite workload name.
    pub workload: &'static str,
    /// Controller configuration.
    pub config: ConfigId,
}

impl SnapSpec {
    /// The entry's committed file name, e.g. `strings-ipex_both.json`.
    pub fn file_name(&self) -> String {
        format!("{}-{}.json", self.workload, self.config.name())
    }
}

/// All fifteen corpus entries, in committed order.
pub fn specs() -> Vec<SnapSpec> {
    WORKLOADS
        .iter()
        .flat_map(|&workload| CONFIGS.map(|config| SnapSpec { workload, config }))
        .collect()
}

/// The committed corpus directory, `tests/corpus/snapshots/` at the
/// repository root.
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels below the repo root")
        .join("tests/corpus/snapshots")
}

/// Deterministically regenerates one corpus snapshot: runs the entry's
/// machine from cold to [`SNAP_CYCLE`] and captures its state.
///
/// # Panics
///
/// Panics if the spec names an unknown workload or the run faults
/// before the capture cycle.
pub fn generate(spec: &SnapSpec) -> Snapshot {
    let w = ehs_workloads::by_name(spec.workload)
        .unwrap_or_else(|| panic!("unknown corpus workload `{}`", spec.workload));
    let program = w.program();
    let trace = PowerTrace::constant_mw(TRACE_MW, TRACE_SAMPLES);
    let mut machine = Machine::with_trace(spec.config.build(), &program, trace);
    machine
        .run_until(SNAP_CYCLE)
        .unwrap_or_else(|e| panic!("corpus entry {} failed: {e}", spec.file_name()));
    machine.snapshot(&program)
}

/// The exact committed file contents for one entry (pretty JSON plus a
/// trailing newline).
pub fn render(snap: &Snapshot) -> String {
    snap.to_json() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_fifteen_distinct_entries() {
        let specs = specs();
        assert_eq!(specs.len(), 15);
        let names: std::collections::BTreeSet<String> =
            specs.iter().map(|s| s.file_name()).collect();
        assert_eq!(names.len(), 15, "file names collide");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SnapSpec {
            workload: "strings",
            config: ConfigId::IpexBoth,
        };
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.digest(), b.digest());
        // The weak supply forced real outage state into the snapshot.
        assert!(a.stats.power_cycles > 1, "no outage before the capture");
    }
}
