//! Adversarial outage fuzzing.
//!
//! Each iteration draws a workload, a controller configuration and a
//! synthesized *pathological* power trace from a seeded PRNG, runs the
//! machine with the invariant sink attached, and cross-checks the final
//! architectural state against the golden interpreter. The strategies
//! target the failure windows an adversary would: outages landing in
//! backup/restore windows, single-sample brownouts, and supplies
//! hovering exactly at the IPEX voltage thresholds (~13–14.5 mW puts the
//! capacitor right at the 3.3 V / 3.25 V ladder under the paper's
//! default draw).
//!
//! Every trace ends with a strong recovery tail, so the (cyclic) trace
//! always recharges the capacitor eventually and runs terminate; a run
//! that still exceeds the per-iteration cycle budget is counted
//! *inconclusive*, not failing.

use ehs_sim::FaultPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::oracle::{check_program, golden_state, ArchState, CheckOutcome, ConfigId, Divergence};
use crate::run_parallel;

/// Fuzzer parameters.
#[derive(Debug, Clone, Copy)]
pub struct FuzzOptions {
    /// PRNG seed; every iteration derives its own deterministic stream,
    /// so reports are reproducible regardless of thread interleaving.
    pub seed: u64,
    /// Number of iterations (machine runs).
    pub iters: u64,
    /// Optional injected consistency bug (verifying the verifier).
    pub fault: Option<FaultPlan>,
    /// Attach the invariant sink to every run.
    pub check_invariants: bool,
    /// Per-run cycle budget; exceeding it is inconclusive.
    pub max_cycles: u64,
}

impl FuzzOptions {
    /// Defaults for a seed: invariants on, no fault, 2 G-cycle budget.
    pub fn new(seed: u64, iters: u64) -> FuzzOptions {
        FuzzOptions {
            seed,
            iters,
            fault: None,
            check_invariants: true,
            max_cycles: 2_000_000_000,
        }
    }
}

/// The reproducer for one fuzz iteration.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Iteration index (with the seed, fully identifies the case).
    pub iter: u64,
    /// Workload name.
    pub workload: &'static str,
    /// Controller configuration.
    pub config: ConfigId,
    /// Trace-synthesis strategy that produced the samples.
    pub strategy: &'static str,
    /// The power trace, mW per 10 µs sample.
    pub samples_mw: Vec<f64>,
}

/// A fuzz iteration whose run diverged from the oracle.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The reproducer.
    pub case: FuzzCase,
    /// What disagreed.
    pub divergence: Divergence,
}

/// Summary of a fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Iterations run.
    pub iters: u64,
    /// Runs that matched the oracle (and held every invariant).
    pub matched: u64,
    /// Runs that could not finish within the cycle budget.
    pub inconclusive: u64,
    /// Divergent runs, with reproducers.
    pub failures: Vec<FuzzFailure>,
}

/// Strong samples appended to every synthesized trace so the cyclic
/// supply always recharges the capacitor and runs terminate.
const RECOVERY_TAIL: usize = 40;
const RECOVERY_MW: f64 = 35.0;

/// Synthesizes one adversarial power trace; returns the strategy name
/// and the samples (mW per 10 µs).
pub fn adversarial_trace(rng: &mut StdRng) -> (&'static str, Vec<f64>) {
    let strategy = rng.gen_range(0u32..5);
    let len = rng.gen_range(60usize..240);
    let mut samples = Vec::with_capacity(len + RECOVERY_TAIL);
    match strategy {
        // Single-sample brownouts punched into a healthy supply.
        0 => {
            let base = rng.gen_range(18.0..45.0);
            for _ in 0..len {
                if rng.gen_bool(0.08) {
                    samples.push(rng.gen_range(0.0..2.0));
                } else {
                    samples.push(base + rng.gen_range(-3.0..3.0));
                }
            }
        }
        // Hovering at the IPEX thresholds: harvest ≈ draw keeps the
        // capacitor oscillating across the 3.3 V / 3.25 V ladder.
        1 => {
            let base = rng.gen_range(12.5..15.0);
            for _ in 0..len {
                let dip = if rng.gen_bool(0.03) {
                    -rng.gen_range(5.0..12.0)
                } else {
                    0.0
                };
                samples.push((base + rng.gen_range(-0.8..0.8) + dip).max(0.0));
            }
        }
        // Outage storm: a weak sawtooth with a random strong period.
        2 => {
            let period = rng.gen_range(2usize..9);
            let strong = rng.gen_range(8.0..20.0);
            for i in 0..len {
                if i % period == 0 {
                    samples.push(strong);
                } else {
                    samples.push(rng.gen_range(0.0..1.0));
                }
            }
        }
        // Backup-window attack: dips timed to land while the capacitor
        // is between V_backup and V_on — right as checkpoints/restores
        // are in progress.
        3 => {
            let period = rng.gen_range(5usize..40);
            let width = rng.gen_range(1usize..4);
            let base = rng.gen_range(15.0..30.0);
            for i in 0..len {
                if i % period < width {
                    samples.push(rng.gen_range(0.0..3.0));
                } else {
                    samples.push(base);
                }
            }
        }
        // Random walk clamped to [0, 40] mW.
        _ => {
            let mut level = rng.gen_range(5.0..30.0);
            for _ in 0..len {
                level = (level + rng.gen_range(-3.0..3.0)).clamp(0.0, 40.0);
                samples.push(level);
            }
        }
    }
    samples.extend(std::iter::repeat_n(RECOVERY_MW, RECOVERY_TAIL));
    let name = match strategy {
        0 => "brownout",
        1 => "threshold-hover",
        2 => "storm",
        3 => "backup-window",
        _ => "random-walk",
    };
    (name, samples)
}

/// Derives the deterministic RNG for iteration `iter` of `seed`.
fn iter_rng(seed: u64, iter: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ iter.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
}

/// Runs a fuzzing campaign; iterations execute in parallel but the
/// report is deterministic in `opts.seed`.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    let suite = &ehs_workloads::SUITE;
    let mem_bytes = ConfigId::Baseline.build().nvm.size_bytes as usize;
    // One golden (functional) run per workload, shared by every
    // iteration.
    let golden: Vec<(ehs_isa::Program, Result<ArchState, ehs_isa::ExecError>)> =
        run_parallel(suite, |w| {
            let p = w.program();
            let g = golden_state(&p, mem_bytes);
            (p, g)
        });
    let iters: Vec<u64> = (0..opts.iters).collect();
    let outcomes = run_parallel(&iters, |&iter| {
        let mut rng = iter_rng(opts.seed, iter);
        let wi = rng.gen_range(0usize..suite.len());
        let config = ConfigId::ALL[rng.gen_range(0usize..ConfigId::ALL.len())];
        let (strategy, samples_mw) = adversarial_trace(&mut rng);
        let mut cfg = config.build();
        cfg.max_cycles = cfg.max_cycles.min(opts.max_cycles);
        let trace = ehs_energy::PowerTrace::from_samples_mw(samples_mw.clone());
        let (program, gold) = &golden[wi];
        let outcome = check_program(
            program,
            gold,
            &cfg,
            &trace,
            opts.fault,
            opts.check_invariants,
        );
        let case = FuzzCase {
            iter,
            workload: suite[wi].name(),
            config,
            strategy,
            samples_mw,
        };
        (case, outcome)
    });
    let mut report = FuzzReport {
        iters: opts.iters,
        ..FuzzReport::default()
    };
    for (case, outcome) in outcomes {
        match outcome {
            CheckOutcome::Match => report.matched += 1,
            CheckOutcome::Inconclusive(_) => report.inconclusive += 1,
            CheckOutcome::Diverged(divergence) => {
                report.failures.push(FuzzFailure { case, divergence })
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed_and_end_strong() {
        let (na, a) = adversarial_trace(&mut iter_rng(7, 3));
        let (nb, b) = adversarial_trace(&mut iter_rng(7, 3));
        assert_eq!(na, nb);
        assert_eq!(a, b);
        assert!(a.len() >= RECOVERY_TAIL);
        assert!(a[a.len() - RECOVERY_TAIL..]
            .iter()
            .all(|&s| s == RECOVERY_MW));
        let (_, c) = adversarial_trace(&mut iter_rng(7, 4));
        assert_ne!(a, c, "different iterations draw different traces");
    }

    #[test]
    fn samples_are_valid_power_levels() {
        for iter in 0..20 {
            let (_, s) = adversarial_trace(&mut iter_rng(11, iter));
            assert!(s.iter().all(|&x| (0.0..=50.0).contains(&x)));
        }
    }
}
