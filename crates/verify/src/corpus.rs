//! The regression corpus: fuzz-found traces committed as JSON.
//!
//! Every interesting trace the fuzzer surfaces (shrunk reproducers of
//! fixed bugs, or near-miss adversarial traces worth pinning) is saved
//! as a [`CorpusCase`] under `tests/corpus/*.json` and replayed by a
//! tier-1 test, so the differential property is re-proven on each of
//! them forever.

use serde::{Deserialize, Serialize};

use ehs_sim::FaultPlan;

use crate::oracle::{check_workload, CheckOutcome, ConfigId};

/// One committed regression case: a workload, a configuration and the
/// power trace that once made the pair interesting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusCase {
    /// Unique case name (conventionally the file stem).
    pub name: String,
    /// Why this trace is in the corpus.
    pub description: String,
    /// Suite workload name (see `ehs_workloads::by_name`).
    pub workload: String,
    /// Configuration name (see [`ConfigId::from_name`]).
    pub config: String,
    /// The power trace, mW per 10 µs sample.
    pub samples_mw: Vec<f64>,
}

impl CorpusCase {
    /// Serializes to pretty JSON (the committed on-disk format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("corpus case serializes")
    }

    /// Parses the on-disk format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first JSON or schema problem.
    pub fn from_json(s: &str) -> Result<CorpusCase, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Loads one case from `path`.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O or parse failure.
    pub fn load(path: &std::path::Path) -> Result<CorpusCase, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        CorpusCase::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Loads every `*.json` case in `dir`, sorted by file name.
    ///
    /// # Errors
    ///
    /// Returns a description of the first failure; an empty or missing
    /// directory is an error too (a silently empty corpus checks
    /// nothing).
    pub fn load_dir(dir: &std::path::Path) -> Result<Vec<CorpusCase>, String> {
        let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let mut paths: Vec<std::path::PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(format!("{}: no corpus cases found", dir.display()));
        }
        paths.iter().map(|p| CorpusCase::load(p)).collect()
    }

    /// Replays the case through the differential oracle (invariant sink
    /// attached), optionally with an injected fault.
    ///
    /// # Panics
    ///
    /// Panics if the case names an unknown workload or configuration.
    pub fn replay(&self, fault: Option<FaultPlan>) -> CheckOutcome {
        let w = ehs_workloads::by_name(&self.workload).unwrap_or_else(|| {
            panic!(
                "corpus case {}: unknown workload {}",
                self.name, self.workload
            )
        });
        let config = ConfigId::from_name(&self.config)
            .unwrap_or_else(|| panic!("corpus case {}: unknown config {}", self.name, self.config));
        let trace = ehs_energy::PowerTrace::from_samples_mw(self.samples_mw.clone());
        check_workload(w, &config.build(), &trace, fault, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_case() -> CorpusCase {
        CorpusCase {
            name: "example".into(),
            description: "round-trip fixture".into(),
            workload: "strings".into(),
            config: "baseline".into(),
            samples_mw: vec![5.0, 0.25, 35.0],
        }
    }

    #[test]
    fn json_round_trip() {
        let case = sample_case();
        let back = CorpusCase::from_json(&case.to_json()).unwrap();
        assert_eq!(back, case);
    }

    #[test]
    fn replay_of_a_healthy_case_matches() {
        let mut case = sample_case();
        // Strong enough to finish quickly, weak enough to outage.
        case.samples_mw = vec![6.0, 6.0, 0.2, 30.0];
        assert!(case.replay(None).is_match());
    }
}
