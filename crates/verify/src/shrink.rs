//! Delta-debugging (ddmin) minimization of failing power traces.
//!
//! Given a sample vector that reproduces a failure (as judged by a
//! caller-supplied predicate — typically "the oracle still reports a
//! divergence"), [`shrink_trace`] removes contiguous chunks at
//! progressively finer granularity until no single removal reproduces,
//! returning the shortest vector found within the run budget.

/// Minimizes `samples` while `reproduces` stays true.
///
/// `budget` bounds the number of predicate evaluations (each is a full
/// machine run, so callers keep this small in debug builds). The input
/// itself is assumed to reproduce; the result always does, is never
/// empty, and is no longer than the input.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn shrink_trace(
    samples: &[f64],
    budget: usize,
    mut reproduces: impl FnMut(&[f64]) -> bool,
) -> Vec<f64> {
    assert!(!samples.is_empty(), "cannot shrink an empty trace");
    let mut current = samples.to_vec();
    let mut runs = 0usize;
    let mut try_candidate = |cand: &[f64], runs: &mut usize| -> bool {
        if cand.is_empty() || *runs >= budget {
            return false;
        }
        *runs += 1;
        reproduces(cand)
    };

    // Cheap first pass: binary-search the shortest reproducing prefix
    // (outage bugs usually trigger early; the tail is dead weight).
    let mut lo = 1usize;
    let mut hi = current.len();
    while lo < hi && runs < budget {
        let mid = lo + (hi - lo) / 2;
        if try_candidate(&current[..mid], &mut runs) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    if hi < current.len() && try_candidate(&current[..hi], &mut runs) {
        current.truncate(hi);
    }

    // Classic ddmin over contiguous chunks.
    let mut n = 2usize;
    while current.len() > 1 && runs < budget {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() && runs < budget {
            let end = (start + chunk).min(current.len());
            let candidate: Vec<f64> = current[..start]
                .iter()
                .chain(&current[end..])
                .copied()
                .collect();
            if try_candidate(&candidate, &mut runs) {
                current = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                // Restart scanning the (shorter) vector.
                start = 0;
            } else {
                start = end;
            }
        }
        if !reduced {
            if chunk == 1 {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_single_guilty_sample() {
        // Failure reproduces whenever the trace still contains the 7.0.
        let samples: Vec<f64> = (0..64).map(|i| if i == 37 { 7.0 } else { 1.0 }).collect();
        let out = shrink_trace(&samples, 500, |s| s.contains(&7.0));
        assert_eq!(out, vec![7.0]);
    }

    #[test]
    fn respects_the_run_budget() {
        let samples = vec![1.0; 256];
        let mut calls = 0usize;
        let out = shrink_trace(&samples, 10, |_| {
            calls += 1;
            true
        });
        assert!(calls <= 10);
        assert!(!out.is_empty());
    }

    #[test]
    fn keeps_a_pair_that_must_stay_together() {
        // Reproduces only while both markers survive.
        let mut samples = vec![1.0; 100];
        samples[10] = 5.0;
        samples[90] = 9.0;
        let out = shrink_trace(&samples, 800, |s| s.contains(&5.0) && s.contains(&9.0));
        assert!(out.contains(&5.0) && out.contains(&9.0));
        assert!(out.len() <= 4, "near-minimal: {out:?}");
    }
}
