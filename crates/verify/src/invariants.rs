//! Invariant checking over the simulator's event stream.
//!
//! [`InvariantSink`] plugs into [`Machine::set_trace_sink`]
//! (ehs-sim's [`TraceSink`] API) and audits events as they are emitted:
//!
//! * **Prefetch fate** — every `PrefetchIssued` block enters a model of
//!   the prefetch buffer and must leave it exactly once, via
//!   `BufferHit`, `EvictedUnused` or a power-loss `LostUnused` wipe
//!   (entries still resident at the end of the run are reconciled
//!   against the buffer statistics). Duplicate in-flight issues are
//!   violations: the machine suppresses them.
//! * **Degree cap** — while a throttled path (IPEX or an alternative
//!   policy) is in energy-saving mode (current degree below its initial
//!   degree), the number of prefetches issued per cycle on that path
//!   must not exceed the throttled degree cap.
//! * **Backup/restore pairing** — restores never outnumber outages, an
//!   outage is followed by at most one restore, and (without
//!   `ideal_backup`) every outage performs exactly one backup.
//! * **Energy conservation** — per-power-cycle summary buckets are
//!   finite and non-negative, cycle stamps are monotone, and the summed
//!   summaries reconcile exactly with the run's aggregate
//!   [`SimResult`] counters.
//!
//! The sink is cloneable ([`Arc`]`<`[`Mutex`]`>` inside, the same
//! pattern as ehs-sim's `CountingSink`): hand one clone to the machine
//! and call [`InvariantSink::finish`] on the other after the run.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use ehs_sim::{PathId, PrefetchMode, SimConfig, SimEvent, SimResult, TraceSink};

/// Cap on recorded violation messages (a broken run can emit millions).
const MAX_VIOLATIONS: usize = 32;

#[derive(Debug, Default)]
struct PathModel {
    /// Blocks issued and not yet resolved (the modelled buffer).
    in_flight: BTreeSet<u32>,
    /// `Rcpd` as last reported by a `ThresholdCross` (IPEX paths only).
    cur_degree: Option<u32>,
    /// Prefetches issued at `issue_cycle` (for the per-cycle degree cap).
    issue_cycle: u64,
    issued_this_cycle: u64,
}

#[derive(Debug)]
struct Inner {
    buf_entries: usize,
    ideal_backup: bool,
    /// Initial degree per path, `None` when the path is unthrottled.
    initial_degree: [Option<u32>; 2],
    paths: [PathModel; 2],
    last_cycle: u64,
    outages: u64,
    backups: u64,
    restores: u64,
    summary_count: u64,
    sum_on_cycles: u64,
    sum_off_cycles: u64,
    sum_cache_nj: f64,
    sum_memory_nj: f64,
    sum_compute_nj: f64,
    sum_backup_restore_nj: f64,
    violations: Vec<String>,
    suppressed: u64,
}

impl Inner {
    fn violate(&mut self, msg: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(msg);
        } else {
            self.suppressed += 1;
        }
    }

    fn path(&mut self, p: PathId) -> &mut PathModel {
        &mut self.paths[(p == PathId::Data) as usize]
    }

    fn record(&mut self, ev: &SimEvent) {
        let cycle = ev.cycle();
        if cycle < self.last_cycle {
            self.violate(format!(
                "time ran backwards: {} at cycle {cycle} after cycle {}",
                ev.kind(),
                self.last_cycle
            ));
        }
        self.last_cycle = cycle;
        match *ev {
            SimEvent::OutageBegin { .. } => self.outages += 1,
            SimEvent::BackupDone { .. } => {
                self.backups += 1;
                if self.ideal_backup {
                    self.violate(format!(
                        "backup performed at cycle {cycle} under ideal_backup"
                    ));
                }
            }
            SimEvent::Restore { .. } => {
                self.restores += 1;
                if self.restores > self.outages {
                    self.violate(format!(
                        "restore #{} at cycle {cycle} without a matching outage",
                        self.restores
                    ));
                }
                let leftovers: Vec<(usize, usize)> = self
                    .paths
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| !p.in_flight.is_empty())
                    .map(|(i, p)| (i, p.in_flight.len()))
                    .collect();
                for (i, n) in leftovers {
                    self.violate(format!(
                        "path {i}: {n} prefetches survived the outage un-wiped at restore \
                         (cycle {cycle})"
                    ));
                }
                // The controller reboots in high-performance mode at
                // `Ripd`; crossings below that re-announce themselves.
                for (p, init) in self.paths.iter_mut().zip(self.initial_degree) {
                    p.cur_degree = init;
                }
            }
            SimEvent::PrefetchIssued { path, block, .. } => {
                let init = self.initial_degree[(path == PathId::Data) as usize];
                let buf_entries = self.buf_entries;
                let m = self.path(path);
                if m.issue_cycle == cycle {
                    m.issued_this_cycle += 1;
                } else {
                    m.issue_cycle = cycle;
                    m.issued_this_cycle = 1;
                }
                let issued = m.issued_this_cycle;
                if !m.in_flight.insert(block) {
                    self.violate(format!(
                        "{path:?}: duplicate in-flight prefetch of block {block:#x} at cycle \
                         {cycle}"
                    ));
                } else if self.path(path).in_flight.len() > buf_entries + 1 {
                    // +1: the eviction event for a full buffer trails the
                    // issue event within the same cycle.
                    let len = self.path(path).in_flight.len();
                    self.violate(format!(
                        "{path:?}: {len} prefetches in flight exceeds the {buf_entries}-entry \
                         buffer at cycle {cycle}"
                    ));
                }
                if let (Some(init), Some(cur)) = (init, self.path(path).cur_degree) {
                    if cur < init && issued > u64::from(cur) {
                        self.violate(format!(
                            "{path:?}: {issued} prefetches issued in cycle {cycle} exceeds the \
                             throttled Rcpd cap of {cur}"
                        ));
                    }
                }
            }
            SimEvent::BufferHit { path, block, .. } => {
                if !self.path(path).in_flight.remove(&block) {
                    self.violate(format!(
                        "{path:?}: buffer hit on block {block:#x} that was never issued (cycle \
                         {cycle})"
                    ));
                }
            }
            SimEvent::EvictedUnused { path, block, .. } => {
                if !self.path(path).in_flight.remove(&block) {
                    self.violate(format!(
                        "{path:?}: eviction of block {block:#x} that was never issued (cycle \
                         {cycle})"
                    ));
                }
            }
            SimEvent::LostUnused { path, count, .. } => {
                let have = self.path(path).in_flight.len() as u64;
                if count != have {
                    self.violate(format!(
                        "{path:?}: power loss wiped {count} entries but {have} were in flight \
                         (cycle {cycle})"
                    ));
                }
                self.path(path).in_flight.clear();
            }
            SimEvent::ThresholdCross {
                path, new_degree, ..
            } => {
                self.path(path).cur_degree = Some(new_degree);
            }
            SimEvent::PowerCycleSummary {
                on_cycles,
                off_cycles,
                cache_nj,
                memory_nj,
                compute_nj,
                backup_restore_nj,
                throttle_rate,
                power_cycle,
                ..
            } => {
                self.summary_count += 1;
                self.sum_on_cycles += on_cycles;
                self.sum_off_cycles += off_cycles;
                self.sum_cache_nj += cache_nj;
                self.sum_memory_nj += memory_nj;
                self.sum_compute_nj += compute_nj;
                self.sum_backup_restore_nj += backup_restore_nj;
                for (name, v) in [
                    ("cache_nj", cache_nj),
                    ("memory_nj", memory_nj),
                    ("compute_nj", compute_nj),
                    ("backup_restore_nj", backup_restore_nj),
                ] {
                    if !v.is_finite() || v < 0.0 {
                        self.violate(format!(
                            "power cycle {power_cycle}: energy bucket {name} = {v} is negative \
                             or non-finite"
                        ));
                    }
                }
                if !(0.0..=1.0).contains(&throttle_rate) {
                    self.violate(format!(
                        "power cycle {power_cycle}: throttle rate {throttle_rate} outside [0, 1]"
                    ));
                }
            }
            SimEvent::PrefetchThrottled { .. }
            | SimEvent::PrefetchReissued { .. }
            | SimEvent::LatePrefetch { .. }
            | SimEvent::CacheFill { .. }
            | SimEvent::Writeback { .. }
            | SimEvent::PolicyAdapt { .. } => {}
        }
    }

    /// End-of-run checks; `result` enables reconciliation against the
    /// aggregate counters of a *completed* run.
    fn finish(&self, result: Option<&SimResult>) -> Vec<String> {
        let mut v = self.violations.clone();
        if self.suppressed > 0 {
            v.push(format!("... and {} more violations", self.suppressed));
        }
        if self.restores > self.outages || self.outages > self.restores + 1 {
            v.push(format!(
                "{} outages vs {} restores: not paired within one",
                self.outages, self.restores
            ));
        }
        if self.ideal_backup {
            if self.backups != 0 {
                v.push(format!("{} backups under ideal_backup", self.backups));
            }
        } else if self.backups != self.outages {
            v.push(format!(
                "{} outages but {} backups: every outage must checkpoint exactly once",
                self.outages, self.backups
            ));
        }
        let Some(r) = result else { return v };
        if r.stats.power_cycles != self.restores + 1 {
            v.push(format!(
                "{} power cycles reported but {} restores observed",
                r.stats.power_cycles, self.restores
            ));
        }
        if self.summary_count != r.stats.power_cycles {
            v.push(format!(
                "{} power-cycle summaries for {} power cycles",
                self.summary_count, r.stats.power_cycles
            ));
        }
        if self.sum_on_cycles != r.stats.on_cycles {
            v.push(format!(
                "summaries account for {} on-cycles, run reports {}",
                self.sum_on_cycles, r.stats.on_cycles
            ));
        }
        if self.sum_off_cycles != r.stats.off_cycles {
            v.push(format!(
                "summaries account for {} off-cycles, run reports {}",
                self.sum_off_cycles, r.stats.off_cycles
            ));
        }
        for (name, summed, total) in [
            ("cache_nj", self.sum_cache_nj, r.energy.cache_nj),
            ("memory_nj", self.sum_memory_nj, r.energy.memory_nj),
            ("compute_nj", self.sum_compute_nj, r.energy.compute_nj),
            (
                "backup_restore_nj",
                self.sum_backup_restore_nj,
                r.energy.backup_restore_nj,
            ),
        ] {
            // The summaries are deltas of the same running totals, so
            // they reconcile up to float summation order.
            let tol = 1e-6 + 1e-9 * total.abs();
            if (summed - total).abs() > tol {
                v.push(format!(
                    "energy not conserved in {name}: per-cycle summaries sum to {summed} nJ, \
                     run total is {total} nJ"
                ));
            }
        }
        // Prefetch fate: whatever never resolved must still be resident
        // in the real buffer.
        for (model, stats, label) in [
            (&self.paths[0], &r.ibuf, "inst"),
            (&self.paths[1], &r.dbuf, "data"),
        ] {
            let resident = stats.inserted - stats.useful - stats.evicted_unused - stats.lost_unused;
            if model.in_flight.len() as u64 != resident {
                v.push(format!(
                    "{label} path: {} prefetches unresolved in the event stream but the buffer \
                     reports {resident} resident",
                    model.in_flight.len()
                ));
            }
        }
        v
    }
}

/// A [`TraceSink`] that audits simulator invariants while a run is in
/// flight. See the [module documentation](self).
#[derive(Debug, Clone)]
pub struct InvariantSink {
    inner: Arc<Mutex<Inner>>,
}

impl InvariantSink {
    /// Builds a sink primed with the configuration facts the checks
    /// depend on (buffer capacity, IPEX initial degrees, ideal backup).
    pub fn for_config(cfg: &SimConfig) -> InvariantSink {
        let ipd = |mode: &PrefetchMode| match mode {
            PrefetchMode::Ipex(ic) => Some(ic.initial_degree),
            PrefetchMode::Policy(pc) => Some(pc.initial_degree()),
            _ => None,
        };
        let initial_degree = [ipd(&cfg.inst_mode), ipd(&cfg.data_mode)];
        InvariantSink {
            inner: Arc::new(Mutex::new(Inner {
                buf_entries: cfg.prefetch_buffer_entries,
                ideal_backup: cfg.ideal_backup,
                initial_degree,
                paths: [
                    PathModel {
                        cur_degree: initial_degree[0],
                        ..PathModel::default()
                    },
                    PathModel {
                        cur_degree: initial_degree[1],
                        ..PathModel::default()
                    },
                ],
                last_cycle: 0,
                outages: 0,
                backups: 0,
                restores: 0,
                summary_count: 0,
                sum_on_cycles: 0,
                sum_off_cycles: 0,
                sum_cache_nj: 0.0,
                sum_memory_nj: 0.0,
                sum_compute_nj: 0.0,
                sum_backup_restore_nj: 0.0,
                violations: Vec::new(),
                suppressed: 0,
            })),
        }
    }

    /// Violations found so far plus end-of-run pairing checks; pass the
    /// [`SimResult`] of a completed run to also reconcile the aggregate
    /// counters. Empty means every invariant held.
    pub fn finish(&self, result: Option<&SimResult>) -> Vec<String> {
        self.inner
            .lock()
            .expect("invariant sink poisoned")
            .finish(result)
    }
}

impl TraceSink for InvariantSink {
    fn emit(&mut self, ev: &SimEvent) {
        self.inner
            .lock()
            .expect("invariant sink poisoned")
            .record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_energy::PowerTrace;
    use ehs_sim::{Ipex, Machine};

    fn run_with_sink(cfg: SimConfig, mw: f64) -> Vec<String> {
        let w = ehs_workloads::by_name("strings").unwrap();
        let mut m = Machine::with_trace(cfg.clone(), &w.program(), PowerTrace::constant_mw(mw, 8));
        let sink = InvariantSink::for_config(&cfg);
        m.set_trace_sink(Box::new(sink.clone()));
        let r = m.run().expect("completes");
        sink.finish(Some(&r))
    }

    #[test]
    fn invariants_hold_under_steady_power() {
        let v = run_with_sink(SimConfig::default(), 50.0);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn invariants_hold_across_outages() {
        use ipex::{HysteresisConfig, PolicyConfig, PredictiveConfig};
        for cfg in [
            SimConfig::default(),
            SimConfig::builder().ipex(Ipex::Both).build(),
            SimConfig::builder()
                .throttle_policy(
                    Ipex::Both,
                    PolicyConfig::Predictive(PredictiveConfig::paper_default()),
                )
                .build(),
            SimConfig::builder()
                .throttle_policy(
                    Ipex::Both,
                    PolicyConfig::Hysteresis(HysteresisConfig::paper_default()),
                )
                .build(),
        ] {
            let v = run_with_sink(cfg, 5.0);
            assert!(v.is_empty(), "{v:?}");
        }
    }

    #[test]
    fn synthetic_unmatched_restore_is_flagged() {
        let cfg = SimConfig::default();
        let mut sink = InvariantSink::for_config(&cfg);
        sink.emit(&SimEvent::Restore {
            cycle: 10,
            power_cycle: 2,
        });
        let v = sink.finish(None);
        assert!(
            v.iter().any(|m| m.contains("without a matching outage")),
            "{v:?}"
        );
    }

    #[test]
    fn synthetic_double_issue_is_flagged() {
        let cfg = SimConfig::default();
        let mut sink = InvariantSink::for_config(&cfg);
        for _ in 0..2 {
            sink.emit(&SimEvent::PrefetchIssued {
                cycle: 5,
                path: PathId::Inst,
                block: 0x40,
                done_at: 17,
            });
        }
        let v = sink.finish(None);
        assert!(v.iter().any(|m| m.contains("duplicate in-flight")), "{v:?}");
    }
}
