//! Checkpoint-accelerated trace shrinking.
//!
//! [`shrink_trace`] re-runs the machine from cycle 0 for every ddmin
//! candidate, yet most candidates share a long sample prefix with the
//! trace they were cut from, and the machine's state at cycle `c` is a
//! function of only the samples consumed so far —
//! `ceil(c / CYCLES_PER_TRACE_SAMPLE)` of them, none re-read later (the
//! cyclic wraparound in [`PowerTrace::power_mw_at`] never engages below
//! the trace's own length). [`shrink_trace_checkpointed`] exploits that:
//! while evaluating a candidate it pauses every `every_cycles` cycles and
//! takes a [`Snapshot`]; whenever a later candidate's bitwise-common
//! prefix with the last *reproducing* trace covers a snapshot's consumed
//! samples, the run resumes from that snapshot instead of starting cold.
//!
//! Snapshot resume is bit-identical (see [`ehs_sim::snapshot`]), so every
//! candidate's verdict — and therefore the shrunk trace — is exactly what
//! the plain shrinker computes; only wall-clock cost changes. Invariant
//! checking stays off here: the [`InvariantSink`](crate::InvariantSink)
//! audits whole power cycles and cannot join an event stream mid-run, so
//! this shrinker minimizes *architectural* divergences (use
//! [`shrink_trace`] for invariant-only failures).

use ehs_energy::PowerTrace;
use ehs_isa::{ExecError, Program};
use ehs_sim::{
    snapshot, FaultPlan, Machine, RunStatus, SimConfig, Snapshot, CYCLES_PER_TRACE_SAMPLE,
};

use crate::oracle::{judge, ArchState};
use crate::shrink::shrink_trace;

/// What [`shrink_trace_checkpointed`] did, beyond the shrunk trace.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointShrinkStats {
    /// Candidate evaluations (machine runs).
    pub runs: u64,
    /// Runs that resumed from a snapshot instead of starting cold.
    pub resumed: u64,
    /// Cycles *not* re-simulated thanks to snapshot reuse (the sum of
    /// the resumed snapshots' cycle counts).
    pub cycles_skipped: u64,
}

/// Snapshots taken along the most recent reproducing trace, reusable by
/// any candidate sharing a long enough bitwise sample prefix.
struct Store {
    samples: Vec<f64>,
    /// Ascending by cycle.
    snaps: Vec<Snapshot>,
}

/// Longest bitwise-common prefix of two sample vectors.
fn lcp(a: &[f64], b: &[f64]) -> usize {
    a.iter()
        .zip(b)
        .take_while(|(x, y)| x.to_bits() == y.to_bits())
        .count()
}

/// Trace samples a machine paused at `cycle` has consumed. A snapshot is
/// valid under any trace that agrees bitwise on this prefix: harvesting
/// reads sample `c / CYCLES_PER_TRACE_SAMPLE` only for already-elapsed
/// cycles `c`, backup windows draw from the reserve without harvesting,
/// and a mid-backup pause freezes `cycle` at the outage trigger.
fn samples_consumed(cycle: u64) -> u64 {
    cycle.div_ceil(CYCLES_PER_TRACE_SAMPLE)
}

/// [`shrink_trace`] with snapshot reuse: minimizes `samples` while the
/// machine run still *architecturally* diverges from `golden` (invariant
/// checking off — see the module docs).
///
/// Produces the identical shrunk trace as the plain shrinker with the
/// same budget, plus statistics on how much re-simulation the snapshots
/// avoided.
///
/// # Panics
///
/// Panics if `samples` is empty (see [`shrink_trace`]).
pub fn shrink_trace_checkpointed(
    program: &Program,
    golden: &Result<ArchState, ExecError>,
    cfg: &SimConfig,
    fault: Option<FaultPlan>,
    samples: &[f64],
    budget: usize,
    every_cycles: u64,
) -> (Vec<f64>, CheckpointShrinkStats) {
    let every_cycles = every_cycles.max(1);
    let mut stats = CheckpointShrinkStats::default();
    let mut store: Option<Store> = None;
    let shrunk = shrink_trace(samples, budget, |cand| {
        stats.runs += 1;
        let trace = PowerTrace::from_samples_mw(cand.to_vec());
        let shared = store.as_ref().map_or(0, |s| lcp(&s.samples, cand) as u64);
        // Latest stored snapshot whose consumed prefix the candidate
        // agrees on; its state is bit-identical to a cold run's there.
        let resume = store.as_ref().and_then(|s| {
            s.snaps
                .iter()
                .rev()
                .find(|snap| samples_consumed(snap.cycle) <= shared)
                .cloned()
        });
        let mut machine = match resume {
            Some(mut snap) => {
                // Same machine state under a different (prefix-agreeing)
                // trace: re-stamp the digest so validation accepts it.
                snap.trace_digest = snapshot::trace_digest(&trace);
                stats.resumed += 1;
                stats.cycles_skipped += snap.cycle;
                Machine::resume(&snap, program, trace).expect("prefix-compatible snapshot resumes")
            }
            None => {
                let mut m = Machine::with_trace(cfg.clone(), program, trace);
                if let Some(plan) = fault {
                    m.set_fault_plan(plan);
                }
                m
            }
        };
        let mut collected = Vec::new();
        let run = loop {
            match machine.run_until(machine.cycle().saturating_add(every_cycles)) {
                Ok(RunStatus::Completed(r)) => break Ok(*r),
                Ok(RunStatus::Paused) => collected.push(machine.snapshot(program)),
                Err(e) => break Err(e),
            }
        };
        let arch = ArchState::of_machine(&machine);
        let reproduced = judge(golden, &run, &arch).is_divergence();
        if reproduced {
            // This candidate is the shrinker's new current trace; future
            // candidates are cut from it. Keep the prefix of the old
            // store it still agrees on (all at or before the resume
            // point, so disjoint from `collected`) plus this run's
            // snapshots.
            let mut snaps: Vec<Snapshot> = store
                .take()
                .map(|s| {
                    s.snaps
                        .into_iter()
                        .filter(|snap| samples_consumed(snap.cycle) <= shared)
                        .collect()
                })
                .unwrap_or_default();
            snaps.extend(collected);
            store = Some(Store {
                samples: cand.to_vec(),
                snaps,
            });
        }
        reproduced
    });
    (shrunk, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{check_program, golden_state};
    use ehs_isa::Reg;

    /// A scenario with a genuine architectural divergence: the injected
    /// skip-restore fault under a weak supply (many outages). The small
    /// NVM keeps snapshot capture cheap.
    fn failing_setup() -> (Program, Result<ArchState, ExecError>, SimConfig, FaultPlan) {
        let w = ehs_workloads::by_name("strings").unwrap();
        let program = w.program();
        let mut cfg = SimConfig::default();
        cfg.nvm.size_bytes = 1 << 21;
        let golden = golden_state(&program, cfg.nvm.size_bytes as usize);
        let fault = FaultPlan {
            skip_restore_reg: Some(Reg::Sp),
        };
        (program, golden, cfg, fault)
    }

    #[test]
    fn matches_the_plain_shrinker_and_skips_cycles() {
        let (program, golden, cfg, fault) = failing_setup();
        let samples = vec![5.0; 16];
        let plain = shrink_trace(&samples, 24, |cand| {
            let trace = PowerTrace::from_samples_mw(cand.to_vec());
            check_program(&program, &golden, &cfg, &trace, Some(fault), false).is_divergence()
        });
        let (fast, stats) =
            shrink_trace_checkpointed(&program, &golden, &cfg, Some(fault), &samples, 24, 2_000);
        assert_eq!(fast, plain, "snapshot reuse must not change verdicts");
        assert!(stats.runs > 0);
        assert!(stats.resumed > 0, "no run ever resumed: {stats:?}");
        assert!(stats.cycles_skipped > 0);
    }

    #[test]
    fn reuse_granularity_does_not_change_the_result() {
        let (program, golden, cfg, fault) = failing_setup();
        let samples = vec![5.0; 16];
        // Huge legs: never pauses, every run is cold.
        let (cold, cold_stats) =
            shrink_trace_checkpointed(&program, &golden, &cfg, Some(fault), &samples, 16, u64::MAX);
        assert_eq!(cold_stats.resumed, 0);
        let (warm, warm_stats) =
            shrink_trace_checkpointed(&program, &golden, &cfg, Some(fault), &samples, 16, 5_000);
        assert_eq!(cold, warm);
        assert!(warm_stats.cycles_skipped > 0);
    }
}
