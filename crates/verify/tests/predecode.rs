//! Differential tests for the pre-decoded execution engine.
//!
//! The engine pre-decodes the text segment once at construction and
//! executes from the decoded form; these tests pin down the two
//! properties that make that purely an optimisation:
//!
//! 1. **Step-for-step equivalence.** With the decode cache on or off,
//!    the interpreter visits the same program counters, produces the
//!    same [`Step`](ehs_isa::Step) records, mutates the registers
//!    identically, and halts (or faults) at the same instruction — for
//!    every workload in the suite, at property-test-chosen step bounds.
//! 2. **No snapshot leakage.** Pre-decoded instructions, the batched
//!    voltage window and every other derived acceleration structure
//!    stay out of [`Snapshot`]: a machine run with all fast paths
//!    disabled serialises byte-for-byte identically to the default
//!    engine at the same cycle.

use ehs_energy::PowerTrace;
use ehs_isa::{Interpreter, Program};
use ehs_sim::{Machine, RunStatus, SimConfig};
use ehs_verify::oracle::ArchState;
use ehs_verify::Divergence;
use ehs_workloads::SUITE;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Every suite program, assembled once (assembly dominates the cost of
/// a short differential run).
fn programs() -> &'static Vec<(&'static str, Program)> {
    static PROGRAMS: OnceLock<Vec<(&'static str, Program)>> = OnceLock::new();
    PROGRAMS.get_or_init(|| SUITE.iter().map(|w| (w.name(), w.program())).collect())
}

/// Locksteps a decode-cache-on interpreter against a decode-cache-off
/// one for up to `bound` steps, comparing the full architectural
/// trajectory, and returns how many steps actually executed.
fn lockstep(name: &str, program: &Program, bound: u64) -> u64 {
    let mut fast = Interpreter::new(program);
    let mut slow = Interpreter::new(program);
    slow.set_decode_cache_enabled(false);
    assert!(fast.decode_cache_enabled() && !slow.decode_cache_enabled());

    let mut steps = 0;
    while steps < bound && !fast.halted() {
        let a = fast.step();
        let b = slow.step();
        assert_eq!(
            a, b,
            "{name}: step {steps} diverged between decode-cache on/off"
        );
        assert_eq!(
            fast.pc(),
            slow.pc(),
            "{name}: pc diverged after step {steps}"
        );
        assert_eq!(
            fast.registers(),
            slow.registers(),
            "{name}: registers diverged after step {steps}"
        );
        if a.is_err() {
            break;
        }
        steps += 1;
    }

    // Final-state comparison through the oracle's own lens, memory
    // digest included (per-step checks above never hash memory).
    let fa = ArchState::of_interpreter(&fast);
    let fb = ArchState::of_interpreter(&slow);
    if let Some(d) = Divergence::between(&fa, &fb) {
        panic!("{name}: final state diverged after {steps} steps: {d}");
    }
    steps
}

proptest! {
    /// The pre-decoded engine is step-for-step equivalent to the
    /// decode-every-time interpreter on every workload in the suite.
    #[test]
    fn predecode_lockstep_equivalence(
        which in 0usize..20,
        bound in 1_000u64..40_000,
    ) {
        let (name, program) = &programs()[which];
        lockstep(name, program, bound);
    }
}

/// Workloads that store into (or near) their own text segment exercise
/// the decode-cache coherence path; the lockstep harness must agree
/// there too, all the way to the halt of a small self-contained run.
#[test]
fn predecode_lockstep_covers_full_suite_prefix() {
    for (name, program) in programs() {
        let steps = lockstep(name, program, 5_000);
        assert!(steps > 0, "{name}: program executed no instructions");
    }
}

/// Builds the default machine for `program` under a weak supply that
/// forces outages (reboots invalidate and rebuild derived state, the
/// strongest leakage opportunity).
fn machine(program: &Program) -> Machine {
    let trace = PowerTrace::constant_mw(2.0, 16);
    Machine::with_trace(SimConfig::default(), program, trace)
}

/// A machine with every execution-engine fast path disabled must
/// snapshot byte-identically to the default machine: the decode cache,
/// the voltage window and the harvest-span cache are derived state and
/// must never reach the serialised form (or its digest).
#[test]
fn snapshot_has_no_predecode_leakage() {
    for (name, program) in programs() {
        let mut fast = machine(program);
        let mut slow = machine(program);
        slow.set_decode_cache_enabled(false);
        slow.set_exhaustive_voltage_checks(true);

        let status_fast = fast.run_until(50_000).expect("fast run");
        let status_slow = slow.run_until(50_000).expect("slow run");
        assert_eq!(
            matches!(status_fast, RunStatus::Paused),
            matches!(status_slow, RunStatus::Paused),
            "{name}: engines paused/completed differently"
        );

        let snap_fast = fast.snapshot(program);
        let snap_slow = slow.snapshot(program);
        assert_eq!(
            snap_fast.digest(),
            snap_slow.digest(),
            "{name}: snapshot digest differs between engine modes"
        );
        assert_eq!(
            snap_fast.to_json(),
            snap_slow.to_json(),
            "{name}: snapshot JSON differs between engine modes"
        );
    }
}

/// Resuming a default-engine snapshot into a fast-paths-disabled
/// machine (and vice versa) converges to the same final state: the
/// snapshot carries everything, the engine mode carries nothing.
#[test]
fn snapshot_resume_crosses_engine_modes() {
    let (name, program) = &programs()[0];
    let mut fast = machine(program);
    let _ = fast.run_until(50_000).expect("fast leg");
    let snap = fast.snapshot(program);

    let trace = PowerTrace::constant_mw(2.0, 16);
    let mut resumed_slow =
        Machine::resume(&snap, program, trace.clone()).expect("resume into slow engine");
    resumed_slow.set_decode_cache_enabled(false);
    resumed_slow.set_exhaustive_voltage_checks(true);
    let r_slow = resumed_slow.run().expect("slow continuation");

    let mut resumed_fast = Machine::resume(&snap, program, trace).expect("resume into fast engine");
    let r_fast = resumed_fast.run().expect("fast continuation");

    assert_eq!(r_fast, r_slow, "{name}: continuations diverged");
    assert_eq!(
        ArchState::of_machine(&resumed_fast),
        ArchState::of_machine(&resumed_slow),
        "{name}: final architectural state diverged"
    );
}
