//! # ehs-workloads — the 20 benchmark kernels
//!
//! The paper evaluates IPEX on 20 applications from MediaBench and
//! MiBench. Those suites ship as C programs for a real toolchain; this
//! workspace has no ARM compiler, so each application's *algorithmic
//! kernel* is re-implemented directly in EHS-RV assembly with the same
//! memory-access character (sequential streams, fixed strides, table
//! lookups, pointer chasing) — see `DESIGN.md` for the substitution
//! rationale. Inputs are generated in-program from a seeded LCG so the
//! binaries are self-contained.
//!
//! Every workload leaves a 32-bit checksum in `a0` (and at the `result`
//! data label); [`Workload::reference_checksum`] computes the same value
//! with a plain-Rust model, which the test suite uses to prove each
//! kernel computes what it claims, instruction for instruction.
//!
//! ```
//! use ehs_isa::{Interpreter, Reg};
//!
//! let w = ehs_workloads::by_name("qsort").unwrap();
//! let program = w.program();
//! let mut vm = Interpreter::new(&program);
//! vm.run(50_000_000).unwrap();
//! assert_eq!(vm.reg(Reg::A0), w.reference_checksum());
//! ```

mod codec;
mod crypto;
mod image;
mod math;
mod search;
mod transform;

use ehs_isa::{asm, Program};

/// The shared LCG used by every workload's in-program input generator:
/// `x ← x·1664525 + 1013904223` (Numerical Recipes).
#[inline]
pub fn lcg_next(x: u32) -> u32 {
    x.wrapping_mul(1664525).wrapping_add(1013904223)
}

/// The shared checksum folding step: `cs ← cs·31 + v`.
#[inline]
pub fn checksum_fold(cs: u32, v: u32) -> u32 {
    cs.wrapping_mul(31).wrapping_add(v)
}

/// Generates a straight-line diffusion chain of `count` ALU instructions
/// over scratch register `reg` (e.g. `"t0"`), seeded deterministically.
///
/// The kernelisation that turned each MediaBench/MiBench application
/// into an assembly kernel removed the bulk of the original binaries'
/// straight-line code (tens of kilobytes). These pad blocks restore a
/// realistic instruction footprint inside each kernel's hot loop so the
/// 2 kB ICache sees the capacity pressure the paper's Figure 2 reports;
/// they only consume fetch bandwidth and ALU cycles — the value chain is
/// architecturally dead, so the reference checksums are untouched. See
/// `DESIGN.md` for the substitution note.
/// Pad code mimics the *phase* structure of the full applications: four
/// alternative code regions (think: different functions of the original
/// program), selected by the loop counter and switched every 16
/// iterations. Within a 16-iteration window the active phase stays
/// ICache-resident (low miss rate, as the paper's Fig. 15 reports); a
/// phase switch walks a cold region of straight-line code, producing the
/// sequential miss bursts that next-line prefetchers cover. Each phase
/// also contains short jumped-over cold runs and ends by falling toward
/// the next phase's code, so a sequential prefetcher overruns into code
/// that will not execute for thousands of cycles — the useless-prefetch
/// exposure IPEX throttles.
///
/// `idx_reg` is read (a loop counter); `reg` is a dead scratch register
/// the diffusion chain writes; the chain's value feeds nothing, so the
/// reference checksums are untouched.
pub(crate) fn pad_asm(idx_reg: &str, reg: &str, seed: u32, per_phase: usize) -> String {
    const PHASES: usize = 4;
    let mut out = String::with_capacity(PHASES * per_phase * 24);
    let mut x = seed ^ 0x9e37_79b9;
    let op_of = |x: &mut u32, i: usize| {
        *x = lcg_next(*x);
        let c = (*x >> 18) & 0x1fff; // positive, fits imm18
        let op = match i % 4 {
            0 => "xori",
            1 => "addi",
            2 => "ori",
            _ => "andi",
        };
        format!("    {op} {reg}, {reg}, {c}\n")
    };
    // Dispatch: phase = (idx >> 4) & 3.
    out.push_str(&format!("    srli {reg}, {idx_reg}, 4\n"));
    out.push_str(&format!("    andi {reg}, {reg}, 3\n"));
    for p in 1..PHASES {
        out.push_str(&format!("    addi {reg}, {reg}, -1\n"));
        out.push_str(&format!("    bltz {reg}, pad{seed:x}_ph{q}\n", q = p - 1));
    }
    out.push_str(&format!("    j    pad{seed:x}_ph{q}\n", q = PHASES - 1));
    let mut chunk = 0usize;
    for p in 0..PHASES {
        out.push_str(&format!("pad{seed:x}_ph{p}:\n"));
        let mut emitted = 0usize;
        while emitted < per_phase {
            x = lcg_next(x);
            let live = 28 + ((x >> 20) % 25) as usize; // 28..=52 executed ops
            x = lcg_next(x);
            let dead = 2 + ((x >> 20) % 3) as usize; // 2..=4 skipped ops
            for i in 0..live.min(per_phase - emitted) {
                out.push_str(&op_of(&mut x, i));
                emitted += 1;
            }
            if emitted >= per_phase {
                break;
            }
            let label = format!("pad{seed:x}_{chunk}");
            chunk += 1;
            out.push_str(&format!("    j    {label}\n"));
            emitted += 1;
            for i in 0..dead {
                out.push_str(&op_of(&mut x, i + 1));
            }
            out.push_str(&format!("{label}:\n"));
        }
        out.push_str(&format!("    j    pad{seed:x}_end\n"));
    }
    out.push_str(&format!("pad{seed:x}_end:\n"));
    out
}

/// One benchmark kernel: a generated assembly source plus its reference
/// model.
#[derive(Clone, Copy)]
pub struct Workload {
    name: &'static str,
    description: &'static str,
    gen: fn() -> String,
    reference: fn() -> u32,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("description", &self.description)
            .finish()
    }
}

impl Workload {
    /// The benchmark's name as used in the paper's figures
    /// (e.g. `"adpcmd"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description of the kernel.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The EHS-RV assembly source.
    pub fn source(&self) -> String {
        (self.gen)()
    }

    /// Assembles the workload into a program image.
    ///
    /// # Panics
    ///
    /// Panics if the generated source does not assemble — that would be a
    /// bug in this crate, and the test suite assembles every workload.
    pub fn program(&self) -> Program {
        asm::assemble(&self.source())
            .unwrap_or_else(|e| panic!("workload `{}` failed to assemble: {e}", self.name))
    }

    /// The checksum the program must leave in `a0`, computed by the
    /// plain-Rust reference model.
    pub fn reference_checksum(&self) -> u32 {
        (self.reference)()
    }
}

macro_rules! workload {
    ($name:literal, $desc:literal, $gen:path, $reference:path) => {
        Workload {
            name: $name,
            description: $desc,
            gen: $gen,
            reference: $reference,
        }
    };
}

/// The full 20-benchmark suite, in the paper's figure order.
pub const SUITE: [Workload; 20] = [
    workload!(
        "adpcmd",
        "IMA ADPCM decoder over an LCG code stream",
        codec::gen_adpcmd,
        codec::ref_adpcmd
    ),
    workload!(
        "adpcme",
        "IMA ADPCM encoder over synthetic PCM",
        codec::gen_adpcme,
        codec::ref_adpcme
    ),
    workload!(
        "basicm",
        "basic math: Newton isqrt, polynomials, gcd grid",
        math::gen_basicm,
        math::ref_basicm
    ),
    workload!(
        "fft",
        "fixed-point radix-2 FFT, 512 points",
        transform::gen_fft,
        transform::ref_fft
    ),
    workload!(
        "g721d",
        "G.721-style adaptive-predictor decoder",
        codec::gen_g721d,
        codec::ref_g721d
    ),
    workload!(
        "g721e",
        "G.721-style adaptive-predictor encoder",
        codec::gen_g721e,
        codec::ref_g721e
    ),
    workload!(
        "gsmd",
        "GSM-style LTP frame decoder",
        codec::gen_gsmd,
        codec::ref_gsmd
    ),
    workload!(
        "gsme",
        "GSM-style autocorrelation frame encoder",
        codec::gen_gsme,
        codec::ref_gsme
    ),
    workload!(
        "ifft",
        "fixed-point inverse FFT, 512 points",
        transform::gen_ifft,
        transform::ref_ifft
    ),
    workload!(
        "jpegd",
        "dequant + integer IDCT over 8x8 blocks",
        transform::gen_jpegd,
        transform::ref_jpegd
    ),
    workload!(
        "patricia",
        "Patricia-trie build and lookups (pointer chasing)",
        search::gen_patricia,
        search::ref_patricia
    ),
    workload!(
        "pegwitd",
        "pegwit-style table-driven GF decryption",
        crypto::gen_pegwitd,
        crypto::ref_pegwitd
    ),
    workload!(
        "pegwite",
        "pegwit-style table-driven GF encryption",
        crypto::gen_pegwite,
        crypto::ref_pegwite
    ),
    workload!(
        "qsort",
        "iterative quicksort of 2048 words",
        search::gen_qsort,
        search::ref_qsort
    ),
    workload!(
        "rijndaeld",
        "AES-style inverse-S-box block decryption",
        crypto::gen_rijndaeld,
        crypto::ref_rijndaeld
    ),
    workload!(
        "rijndaele",
        "AES-style S-box block encryption",
        crypto::gen_rijndaele,
        crypto::ref_rijndaele
    ),
    workload!(
        "strings",
        "multi-needle substring search over 16 kB",
        search::gen_strings,
        search::ref_strings
    ),
    workload!(
        "susanc",
        "SUSAN-style corner response, 64x64 image",
        image::gen_susanc,
        image::ref_susanc
    ),
    workload!(
        "susane",
        "SUSAN-style edge response, 64x64 image",
        image::gen_susane,
        image::ref_susane
    ),
    workload!(
        "unepic",
        "inverse Haar wavelet reconstruction, 64x64",
        transform::gen_unepic,
        transform::ref_unepic
    ),
];

/// Looks up a workload by its paper name.
pub fn by_name(name: &str) -> Option<&'static Workload> {
    SUITE.iter().find(|w| w.name == name)
}

/// All workload names in figure order.
pub fn names() -> Vec<&'static str> {
    SUITE.iter().map(|w| w.name).collect()
}

/// Test helper: runs `w` in the functional interpreter and asserts the
/// checksum in `a0` (and at the `result` label) matches the reference
/// model.
#[cfg(test)]
pub(crate) fn check_workload(w: &Workload) {
    use ehs_isa::{Interpreter, Reg};
    let program = w.program();
    let mut vm = Interpreter::new(&program);
    vm.run(80_000_000)
        .unwrap_or_else(|e| panic!("workload `{}` did not halt cleanly: {e}", w.name()));
    let expected = w.reference_checksum();
    let got = vm.reg(Reg::A0);
    assert_eq!(
        got,
        expected,
        "workload `{}`: checksum mismatch (got {got:#010x}, expected {expected:#010x})",
        w.name()
    );
    let result_addr = program.symbol("result").expect("result label");
    assert_eq!(
        vm.read_u32(result_addr),
        expected,
        "`result` slot disagrees with a0"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_unique_names() {
        let mut names = names();
        assert_eq!(names.len(), 20);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20, "duplicate workload names");
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("fft").unwrap().name(), "fft");
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn every_workload_assembles() {
        for w in &SUITE {
            let p = w.program();
            assert!(!p.is_empty(), "{} produced an empty program", w.name());
            assert!(
                p.symbol("result").is_some(),
                "{} lacks a `result` label",
                w.name()
            );
        }
    }

    #[test]
    fn debug_formatting_is_nonempty() {
        let s = format!("{:?}", SUITE[0]);
        assert!(s.contains("adpcmd"));
    }
}
