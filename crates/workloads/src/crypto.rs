//! `rijndaele`/`rijndaeld`, `pegwite`/`pegwitd` — cryptographic kernels
//! (MediaBench stand-ins).
//!
//! * **rijndael** — an AES-flavoured block cipher round structure: the
//!   real AES S-box (inverse S-box for decryption), a ShiftRows-style
//!   byte permutation, an XOR mixing layer and a table-derived round
//!   key, 10 rounds over a stream of 16-byte blocks. Byte-table lookups
//!   dominate, as in the original.
//! * **pegwit** — the original is elliptic-curve crypto over GF(2^255);
//!   the stand-in keeps its signature behaviour (data-dependent lookups
//!   into a table larger than the DCache) with a 4 kB field table driving
//!   a 16-word sponge. Data-dependent indices defeat stride prefetching,
//!   matching pegwit's very high DCache stall share in the paper's
//!   Fig. 2.

const LCG_MUL: u32 = 1664525;
const LCG_INC: u32 = 1013904223;

#[inline]
fn lcg(x: u32) -> u32 {
    x.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC)
}

#[inline]
fn fold(cs: u32, v: u32) -> u32 {
    cs.wrapping_mul(31).wrapping_add(v)
}

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &v) in SBOX.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

/// Encryption ShiftRows permutation (row-wise rotation of the 4×4 state).
const PERM_E: [u8; 16] = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11];
/// Decryption inverse permutation.
const PERM_D: [u8; 16] = [0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3];

const RIJ_BLOCKS: u32 = 48;
const RIJ_ROUNDS: u32 = 10;
const RIJE_SEED: u32 = 161803;
const RIJD_SEED: u32 = 271828;

fn bytes_list(b: &[u8]) -> String {
    b.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_rijndael(encrypt: bool) -> String {
    let pad = crate::pad_asm("s2", "a0", if encrypt { 0xae5e } else { 0xae5d }, 240);
    let name = if encrypt { "rijndaele" } else { "rijndaeld" };
    let seed = if encrypt { RIJE_SEED } else { RIJD_SEED };
    let sbox = if encrypt { SBOX } else { inv_sbox() };
    let perm = if encrypt { PERM_E } else { PERM_D };
    format!(
        r#"
; {name}: AES-style rounds over {RIJ_BLOCKS} blocks
.text
main:
    li   s0, {seed}
    li   s1, 0               ; cs
    li   s2, 0               ; block counter
block_loop:
    li   t0, {RIJ_BLOCKS}
    bge  s2, t0, done
    ; --- fill 16-byte state from LCG ---
    la   a3, state
    li   t4, 0
fillb:
    li   a2, {LCG_MUL}
    mul  s0, s0, a2
    li   a2, {LCG_INC}
    add  s0, s0, a2
    srli t1, s0, 16
    andi t1, t1, 255
    add  a0, a3, t4
    sb   t1, 0(a0)
    addi t4, t4, 1
    li   a2, 16
    blt  t4, a2, fillb
    ; --- rounds ---
    li   s3, 0               ; round
round_loop:
    li   t0, {RIJ_ROUNDS}
    bge  s3, t0, block_out
    ; sub+shift+key: tmp[i] = sbox[state[perm[i]]] ^ sbox[(round*16+i)&255]
    li   t4, 0
sub_loop:
    la   a0, perm
    add  a0, a0, t4
    lbu  a0, 0(a0)           ; perm[i]
    la   a1, state
    add  a1, a1, a0
    lbu  a1, 0(a1)           ; state[perm[i]]
    la   a0, sbox
    add  a1, a0, a1
    lbu  a1, 0(a1)           ; substituted
    ; round key byte
    slli t1, s3, 4
    add  t1, t1, t4
    andi t1, t1, 255
    add  t1, a0, t1
    lbu  t1, 0(t1)
    xor  a1, a1, t1
    la   a0, tmp
    add  a0, a0, t4
    sb   a1, 0(a0)
    addi t4, t4, 1
    li   a2, 16
    blt  t4, a2, sub_loop
    ; mix: state[i] = tmp[i] ^ tmp[(i+4)&15]
    li   t4, 0
mix_loop:
    la   a0, tmp
    add  a1, a0, t4
    lbu  a1, 0(a1)
    addi t1, t4, 4
    andi t1, t1, 15
    add  t1, a0, t1
    lbu  t1, 0(t1)
    xor  a1, a1, t1
    la   a0, state
    add  a0, a0, t4
    sb   a1, 0(a0)
    addi t4, t4, 1
    li   a2, 16
    blt  t4, a2, mix_loop
{pad}
    addi s3, s3, 1
    j    round_loop
block_out:
    ; --- fold the 16 output bytes ---
    li   t4, 0
foldb:
    la   a0, state
    add  a0, a0, t4
    lbu  a1, 0(a0)
    li   a2, 31
    mul  s1, s1, a2
    add  s1, s1, a1
    addi t4, t4, 1
    li   a2, 16
    blt  t4, a2, foldb
    addi s2, s2, 1
    j    block_loop
done:
    la   a1, result
    sw   s1, 0(a1)
    mv   a0, s1
    halt
.data
result: .word 0
state:  .space 16
tmp:    .space 16
perm:   .byte {perm_list}
sbox:   .byte {sbox_list}
"#,
        perm_list = bytes_list(&perm),
        sbox_list = bytes_list(&sbox),
    )
}

/// Generates the `rijndaele` assembly.
pub fn gen_rijndaele() -> String {
    gen_rijndael(true)
}

/// Generates the `rijndaeld` assembly.
pub fn gen_rijndaeld() -> String {
    gen_rijndael(false)
}

fn ref_rijndael(encrypt: bool) -> u32 {
    let seed = if encrypt { RIJE_SEED } else { RIJD_SEED };
    let sbox = if encrypt { SBOX } else { inv_sbox() };
    let perm = if encrypt { PERM_E } else { PERM_D };
    let mut x = seed;
    let mut cs = 0u32;
    for _ in 0..RIJ_BLOCKS {
        let mut state = [0u8; 16];
        for b in state.iter_mut() {
            x = lcg(x);
            *b = ((x >> 16) & 255) as u8;
        }
        for round in 0..RIJ_ROUNDS {
            let mut tmp = [0u8; 16];
            for i in 0..16usize {
                let sub = sbox[state[perm[i] as usize] as usize];
                let rk = sbox[((round * 16 + i as u32) & 255) as usize];
                tmp[i] = sub ^ rk;
            }
            for i in 0..16usize {
                state[i] = tmp[i] ^ tmp[(i + 4) & 15];
            }
        }
        for b in state {
            cs = fold(cs, b as u32);
        }
    }
    cs
}

/// Reference model for [`gen_rijndaele`].
pub fn ref_rijndaele() -> u32 {
    ref_rijndael(true)
}

/// Reference model for [`gen_rijndaeld`].
pub fn ref_rijndaeld() -> u32 {
    ref_rijndael(false)
}

// ---------------------------------------------------------------------
// pegwit
// ---------------------------------------------------------------------

const PEG_TABLE_WORDS: u32 = 1024; // 4 kB, twice the DCache
const PEG_ROUNDS: u32 = 200;
const PEGE_SEED: u32 = 906090;
const PEGD_SEED: u32 = 131071;

fn gen_pegwit(encrypt: bool) -> String {
    let pad = crate::pad_asm("s2", "t1", if encrypt { 0x4e6e } else { 0x4e6d }, 230);
    let name = if encrypt { "pegwite" } else { "pegwitd" };
    let seed = if encrypt { PEGE_SEED } else { PEGD_SEED };
    let mult = if encrypt { 5 } else { 3 };
    // Encrypt mixes forward neighbours, decrypt backward ones.
    let neighbour = if encrypt {
        "    addi a1, t4, 1\n"
    } else {
        "    addi a1, t4, 15\n"
    };
    format!(
        r#"
; {name}: GF-table sponge, {PEG_ROUNDS} rounds over a 4 kB field table
.text
main:
    li   s0, {seed}
    li   s1, 0               ; cs
    ; --- fill field table ({PEG_TABLE_WORDS} words) ---
    la   s2, gftab
    li   t4, 0
fillt:
    li   a2, {LCG_MUL}
    mul  s0, s0, a2
    li   a2, {LCG_INC}
    add  s0, s0, a2
    slli t0, t4, 2
    add  t0, s2, t0
    sw   s0, 0(t0)
    addi t4, t4, 1
    li   a2, {PEG_TABLE_WORDS}
    blt  t4, a2, fillt
    ; --- fill 16-word state ---
    la   s3, pstate
    li   t4, 0
fills:
    li   a2, {LCG_MUL}
    mul  s0, s0, a2
    li   a2, {LCG_INC}
    add  s0, s0, a2
    slli t0, t4, 2
    add  t0, s3, t0
    sw   s0, 0(t0)
    addi t4, t4, 1
    li   a2, 16
    blt  t4, a2, fills
    ; --- rounds ---
    li   s2, 0               ; round (gftab base reloaded below)
round_loop:
    li   t0, {PEG_ROUNDS}
    bge  s2, t0, done
    li   t4, 0               ; i
lane_loop:
    slli t0, t4, 2
    add  t0, s3, t0
    lw   t1, 0(t0)           ; state[i]
{neighbour}    andi a1, a1, 15
    slli a1, a1, 2
    add  a1, s3, a1
    lw   a1, 0(a1)           ; neighbour lane
    xor  a2, t1, a1
    li   a3, {idx_mask}
    and  a2, a2, a3          ; data-dependent table index
    slli a2, a2, 2
    la   a3, gftab
    add  a2, a3, a2
    lw   a2, 0(a2)           ; table value
    li   a3, {mult}
    mul  t1, t1, a3
    add  t1, t1, a2          ; state[i] = state[i]*mult + tab
    sw   t1, 0(t0)
{pad}
    addi t4, t4, 1
    li   a2, 16
    blt  t4, a2, lane_loop
    ; fold state[round & 15]
    andi t0, s2, 15
    slli t0, t0, 2
    add  t0, s3, t0
    lw   t1, 0(t0)
    li   a2, 31
    mul  s1, s1, a2
    add  s1, s1, t1
    addi s2, s2, 1
    j    round_loop
done:
    la   a1, result
    sw   s1, 0(a1)
    mv   a0, s1
    halt
.data
result: .word 0
pstate: .space 64
gftab:  .space {tab_bytes}
"#,
        idx_mask = PEG_TABLE_WORDS - 1,
        tab_bytes = PEG_TABLE_WORDS * 4,
    )
}

/// Generates the `pegwite` assembly.
pub fn gen_pegwite() -> String {
    gen_pegwit(true)
}

/// Generates the `pegwitd` assembly.
pub fn gen_pegwitd() -> String {
    gen_pegwit(false)
}

fn ref_pegwit(encrypt: bool) -> u32 {
    let seed = if encrypt { PEGE_SEED } else { PEGD_SEED };
    let mult: u32 = if encrypt { 5 } else { 3 };
    let mut x = seed;
    let mut tab = vec![0u32; PEG_TABLE_WORDS as usize];
    for t in tab.iter_mut() {
        x = lcg(x);
        *t = x;
    }
    let mut state = [0u32; 16];
    for s in state.iter_mut() {
        x = lcg(x);
        *s = x;
    }
    let mut cs = 0u32;
    for round in 0..PEG_ROUNDS {
        for i in 0..16usize {
            let nb = if encrypt { (i + 1) & 15 } else { (i + 15) & 15 };
            let idx = ((state[i] ^ state[nb]) & (PEG_TABLE_WORDS - 1)) as usize;
            state[i] = state[i].wrapping_mul(mult).wrapping_add(tab[idx]);
        }
        cs = fold(cs, state[(round & 15) as usize]);
    }
    cs
}

/// Reference model for [`gen_pegwite`].
pub fn ref_pegwite() -> u32 {
    ref_pegwit(true)
}

/// Reference model for [`gen_pegwitd`].
pub fn ref_pegwitd() -> u32 {
    ref_pegwit(false)
}

#[cfg(test)]
mod tests {
    use crate::{by_name, check_workload};

    #[test]
    fn rijndaele_matches_reference() {
        check_workload(by_name("rijndaele").unwrap());
    }

    #[test]
    fn rijndaeld_matches_reference() {
        check_workload(by_name("rijndaeld").unwrap());
    }

    #[test]
    fn pegwite_matches_reference() {
        check_workload(by_name("pegwite").unwrap());
    }

    #[test]
    fn pegwitd_matches_reference() {
        check_workload(by_name("pegwitd").unwrap());
    }

    #[test]
    fn inverse_sbox_inverts() {
        let inv = super::inv_sbox();
        for i in 0..256usize {
            assert_eq!(inv[super::SBOX[i] as usize] as usize, i);
        }
    }

    #[test]
    fn perms_are_permutations() {
        for perm in [super::PERM_E, super::PERM_D] {
            let mut seen = [false; 16];
            for &p in &perm {
                assert!(!seen[p as usize]);
                seen[p as usize] = true;
            }
        }
    }
}
