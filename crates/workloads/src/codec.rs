//! `adpcmd`/`adpcme`, `g721d`/`g721e`, `gsmd`/`gsme` — audio-codec
//! kernels (MediaBench stand-ins).
//!
//! * **adpcm** — the real IMA ADPCM step/index algorithm with the
//!   standard 89-entry step table (table-lookup heavy).
//! * **g721** — a G.721-style adaptive-predictor codec: 1-tap adaptive
//!   prediction, adaptive quantiser step, per-sample division.
//! * **gsm** — frame-based processing: the encoder computes 9-lag
//!   autocorrelations per 160-sample frame; the decoder runs long-term
//!   prediction against a history buffer.

const LCG_MUL: u32 = 1664525;
const LCG_INC: u32 = 1013904223;

#[inline]
fn lcg(x: u32) -> u32 {
    x.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC)
}

#[inline]
fn fold(cs: u32, v: u32) -> u32 {
    cs.wrapping_mul(31).wrapping_add(v)
}

/// The standard IMA ADPCM step-size table.
const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// The standard IMA ADPCM index-adjust table (indexed by the 4-bit code).
const INDEX_TABLE: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

fn step_table_words() -> String {
    STEP_TABLE
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn index_table_words() -> String {
    INDEX_TABLE
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

// ---------------------------------------------------------------------
// adpcme — IMA ADPCM encoder
// ---------------------------------------------------------------------

const ADPCM_N: u32 = 3000;
const ADPCME_SEED: u32 = 99;

/// Generates the `adpcme` assembly.
pub fn gen_adpcme() -> String {
    let pad = crate::pad_asm("s2", "t0", 0xadce, 230);
    format!(
        r#"
; adpcme: IMA ADPCM encoder, {ADPCM_N} samples
.text
main:
    li   s0, {ADPCME_SEED}
    li   s1, 0               ; cs
    li   s2, 0               ; i
    li   s3, {ADPCM_N}
    la   t4, state
outer:
    li   a2, {LCG_MUL}
    mul  s0, s0, a2
    li   a2, {LCG_INC}
    add  s0, s0, a2
    srli t0, s0, 16
    slli t0, t0, 16
    srai t0, t0, 16          ; s: signed 16-bit sample
    lw   t1, 0(t4)           ; valpred
    lw   t2, 4(t4)           ; index
    la   a0, steptab
    slli a1, t2, 2
    add  a0, a0, a1
    lw   t3, 0(a0)           ; step
    sub  a0, t0, t1          ; delta
    li   a1, 0               ; sign
    bgez a0, pos
    li   a1, 8
    neg  a0, a0
pos:
    li   a2, 0               ; code
    srli a3, t3, 3           ; vpdiff = step>>3
    blt  a0, t3, no4
    ori  a2, a2, 4
    sub  a0, a0, t3
    add  a3, a3, t3
no4:
    srli t3, t3, 1
    blt  a0, t3, no2
    ori  a2, a2, 2
    sub  a0, a0, t3
    add  a3, a3, t3
no2:
    srli t3, t3, 1
    blt  a0, t3, no1
    ori  a2, a2, 1
    add  a3, a3, t3
no1:
    beqz a1, addv
    sub  t1, t1, a3
    j    clampv
addv:
    add  t1, t1, a3
clampv:
    li   a0, 32767
    ble  t1, a0, ck1
    mv   t1, a0
ck1:
    li   a0, -32768
    bge  t1, a0, ck2
    mv   t1, a0
ck2:
    or   a2, a2, a1          ; code |= sign
    la   a0, indextab
    slli a1, a2, 2
    add  a0, a0, a1
    lw   a0, 0(a0)
    add  t2, t2, a0
    bgez t2, ck3
    li   t2, 0
ck3:
    li   a0, 88
    ble  t2, a0, ck4
    mv   t2, a0
ck4:
    sw   t1, 0(t4)
    sw   t2, 4(t4)
    li   a0, 31
    mul  s1, s1, a0
    add  s1, s1, a2
{pad}
    addi s2, s2, 1
    blt  s2, s3, outer
    la   a1, result
    sw   s1, 0(a1)
    mv   a0, s1
    halt
.data
result:   .word 0
state:    .word 0, 0
steptab:  .word {steps}
indextab: .word {indexes}
"#,
        steps = step_table_words(),
        indexes = index_table_words(),
    )
}

/// Reference model for [`gen_adpcme`].
pub fn ref_adpcme() -> u32 {
    let mut x = ADPCME_SEED;
    let (mut valpred, mut index) = (0i32, 0i32);
    let mut cs = 0u32;
    for _ in 0..ADPCM_N {
        x = lcg(x);
        let s = (x >> 16) as u16 as i16 as i32;
        let step = STEP_TABLE[index as usize];
        let mut delta = s - valpred;
        let sign = if delta < 0 { 8 } else { 0 };
        if sign != 0 {
            delta = -delta;
        }
        let mut code = 0i32;
        let mut vpdiff = step >> 3;
        let mut st = step;
        if delta >= st {
            code |= 4;
            delta -= st;
            vpdiff += st;
        }
        st >>= 1;
        if delta >= st {
            code |= 2;
            delta -= st;
            vpdiff += st;
        }
        st >>= 1;
        if delta >= st {
            code |= 1;
            vpdiff += st;
        }
        valpred = if sign != 0 {
            valpred - vpdiff
        } else {
            valpred + vpdiff
        };
        valpred = valpred.clamp(-32768, 32767);
        code |= sign;
        index = (index + INDEX_TABLE[code as usize]).clamp(0, 88);
        cs = fold(cs, code as u32);
    }
    cs
}

// ---------------------------------------------------------------------
// adpcmd — IMA ADPCM decoder
// ---------------------------------------------------------------------

const ADPCMD_SEED: u32 = 1234;

/// Generates the `adpcmd` assembly.
pub fn gen_adpcmd() -> String {
    let pad = crate::pad_asm("s2", "t0", 0xadcd, 230);
    format!(
        r#"
; adpcmd: IMA ADPCM decoder, {ADPCM_N} codes
.text
main:
    li   s0, {ADPCMD_SEED}
    li   s1, 0               ; cs
    li   s2, 0               ; i
    li   s3, {ADPCM_N}
    la   t4, state
outer:
    li   a2, {LCG_MUL}
    mul  s0, s0, a2
    li   a2, {LCG_INC}
    add  s0, s0, a2
    srli t0, s0, 16
    andi t0, t0, 15          ; code
    lw   t1, 0(t4)           ; valpred
    lw   t2, 4(t4)           ; index
    la   a0, steptab
    slli a1, t2, 2
    add  a0, a0, a1
    lw   t3, 0(a0)           ; step
    ; index += indextab[code], clamped
    la   a0, indextab
    slli a1, t0, 2
    add  a0, a0, a1
    lw   a0, 0(a0)
    add  t2, t2, a0
    bgez t2, dk1
    li   t2, 0
dk1:
    li   a0, 88
    ble  t2, a0, dk2
    mv   t2, a0
dk2:
    ; vpdiff = step>>3 (+ step if bit2, + step>>1 if bit1, + step>>2 if bit0)
    srli a3, t3, 3
    andi a0, t0, 4
    beqz a0, dn4
    add  a3, a3, t3
dn4:
    srli t3, t3, 1
    andi a0, t0, 2
    beqz a0, dn2
    add  a3, a3, t3
dn2:
    srli t3, t3, 1
    andi a0, t0, 1
    beqz a0, dn1
    add  a3, a3, t3
dn1:
    andi a0, t0, 8
    beqz a0, daddv
    sub  t1, t1, a3
    j    dclampv
daddv:
    add  t1, t1, a3
dclampv:
    li   a0, 32767
    ble  t1, a0, dck1
    mv   t1, a0
dck1:
    li   a0, -32768
    bge  t1, a0, dck2
    mv   t1, a0
dck2:
    sw   t1, 0(t4)
    sw   t2, 4(t4)
    li   a0, 31
    mul  s1, s1, a0
    ; fold the low 16 bits of the sample
    li   a1, 65535
    and  a2, t1, a1
    add  s1, s1, a2
{pad}
    addi s2, s2, 1
    blt  s2, s3, outer
    la   a1, result
    sw   s1, 0(a1)
    mv   a0, s1
    halt
.data
result:   .word 0
state:    .word 0, 0
steptab:  .word {steps}
indextab: .word {indexes}
"#,
        steps = step_table_words(),
        indexes = index_table_words(),
    )
}

/// Reference model for [`gen_adpcmd`].
pub fn ref_adpcmd() -> u32 {
    let mut x = ADPCMD_SEED;
    let (mut valpred, mut index) = (0i32, 0i32);
    let mut cs = 0u32;
    for _ in 0..ADPCM_N {
        x = lcg(x);
        let code = ((x >> 16) & 15) as i32;
        let step = STEP_TABLE[index as usize];
        index = (index + INDEX_TABLE[code as usize]).clamp(0, 88);
        let mut vpdiff = step >> 3;
        if code & 4 != 0 {
            vpdiff += step;
        }
        if code & 2 != 0 {
            vpdiff += step >> 1;
        }
        if code & 1 != 0 {
            vpdiff += step >> 2;
        }
        valpred = if code & 8 != 0 {
            valpred - vpdiff
        } else {
            valpred + vpdiff
        };
        valpred = valpred.clamp(-32768, 32767);
        cs = fold(cs, (valpred & 0xffff) as u32);
    }
    cs
}

// ---------------------------------------------------------------------
// g721e / g721d — adaptive-predictor codec
// ---------------------------------------------------------------------

const G721_N: u32 = 2500;
const G721E_SEED: u32 = 555;
const G721D_SEED: u32 = 666;

/// Shared state-update snippet notes: state layout in memory is
/// `[p1, p2, a, step]` (words). See the reference models for the exact
/// arithmetic.
fn gen_g721(encode: bool) -> String {
    let pad = crate::pad_asm("s2", "t0", if encode { 0x721e } else { 0x721d }, 230);
    let seed = if encode { G721E_SEED } else { G721D_SEED };
    let name = if encode { "g721e" } else { "g721d" };
    // Input production differs; both then share the reconstruction and
    // adaptation datapath.
    let input = if encode {
        r#"
    ; sample s = signed 16-bit from LCG
    srli t0, s0, 16
    slli t0, t0, 16
    srai t0, t0, 16          ; t0 = s
    ; e = s - pred ; q = clamp(e/step, -7, 7)
    sub  a0, t0, a3          ; e
    div  t0, a0, t2          ; q = e / step
    li   a1, 7
    ble  t0, a1, qc1
    mv   t0, a1
qc1:
    li   a1, -7
    bge  t0, a1, qc2
    mv   t0, a1
qc2:
    ; sign flag for coeff adaptation comes from e
    slti a0, a0, 0           ; a0 = (e < 0)
    ; fold the 4-bit code now, while q is still live in t0
    ; (the adaptation code below reuses t0)
    andi a2, t0, 15
    li   a1, 31
    mul  s1, s1, a1
    add  s1, s1, a2
"#
    } else {
        r#"
    ; 4-bit code from LCG, sign-extended to q in [-8, 7]
    srli t0, s0, 16
    andi t0, t0, 15
    slli t0, t0, 28
    srai t0, t0, 28          ; q
    ; sign flag for coeff adaptation comes from q
    slti a0, t0, 0           ; a0 = (q < 0)
"#
    };
    let foldv = if encode {
        // The code was already folded inside the input block (q's
        // register is clobbered by the adaptation logic).
        ""
    } else {
        // fold the low 16 bits of the reconstruction
        r#"
    li   a1, 65535
    and  a2, t3, a1
    li   a1, 31
    mul  s1, s1, a1
    add  s1, s1, a2
"#
    };
    format!(
        r#"
; {name}: G.721-style adaptive predictor, {G721_N} samples
.text
main:
    li   s0, {seed}
    li   s1, 0               ; cs
    li   s2, 0               ; i
    li   s3, {G721_N}
    la   t4, state
    ; init: p1=0 p2=0 a=64 step=16
    li   a0, 64
    sw   a0, 8(t4)
    li   a0, 16
    sw   a0, 12(t4)
outer:
    li   a2, {LCG_MUL}
    mul  s0, s0, a2
    li   a2, {LCG_INC}
    add  s0, s0, a2
    ; load state: t1=p1 a2=p2 (temporarily) t2=step a3=pred
    lw   t1, 0(t4)           ; p1
    lw   a2, 4(t4)           ; p2
    lw   t2, 12(t4)          ; step
    lw   a3, 8(t4)           ; a (coeff)
    sub  a1, t1, a2          ; d = p1 - p2
    mul  a3, a3, a1          ; a*d
    srai a3, a3, 8
    add  a3, t1, a3          ; pred = p1 + (a*d >> 8)
    ; stash d's sign in t3 for adaptation (d < 0)
    slti t3, a1, 0
{input}
    ; here: t0 = q, a0 = (err sign), t3 = (d sign), a3 = pred, t2 = step
    ; rec = pred + q*step
    mul  a1, t0, t2
    add  a1, a3, a1          ; rec (before clamp)
    li   a2, 30000
    ble  a1, a2, rc1
    mv   a1, a2
rc1:
    li   a2, -30000
    bge  a1, a2, rc2
    mv   a1, a2
rc2:
    mv   t3, a1              ; keep rec in t3... but adaptation needs d sign
    ; NOTE: d-sign was moved into a2 below before t3 was overwritten
    ; --- step adaptation: |q| >= 4 ? step += step>>1 : step -= step>>3
    bgez t0, qa1
    neg  a2, t0
    j    qa2
qa1:
    mv   a2, t0
qa2:
    li   a1, 4
    blt  a2, a1, small_q
    srli a1, t2, 1
    add  t2, t2, a1
    j    step_clamp
small_q:
    srli a1, t2, 3
    sub  t2, t2, a1
step_clamp:
    li   a1, 4
    bge  t2, a1, sc1
    mv   t2, a1
sc1:
    li   a1, 2048
    ble  t2, a1, sc2
    mv   t2, a1
sc2:
    sw   t2, 12(t4)          ; step
    ; --- coeff adaptation: (errsign == dsign) ? a += 2 : a -= 2 ---
    lw   a1, 0(t4)           ; reload p1
    lw   a2, 4(t4)           ; reload p2
    sub  a2, a1, a2          ; d again
    slti a2, a2, 0           ; d sign
    lw   t0, 8(t4)           ; a
    beq  a0, a2, grow_a
    subi t0, t0, 2
    j    a_clamp
grow_a:
    addi t0, t0, 2
a_clamp:
    bgez t0, ac1
    li   t0, 0
ac1:
    li   a2, 255
    ble  t0, a2, ac2
    mv   t0, a2
ac2:
    sw   t0, 8(t4)
    ; --- shift reconstruction history: p2 = p1; p1 = rec ---
    sw   a1, 4(t4)
    sw   t3, 0(t4)
    ; --- fold (decoder only; encoder folds in its input block) ---
{foldv}
{pad}
    addi s2, s2, 1
    blt  s2, s3, outer
    la   a1, result
    sw   s1, 0(a1)
    mv   a0, s1
    halt
.data
result: .word 0
state:  .word 0, 0, 64, 16
"#
    )
}

/// Generates the `g721e` assembly.
pub fn gen_g721e() -> String {
    gen_g721(true)
}

/// Generates the `g721d` assembly.
pub fn gen_g721d() -> String {
    gen_g721(false)
}

fn ref_g721(encode: bool) -> u32 {
    let seed = if encode { G721E_SEED } else { G721D_SEED };
    let mut x = seed;
    let (mut p1, mut p2, mut a, mut step) = (0i32, 0i32, 64i32, 16i32);
    let mut cs = 0u32;
    for _ in 0..G721_N {
        x = lcg(x);
        let d = p1 - p2;
        let pred = p1 + ((a.wrapping_mul(d)) >> 8);
        let (q, err_neg) = if encode {
            let s = (x >> 16) as u16 as i16 as i32;
            let e = s - pred;
            let q = (e.wrapping_div(step)).clamp(-7, 7);
            (q, e < 0)
        } else {
            let code = ((x >> 16) & 15) as i32;
            let q = (code << 28) >> 28; // sign-extend 4 bits
            (q, q < 0)
        };
        let rec = (pred + q * step).clamp(-30000, 30000);
        // Step adaptation.
        let qa = q.abs();
        step = if qa >= 4 {
            step + (step >> 1)
        } else {
            step - (step >> 3)
        };
        step = step.clamp(4, 2048);
        // Coefficient adaptation.
        let d_neg = d < 0;
        a = if err_neg == d_neg { a + 2 } else { a - 2 };
        a = a.clamp(0, 255);
        // History.
        p2 = p1;
        p1 = rec;
        let v = if encode {
            (q & 0xf) as u32
        } else {
            (rec & 0xffff) as u32
        };
        cs = fold(cs, v);
    }
    cs
}

/// Reference model for [`gen_g721e`].
pub fn ref_g721e() -> u32 {
    ref_g721(true)
}

/// Reference model for [`gen_g721d`].
pub fn ref_g721d() -> u32 {
    ref_g721(false)
}

// ---------------------------------------------------------------------
// gsme — autocorrelation encoder
// ---------------------------------------------------------------------

const GSM_FRAMES: u32 = 12;
const GSM_FRAME_LEN: u32 = 160;
const GSME_SEED: u32 = 2024;

/// Generates the `gsme` assembly: per 160-sample frame, computes the
/// 9-lag autocorrelation of the (scaled) samples and folds the
/// normalised coefficients.
pub fn gen_gsme() -> String {
    let pad = crate::pad_asm("s2", "t0", 0x95e, 230);
    format!(
        r#"
; gsme: 9-lag autocorrelation over {GSM_FRAMES} frames of {GSM_FRAME_LEN}
.text
main:
    li   s0, {GSME_SEED}
    li   s1, 0               ; cs
    li   s2, 0               ; frame
frame_loop:
    li   t0, {GSM_FRAMES}
    bge  s2, t0, done
    ; --- generate frame: sc[i] = (signed sample) >> 4 ---
    la   s3, frame
    li   t0, 0
gen:
    li   a2, {LCG_MUL}
    mul  s0, s0, a2
    li   a2, {LCG_INC}
    add  s0, s0, a2
    srli t1, s0, 16
    slli t1, t1, 16
    srai t1, t1, 20          ; (i16 sample) >> 4
    slli t2, t0, 2
    add  t2, s3, t2
    sw   t1, 0(t2)
    addi t0, t0, 1
    li   a2, {GSM_FRAME_LEN}
    blt  t0, a2, gen
    ; --- acf0 for normalisation ---
    li   t4, 0               ; k = 0
    li   a3, 1               ; norm = 1 (patched after k=0)
acf_loop:
    li   t0, 9
    bge  t4, t0, frame_done
    ; acf = sum_{{i=k}}^{{159}} sc[i]*sc[i-k]
    li   t0, 0               ; acc
    mv   t1, t4              ; i = k
mac:
    slli t2, t1, 2
    add  t2, s3, t2
    lw   a0, 0(t2)           ; sc[i]
    sub  t3, t1, t4
    slli t3, t3, 2
    add  t3, s3, t3
    lw   a1, 0(t3)           ; sc[i-k]
    mul  a0, a0, a1
    add  t0, t0, a0
    addi t1, t1, 1
    li   a2, {GSM_FRAME_LEN}
    blt  t1, a2, mac
    ; k == 0: norm = (acf0 >> 6) + 1
    bnez t4, not_k0
    srai a3, t0, 6
    addi a3, a3, 1
not_k0:
    div  t0, t0, a3          ; r = acf / norm
    li   a1, 31
    mul  s1, s1, a1
    add  s1, s1, t0
{pad}
    addi t4, t4, 1
    j    acf_loop
frame_done:
    addi s2, s2, 1
    j    frame_loop
done:
    la   a1, result
    sw   s1, 0(a1)
    mv   a0, s1
    halt
.data
result: .word 0
frame:  .space {frame_bytes}
"#,
        frame_bytes = GSM_FRAME_LEN * 4,
    )
}

/// Reference model for [`gen_gsme`].
pub fn ref_gsme() -> u32 {
    let mut x = GSME_SEED;
    let mut cs = 0u32;
    for _ in 0..GSM_FRAMES {
        let sc: Vec<i32> = (0..GSM_FRAME_LEN)
            .map(|_| {
                x = lcg(x);
                // ((i16 sample) << 16) >> 20 == sample >> 4 with sign.
                (((x >> 16) as u16 as i16 as i32) << 16) >> 20
            })
            .collect();
        let mut norm = 1i32;
        for k in 0..9usize {
            let mut acc = 0i32;
            for i in k..GSM_FRAME_LEN as usize {
                acc = acc.wrapping_add(sc[i].wrapping_mul(sc[i - k]));
            }
            if k == 0 {
                norm = (acc >> 6) + 1;
            }
            let r = acc.wrapping_div(norm);
            cs = fold(cs, r as u32);
        }
    }
    cs
}

// ---------------------------------------------------------------------
// gsmd — long-term-prediction decoder
// ---------------------------------------------------------------------

const GSMD_SEED: u32 = 808;
const GSM_B: i32 = 230; // Q8 LTP gain

/// Generates the `gsmd` assembly: reconstructs each frame by adding a
/// long-term prediction (lag 40–103, gain 230/256) from the output
/// history to an LCG residual.
pub fn gen_gsmd() -> String {
    let pad = crate::pad_asm("t0", "t1", 0x95d, 230);
    format!(
        r#"
; gsmd: LTP reconstruction over {GSM_FRAMES} frames of {GSM_FRAME_LEN}
.text
main:
    li   s0, {GSMD_SEED}
    li   s1, 0               ; cs
    li   s2, 0               ; frame
    la   s3, out             ; history+output buffer, first 160 zeroed
frame_loop:
    li   t0, {GSM_FRAMES}
    bge  s2, t0, done
    ; lag = 40 + (lcg>>16)&63
    li   a2, {LCG_MUL}
    mul  s0, s0, a2
    li   a2, {LCG_INC}
    add  s0, s0, a2
    srli t4, s0, 16
    andi t4, t4, 63
    addi t4, t4, 40          ; lag
    li   t0, 0               ; i
sample:
    ; residual r = (i16 from LCG) >> 2
    li   a2, {LCG_MUL}
    mul  s0, s0, a2
    li   a2, {LCG_INC}
    add  s0, s0, a2
    srli t1, s0, 16
    slli t1, t1, 16
    srai t1, t1, 18          ; r
    ; idx = (frame*160 + 160 + i)
    li   a0, {GSM_FRAME_LEN}
    mul  a1, s2, a0
    add  a1, a1, a0
    add  a1, a1, t0          ; idx
    sub  a2, a1, t4          ; idx - lag
    slli a2, a2, 2
    add  a2, s3, a2
    lw   a2, 0(a2)           ; past
    li   a3, {GSM_B}
    mul  a2, a2, a3
    srai a2, a2, 8
    add  t1, t1, a2          ; v = r + (b*past)>>8
    li   a2, 30000
    ble  t1, a2, vc1
    mv   t1, a2
vc1:
    li   a2, -30000
    bge  t1, a2, vc2
    mv   t1, a2
vc2:
    slli a2, a1, 2
    add  a2, s3, a2
    sw   t1, 0(a2)           ; out[idx] = v
    ; fold every sample (low 16 bits)
    li   a2, 65535
    and  a2, t1, a2
    li   a3, 31
    mul  s1, s1, a3
    add  s1, s1, a2
{pad}
    addi t0, t0, 1
    li   a2, {GSM_FRAME_LEN}
    blt  t0, a2, sample
    addi s2, s2, 1
    j    frame_loop
done:
    la   a1, result
    sw   s1, 0(a1)
    mv   a0, s1
    halt
.data
result: .word 0
out:    .space {out_bytes}
"#,
        out_bytes = (GSM_FRAMES + 1) * GSM_FRAME_LEN * 4,
    )
}

/// Reference model for [`gen_gsmd`].
pub fn ref_gsmd() -> u32 {
    let mut x = GSMD_SEED;
    let mut cs = 0u32;
    let n = ((GSM_FRAMES + 1) * GSM_FRAME_LEN) as usize;
    let mut out = vec![0i32; n];
    for f in 0..GSM_FRAMES as usize {
        x = lcg(x);
        let lag = (40 + ((x >> 16) & 63)) as usize;
        for i in 0..GSM_FRAME_LEN as usize {
            x = lcg(x);
            let r = (((x >> 16) as u16 as i16 as i32) << 16) >> 18;
            let idx = f * GSM_FRAME_LEN as usize + GSM_FRAME_LEN as usize + i;
            let past = out[idx - lag];
            let v = (r + ((past.wrapping_mul(GSM_B)) >> 8)).clamp(-30000, 30000);
            out[idx] = v;
            cs = fold(cs, (v & 0xffff) as u32);
        }
    }
    cs
}

#[cfg(test)]
mod tests {
    use crate::{by_name, check_workload};

    #[test]
    fn adpcme_matches_reference() {
        check_workload(by_name("adpcme").unwrap());
    }

    #[test]
    fn adpcmd_matches_reference() {
        check_workload(by_name("adpcmd").unwrap());
    }

    #[test]
    fn g721e_matches_reference() {
        check_workload(by_name("g721e").unwrap());
    }

    #[test]
    fn g721d_matches_reference() {
        check_workload(by_name("g721d").unwrap());
    }

    #[test]
    fn gsme_matches_reference() {
        check_workload(by_name("gsme").unwrap());
    }

    #[test]
    fn gsmd_matches_reference() {
        check_workload(by_name("gsmd").unwrap());
    }

    #[test]
    fn encoder_decoder_checksums_differ() {
        assert_ne!(super::ref_adpcme(), super::ref_adpcmd());
        assert_ne!(super::ref_g721e(), super::ref_g721d());
    }
}
