//! `susanc` / `susane` — SUSAN-style image feature detection (MiBench
//! stand-in).
//!
//! A synthetic grayscale image is scanned with a brightness-similarity
//! mask: for every interior pixel, the number of mask pixels within a
//! threshold of the centre brightness (the USAN area) is counted and the
//! classic response `g − n` (when `n < g`) is folded into the checksum.
//! `susanc` (corners) uses a 5×5 mask on a 40×40 image; `susane` (edges)
//! uses a 3×3 mask on a 64×64 image. 2-D strided neighbour access is the
//! kernels' defining memory pattern.

const LCG_MUL: u32 = 1664525;
const LCG_INC: u32 = 1013904223;

#[inline]
fn lcg(x: u32) -> u32 {
    x.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC)
}

#[inline]
fn fold(cs: u32, v: u32) -> u32 {
    cs.wrapping_mul(31).wrapping_add(v)
}

const SIM_THRESHOLD: i32 = 27;

struct SusanParams {
    name: &'static str,
    seed: u32,
    dim: u32,
    border: u32,
    g: u32,
    /// Neighbour offsets (dr, dc), excluding the centre.
    offsets: Vec<(i32, i32)>,
}

fn susanc_params() -> SusanParams {
    let mut offsets = Vec::new();
    for dr in -2i32..=2 {
        for dc in -2i32..=2 {
            if (dr, dc) != (0, 0) {
                offsets.push((dr, dc));
            }
        }
    }
    SusanParams {
        name: "susanc",
        seed: 40_004,
        dim: 40,
        border: 2,
        g: 18,
        offsets,
    }
}

fn susane_params() -> SusanParams {
    let mut offsets = Vec::new();
    for dr in -1i32..=1 {
        for dc in -1i32..=1 {
            if (dr, dc) != (0, 0) {
                offsets.push((dr, dc));
            }
        }
    }
    SusanParams {
        name: "susane",
        seed: 64_064,
        dim: 64,
        border: 1,
        g: 6,
        offsets,
    }
}

fn gen_susan(p: &SusanParams) -> String {
    let pad = crate::pad_asm(
        "t3",
        "t0",
        p.seed ^ 0x5a5a,
        if p.name == "susanc" { 230 } else { 200 },
    );
    let offs: Vec<String> = p
        .offsets
        .iter()
        .map(|(dr, dc)| (dr * p.dim as i32 + dc).to_string())
        .collect();
    format!(
        r#"
; {name}: USAN similarity scan, {dim}x{dim} image, {k}-pixel mask
.text
main:
    li   s0, {seed}
    li   s1, 0               ; cs
    la   s2, img
    la   s3, offs
    ; --- fill image bytes ---
    li   t4, 0
fill:
    li   a2, {LCG_MUL}
    mul  s0, s0, a2
    li   a2, {LCG_INC}
    add  s0, s0, a2
    srli t1, s0, 16
    andi t1, t1, 255
    add  a0, s2, t4
    sb   t1, 0(a0)
    addi t4, t4, 1
    li   a2, {npix}
    blt  t4, a2, fill
    ; --- scan interior pixels ---
    li   t4, {border}        ; r
row_loop:
    li   a2, {row_end}
    bge  t4, a2, done
    li   t3, {border}        ; c
col_loop:
    li   a2, {row_end}
    bge  t3, a2, row_next
    ; center = img[r*dim + c]
    li   a0, {dim}
    mul  a0, t4, a0
    add  a0, a0, t3
    add  a1, s2, a0
    lbu  t0, 0(a1)           ; center
    ; count similar neighbours
    li   t1, 0               ; n
    li   t2, 0               ; k
mask_loop:
    li   a2, {k}
    bge  t2, a2, mask_done
    slli a1, t2, 2
    add  a1, s3, a1
    lw   a1, 0(a1)           ; offset (signed words of index delta)
    add  a1, a1, a0          ; neighbour index
    add  a1, s2, a1
    lbu  a1, 0(a1)
    sub  a1, a1, t0
    bgez a1, absd
    neg  a1, a1
absd:
    li   a2, {thresh}
    bgt  a1, a2, not_sim
    addi t1, t1, 1
not_sim:
    addi t2, t2, 1
    j    mask_loop
mask_done:
    ; response = n < g ? g - n : 0
    li   a1, {g}
    blt  t1, a1, respond
    li   a1, 0
    j    fold_resp
respond:
    sub  a1, a1, t1
fold_resp:
    li   a2, 31
    mul  s1, s1, a2
    add  s1, s1, a1
{pad}
    addi t3, t3, 1
    j    col_loop
row_next:
    addi t4, t4, 1
    j    row_loop
done:
    la   a1, result
    sw   s1, 0(a1)
    mv   a0, s1
    halt
.data
result: .word 0
offs:   .word {offs_list}
img:    .space {npix}
"#,
        name = p.name,
        seed = p.seed,
        dim = p.dim,
        k = p.offsets.len(),
        npix = p.dim * p.dim,
        border = p.border,
        row_end = p.dim - p.border,
        thresh = SIM_THRESHOLD,
        g = p.g,
        offs_list = offs.join(", "),
    )
}

/// Generates the `susanc` assembly.
pub fn gen_susanc() -> String {
    gen_susan(&susanc_params())
}

/// Generates the `susane` assembly.
pub fn gen_susane() -> String {
    gen_susan(&susane_params())
}

fn ref_susan(p: &SusanParams) -> u32 {
    let dim = p.dim as usize;
    let mut x = p.seed;
    let img: Vec<u8> = (0..dim * dim)
        .map(|_| {
            x = lcg(x);
            ((x >> 16) & 255) as u8
        })
        .collect();
    let mut cs = 0u32;
    let border = p.border as usize;
    for r in border..dim - border {
        for c in border..dim - border {
            let center = img[r * dim + c] as i32;
            let mut n = 0u32;
            for &(dr, dc) in &p.offsets {
                let idx = ((r as i32 + dr) * dim as i32 + (c as i32 + dc)) as usize;
                let d = (img[idx] as i32 - center).abs();
                if d <= SIM_THRESHOLD {
                    n += 1;
                }
            }
            let resp = p.g.saturating_sub(n);
            cs = fold(cs, resp);
        }
    }
    cs
}

/// Reference model for [`gen_susanc`].
pub fn ref_susanc() -> u32 {
    ref_susan(&susanc_params())
}

/// Reference model for [`gen_susane`].
pub fn ref_susane() -> u32 {
    ref_susan(&susane_params())
}

#[cfg(test)]
mod tests {
    use crate::{by_name, check_workload};

    #[test]
    fn susanc_matches_reference() {
        check_workload(by_name("susanc").unwrap());
    }

    #[test]
    fn susane_matches_reference() {
        check_workload(by_name("susane").unwrap());
    }

    #[test]
    fn masks_have_expected_sizes() {
        assert_eq!(super::susanc_params().offsets.len(), 24);
        assert_eq!(super::susane_params().offsets.len(), 8);
    }
}
